//! The zero-copy binary wire path: binary (PTIB) object envelopes are
//! the default wire format with XML as a sniffed decode fallback, one
//! publish encodes exactly once, and fanning out to N links shares the
//! encoded bytes instead of copying them.

use pti_core::prelude::*;
use pti_core::samples;

fn routed_fixture(subscribers: usize) -> (Swarm, PeerId, Vec<PeerId>) {
    let mut swarm = Swarm::new(NetConfig::default());
    let publisher = swarm.add_peer(ConformanceConfig::pragmatic());
    swarm
        .publish(
            publisher,
            samples::person_assembly(&samples::person_vendor_a()),
        )
        .unwrap();
    let subs: Vec<PeerId> = (0..subscribers)
        .map(|_| {
            let s = swarm.add_peer(ConformanceConfig::pragmatic());
            swarm.subscribe(s, TypeDescription::from_def(&samples::person_vendor_b()));
            s
        })
        .collect();
    (swarm, publisher, subs)
}

#[test]
fn binary_envelopes_are_the_default_on_the_wire() {
    let (mut swarm, publisher, subs) = routed_fixture(1);
    assert_eq!(swarm.envelope_wire_format(), EnvelopeWireFormat::Ptib);
    let v = samples::make_person(&mut swarm.peer_mut(publisher).runtime, "binary-by-default");
    swarm
        .route_object(publisher, &v, PayloadFormat::Binary)
        .unwrap();
    swarm.flush_wire();
    // Inspect the raw wire message before delivery: PTIE magic, no XML.
    let msg = swarm
        .net_mut()
        .recv_kind(subs[0], "object")
        .expect("one routed envelope");
    assert!(ObjectEnvelope::is_ptib(&msg.payload));
    swarm
        .dispatch(
            subs[0],
            BusMessage {
                from: msg.from,
                to: msg.to,
                kind: msg.kind,
                payload: msg.payload,
            },
        )
        .unwrap();
    swarm.run().unwrap();
    assert_eq!(swarm.peer(subs[0]).stats.accepted, 1);
}

#[test]
fn binary_wire_format_is_at_least_twice_as_dense_as_xml() {
    // The routed-workload event shape (R1/R3's topic events): a small
    // payload under a metadata-heavy envelope — where the binary form's
    // savings (raw payload instead of base64, binary GUID, no markup)
    // compound to >=2x, the bound CI gates R3 on.
    let mut sizes = Vec::new();
    for wire in [EnvelopeWireFormat::Xml, EnvelopeWireFormat::Ptib] {
        let mut swarm = Swarm::new(NetConfig::default());
        swarm.set_envelope_wire_format(wire);
        let publisher = swarm.add_peer(ConformanceConfig::pragmatic());
        swarm
            .publish(publisher, samples::topic_event_assembly(0))
            .unwrap();
        let sub = swarm.add_peer(ConformanceConfig::pragmatic());
        swarm.subscribe(
            sub,
            TypeDescription::from_def(&samples::topic_event_def(0, "sub")),
        );
        swarm.reset_metrics();
        let h = swarm
            .peer_mut(publisher)
            .runtime
            .instantiate_def(&samples::topic_event_def(0, "pub"), &[])
            .unwrap();
        swarm
            .route_object(publisher, &Value::Obj(h), PayloadFormat::Binary)
            .unwrap();
        swarm.flush_wire();
        sizes.push(swarm.metrics().kind("object").bytes);
    }
    let (xml, ptib) = (sizes[0], sizes[1]);
    assert!(
        2 * ptib <= xml,
        "binary envelope {ptib} B vs xml {xml} B: expected >=2x reduction"
    );
}

#[test]
fn xml_envelopes_remain_a_decode_fallback() {
    // A sender pinned to the XML wire form (the cross-language
    // configuration) interoperates with a default receiver: dispatch
    // sniffs the magic and falls back to XML parsing.
    let (mut swarm, publisher, subs) = routed_fixture(1);
    swarm.set_envelope_wire_format(EnvelopeWireFormat::Xml);
    let v = samples::make_person(&mut swarm.peer_mut(publisher).runtime, "via-xml");
    swarm
        .route_object(publisher, &v, PayloadFormat::Binary)
        .unwrap();
    swarm.run().unwrap();
    let deliveries = swarm.peer_mut(subs[0]).take_deliveries();
    assert_eq!(deliveries.len(), 1);
    assert!(deliveries[0].is_accepted());
}

#[test]
fn one_publish_encodes_once_and_shares_across_the_fanout() {
    const SUBS: usize = 8;
    const EVENTS: usize = 5;
    let (mut swarm, publisher, subs) = routed_fixture(SUBS);
    // Warm the protocol (desc/asm exchange) so the measured publishes
    // are steady-state.
    let v = samples::make_person(&mut swarm.peer_mut(publisher).runtime, "warmup");
    swarm
        .route_object(publisher, &v, PayloadFormat::Binary)
        .unwrap();
    swarm.run().unwrap();
    swarm.reset_metrics();

    for i in 0..EVENTS {
        let v = samples::make_person(
            &mut swarm.peer_mut(publisher).runtime,
            &format!("shared-{i}"),
        );
        let routed = swarm
            .route_object(publisher, &v, PayloadFormat::Binary)
            .unwrap();
        assert_eq!(routed, SUBS);
    }
    swarm.run().unwrap();

    let m = swarm.metrics();
    // One encode per publish — not one per destination.
    assert_eq!(m.payload_encodes, EVENTS as u64, "encodes == publishes");
    // Every subscriber still received every event.
    for s in &subs {
        assert_eq!(swarm.peer(*s).stats.accepted, EVENTS as u64 + 1);
    }
    // The object envelopes that crossed the wire: EVENTS per subscriber,
    // attributed across standalone and batched frames.
    assert_eq!(m.attributed("object").messages, (EVENTS * SUBS) as u64);
}

#[test]
fn payload_fanout_is_refcounted_not_copied() {
    // Structural proof at the fabric level: the same Payload handed to
    // N SimNet sends is shared by all inboxes.
    let mut net = SimNet::new(NetConfig::default());
    for p in 1..=9u32 {
        net.register(PeerId(p));
    }
    let payload = Payload::from(vec![0xCD; 4096]);
    for p in 2..=9u32 {
        net.send(PeerId(1), PeerId(p), "object", payload.clone())
            .unwrap();
    }
    // 8 queued messages + our handle = 9 owners of ONE buffer.
    assert_eq!(payload.ref_count(), 9);
    let first = net.recv(PeerId(2)).unwrap();
    assert_eq!(
        first.payload.as_slice().as_ptr(),
        payload.as_slice().as_ptr(),
        "delivered bytes are the sender's buffer, not a copy"
    );
}

#[test]
fn batched_object_frames_attribute_their_bytes_to_object() {
    let (mut swarm, publisher, subs) = routed_fixture(1);
    let v = samples::make_person(&mut swarm.peer_mut(publisher).runtime, "warm");
    swarm
        .route_object(publisher, &v, PayloadFormat::Binary)
        .unwrap();
    swarm.run().unwrap();
    swarm.reset_metrics();
    // A burst of 6 publishes coalesces into one batch on the link...
    for i in 0..6 {
        let v = samples::make_person(&mut swarm.peer_mut(publisher).runtime, &format!("b{i}"));
        swarm
            .route_object(publisher, &v, PayloadFormat::Binary)
            .unwrap();
    }
    swarm.run().unwrap();
    let m = swarm.metrics();
    assert_eq!(m.kind("object").messages, 0, "nothing standalone");
    assert_eq!(m.link(publisher, subs[0]).batches, 1);
    // ...and the attribution overlay still splits the bytes by kind.
    assert_eq!(m.batched_kind("object").messages, 6);
    assert!(m.batched_kind("object").bytes > 0);
    assert!(
        m.batched_kind("object").bytes <= m.kind("batch").bytes,
        "attribution is a subset of the batch bytes"
    );
}

#[test]
fn route_cache_follows_subscribe_unsubscribe_and_migration() {
    // The memoized resolve must never serve stale fan-outs.
    let (mut swarm, publisher, subs) = routed_fixture(2);
    let v = samples::make_person(&mut swarm.peer_mut(publisher).runtime, "r1");
    assert_eq!(
        swarm
            .route_object(publisher, &v, PayloadFormat::Binary)
            .unwrap(),
        2
    );
    swarm.run().unwrap();
    // Retract one interest: the cached set refreshes.
    let interest = samples::person_vendor_b().guid;
    assert!(swarm.unsubscribe(subs[0], interest));
    let v = samples::make_person(&mut swarm.peer_mut(publisher).runtime, "r2");
    assert_eq!(
        swarm
            .route_object(publisher, &v, PayloadFormat::Binary)
            .unwrap(),
        1
    );
    swarm.run().unwrap();
    // Remove the remaining subscriber entirely.
    swarm.remove_peer(subs[1]);
    let v = samples::make_person(&mut swarm.peer_mut(publisher).runtime, "r3");
    assert_eq!(
        swarm
            .route_object(publisher, &v, PayloadFormat::Binary)
            .unwrap(),
        0
    );
}

#[test]
fn route_object_surfaces_provenance_errors_even_with_no_subscribers() {
    // A publish to nobody must still flag a developer error (unpublished
    // type) immediately — not succeed silently until the first
    // subscriber happens to arrive.
    let mut swarm = Swarm::new(NetConfig::default());
    let publisher = swarm.add_peer(ConformanceConfig::pragmatic());
    let def = samples::person_vendor_a();
    swarm
        .peer_mut(publisher)
        .runtime
        .register_type(def.clone())
        .unwrap();
    let h = swarm
        .peer_mut(publisher)
        .runtime
        .instantiate(&"Person".into(), &[Value::from("x")])
        .unwrap();
    let err = swarm
        .route_object(publisher, &Value::Obj(h), PayloadFormat::Binary)
        .unwrap_err();
    assert!(
        matches!(err, TransportError::NoProvenance(_)),
        "got {err:?}"
    );
}

#[test]
fn hostile_eager_length_prefix_is_rejected() {
    let mut swarm = Swarm::new(NetConfig::default());
    let alice = swarm.add_peer(ConformanceConfig::pragmatic());
    let bob = swarm.add_peer(ConformanceConfig::pragmatic());
    // Claims a u32::MAX-byte envelope inside a 12-byte message.
    let mut evil = u32::MAX.to_le_bytes().to_vec();
    evil.extend_from_slice(&[0u8; 8]);
    swarm.send_raw(alice, bob, "eager-object", evil).unwrap();
    swarm.run().unwrap();
    let errs = swarm.take_dispatch_errors();
    assert_eq!(errs.len(), 1, "{errs:?}");
    assert!(matches!(errs[0].1, TransportError::Protocol(_)), "{errs:?}");
    // Too short for even the prefix.
    swarm
        .send_raw(alice, bob, "eager-object", vec![1, 2])
        .unwrap();
    swarm.run().unwrap();
    assert!(!swarm.take_dispatch_errors().is_empty());
}

#[test]
fn live_fabric_parity_with_binary_wire_format() {
    // The same routed scenario over LiveBus: binary envelopes, shared
    // fan-out, identical delivery decisions.
    use std::time::Duration;
    let bus = LiveBus::new();
    let code = CodeRegistry::new();
    let mut pub_swarm = Swarm::with_code_registry(bus.clone(), code.clone());
    let publisher = pub_swarm.add_peer_as(PeerId(1), ConformanceConfig::pragmatic());
    pub_swarm
        .publish(
            publisher,
            samples::person_assembly(&samples::person_vendor_a()),
        )
        .unwrap();
    let mut sub_swarm = Swarm::with_code_registry(bus.clone(), code);
    let subscriber = sub_swarm.add_peer_as(PeerId(2), ConformanceConfig::pragmatic());
    sub_swarm.join(publisher).unwrap();
    sub_swarm.subscribe(
        subscriber,
        TypeDescription::from_def(&samples::person_vendor_b()),
    );
    for _ in 0..4 {
        pub_swarm.run_for(Duration::from_millis(5)).unwrap();
        sub_swarm.run_for(Duration::from_millis(5)).unwrap();
    }
    let v = samples::make_person(&mut pub_swarm.peer_mut(publisher).runtime, "live-binary");
    assert_eq!(
        pub_swarm
            .route_object(publisher, &v, PayloadFormat::Binary)
            .unwrap(),
        1
    );
    for _ in 0..4 {
        pub_swarm.run_for(Duration::from_millis(5)).unwrap();
        sub_swarm.run_for(Duration::from_millis(5)).unwrap();
    }
    assert_eq!(sub_swarm.peer(subscriber).stats.accepted, 1);
    assert_eq!(LiveBus::metrics(&bus).payload_encodes, 1);
}
