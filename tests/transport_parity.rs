//! SimNet/LiveBus parity: the generic `Swarm<T: Transport>` must make
//! identical protocol decisions on both fabrics.
//!
//! The same publish/subscribe scenario — a publisher with a mixed
//! population of conformant and non-conformant event types, a subscriber
//! with one interest — runs once over `Swarm<SimNet>` and once over
//! `Swarm<LiveBus>` *through the same generic function*, and every
//! observable decision (accept/reject sequence, desc/asm request
//! counts, per-kind message counts) must agree.

use pti_core::prelude::*;
use pti_core::samples;

/// What a run of the scenario observed, fabric-independent.
#[derive(Debug, PartialEq, Eq)]
struct Outcome {
    /// Accept (true) / reject (false) per delivery, in delivery order.
    decisions: Vec<(String, bool)>,
    desc_requests: u64,
    asm_requests: u64,
    accepted: u64,
    rejected: u64,
    object_messages: u64,
    desc_response_messages: u64,
    asm_response_messages: u64,
}

/// The scenario, written once against the transport-agnostic API.
fn run_scenario<T: Transport>(mut swarm: Swarm<T>) -> Outcome {
    let publisher = swarm.add_peer(ConformanceConfig::pragmatic());
    let subscriber = swarm.add_peer(ConformanceConfig::pragmatic());

    let interest = samples::sensor_interest("subscriber");
    swarm
        .peer_mut(subscriber)
        .subscribe(TypeDescription::from_def(&interest));

    // A deterministic mixed population: conformant and non-conformant
    // variants, each published and sent twice (the repeat exercises the
    // "already known" fast path on both fabrics).
    let variants = samples::generate_population(11, 6, 0.5);
    for v in &variants {
        swarm.publish(publisher, v.assembly.clone()).unwrap();
    }
    for round in 0..2 {
        for v in &variants {
            let h = swarm
                .peer_mut(publisher)
                .runtime
                .instantiate_def(&v.def, &[])
                .unwrap();
            swarm
                .send_object(publisher, subscriber, &Value::Obj(h), PayloadFormat::Binary)
                .unwrap();
            let _ = round;
        }
        // Drain after each round so decisions interleave identically.
        swarm.run().unwrap();
    }

    let decisions = swarm
        .peer_mut(subscriber)
        .take_deliveries()
        .into_iter()
        .map(|d| match d {
            Delivery::Accepted { value, .. } => {
                let name = match value {
                    Value::Obj(h) => {
                        let peer = swarm.peer(subscriber);
                        peer.runtime.type_of(h).unwrap().name.full().to_string()
                    }
                    other => other.kind_name().to_string(),
                };
                (name, true)
            }
            Delivery::Rejected { type_name, .. } => (type_name.full().to_string(), false),
        })
        .collect();

    let stats = swarm.peer(subscriber).stats;
    let m = swarm.metrics();
    Outcome {
        decisions,
        desc_requests: stats.desc_requests,
        asm_requests: stats.asm_requests,
        accepted: stats.accepted,
        rejected: stats.rejected,
        object_messages: m.kind("object").messages,
        desc_response_messages: m.kind("desc-response").messages,
        asm_response_messages: m.kind("asm-response").messages,
    }
}

#[test]
fn same_scenario_same_decisions_on_both_fabrics() {
    let sim = run_scenario(Swarm::new(NetConfig::default()));
    let live = run_scenario(Swarm::over(LiveBus::new()));

    assert_eq!(
        sim, live,
        "SimNet and LiveBus runs must agree on every decision"
    );
    // Sanity: the scenario actually exercised both paths.
    assert!(sim.accepted > 0, "some variants conform: {sim:?}");
    assert!(sim.rejected > 0, "some variants do not conform: {sim:?}");
    assert!(sim.asm_requests > 0 && sim.desc_requests > 0);
    assert_eq!(sim.object_messages, 12, "6 variants x 2 rounds");
}

#[test]
fn aliases_name_the_two_canonical_swarms() {
    // Type-level check: the aliases stay wired to the right fabrics.
    let _sim: SimSwarm = Swarm::new(NetConfig::default());
    let _live: LiveSwarm = Swarm::over(LiveBus::new());
}
