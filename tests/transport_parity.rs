//! SimNet/LiveBus/ReactorNet parity: the generic `Swarm<T: Transport>`
//! must make identical protocol decisions on every fabric.
//!
//! The same publish/subscribe scenario — a publisher with a mixed
//! population of conformant and non-conformant event types, a subscriber
//! with one interest — runs over `Swarm<SimNet>`, `Swarm<LiveBus>` and
//! `Swarm<ReactorNet>` *through the same generic function*, and every
//! observable decision (accept/reject sequence, desc/asm request
//! counts, per-kind message counts) must agree.

use pti_core::prelude::*;
use pti_core::samples;

/// What a run of the scenario observed, fabric-independent.
#[derive(Debug, PartialEq, Eq)]
struct Outcome {
    /// Accept (true) / reject (false) per delivery, in delivery order.
    decisions: Vec<(String, bool)>,
    desc_requests: u64,
    asm_requests: u64,
    accepted: u64,
    rejected: u64,
    object_messages: u64,
    desc_response_messages: u64,
    asm_response_messages: u64,
}

/// The scenario, written once against the transport-agnostic API.
fn run_scenario<T: Transport>(mut swarm: Swarm<T>) -> Outcome {
    let publisher = swarm.add_peer(ConformanceConfig::pragmatic());
    let subscriber = swarm.add_peer(ConformanceConfig::pragmatic());

    let interest = samples::sensor_interest("subscriber");
    swarm
        .peer_mut(subscriber)
        .subscribe(TypeDescription::from_def(&interest));

    // A deterministic mixed population: conformant and non-conformant
    // variants, each published and sent twice (the repeat exercises the
    // "already known" fast path on both fabrics).
    let variants = samples::generate_population(11, 6, 0.5);
    for v in &variants {
        swarm.publish(publisher, v.assembly.clone()).unwrap();
    }
    for round in 0..2 {
        for v in &variants {
            let h = swarm
                .peer_mut(publisher)
                .runtime
                .instantiate_def(&v.def, &[])
                .unwrap();
            swarm
                .send_object(publisher, subscriber, &Value::Obj(h), PayloadFormat::Binary)
                .unwrap();
            let _ = round;
        }
        // Drain after each round so decisions interleave identically.
        swarm.run().unwrap();
    }

    let decisions = swarm
        .peer_mut(subscriber)
        .take_deliveries()
        .into_iter()
        .map(|d| match d {
            Delivery::Accepted { value, .. } => {
                let name = match value {
                    Value::Obj(h) => {
                        let peer = swarm.peer(subscriber);
                        peer.runtime.type_of(h).unwrap().name.full().to_string()
                    }
                    other => other.kind_name().to_string(),
                };
                (name, true)
            }
            Delivery::Rejected { type_name, .. } => (type_name.full().to_string(), false),
        })
        .collect();

    let stats = swarm.peer(subscriber).stats;
    let m = swarm.metrics();
    Outcome {
        decisions,
        desc_requests: stats.desc_requests,
        asm_requests: stats.asm_requests,
        accepted: stats.accepted,
        rejected: stats.rejected,
        object_messages: m.kind("object").messages,
        desc_response_messages: m.kind("desc-response").messages,
        asm_response_messages: m.kind("asm-response").messages,
    }
}

/// The same scenario split across **two shards** of a `ShardedHost`:
/// the publisher's swarm pinned to shard 0, the subscriber's to shard 1,
/// so every object, desc and asm exchange crosses a bridge. The
/// decisions and the merged traffic counters must match the
/// single-fabric runs exactly.
fn run_scenario_sharded() -> Outcome {
    let mut host = ShardedHost::new(2);
    host.set_autonomous(false);
    let code = CodeRegistry::new();
    let pub_slot = {
        let code = code.clone();
        host.mount_pinned(0, move |net| Swarm::with_code_registry(net, code))
    };
    let sub_slot = {
        let code = code.clone();
        host.mount_pinned(1, move |net| Swarm::with_code_registry(net, code))
    };
    let publisher = host.with_swarm(pub_slot, |s| {
        s.add_peer_as(PeerId(1), ConformanceConfig::pragmatic())
    });
    let subscriber = host.with_swarm(sub_slot, |s| {
        s.add_peer_as(PeerId(2), ConformanceConfig::pragmatic())
    });
    assert_eq!(host.owner_of(publisher), Some(0));
    assert_eq!(host.owner_of(subscriber), Some(1));
    host.with_swarm(sub_slot, move |s| {
        let interest = samples::sensor_interest("subscriber");
        s.peer_mut(subscriber)
            .subscribe(TypeDescription::from_def(&interest));
    });

    // Same deterministic population as `run_scenario` (the generator is
    // seed-free), regenerated inside each closure: the samples stay on
    // the shard that uses them.
    host.with_swarm(pub_slot, move |s| {
        for v in &samples::generate_population(11, 6, 0.5) {
            s.publish(publisher, v.assembly.clone()).unwrap();
        }
    });
    for _round in 0..2 {
        host.with_swarm(pub_slot, move |s| {
            for v in &samples::generate_population(11, 6, 0.5) {
                let h = s
                    .peer_mut(publisher)
                    .runtime
                    .instantiate_def(&v.def, &[])
                    .unwrap();
                s.send_object(publisher, subscriber, &Value::Obj(h), PayloadFormat::Binary)
                    .unwrap();
            }
        });
        // Drain after each round so decisions interleave identically.
        host.run_until_quiescent().unwrap();
    }

    let (decisions, stats) = host.with_swarm(sub_slot, move |s| {
        let decisions: Vec<(String, bool)> = s
            .peer_mut(subscriber)
            .take_deliveries()
            .into_iter()
            .map(|d| match d {
                Delivery::Accepted { value, .. } => {
                    let name = match value {
                        Value::Obj(h) => {
                            let peer = s.peer(subscriber);
                            peer.runtime.type_of(h).unwrap().name.full().to_string()
                        }
                        other => other.kind_name().to_string(),
                    };
                    (name, true)
                }
                Delivery::Rejected { type_name, .. } => (type_name.full().to_string(), false),
            })
            .collect();
        (decisions, s.peer(subscriber).stats)
    });

    let m = host.metrics();
    assert!(
        m.bridge_crossings > 0,
        "a split-shard run must actually cross the bridge"
    );
    Outcome {
        decisions,
        desc_requests: stats.desc_requests,
        asm_requests: stats.asm_requests,
        accepted: stats.accepted,
        rejected: stats.rejected,
        object_messages: m.kind("object").messages,
        desc_response_messages: m.kind("desc-response").messages,
        asm_response_messages: m.kind("asm-response").messages,
    }
}

#[test]
fn same_scenario_same_decisions_on_both_fabrics() {
    let sim = run_scenario(Swarm::new(NetConfig::default()));
    let live = run_scenario(Swarm::over(LiveBus::new()));
    let reactor = run_scenario(Swarm::over(ReactorNet::new()));
    let sharded = run_scenario_sharded();

    assert_eq!(
        sim, live,
        "SimNet and LiveBus runs must agree on every decision"
    );
    assert_eq!(
        sim, reactor,
        "the reactor fabric must agree with SimNet on every decision"
    );
    assert_eq!(
        sim, sharded,
        "two bridged shards must agree with SimNet on every decision"
    );
    // Sanity: the scenario actually exercised both paths.
    assert!(sim.accepted > 0, "some variants conform: {sim:?}");
    assert!(sim.rejected > 0, "some variants do not conform: {sim:?}");
    assert!(sim.asm_requests > 0 && sim.desc_requests > 0);
    assert_eq!(sim.object_messages, 12, "6 variants x 2 rounds");
}

/// What a *routed* run observed, fabric-independent: who each publish
/// was routed to, what each subscriber accepted, and how the wire was
/// used (object vs coalesced batch messages, per-link frame counts).
#[derive(Debug, PartialEq, Eq)]
struct RoutedOutcome {
    /// Subscriber count each publish resolved to, in publish order.
    routed_to: Vec<usize>,
    /// Accepted events per subscriber (s1, s2, s3).
    accepted: (u64, u64, u64),
    /// Received objects per subscriber — with routing, a non-matching
    /// signature means the event never even crossed the link.
    received: (u64, u64, u64),
    object_messages: u64,
    batch_messages: u64,
    batched_frames: u64,
    /// Per-link frames on the publisher→s1 link.
    s1_link_frames: u64,
    /// Routed target count after s1 retracted its interest.
    routed_after_unsubscribe: usize,
    /// s1's received count after retraction (must not grow).
    s1_received_after_unsubscribe: u64,
}

/// The routed scenario, written once against the transport-agnostic API:
/// one publisher, two subscribers interested in `SensorReading`, one in
/// an unrelated type; then one of the sensor subscribers retracts.
fn run_routed_scenario<T: Transport>(mut swarm: Swarm<T>) -> RoutedOutcome {
    let publisher = swarm.add_peer(ConformanceConfig::pragmatic());
    let s1 = swarm.add_peer(ConformanceConfig::pragmatic());
    let s2 = swarm.add_peer(ConformanceConfig::pragmatic());
    let s3 = swarm.add_peer(ConformanceConfig::pragmatic());

    let s1_interest = TypeDescription::from_def(&samples::sensor_interest("s1"));
    let s1_guid = s1_interest.guid;
    swarm.subscribe(s1, s1_interest);
    let unrelated = TypeDef::class("AuditRecord", "s2")
        .field("value", primitives::FLOAT64)
        .build();
    swarm.subscribe(s2, TypeDescription::from_def(&unrelated));
    swarm.subscribe(
        s3,
        TypeDescription::from_def(&samples::sensor_interest("s3")),
    );

    let event = samples::generate_population(3, 1, 1.0).remove(0);
    swarm.publish(publisher, event.assembly.clone()).unwrap();

    let mut routed_to = Vec::new();
    for _ in 0..3 {
        let h = swarm
            .peer_mut(publisher)
            .runtime
            .instantiate_def(&event.def, &[])
            .unwrap();
        routed_to.push(
            swarm
                .route_object(publisher, &Value::Obj(h), PayloadFormat::Binary)
                .unwrap(),
        );
    }
    swarm.run().unwrap();

    let accepted = (
        swarm.peer(s1).stats.accepted,
        swarm.peer(s2).stats.accepted,
        swarm.peer(s3).stats.accepted,
    );
    let received = (
        swarm.peer(s1).stats.objects_received,
        swarm.peer(s2).stats.objects_received,
        swarm.peer(s3).stats.objects_received,
    );

    // s1 retracts: the router must stop targeting it on both fabrics.
    assert!(swarm.unsubscribe(s1, s1_guid));
    let h = swarm
        .peer_mut(publisher)
        .runtime
        .instantiate_def(&event.def, &[])
        .unwrap();
    let routed_after_unsubscribe = swarm
        .route_object(publisher, &Value::Obj(h), PayloadFormat::Binary)
        .unwrap();
    swarm.run().unwrap();

    // The post-retraction publish was a single frame, so it travelled as
    // a plain `object` message; every batch counter below is from the
    // three-event burst.
    let m = swarm.metrics();
    RoutedOutcome {
        routed_to,
        accepted,
        received,
        object_messages: m.kind("object").messages,
        batch_messages: m.kind("batch").messages,
        batched_frames: m.batched_frames(),
        s1_link_frames: m.link(publisher, s1).frames,
        routed_after_unsubscribe,
        s1_received_after_unsubscribe: swarm.peer(s1).stats.objects_received,
    }
}

#[test]
fn routing_decisions_agree_on_both_fabrics_including_after_unsubscribe() {
    let sim = run_routed_scenario(Swarm::new(NetConfig::default()));
    let live = run_routed_scenario(Swarm::over(LiveBus::new()));
    let reactor = run_routed_scenario(Swarm::over(ReactorNet::new()));

    assert_eq!(
        sim, live,
        "SimNet and LiveBus must make identical routing decisions"
    );
    assert_eq!(
        sim, reactor,
        "the reactor fabric must make identical routing decisions"
    );
    // Each publish resolved exactly the two sensor subscribers...
    assert_eq!(sim.routed_to, vec![2, 2, 2]);
    assert_eq!(sim.accepted, (3, 0, 3));
    // ...the unrelated-interest subscriber never saw a single object...
    assert_eq!(sim.received, (3, 0, 3));
    // ...the three queued envelopes per link coalesced into one batch
    // per subscriber link...
    assert_eq!(sim.batch_messages, 2);
    assert_eq!(sim.batched_frames, 6);
    assert_eq!(sim.s1_link_frames, 3);
    assert_eq!(sim.object_messages, 1, "post-retraction publish to s3 only");
    // ...and after s1's retraction only s3 remains a target.
    assert_eq!(sim.routed_after_unsubscribe, 1);
    assert_eq!(
        sim.s1_received_after_unsubscribe, 3,
        "no delivery after unsubscribe"
    );
}

#[test]
fn aliases_name_the_canonical_swarms() {
    // Type-level check: the aliases stay wired to the right fabrics.
    let _sim: SimSwarm = Swarm::new(NetConfig::default());
    let _live: LiveSwarm = Swarm::over(LiveBus::new());
    let _reactor: ReactorSwarm = Swarm::over(ReactorNet::new());
}
