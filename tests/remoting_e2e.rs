//! Pass-by-reference integration: remote references, conformant remote
//! proxies, and the interplay with pass-by-value.

use pti_core::prelude::*;
use pti_core::samples;
use pti_metamodel::bodies;

fn counter_assembly(salt: &str, bump_name: &str) -> (TypeDef, Assembly) {
    let def = TypeDef::class("Counter", salt)
        .field("count", primitives::INT64)
        .method(
            bump_name,
            vec![ParamDef::new("by", primitives::INT64)],
            primitives::INT64,
        )
        .method("getCount", vec![], primitives::INT64)
        .ctor(vec![])
        .build();
    let g = def.guid;
    let asm = Assembly::builder(format!("counter-{salt}"))
        .ty(def.clone())
        .body(
            g,
            bump_name,
            1,
            std::sync::Arc::new(|rt: &mut Runtime, recv: Value, args: &[Value]| {
                let h = recv.as_obj()?;
                let c = rt.get_field(h, "count")?.as_i64()? + args[0].as_i64()?;
                rt.set_field(h, "count", Value::I64(c))?;
                Ok(Value::I64(c))
            }),
        )
        .body(g, "getCount", 0, bodies::getter("count"))
        .ctor_body(g, 0, bodies::ctor_assign(&[]))
        .build();
    (def, asm)
}

#[test]
fn remote_counter_keeps_state_on_owner() {
    let mut swarm = Swarm::new(NetConfig::default());
    let owner = swarm.add_peer(ConformanceConfig::pragmatic());
    let client = swarm.add_peer(ConformanceConfig::pragmatic());
    let (_, asm) = counter_assembly("owner", "addToCount");
    swarm.publish(owner, asm).unwrap();
    // Client's view: `add` instead of `addToCount`.
    let (client_def, _) = counter_assembly("client", "add");
    swarm
        .peer_mut(client)
        .subscribe(TypeDescription::from_def(&client_def));

    let h = swarm
        .peer_mut(owner)
        .runtime
        .instantiate(&"Counter".into(), &[])
        .unwrap();
    let mut fabric = RemotingFabric::new();
    let rref = fabric.export(&swarm, owner, h).unwrap();
    fabric.offer(&mut swarm, owner, client, &rref).unwrap();
    fabric.run(&mut swarm).unwrap();
    let proxy = fabric.take_proxies(client).pop().expect("conformant");

    for i in 1..=5i64 {
        let total = fabric
            .invoke(&mut swarm, client, &proxy, "add", &[Value::I64(i)])
            .unwrap();
        assert_eq!(total.as_i64().unwrap(), (1..=i).sum::<i64>());
    }
    // Owner sees accumulated state directly.
    assert_eq!(
        swarm
            .peer_mut(owner)
            .runtime
            .get_field(h, "count")
            .unwrap()
            .as_i64()
            .unwrap(),
        15
    );
}

#[test]
fn two_clients_share_one_remote_object() {
    let mut swarm = Swarm::new(NetConfig::default());
    let owner = swarm.add_peer(ConformanceConfig::pragmatic());
    let c1 = swarm.add_peer(ConformanceConfig::pragmatic());
    let c2 = swarm.add_peer(ConformanceConfig::pragmatic());
    let (_, asm) = counter_assembly("owner", "add");
    swarm.publish(owner, asm).unwrap();
    let (view, _) = counter_assembly("view", "add");
    let desc = TypeDescription::from_def(&view);
    swarm.peer_mut(c1).subscribe(desc.clone());
    swarm.peer_mut(c2).subscribe(desc);

    let h = swarm
        .peer_mut(owner)
        .runtime
        .instantiate(&"Counter".into(), &[])
        .unwrap();
    let mut fabric = RemotingFabric::new();
    let rref = fabric.export(&swarm, owner, h).unwrap();
    fabric.offer(&mut swarm, owner, c1, &rref).unwrap();
    fabric.offer(&mut swarm, owner, c2, &rref).unwrap();
    fabric.run(&mut swarm).unwrap();
    let p1 = fabric.take_proxies(c1).pop().unwrap();
    let p2 = fabric.take_proxies(c2).pop().unwrap();

    fabric
        .invoke(&mut swarm, c1, &p1, "add", &[Value::I64(10)])
        .unwrap();
    let seen_by_c2 = fabric
        .invoke(&mut swarm, c2, &p2, "add", &[Value::I64(1)])
        .unwrap();
    assert_eq!(
        seen_by_c2.as_i64().unwrap(),
        11,
        "c2 observes c1's mutation"
    );
}

#[test]
fn value_and_reference_semantics_differ_observably() {
    // Same Person object: ship a copy by value AND a reference; mutate
    // through the reference; the copy stays stale.
    let mut swarm = Swarm::new(NetConfig::default());
    let owner = swarm.add_peer(ConformanceConfig::pragmatic());
    let client = swarm.add_peer(ConformanceConfig::pragmatic());
    let a = samples::person_vendor_a();
    swarm.publish(owner, samples::person_assembly(&a)).unwrap();
    let b = samples::person_vendor_b();
    swarm
        .peer_mut(client)
        .subscribe(TypeDescription::from_def(&b));

    let v = samples::make_person(&mut swarm.peer_mut(owner).runtime, "v1");
    let h = v.as_obj().unwrap();

    // By value:
    swarm
        .send_object(owner, client, &v, PayloadFormat::Binary)
        .unwrap();
    swarm.run().unwrap();
    let ds = swarm.peer_mut(client).take_deliveries();
    let Delivery::Accepted { value: copied, .. } = &ds[0] else {
        panic!()
    };
    let copied = copied.as_obj().unwrap();

    // By reference:
    let mut fabric = RemotingFabric::new();
    let rref = fabric.export(&swarm, owner, h).unwrap();
    fabric.offer(&mut swarm, owner, client, &rref).unwrap();
    fabric.run(&mut swarm).unwrap();
    let proxy = fabric.take_proxies(client).pop().unwrap();

    // Mutate through the reference.
    fabric
        .invoke(
            &mut swarm,
            client,
            &proxy,
            "setPersonName",
            &[Value::from("v2")],
        )
        .unwrap();
    let via_ref = fabric
        .invoke(&mut swarm, client, &proxy, "getPersonName", &[])
        .unwrap();
    assert_eq!(via_ref.as_str().unwrap(), "v2");
    // The by-value copy is unaffected.
    assert_eq!(
        swarm
            .peer_mut(client)
            .runtime
            .get_field(copied, "name")
            .unwrap()
            .as_str()
            .unwrap(),
        "v1"
    );
}

#[test]
fn market_full_cycle_with_many_resources() {
    let mut market = Market::new(NetConfig::default());
    let lender = market.add_peer(ConformanceConfig::pragmatic());
    let borrower = market.add_peer(ConformanceConfig::pragmatic());
    let (_, asm) = counter_assembly("lender", "addToCount");
    market.publish(lender, asm).unwrap();
    let mut ids = Vec::new();
    for _ in 0..3 {
        let h = market
            .peer_mut(lender)
            .runtime
            .instantiate(&"Counter".into(), &[])
            .unwrap();
        ids.push(market.lend(lender, h).unwrap());
    }
    let (view, _) = counter_assembly("borrower", "add");
    let desc = TypeDescription::from_def(&view);
    // Borrow all three.
    let b1 = market.borrow(borrower, &desc).unwrap().unwrap();
    let b2 = market.borrow(borrower, &desc).unwrap().unwrap();
    let b3 = market.borrow(borrower, &desc).unwrap().unwrap();
    assert!(
        market.borrow(borrower, &desc).unwrap().is_none(),
        "pool exhausted"
    );
    assert_ne!(b1.lending_id, b2.lending_id);
    assert_ne!(b2.lending_id, b3.lending_id);
    // Each borrowed counter is independent.
    market
        .invoke(borrower, &b1, "add", &[Value::I64(1)])
        .unwrap();
    market
        .invoke(borrower, &b2, "add", &[Value::I64(2)])
        .unwrap();
    let c1 = market.invoke(borrower, &b1, "getCount", &[]).unwrap();
    let c2 = market.invoke(borrower, &b2, "getCount", &[]).unwrap();
    let c3 = market.invoke(borrower, &b3, "getCount", &[]).unwrap();
    assert_eq!(
        (
            c1.as_i64().unwrap(),
            c2.as_i64().unwrap(),
            c3.as_i64().unwrap()
        ),
        (1, 2, 0)
    );
}

#[test]
fn remoting_pump_flushes_routed_publishes() {
    // The remoting pump replaces Swarm::run; frames queued by the routed
    // publish path must still reach the wire through it.
    let mut swarm = Swarm::new(NetConfig::default());
    let publisher = swarm.add_peer(ConformanceConfig::pragmatic());
    let subscriber = swarm.add_peer(ConformanceConfig::pragmatic());

    let a_def = samples::person_vendor_a();
    swarm
        .publish(publisher, samples::person_assembly(&a_def))
        .unwrap();
    swarm.subscribe(
        subscriber,
        TypeDescription::from_def(&samples::person_vendor_b()),
    );

    let v = samples::make_person(&mut swarm.peer_mut(publisher).runtime, "via-remoting");
    let routed = swarm
        .route_object(publisher, &v, PayloadFormat::Binary)
        .unwrap();
    assert_eq!(routed, 1);

    let mut fabric = RemotingFabric::new();
    fabric.run(&mut swarm).unwrap();

    let deliveries = swarm.peer_mut(subscriber).take_deliveries();
    assert_eq!(deliveries.len(), 1, "routed frame flushed by the pump");
    assert!(deliveries[0].is_accepted());
}
