//! Membership acceptance: a swarm that joins *after* interests were
//! gossiped must resolve the identical subscriber set a founding swarm
//! resolves — with zero manual `add_contact` wiring — on both fabrics
//! (`SharedSimNet` virtual-time, `LiveBus` threads); and a burst beyond
//! the wire-batch cap must ship as multiple bounded batches with no
//! frame loss.

use std::time::Duration;

use pti_core::prelude::*;
use pti_core::samples;

/// Drives every swarm in turn until one full sweep moves no traffic on
/// the shared fabric — the multi-swarm pump both fabrics accept.
fn pump<T: Transport>(swarms: &mut [&mut Swarm<T>]) {
    let mut last = u64::MAX;
    loop {
        for s in swarms.iter_mut() {
            s.run_for(Duration::from_millis(20)).unwrap();
        }
        let now = swarms[0].metrics().messages;
        if now == last {
            return;
        }
        last = now;
    }
}

/// What the late-join scenario observed, fabric-independent.
#[derive(Debug, PartialEq, Eq)]
struct LateJoinOutcome {
    /// Subscriber set a *founding* swarm resolves for the event type.
    founder_resolves: Vec<PeerId>,
    /// Subscriber set the *late joiner* resolves — must be identical.
    joiner_resolves: Vec<PeerId>,
    /// Contacts the joiner converged to, all learned via gossip.
    joiner_contacts: Vec<PeerId>,
    /// Live members in the joiner's view.
    joiner_view: usize,
    /// How many subscribers the joiner's publish was routed to.
    routed_to: usize,
    /// Events accepted at the founders' subscribers (peers 2 and 3).
    accepted: (u64, u64),
    /// Targets of a publish after one subscriber swarm left the group.
    routed_after_leave: usize,
}

/// Three swarms on one shared fabric, no manual `add_contact` anywhere:
///
/// * swarm A (peers 1, 2) — founder; peer 2 subscribes.
/// * swarm B (peer 3) — subscribes *before* joining through peer 1, so
///   its interest rides the JOIN announcement.
/// * swarm C (peer 4) — joins *after* all interest gossip settled, then
///   publishes. The VIEW reply's interest re-announcement is the only
///   way C can learn who subscribes.
fn run_late_join<T: Transport>(fabrics: (T, T, T)) -> LateJoinOutcome {
    let (fa, fb, fc) = fabrics;
    let code = CodeRegistry::new();
    let mut a: Swarm<T> = Swarm::with_code_registry(fa, code.clone());
    let mut b: Swarm<T> = Swarm::with_code_registry(fb, code.clone());
    let mut c: Swarm<T> = Swarm::with_code_registry(fc, code);

    let p1 = a.add_peer_as(PeerId(1), ConformanceConfig::pragmatic());
    let p2 = a.add_peer_as(PeerId(2), ConformanceConfig::pragmatic());
    let p3 = b.add_peer_as(PeerId(3), ConformanceConfig::pragmatic());
    let p4 = c.add_peer_as(PeerId(4), ConformanceConfig::pragmatic());

    a.subscribe(
        p2,
        TypeDescription::from_def(&samples::sensor_interest("s2")),
    );
    // B subscribes first, then joins: the interest must ride the JOIN.
    b.subscribe(
        p3,
        TypeDescription::from_def(&samples::sensor_interest("s3")),
    );
    b.join(p1).unwrap();
    pump(&mut [&mut a, &mut b]);

    // The group is converged; C arrives late. Everything C learns —
    // members and interests — comes from the VIEW handshake.
    c.join(p1).unwrap();
    pump(&mut [&mut a, &mut b, &mut c]);
    let joiner_contacts = c.contacts();
    let joiner_view = c.membership().len();

    let event = samples::generate_population(3, 1, 1.0).remove(0);
    c.publish(p4, event.assembly.clone()).unwrap();
    let signature = Signature::of_name(event.def.name.simple());
    let founder_resolves = a.routes().resolve(&signature);
    let joiner_resolves = c.routes().resolve(&signature);

    let h = c
        .peer_mut(p4)
        .runtime
        .instantiate_def(&event.def, &[])
        .unwrap();
    let routed_to = c
        .route_object(p4, &Value::Obj(h), PayloadFormat::Binary)
        .unwrap();
    pump(&mut [&mut a, &mut b, &mut c]);
    let accepted = (a.peer(p2).stats.accepted, b.peer(p3).stats.accepted);

    // B departs; every engine must retire peer 3 from view and routing
    // table together, so the next publish routes to peer 2 alone.
    b.leave();
    pump(&mut [&mut a, &mut b, &mut c]);
    let h = c
        .peer_mut(p4)
        .runtime
        .instantiate_def(&event.def, &[])
        .unwrap();
    let routed_after_leave = c
        .route_object(p4, &Value::Obj(h), PayloadFormat::Binary)
        .unwrap();
    pump(&mut [&mut a, &mut c]);

    LateJoinOutcome {
        founder_resolves,
        joiner_resolves,
        joiner_contacts,
        joiner_view,
        routed_to,
        accepted,
        routed_after_leave,
    }
}

#[test]
fn late_joiner_resolves_the_founders_subscriber_set_on_both_fabrics() {
    let sim_fabric = SharedSimNet::new(NetConfig::default());
    let sim = run_late_join((sim_fabric.clone(), sim_fabric.clone(), sim_fabric));
    let live_fabric = LiveBus::new();
    let live = run_late_join((live_fabric.clone(), live_fabric.clone(), live_fabric));

    assert_eq!(
        sim, live,
        "membership convergence must agree across fabrics"
    );
    // The late joiner converged to the founders' routing decision...
    assert_eq!(sim.founder_resolves, vec![PeerId(2), PeerId(3)]);
    assert_eq!(sim.joiner_resolves, sim.founder_resolves);
    // ...wired every member as a contact without one add_contact call...
    assert_eq!(
        sim.joiner_contacts,
        vec![PeerId(1), PeerId(2), PeerId(3)],
        "view gossip wired the contacts"
    );
    assert_eq!(sim.joiner_view, 3);
    // ...its publish reached exactly the two subscribers...
    assert_eq!(sim.routed_to, 2);
    assert_eq!(sim.accepted, (1, 1));
    // ...and a LEAVE retired the departed subscriber everywhere.
    assert_eq!(sim.routed_after_leave, 1);
}

/// Alternates the groups until one full sweep moves no fabric traffic —
/// the request/response ping-pong needs several rounds per exchange.
fn pump_groups(groups: &[&TypedPubSub<LiveBus>], bus: &LiveBus) {
    let idle = Duration::from_millis(20);
    let mut last = u64::MAX;
    loop {
        for g in groups {
            g.run_for(idle).unwrap();
        }
        let now = LiveBus::metrics(bus).messages;
        if now == last {
            return;
        }
        last = now;
    }
}

#[test]
fn tps_groups_join_and_migrate_without_manual_wiring() {
    // Session-level: two TypedPubSub shards share one LiveBus + code
    // registry; the second joins through the first's member, a
    // subscriber migrates across shards, and its interest follows.
    let bus = LiveBus::new();
    let code = CodeRegistry::new();

    let founders: TypedPubSub<LiveBus> = TypedPubSub::builder()
        .code_registry(code.clone())
        .over(bus.clone());
    let publisher = founders.add_member_as(PeerId(1));
    let events = publisher
        .publisher_for(samples::topic_event_assembly(0))
        .unwrap();

    let joiners: TypedPubSub<LiveBus> = TypedPubSub::builder()
        .code_registry(code)
        .join(PeerId(1))
        .over(bus.clone());
    let subscriber = joiners.add_member_as(PeerId(2));
    let sub = subscriber.subscribe(TypeDescription::from_def(&samples::topic_event_def(
        0, "sub",
    )));
    // Converge the handshake, then publish across the shard boundary.
    pump_groups(&[&founders, &joiners], &bus);

    events
        .publish_with(|e| {
            e.set("value", 1.0)?;
            Ok(())
        })
        .unwrap();
    pump_groups(&[&founders, &joiners], &bus);
    assert_eq!(sub.drain().len(), 1, "joined shard receives routed events");

    // Migrate the subscriber into the founders' shard: the old id
    // departs everywhere, the interest re-routes from the new home.
    let (migrated, subs) = subscriber.migrate_to(&founders, PeerId(3));
    assert_eq!(subs.len(), 1);
    pump_groups(&[&founders, &joiners], &bus);

    events
        .publish_with(|e| {
            e.set("value", 2.0)?;
            Ok(())
        })
        .unwrap();
    pump_groups(&[&founders, &joiners], &bus);
    assert_eq!(subs[0].drain().len(), 1, "migrated interest still routes");
    assert_eq!(migrated.stats().accepted, 1);
    founders.with_swarm(|s| {
        assert!(
            !s.routes().subscribers().contains(&PeerId(2)),
            "the departed id left the routing table"
        );
    });
    // The handle left behind at the old home is inert, never a panic.
    assert!(sub.drain().is_empty(), "stale handle yields nothing new");
    assert!(!sub.cancel(), "already retracted by the migration");
    assert_eq!(joiners.stats(PeerId(2)), ProtocolStats::default());
}

#[test]
fn peers_added_after_join_are_announced_to_the_group() {
    let fabric = SharedSimNet::new(NetConfig::default());
    let code = CodeRegistry::new();
    let mut a: Swarm<SharedSimNet> = Swarm::with_code_registry(fabric.clone(), code.clone());
    let mut b: Swarm<SharedSimNet> = Swarm::with_code_registry(fabric, code);
    let p1 = a.add_peer_as(PeerId(1), ConformanceConfig::pragmatic());
    b.add_peer_as(PeerId(2), ConformanceConfig::pragmatic());
    b.join(p1).unwrap();
    pump(&mut [&mut a, &mut b]);

    // A peer added to B *after* the handshake must still become part of
    // the group: A learns it via a VIEW announcement, so floods (the
    // membership-driven broadcast) reach it too.
    b.add_peer_as(PeerId(3), ConformanceConfig::pragmatic());
    pump(&mut [&mut a, &mut b]);
    assert!(a.membership().is_live(PeerId(3)), "announced post-join");
    assert_eq!(a.contacts(), vec![PeerId(2), PeerId(3)]);

    let event = samples::generate_population(5, 1, 1.0).remove(0);
    a.publish(p1, event.assembly.clone()).unwrap();
    let h = a
        .peer_mut(p1)
        .runtime
        .instantiate_def(&event.def, &[])
        .unwrap();
    let outcome = a
        .flood_object(p1, &Value::Obj(h), PayloadFormat::Binary)
        .unwrap();
    assert_eq!(outcome.sent, 2, "flood covers the late-added peer");
}

#[test]
fn gossip_in_the_join_window_reaches_the_whole_group() {
    // A and B are converged; C joins through A and subscribes *before*
    // any pump, while its contact list is still just the seed. The
    // hello a swarm sends to every newly met contact must carry the
    // interest to B anyway.
    let fabric = SharedSimNet::new(NetConfig::default());
    let code = CodeRegistry::new();
    let mut a: Swarm<SharedSimNet> = Swarm::with_code_registry(fabric.clone(), code.clone());
    let mut b: Swarm<SharedSimNet> = Swarm::with_code_registry(fabric.clone(), code.clone());
    let mut c: Swarm<SharedSimNet> = Swarm::with_code_registry(fabric, code);
    let p1 = a.add_peer_as(PeerId(1), ConformanceConfig::pragmatic());
    b.add_peer_as(PeerId(2), ConformanceConfig::pragmatic());
    let p3 = c.add_peer_as(PeerId(3), ConformanceConfig::pragmatic());
    b.join(p1).unwrap();
    pump(&mut [&mut a, &mut b]);

    c.join(p1).unwrap();
    c.subscribe(
        p3,
        TypeDescription::from_def(&samples::sensor_interest("s3")),
    );
    pump(&mut [&mut a, &mut b, &mut c]);
    assert_eq!(
        b.routes().subscribers(),
        vec![p3],
        "the join-window subscribe reached the non-seed swarm"
    );
    assert!(b.membership().is_live(p3));
}

#[test]
fn undrained_events_survive_migration() {
    // Events matched before a migration stay drainable from the stale
    // subscription at the old home — they are not silently lost.
    let tps = TypedPubSub::builder().build();
    let publisher = tps.add_member();
    let subscriber = tps.add_member();
    let events = publisher
        .publisher_for(samples::topic_event_assembly(0))
        .unwrap();
    let sub = subscriber.subscribe(TypeDescription::from_def(&samples::topic_event_def(
        0, "sub",
    )));
    events
        .publish_with(|e| {
            e.set("value", 3.0)?;
            Ok(())
        })
        .unwrap();
    tps.run().unwrap();

    // Migrate *without* draining first.
    let target = TypedPubSub::builder().build();
    let _ = subscriber.migrate_to(&target, PeerId(60));
    assert_eq!(sub.drain().len(), 1, "pre-move event still drainable");
    assert!(sub.drain().is_empty(), "drained once");
}

#[test]
fn a_failed_join_leaves_no_phantom_contact() {
    let fabric = SharedSimNet::new(NetConfig::default());
    let mut swarm: Swarm<SharedSimNet> = Swarm::over(fabric);
    swarm.add_peer_as(PeerId(1), ConformanceConfig::pragmatic());
    assert!(swarm.join(PeerId(99)).is_err(), "seed never registered");
    assert!(swarm.contacts().is_empty(), "no state change on failure");
    assert!(swarm.membership().is_empty());
}

#[test]
fn leave_retires_manually_wired_contacts_too() {
    // The add_contact escape hatch bypasses the membership view; a LEAVE
    // must still take such contacts (and their routes) out.
    let fabric = SharedSimNet::new(NetConfig::default());
    let code = CodeRegistry::new();
    let mut a: Swarm<SharedSimNet> = Swarm::with_code_registry(fabric.clone(), code.clone());
    let mut b: Swarm<SharedSimNet> = Swarm::with_code_registry(fabric, code);
    let p1 = a.add_peer_as(PeerId(1), ConformanceConfig::pragmatic());
    let p2 = b.add_peer_as(PeerId(2), ConformanceConfig::pragmatic());
    a.add_contact(p2);
    b.add_contact(p1);
    b.subscribe(
        p2,
        TypeDescription::from_def(&samples::sensor_interest("s2")),
    );
    pump(&mut [&mut a, &mut b]);
    assert_eq!(a.routes().subscribers(), vec![p2], "gossip reached A");

    b.leave();
    pump(&mut [&mut a, &mut b]);
    assert!(a.contacts().is_empty(), "manual contact retired by LEAVE");
    assert!(a.routes().is_empty(), "its routes went with it");
}

#[test]
fn stale_member_clones_stay_inert_after_migration() {
    let tps = TypedPubSub::builder().build();
    let member = tps.add_member();
    let stale = member.clone();
    let target = TypedPubSub::builder().build();
    // Same-fabric constraint doesn't matter here: the point is that the
    // clone left behind must not panic, whatever it is asked to do.
    let (_migrated, _subs) = member.migrate_to(&target, PeerId(50));

    let sub = stale.subscribe(TypeDescription::from_def(&samples::sensor_interest("late")));
    assert!(sub.drain().is_empty(), "inert subscription, no panic");
    assert!(!sub.cancel());
    assert_eq!(stale.stats(), ProtocolStats::default());
    tps.with_swarm(|s| assert!(s.routes().is_empty(), "nothing registered"));
}

#[test]
fn bursts_beyond_the_cap_split_into_bounded_batches_without_loss() {
    const EVENTS: usize = 10;
    const CAP: usize = 4;

    let mut swarm = Swarm::new(NetConfig::default());
    let publisher = swarm.add_peer(ConformanceConfig::pragmatic());
    let subscriber = swarm.add_peer(ConformanceConfig::pragmatic());
    swarm.set_wire_cap(CAP, usize::MAX);
    swarm.subscribe(
        subscriber,
        TypeDescription::from_def(&samples::sensor_interest("sub")),
    );

    let event = samples::generate_population(7, 1, 1.0).remove(0);
    swarm.publish(publisher, event.assembly.clone()).unwrap();
    for _ in 0..EVENTS {
        let h = swarm
            .peer_mut(publisher)
            .runtime
            .instantiate_def(&event.def, &[])
            .unwrap();
        swarm
            .route_object(publisher, &Value::Obj(h), PayloadFormat::Binary)
            .unwrap();
    }
    assert_eq!(swarm.queued_frames(), EVENTS);
    swarm.run().unwrap();

    // ceil(10/4) = 3 bounded batches instead of one unbounded one...
    let m = swarm.metrics();
    let link = m.link(publisher, subscriber);
    assert_eq!(link.batches as usize, EVENTS.div_ceil(CAP));
    assert_eq!(link.frames as usize, EVENTS, "no frame lost to the split");
    assert_eq!(link.splits as usize, EVENTS.div_ceil(CAP) - 1);
    assert_eq!(m.batch_splits(), link.splits);
    // ...and every event was delivered.
    assert_eq!(swarm.peer(subscriber).stats.accepted as usize, EVENTS);
}

#[test]
fn byte_cap_splits_and_oversized_frames_still_ship() {
    let mut swarm = Swarm::new(NetConfig::default());
    let publisher = swarm.add_peer(ConformanceConfig::pragmatic());
    let subscriber = swarm.add_peer(ConformanceConfig::pragmatic());
    swarm.subscribe(
        subscriber,
        TypeDescription::from_def(&samples::sensor_interest("sub")),
    );
    let event = samples::generate_population(11, 1, 1.0).remove(0);
    swarm.publish(publisher, event.assembly.clone()).unwrap();

    // A cap smaller than any single envelope: every frame exceeds it,
    // yet each must still ship (alone), never be dropped.
    swarm.set_wire_cap(usize::MAX, 1);
    for _ in 0..3 {
        let h = swarm
            .peer_mut(publisher)
            .runtime
            .instantiate_def(&event.def, &[])
            .unwrap();
        swarm
            .route_object(publisher, &Value::Obj(h), PayloadFormat::Binary)
            .unwrap();
    }
    swarm.run().unwrap();
    assert_eq!(swarm.peer(subscriber).stats.accepted, 3);
    let m = swarm.metrics();
    // Single-frame chunks ship as plain `object` messages.
    assert_eq!(m.kind("object").messages, 3);
    assert_eq!(m.link(publisher, subscriber).batches, 0);
    assert_eq!(m.link(publisher, subscriber).splits, 2, "split, not lost");
}
