//! Failure injection: corrupted payloads, missing artifacts, protocol
//! misuse, and injected network faults must surface as *reported,
//! isolated* errors — never panics, never silent corruption, and never
//! a wedged swarm: traffic behind a bad frame keeps flowing.
//!
//! The second half is the durability scenario matrix: a lossy link, a
//! slow consumer behind a small credit window, a subscriber that
//! crashes and resumes into a retained-ring replay, and a partition
//! that heals — each driven by a seeded [`FaultPlan`] on the
//! virtual-time fabric, so every run is reproducible.

use pti_core::prelude::*;
use pti_core::samples;
use pti_transport::{kinds, TransportError};

fn fixture() -> (Swarm, PeerId, PeerId) {
    let mut swarm = Swarm::new(NetConfig::default());
    let alice = swarm.add_peer(ConformanceConfig::pragmatic());
    let bob = swarm.add_peer(ConformanceConfig::pragmatic());
    let a = samples::person_vendor_a();
    swarm.publish(alice, samples::person_assembly(&a)).unwrap();
    let b = samples::person_vendor_b();
    swarm.peer_mut(bob).subscribe(TypeDescription::from_def(&b));
    (swarm, alice, bob)
}

/// Drains the swarm and returns the isolated per-message errors — the
/// pump itself must stay `Ok`: one bad frame never aborts the loop.
fn run_and_take_errors(swarm: &mut Swarm) -> Vec<(PeerId, TransportError)> {
    swarm.run().unwrap();
    swarm.take_dispatch_errors()
}

#[test]
fn corrupted_object_message_is_a_reported_serialize_error() {
    let (mut swarm, alice, bob) = fixture();
    swarm
        .send_raw(alice, bob, kinds::OBJECT, b"<not-an-envelope/>".to_vec())
        .unwrap();
    let errs = run_and_take_errors(&mut swarm);
    assert_eq!(errs.len(), 1);
    assert!(
        matches!(errs[0].1, TransportError::Serialize(_)),
        "{}",
        errs[0].1
    );
}

#[test]
fn non_utf8_object_message_is_a_reported_protocol_error() {
    let (mut swarm, alice, bob) = fixture();
    swarm
        .send_raw(alice, bob, kinds::OBJECT, vec![0xff, 0xfe, 0x00, 0x80])
        .unwrap();
    let errs = run_and_take_errors(&mut swarm);
    assert_eq!(errs.len(), 1);
    assert!(
        matches!(errs[0].1, TransportError::Protocol(_)),
        "{}",
        errs[0].1
    );
}

#[test]
fn desc_request_for_unknown_path_errors() {
    let (mut swarm, alice, bob) = fixture();
    swarm
        .send_raw(
            bob,
            alice,
            kinds::DESC_REQUEST,
            b"pti://peer-1/desc/ghost".to_vec(),
        )
        .unwrap();
    let errs = run_and_take_errors(&mut swarm);
    assert_eq!(errs.len(), 1);
    assert_eq!(errs[0].0, alice, "the serving peer reports it");
    assert!(
        matches!(errs[0].1, TransportError::UnknownPath(_)),
        "{}",
        errs[0].1
    );
}

#[test]
fn asm_request_for_unknown_path_errors() {
    let (mut swarm, alice, bob) = fixture();
    swarm
        .send_raw(
            bob,
            alice,
            kinds::ASM_REQUEST,
            b"pti://peer-1/asm/ghost".to_vec(),
        )
        .unwrap();
    let errs = run_and_take_errors(&mut swarm);
    assert_eq!(errs.len(), 1);
    assert!(
        matches!(errs[0].1, TransportError::UnknownPath(_)),
        "{}",
        errs[0].1
    );
}

#[test]
fn unknown_message_kind_is_reported_not_fatal() {
    let (mut swarm, alice, bob) = fixture();
    swarm
        .send_raw(alice, bob, "mystery-kind", vec![1, 2, 3])
        .unwrap();
    let errs = run_and_take_errors(&mut swarm);
    assert_eq!(errs.len(), 1);
    assert!(
        matches!(&errs[0].1, TransportError::Protocol(m) if m.contains("mystery-kind")),
        "{}",
        errs[0].1
    );
}

#[test]
fn truncated_binary_payload_inside_valid_envelope_errors() {
    let (mut swarm, alice, bob) = fixture();
    let v = samples::make_person(&mut swarm.peer_mut(alice).runtime, "x");
    let mut env = swarm
        .peer(alice)
        .make_envelope(&v, PayloadFormat::Binary)
        .unwrap();
    // Corrupt: truncate the binary payload.
    if let pti_serialize::Payload::Binary(b) = &mut env.payload {
        b.truncate(b.len() / 2);
    }
    swarm
        .send_raw(
            alice,
            bob,
            kinds::OBJECT,
            env.to_string_compact().into_bytes(),
        )
        .unwrap();
    let errs = run_and_take_errors(&mut swarm);
    assert_eq!(errs.len(), 1);
    assert!(
        matches!(errs[0].1, TransportError::Serialize(_)),
        "{}",
        errs[0].1
    );
}

#[test]
fn traffic_behind_a_malformed_frame_still_delivers() {
    // The satellite assertion for error isolation: a hostile frame
    // *ahead* of a healthy exchange in the same pump neither wedges the
    // swarm nor swallows the error.
    let (mut swarm, alice, bob) = fixture();
    swarm
        .send_raw(alice, bob, kinds::OBJECT, b"<garbage".to_vec())
        .unwrap();
    let v = samples::make_person(&mut swarm.peer_mut(alice).runtime, "recovered");
    swarm
        .send_object(alice, bob, &v, PayloadFormat::Binary)
        .unwrap();
    // One pump handles both messages: the bad frame is isolated, the
    // good one completes its full desc/conformance/code exchange.
    swarm.run().unwrap();
    let errs = swarm.take_dispatch_errors();
    assert_eq!(errs.len(), 1, "the bad frame is still reported");
    assert!(matches!(errs[0].1, TransportError::Serialize(_)));
    let ds = swarm.peer_mut(bob).take_deliveries();
    assert!(
        ds.iter().any(Delivery::is_accepted),
        "the healthy exchange behind it delivered"
    );
}

#[test]
fn sending_to_unknown_peer_fails_fast() {
    let (mut swarm, alice, _) = fixture();
    let v = samples::make_person(&mut swarm.peer_mut(alice).runtime, "x");
    let err = swarm
        .send_object(alice, PeerId(99), &v, PayloadFormat::Binary)
        .unwrap_err();
    assert!(matches!(err, TransportError::Net(_)));
}

#[test]
fn dangling_object_cannot_be_sent() {
    let (mut swarm, alice, bob) = fixture();
    let v = samples::make_person(&mut swarm.peer_mut(alice).runtime, "gone");
    let h = v.as_obj().unwrap();
    swarm.peer_mut(alice).runtime.heap.free(h).unwrap();
    let err = swarm
        .send_object(alice, bob, &v, PayloadFormat::Binary)
        .unwrap_err();
    assert!(matches!(err, TransportError::Metamodel(_)));
}

#[test]
fn hostile_envelope_with_fake_paths_is_contained() {
    // An envelope claiming assemblies the sender never published: the
    // receiver requests the description and the *sender* errors on the
    // unknown path — the receiver never installs anything, and the
    // swarm keeps running.
    let (mut swarm, alice, bob) = fixture();
    let v = samples::make_person(&mut swarm.peer_mut(alice).runtime, "trojan");
    let mut env = swarm
        .peer(alice)
        .make_envelope(&v, PayloadFormat::Binary)
        .unwrap();
    for aref in &mut env.assemblies {
        aref.description_path = "pti://peer-1/desc/forged".into();
        aref.assembly_path = "pti://peer-1/asm/forged".into();
        aref.content_hash = "0".into();
    }
    swarm
        .send_raw(
            alice,
            bob,
            kinds::OBJECT,
            env.to_string_compact().into_bytes(),
        )
        .unwrap();
    let errs = run_and_take_errors(&mut swarm);
    assert!(errs
        .iter()
        .any(|(_, e)| matches!(e, TransportError::UnknownPath(_))));
    assert_eq!(swarm.peer(bob).stats.accepted, 0);
}

#[test]
fn remoting_unanswered_invocation_is_detected() {
    use pti_remoting::RemotingFabric;
    let (mut swarm, alice, bob) = fixture();
    // Forge a proxy to an export id that does not exist; the owner
    // answers with an error response, which invoke() surfaces.
    let h = samples::make_person(&mut swarm.peer_mut(alice).runtime, "r")
        .as_obj()
        .unwrap();
    let mut fabric = RemotingFabric::new();
    let rref = fabric.export(&swarm, alice, h).unwrap();
    fabric.offer(&mut swarm, alice, bob, &rref).unwrap();
    fabric.run(&mut swarm).unwrap();
    let mut proxy = fabric.take_proxies(bob).pop().expect("conforms");
    proxy.remote.object_id = 777; // forge
    let err = fabric
        .invoke(&mut swarm, bob, &proxy, "getPersonName", &[])
        .unwrap_err();
    assert!(err.to_string().contains("no export"), "{err}");
}

// ---------------------------------------------------------------------
// Durability scenario matrix: seeded faults against AtLeastOnce routing.
// ---------------------------------------------------------------------

/// An AtLeastOnce routed pair with the desc/asm exchange already warmed
/// up over a lossless fabric, so fault scenarios exercise *only* the
/// OBJECT_R / ACK repair path (control traffic is not retransmitted by
/// design).
fn durable_fixture() -> (Swarm, PeerId, PeerId) {
    let mut swarm = Swarm::new(NetConfig::default());
    let alice = swarm.add_peer(ConformanceConfig::pragmatic());
    let bob = swarm.add_peer(ConformanceConfig::pragmatic());
    let a = samples::person_vendor_a();
    swarm.publish(alice, samples::person_assembly(&a)).unwrap();
    swarm.set_qos(QoS::AtLeastOnce);
    swarm.subscribe(bob, TypeDescription::from_def(&samples::person_vendor_b()));
    let v = samples::make_person(&mut swarm.peer_mut(alice).runtime, "warmup");
    assert_eq!(
        swarm
            .route_object(alice, &v, PayloadFormat::Binary)
            .unwrap(),
        1
    );
    swarm.run_durable().unwrap();
    assert!(swarm.take_dispatch_errors().is_empty());
    assert_eq!(swarm.peer(bob).stats.accepted, 1);
    (swarm, alice, bob)
}

fn publish_n(swarm: &mut Swarm, from: PeerId, n: usize, tag: &str) {
    for i in 0..n {
        let v = samples::make_person(&mut swarm.peer_mut(from).runtime, &format!("{tag}-{i}"));
        assert_eq!(
            swarm.route_object(from, &v, PayloadFormat::Binary).unwrap(),
            1
        );
    }
}

#[test]
fn five_percent_loss_reaches_full_delivery_with_zero_duplicates() {
    let (mut swarm, alice, bob) = durable_fixture();
    swarm.set_credit_window(8);
    swarm
        .net_mut()
        .install_fault_plan(FaultPlan::new(7).with_loss(50));
    // Interleave publishes with pumps so every event rides its own
    // fabric send — each one a fresh draw against the 5% loss plan.
    for i in 0..40 {
        publish_n(&mut swarm, alice, 1, &format!("lossy-{i}"));
        swarm.run().unwrap();
    }
    swarm.run_durable().unwrap();

    // 100% eventual delivery, each event surfaced exactly once.
    assert_eq!(swarm.peer(bob).stats.accepted, 41, "warmup + 40");
    assert_eq!(swarm.peer(bob).stats.objects_received, 41);
    assert!(
        swarm.take_dispatch_errors().is_empty(),
        "nobody unreachable"
    );

    let st = swarm.delivery_stats();
    assert_eq!(st.delivered, 41, "engine surfaced each event once");
    assert!(st.max_inflight <= 8, "queue depth bounded by credit window");
    let m = swarm.metrics();
    assert!(m.faults_dropped > 0, "the plan actually dropped traffic");
    assert!(st.retransmits > 0, "drops were repaired by retransmission");
}

#[test]
fn slow_consumer_backpressure_never_exceeds_credit_window() {
    let (mut swarm, alice, bob) = durable_fixture();
    swarm.set_credit_window(4);
    // Publish a burst far beyond the window before the consumer runs at
    // all: the sender must stop at zero credit and buffer the rest.
    publish_n(&mut swarm, alice, 20, "burst");
    let st = swarm.delivery_stats();
    assert_eq!(st.max_inflight, 4, "sender stopped at zero credit");
    assert!(st.max_pending >= 16, "overflow buffered, not transmitted");

    swarm.run_durable().unwrap();
    assert_eq!(swarm.peer(bob).stats.accepted, 21, "warmup + 20");
    let st = swarm.delivery_stats();
    assert!(st.max_inflight <= 4, "ACK-driven refills stay in-window");
    assert_eq!(st.delivered, 21);
}

#[test]
fn healed_partition_delivers_everything_published_during_the_cut() {
    let (mut swarm, alice, bob) = durable_fixture();
    swarm.set_retransmit(2_000, 10);
    // Every send while the plan's step count is below 4 is severed;
    // the retransmit schedule carries the traffic across the heal.
    swarm
        .net_mut()
        .install_fault_plan(FaultPlan::new(3).with_partition([bob], 0, 4));
    publish_n(&mut swarm, alice, 3, "cut");
    swarm.run_durable().unwrap();

    assert_eq!(swarm.peer(bob).stats.accepted, 4, "warmup + 3");
    assert!(
        swarm.take_dispatch_errors().is_empty(),
        "heal beat the retry cap"
    );
    let m = swarm.metrics();
    assert!(
        m.faults_partitioned > 0,
        "the partition actually severed sends"
    );
    assert_eq!(swarm.delivery_stats().delivered, 4);
}

/// Sweeps multi-swarm traffic to quiescence *through* retransmit
/// deadlines: drain every swarm, then jump the shared virtual clock to
/// the earliest armed deadline and drain again, until every reliable
/// link is settled or shed.
fn pump_durable(swarms: &mut [Swarm<SharedSimNet>]) {
    loop {
        let mut last = u64::MAX;
        loop {
            for s in swarms.iter_mut() {
                s.run().unwrap();
            }
            let now = swarms[0].metrics().messages;
            if now == last {
                break;
            }
            last = now;
        }
        let Some(deadline) = swarms
            .iter()
            .filter_map(Swarm::next_delivery_deadline_us)
            .min()
        else {
            return;
        };
        swarms[0].net_mut().advance_virtual_time(deadline);
    }
}

#[test]
fn crashed_subscriber_resumes_into_retained_ring_replay() {
    let fabric = SharedSimNet::new(NetConfig::default());
    let code = CodeRegistry::new();

    // Publisher swarm: AtLeastOnce with an 8-deep replay ring.
    let mut pub_swarm: Swarm<SharedSimNet> =
        Swarm::with_code_registry(fabric.clone(), code.clone());
    let alice = pub_swarm.add_peer_as(PeerId(1), ConformanceConfig::pragmatic());
    let a = samples::person_vendor_a();
    pub_swarm
        .publish(alice, samples::person_assembly(&a))
        .unwrap();
    pub_swarm.set_qos(QoS::AtLeastOnce);
    pub_swarm.set_replay_depth(8);

    // Subscriber swarm joins and receives the first five events.
    let mut sub_swarm: Swarm<SharedSimNet> =
        Swarm::with_code_registry(fabric.clone(), code.clone());
    let bob = sub_swarm.add_peer_as(PeerId(2), ConformanceConfig::pragmatic());
    sub_swarm.subscribe(bob, TypeDescription::from_def(&samples::person_vendor_b()));
    sub_swarm.join(alice).unwrap();
    {
        let mut duo = [pub_swarm, sub_swarm];
        pump_durable(&mut duo);
        for i in 0..5 {
            let v = samples::make_person(
                &mut duo[0].peer_mut(alice).runtime,
                &format!("pre-crash-{i}"),
            );
            assert_eq!(
                duo[0]
                    .route_object(alice, &v, PayloadFormat::Binary)
                    .unwrap(),
                1
            );
        }
        pump_durable(&mut duo);
        assert_eq!(duo[1].peer(bob).stats.accepted, 5);
        let [p, s] = duo;
        pub_swarm = p;
        sub_swarm = s;
    }

    // Crash: the subscriber's swarm vanishes without a LEAVE. Events
    // published meanwhile go unacknowledged until the publisher's retry
    // budget surfaces the dead peer instead of hanging.
    drop(sub_swarm);
    for i in 0..2 {
        let v = samples::make_person(
            &mut pub_swarm.peer_mut(alice).runtime,
            &format!("during-crash-{i}"),
        );
        pub_swarm
            .route_object(alice, &v, PayloadFormat::Binary)
            .unwrap();
    }
    {
        let mut solo = [pub_swarm];
        pump_durable(&mut solo);
        [pub_swarm] = solo;
    }
    let errs = pub_swarm.take_dispatch_errors();
    assert!(
        errs.iter()
            .any(|(_, e)| matches!(e, TransportError::Unreachable(p) if *p == PeerId(2))),
        "retry exhaustion surfaced the crashed subscriber: {errs:?}"
    );

    // Resume: a fresh incarnation subscribes and joins; the membership
    // hello triggers a retained-ring replay of all seven events.
    let mut resumed: Swarm<SharedSimNet> = Swarm::with_code_registry(fabric.clone(), code.clone());
    let carol = resumed.add_peer_as(PeerId(3), ConformanceConfig::pragmatic());
    resumed.subscribe(
        carol,
        TypeDescription::from_def(&samples::person_vendor_b()),
    );
    resumed.join(alice).unwrap();
    let mut duo = [pub_swarm, resumed];
    pump_durable(&mut duo);
    assert_eq!(
        duo[1].peer(carol).stats.accepted,
        7,
        "all retained events replayed to the resumed subscriber"
    );
    let st = duo[0].delivery_stats();
    assert_eq!(st.replayed, 7, "replay came from the ring");
    assert!(duo[0].take_dispatch_errors().is_empty());
    assert!(duo[1].take_dispatch_errors().is_empty());
}
