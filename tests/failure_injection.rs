//! Failure injection: corrupted payloads, missing artifacts and protocol
//! misuse must surface as errors — never panics, never silent corruption.

use pti_core::prelude::*;
use pti_core::samples;
use pti_transport::{kinds, TransportError};

fn fixture() -> (Swarm, PeerId, PeerId) {
    let mut swarm = Swarm::new(NetConfig::default());
    let alice = swarm.add_peer(ConformanceConfig::pragmatic());
    let bob = swarm.add_peer(ConformanceConfig::pragmatic());
    let a = samples::person_vendor_a();
    swarm.publish(alice, samples::person_assembly(&a)).unwrap();
    let b = samples::person_vendor_b();
    swarm.peer_mut(bob).subscribe(TypeDescription::from_def(&b));
    (swarm, alice, bob)
}

#[test]
fn corrupted_object_message_is_a_protocol_error() {
    let (mut swarm, alice, bob) = fixture();
    swarm
        .send_raw(alice, bob, kinds::OBJECT, b"<not-an-envelope/>".to_vec())
        .unwrap();
    let err = swarm.run().unwrap_err();
    assert!(matches!(err, TransportError::Serialize(_)), "{err}");
}

#[test]
fn non_utf8_object_message_is_a_protocol_error() {
    let (mut swarm, alice, bob) = fixture();
    swarm
        .send_raw(alice, bob, kinds::OBJECT, vec![0xff, 0xfe, 0x00, 0x80])
        .unwrap();
    let err = swarm.run().unwrap_err();
    assert!(matches!(err, TransportError::Protocol(_)), "{err}");
}

#[test]
fn desc_request_for_unknown_path_errors() {
    let (mut swarm, alice, bob) = fixture();
    swarm
        .send_raw(
            bob,
            alice,
            kinds::DESC_REQUEST,
            b"pti://peer-1/desc/ghost".to_vec(),
        )
        .unwrap();
    let err = swarm.run().unwrap_err();
    assert!(matches!(err, TransportError::UnknownPath(_)), "{err}");
}

#[test]
fn asm_request_for_unknown_path_errors() {
    let (mut swarm, alice, bob) = fixture();
    swarm
        .send_raw(
            bob,
            alice,
            kinds::ASM_REQUEST,
            b"pti://peer-1/asm/ghost".to_vec(),
        )
        .unwrap();
    let err = swarm.run().unwrap_err();
    assert!(matches!(err, TransportError::UnknownPath(_)), "{err}");
}

#[test]
fn unknown_message_kind_is_rejected_by_run() {
    let (mut swarm, alice, bob) = fixture();
    swarm
        .send_raw(alice, bob, "mystery-kind", vec![1, 2, 3])
        .unwrap();
    let err = swarm.run().unwrap_err();
    assert!(matches!(err, TransportError::Protocol(m) if m.contains("mystery-kind")));
}

#[test]
fn truncated_binary_payload_inside_valid_envelope_errors() {
    let (mut swarm, alice, bob) = fixture();
    let v = samples::make_person(&mut swarm.peer_mut(alice).runtime, "x");
    let mut env = swarm
        .peer(alice)
        .make_envelope(&v, PayloadFormat::Binary)
        .unwrap();
    // Corrupt: truncate the binary payload.
    if let pti_serialize::Payload::Binary(b) = &mut env.payload {
        b.truncate(b.len() / 2);
    }
    swarm
        .send_raw(
            alice,
            bob,
            kinds::OBJECT,
            env.to_string_compact().into_bytes(),
        )
        .unwrap();
    let err = swarm.run().unwrap_err();
    assert!(matches!(err, TransportError::Serialize(_)), "{err}");
}

#[test]
fn error_in_one_exchange_does_not_corrupt_peer_state() {
    // After a failed run, the swarm remains usable for fresh exchanges.
    let (mut swarm, alice, bob) = fixture();
    swarm
        .send_raw(alice, bob, kinds::OBJECT, b"<garbage".to_vec())
        .unwrap();
    assert!(swarm.run().is_err());

    let v = samples::make_person(&mut swarm.peer_mut(alice).runtime, "recovered");
    swarm
        .send_object(alice, bob, &v, PayloadFormat::Binary)
        .unwrap();
    swarm.run().unwrap();
    let ds = swarm.peer_mut(bob).take_deliveries();
    assert!(ds.iter().any(Delivery::is_accepted));
}

#[test]
fn sending_to_unknown_peer_fails_fast() {
    let (mut swarm, alice, _) = fixture();
    let v = samples::make_person(&mut swarm.peer_mut(alice).runtime, "x");
    let err = swarm
        .send_object(alice, PeerId(99), &v, PayloadFormat::Binary)
        .unwrap_err();
    assert!(matches!(err, TransportError::Net(_)));
}

#[test]
fn dangling_object_cannot_be_sent() {
    let (mut swarm, alice, bob) = fixture();
    let v = samples::make_person(&mut swarm.peer_mut(alice).runtime, "gone");
    let h = v.as_obj().unwrap();
    swarm.peer_mut(alice).runtime.heap.free(h).unwrap();
    let err = swarm
        .send_object(alice, bob, &v, PayloadFormat::Binary)
        .unwrap_err();
    assert!(matches!(err, TransportError::Metamodel(_)));
}

#[test]
fn hostile_envelope_with_fake_paths_is_contained() {
    // An envelope claiming assemblies the sender never published: the
    // receiver requests the description and the *sender* errors on the
    // unknown path — the receiver never installs anything.
    let (mut swarm, alice, bob) = fixture();
    let v = samples::make_person(&mut swarm.peer_mut(alice).runtime, "trojan");
    let mut env = swarm
        .peer(alice)
        .make_envelope(&v, PayloadFormat::Binary)
        .unwrap();
    for aref in &mut env.assemblies {
        aref.description_path = "pti://peer-1/desc/forged".into();
        aref.assembly_path = "pti://peer-1/asm/forged".into();
        aref.content_hash = "0".into();
    }
    swarm
        .send_raw(
            alice,
            bob,
            kinds::OBJECT,
            env.to_string_compact().into_bytes(),
        )
        .unwrap();
    let err = swarm.run().unwrap_err();
    assert!(matches!(err, TransportError::UnknownPath(_)));
    assert_eq!(swarm.peer(bob).stats.accepted, 0);
}

#[test]
fn remoting_unanswered_invocation_is_detected() {
    use pti_remoting::RemotingFabric;
    let (mut swarm, alice, bob) = fixture();
    // Forge a proxy to an export id that does not exist; the owner
    // answers with an error response, which invoke() surfaces.
    let h = samples::make_person(&mut swarm.peer_mut(alice).runtime, "r")
        .as_obj()
        .unwrap();
    let mut fabric = RemotingFabric::new();
    let rref = fabric.export(&swarm, alice, h).unwrap();
    fabric.offer(&mut swarm, alice, bob, &rref).unwrap();
    fabric.run(&mut swarm).unwrap();
    let mut proxy = fabric.take_proxies(bob).pop().expect("conforms");
    proxy.remote.object_id = 777; // forge
    let err = fabric
        .invoke(&mut swarm, bob, &proxy, "getPersonName", &[])
        .unwrap_err();
    assert!(err.to_string().contains("no export"), "{err}");
}
