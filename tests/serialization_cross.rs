//! Cross-cutting serialization tests: type descriptions, SOAP, binary and
//! the hybrid envelope, exercised through the public `pti_core` API.

use pti_core::prelude::*;
use pti_core::samples;

fn runtime_with_person() -> Runtime {
    let def = samples::person_vendor_a();
    let mut rt = Runtime::new();
    samples::person_assembly(&def).install(&mut rt).unwrap();
    rt
}

#[test]
fn description_xml_roundtrip_preserves_conformance_verdicts() {
    // A description that went through XML must produce identical
    // conformance verdicts to the original.
    let a = TypeDescription::from_def(&samples::person_vendor_a());
    let b = TypeDescription::from_def(&samples::person_vendor_b());
    let a2 = description_from_string(&description_to_string(&a)).unwrap();
    let b2 = description_from_string(&description_to_string(&b)).unwrap();
    let reg = TypeRegistry::with_builtins();
    let checker = ConformanceChecker::new(ConformanceConfig::pragmatic());
    assert_eq!(
        checker.conforms(&b, &a, &reg, &reg),
        checker.conforms(&b2, &a2, &reg, &reg)
    );
    assert_eq!(a, a2);
    assert_eq!(b, b2);
}

#[test]
fn soap_and_binary_agree_on_object_state() {
    let mut rt = runtime_with_person();
    let v = samples::make_person(&mut rt, "same-state");
    let soap = to_soap_string(&rt, &v).unwrap();
    let bin = to_binary(&rt, &v).unwrap();

    let via_soap = from_soap_string(&mut rt, &soap).unwrap().as_obj().unwrap();
    let via_bin = from_binary(&mut rt, &bin).unwrap().as_obj().unwrap();
    assert_eq!(
        rt.get_field(via_soap, "name").unwrap(),
        rt.get_field(via_bin, "name").unwrap()
    );
}

#[test]
fn binary_beats_soap_on_size_soap_is_readable() {
    let mut rt = runtime_with_person();
    let v = samples::make_person(&mut rt, "size-test-subject");
    let soap = to_soap_string(&rt, &v).unwrap();
    let bin = to_binary(&rt, &v).unwrap();
    assert!(bin.len() < soap.len());
    assert!(soap.contains("size-test-subject"), "SOAP is human readable");
    assert!(soap.contains("Person"));
}

#[test]
fn envelope_roundtrips_both_formats_through_xml() {
    let mut rt = runtime_with_person();
    let v = samples::make_person(&mut rt, "enveloped");
    for format in [PayloadFormat::Soap, PayloadFormat::Binary] {
        let payload = match format {
            PayloadFormat::Soap => {
                pti_serialize::Payload::Soap(pti_serialize::to_soap(&rt, &v).unwrap())
            }
            PayloadFormat::Binary => pti_serialize::Payload::Binary(to_binary(&rt, &v).unwrap()),
        };
        let env = ObjectEnvelope {
            type_name: "Person".into(),
            type_guid: samples::person_vendor_a().guid,
            assemblies: vec![],
            payload,
        };
        let back = ObjectEnvelope::from_string(&env.to_string_compact()).unwrap();
        assert_eq!(back, env, "{format:?}");
        let value = match back.payload {
            pti_serialize::Payload::Soap(el) => pti_serialize::from_soap(&mut rt, &el).unwrap(),
            pti_serialize::Payload::Binary(b) => from_binary(&mut rt, &b).unwrap(),
        };
        let h = value.as_obj().unwrap();
        assert_eq!(
            rt.get_field(h, "name").unwrap().as_str().unwrap(),
            "enveloped"
        );
    }
}

#[test]
fn deep_object_chains_roundtrip_both_formats() {
    let (_, _, asm) = samples::person_with_address("deep");
    let mut rt = Runtime::new();
    asm.install(&mut rt).unwrap();
    // Build a chain person -> address and an array of shared references.
    let mut people = Vec::new();
    for i in 0..10 {
        let a = rt.instantiate(&"Address".into(), &[]).unwrap();
        rt.set_field(a, "street", Value::from(format!("street-{i}")))
            .unwrap();
        let p = rt.instantiate(&"Person".into(), &[]).unwrap();
        rt.set_field(p, "name", Value::from(format!("p{i}")))
            .unwrap();
        rt.set_field(p, "home", Value::Obj(a)).unwrap();
        people.push(Value::Obj(p));
    }
    // Shared tail: everyone also appears twice.
    let mut all = people.clone();
    all.extend(people.clone());
    let v = Value::Array(all);

    let soap = to_soap_string(&rt, &v).unwrap();
    let got = from_soap_string(&mut rt, &soap).unwrap();
    let arr = got.as_array().unwrap();
    assert_eq!(arr.len(), 20);
    assert_eq!(
        arr[0].as_obj().unwrap(),
        arr[10].as_obj().unwrap(),
        "sharing preserved"
    );

    let bin = to_binary(&rt, &v).unwrap();
    let got2 = from_binary(&mut rt, &bin).unwrap();
    let arr2 = got2.as_array().unwrap();
    assert_eq!(arr2.len(), 20);
    assert_eq!(arr2[3].as_obj().unwrap(), arr2[13].as_obj().unwrap());
}

#[test]
fn binary_envelope_roundtrips_shared_and_cyclic_graphs() {
    // A cyclic pair (a.next = b, b.next = a) through the FULL wire
    // path: binary payload inside a binary (PTIE) envelope, decoded and
    // materialized with sharing intact.
    let node = TypeDef::class("Node", "cyclic")
        .field("label", primitives::STRING)
        .field("next", "Node")
        .ctor(vec![])
        .build();
    let mut rt = Runtime::new();
    rt.register_type(node.clone()).unwrap();
    let a = rt.instantiate(&"Node".into(), &[]).unwrap();
    let b = rt.instantiate(&"Node".into(), &[]).unwrap();
    rt.set_field(a, "label", Value::from("a")).unwrap();
    rt.set_field(b, "label", Value::from("b")).unwrap();
    rt.set_field(a, "next", Value::Obj(b)).unwrap();
    rt.set_field(b, "next", Value::Obj(a)).unwrap();

    let env = ObjectEnvelope {
        type_name: "Node".into(),
        type_guid: node.guid,
        assemblies: vec![],
        payload: pti_serialize::Payload::Binary(to_binary(&rt, &Value::Obj(a)).unwrap()),
    };
    let wire = env.to_ptib();
    assert!(ObjectEnvelope::is_ptib(&wire));
    let back = ObjectEnvelope::from_ptib(&wire).unwrap();
    assert_eq!(back, env);
    let pti_serialize::Payload::Binary(bytes) = &back.payload else {
        panic!("binary payload expected");
    };
    let a2 = from_binary(&mut rt, bytes).unwrap().as_obj().unwrap();
    let b2 = rt.get_field(a2, "next").unwrap().as_obj().unwrap();
    assert_eq!(
        rt.get_field(b2, "next").unwrap().as_obj().unwrap(),
        a2,
        "cycle preserved through the envelope"
    );
}

#[test]
fn xml_and_binary_envelope_encodings_are_equivalent() {
    // Same fixtures as the XML round-trip above: whichever wire form an
    // envelope travels in, decode_wire yields the identical envelope.
    let mut rt = runtime_with_person();
    let v = samples::make_person(&mut rt, "equivalent");
    for format in [PayloadFormat::Soap, PayloadFormat::Binary] {
        let payload = match format {
            PayloadFormat::Soap => {
                pti_serialize::Payload::Soap(pti_serialize::to_soap(&rt, &v).unwrap())
            }
            PayloadFormat::Binary => pti_serialize::Payload::Binary(to_binary(&rt, &v).unwrap()),
        };
        let env = ObjectEnvelope {
            type_name: "Person".into(),
            type_guid: samples::person_vendor_a().guid,
            assemblies: vec![],
            payload,
        };
        let via_xml =
            ObjectEnvelope::decode_wire(env.encode_wire(EnvelopeWireFormat::Xml).as_slice())
                .unwrap();
        let via_bin =
            ObjectEnvelope::decode_wire(env.encode_wire(EnvelopeWireFormat::Ptib).as_slice())
                .unwrap();
        assert_eq!(via_xml, env, "{format:?}");
        assert_eq!(via_bin, env, "{format:?}");
        assert_eq!(via_xml, via_bin, "{format:?}");
    }
}

#[test]
fn binary_envelope_rejects_wrong_magic_and_short_buffers() {
    let mut rt = runtime_with_person();
    let v = samples::make_person(&mut rt, "reject");
    let env = ObjectEnvelope {
        type_name: "Person".into(),
        type_guid: samples::person_vendor_a().guid,
        assemblies: vec![],
        payload: pti_serialize::Payload::Binary(to_binary(&rt, &v).unwrap()),
    };
    let wire = env.to_ptib();
    let mut wrong = wire.clone();
    wrong[1] = b'X';
    assert!(ObjectEnvelope::from_ptib(&wrong).is_err());
    for cut in 0..wire.len() {
        assert!(ObjectEnvelope::from_ptib(&wire[..cut]).is_err(), "{cut}");
    }
    // Bit flips error (or decode to a different envelope) — never panic.
    let mut flipped = wire.clone();
    for i in 0..flipped.len().min(96) {
        flipped[i] ^= 0x55;
        let _ = ObjectEnvelope::decode_wire(&flipped);
        flipped[i] ^= 0x55;
    }
}

#[test]
fn description_sizes_scale_with_structure_not_depth() {
    // Non-recursive descriptions: a type referencing a huge type is no
    // bigger than one referencing a small one (Section 5.2's design
    // point).
    let small_ref = TypeDef::class("Holder", "x").field("r", "Tiny").build();
    let big_ref = TypeDef::class("Holder", "y").field("r", "Huge").build();
    let s1 = description_to_string(&TypeDescription::from_def(&small_ref));
    let s2 = description_to_string(&TypeDescription::from_def(&big_ref));
    assert_eq!(s1.len(), s2.len(), "referenced type size is irrelevant");

    // But adding members grows the description.
    let more = TypeDef::class("Holder", "z")
        .field("r", "Tiny")
        .field("extra", primitives::INT32)
        .build();
    let s3 = description_to_string(&TypeDescription::from_def(&more));
    assert!(s3.len() > s1.len());
}

#[test]
fn adversarial_payloads_do_not_panic() {
    let mut rt = runtime_with_person();
    // Truncations, bit flips and garbage must error, never panic.
    let v = samples::make_person(&mut rt, "adversarial");
    let bin = to_binary(&rt, &v).unwrap();
    for cut in 0..bin.len() {
        let _ = from_binary(&mut rt, &bin[..cut]);
    }
    let mut flipped = bin.clone();
    for i in 0..flipped.len().min(64) {
        flipped[i] ^= 0x55;
        let _ = from_binary(&mut rt, &flipped);
        flipped[i] ^= 0x55;
    }
    for garbage in [
        "",
        "<",
        "<Envelope>",
        "<Envelope><Body><int>x</int></Body></Envelope>",
    ] {
        let _ = from_soap_string(&mut rt, garbage);
    }
    let _ = ObjectEnvelope::from_string("<ptiMessage version=\"1\"/>");
}

#[test]
fn ptib_assembly_table_prefix_compression_saves_bytes() {
    // A routed event's download table repeats the publisher's
    // `pti://peer-N/` stem in every path; the PTIB encoding hoists the
    // shared prefix so the stem is paid for once per envelope. Compare
    // against the same table rewritten with equal-length but disjoint
    // stems (no shared prefix to hoist) — byte-identical content size,
    // so any wire difference is pure prefix compression.
    let mut rt = runtime_with_person();
    let v = samples::make_person(&mut rt, "prefixed");
    let table = |stems: [&str; 4]| -> ObjectEnvelope {
        ObjectEnvelope {
            type_name: "Person".into(),
            type_guid: samples::person_vendor_a().guid,
            assemblies: (0..4)
                .map(|i| pti_serialize::AssemblyRef {
                    name: format!("bundle-{i}"),
                    description_path: format!("{}desc/bundle-{i}", stems[i]),
                    assembly_path: format!("{}asm/bundle-{i}", stems[i]),
                    content_hash: format!("{i:08x}"),
                })
                .collect(),
            payload: pti_serialize::Payload::Binary(to_binary(&rt, &v).unwrap()),
        }
    };
    let stem = "pti://peer-7/";
    let shared = table([stem; 4]);
    let disjoint = table([
        "ati://peer-1/",
        "bti://peer-2/",
        "cti://peer-3/",
        "dti://peer-4/",
    ]);

    // Both round-trip exactly...
    let shared_wire = shared.to_ptib();
    let disjoint_wire = disjoint.to_ptib();
    assert_eq!(ObjectEnvelope::from_ptib(&shared_wire).unwrap(), shared);
    assert_eq!(ObjectEnvelope::from_ptib(&disjoint_wire).unwrap(), disjoint);

    // ...but the shared-stem table ships 7 copies of the stem fewer (8
    // paths collapse onto one hoisted prefix).
    let saved = disjoint_wire.len() - shared_wire.len();
    assert!(
        saved >= 7 * stem.len() - 2,
        "prefix compression saved only {saved} B (shared {} B, disjoint {} B)",
        shared_wire.len(),
        disjoint_wire.len()
    );
}
