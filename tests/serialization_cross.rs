//! Cross-cutting serialization tests: type descriptions, SOAP, binary and
//! the hybrid envelope, exercised through the public `pti_core` API.

use pti_core::prelude::*;
use pti_core::samples;

fn runtime_with_person() -> Runtime {
    let def = samples::person_vendor_a();
    let mut rt = Runtime::new();
    samples::person_assembly(&def).install(&mut rt).unwrap();
    rt
}

#[test]
fn description_xml_roundtrip_preserves_conformance_verdicts() {
    // A description that went through XML must produce identical
    // conformance verdicts to the original.
    let a = TypeDescription::from_def(&samples::person_vendor_a());
    let b = TypeDescription::from_def(&samples::person_vendor_b());
    let a2 = description_from_string(&description_to_string(&a)).unwrap();
    let b2 = description_from_string(&description_to_string(&b)).unwrap();
    let reg = TypeRegistry::with_builtins();
    let checker = ConformanceChecker::new(ConformanceConfig::pragmatic());
    assert_eq!(
        checker.conforms(&b, &a, &reg, &reg),
        checker.conforms(&b2, &a2, &reg, &reg)
    );
    assert_eq!(a, a2);
    assert_eq!(b, b2);
}

#[test]
fn soap_and_binary_agree_on_object_state() {
    let mut rt = runtime_with_person();
    let v = samples::make_person(&mut rt, "same-state");
    let soap = to_soap_string(&rt, &v).unwrap();
    let bin = to_binary(&rt, &v).unwrap();

    let via_soap = from_soap_string(&mut rt, &soap).unwrap().as_obj().unwrap();
    let via_bin = from_binary(&mut rt, &bin).unwrap().as_obj().unwrap();
    assert_eq!(
        rt.get_field(via_soap, "name").unwrap(),
        rt.get_field(via_bin, "name").unwrap()
    );
}

#[test]
fn binary_beats_soap_on_size_soap_is_readable() {
    let mut rt = runtime_with_person();
    let v = samples::make_person(&mut rt, "size-test-subject");
    let soap = to_soap_string(&rt, &v).unwrap();
    let bin = to_binary(&rt, &v).unwrap();
    assert!(bin.len() < soap.len());
    assert!(soap.contains("size-test-subject"), "SOAP is human readable");
    assert!(soap.contains("Person"));
}

#[test]
fn envelope_roundtrips_both_formats_through_xml() {
    let mut rt = runtime_with_person();
    let v = samples::make_person(&mut rt, "enveloped");
    for format in [PayloadFormat::Soap, PayloadFormat::Binary] {
        let payload = match format {
            PayloadFormat::Soap => {
                pti_serialize::Payload::Soap(pti_serialize::to_soap(&rt, &v).unwrap())
            }
            PayloadFormat::Binary => pti_serialize::Payload::Binary(to_binary(&rt, &v).unwrap()),
        };
        let env = ObjectEnvelope {
            type_name: "Person".into(),
            type_guid: samples::person_vendor_a().guid,
            assemblies: vec![],
            payload,
        };
        let back = ObjectEnvelope::from_string(&env.to_string_compact()).unwrap();
        assert_eq!(back, env, "{format:?}");
        let value = match back.payload {
            pti_serialize::Payload::Soap(el) => pti_serialize::from_soap(&mut rt, &el).unwrap(),
            pti_serialize::Payload::Binary(b) => from_binary(&mut rt, &b).unwrap(),
        };
        let h = value.as_obj().unwrap();
        assert_eq!(
            rt.get_field(h, "name").unwrap().as_str().unwrap(),
            "enveloped"
        );
    }
}

#[test]
fn deep_object_chains_roundtrip_both_formats() {
    let (_, _, asm) = samples::person_with_address("deep");
    let mut rt = Runtime::new();
    asm.install(&mut rt).unwrap();
    // Build a chain person -> address and an array of shared references.
    let mut people = Vec::new();
    for i in 0..10 {
        let a = rt.instantiate(&"Address".into(), &[]).unwrap();
        rt.set_field(a, "street", Value::from(format!("street-{i}")))
            .unwrap();
        let p = rt.instantiate(&"Person".into(), &[]).unwrap();
        rt.set_field(p, "name", Value::from(format!("p{i}")))
            .unwrap();
        rt.set_field(p, "home", Value::Obj(a)).unwrap();
        people.push(Value::Obj(p));
    }
    // Shared tail: everyone also appears twice.
    let mut all = people.clone();
    all.extend(people.clone());
    let v = Value::Array(all);

    let soap = to_soap_string(&rt, &v).unwrap();
    let got = from_soap_string(&mut rt, &soap).unwrap();
    let arr = got.as_array().unwrap();
    assert_eq!(arr.len(), 20);
    assert_eq!(
        arr[0].as_obj().unwrap(),
        arr[10].as_obj().unwrap(),
        "sharing preserved"
    );

    let bin = to_binary(&rt, &v).unwrap();
    let got2 = from_binary(&mut rt, &bin).unwrap();
    let arr2 = got2.as_array().unwrap();
    assert_eq!(arr2.len(), 20);
    assert_eq!(arr2[3].as_obj().unwrap(), arr2[13].as_obj().unwrap());
}

#[test]
fn description_sizes_scale_with_structure_not_depth() {
    // Non-recursive descriptions: a type referencing a huge type is no
    // bigger than one referencing a small one (Section 5.2's design
    // point).
    let small_ref = TypeDef::class("Holder", "x").field("r", "Tiny").build();
    let big_ref = TypeDef::class("Holder", "y").field("r", "Huge").build();
    let s1 = description_to_string(&TypeDescription::from_def(&small_ref));
    let s2 = description_to_string(&TypeDescription::from_def(&big_ref));
    assert_eq!(s1.len(), s2.len(), "referenced type size is irrelevant");

    // But adding members grows the description.
    let more = TypeDef::class("Holder", "z")
        .field("r", "Tiny")
        .field("extra", primitives::INT32)
        .build();
    let s3 = description_to_string(&TypeDescription::from_def(&more));
    assert!(s3.len() > s1.len());
}

#[test]
fn adversarial_payloads_do_not_panic() {
    let mut rt = runtime_with_person();
    // Truncations, bit flips and garbage must error, never panic.
    let v = samples::make_person(&mut rt, "adversarial");
    let bin = to_binary(&rt, &v).unwrap();
    for cut in 0..bin.len() {
        let _ = from_binary(&mut rt, &bin[..cut]);
    }
    let mut flipped = bin.clone();
    for i in 0..flipped.len().min(64) {
        flipped[i] ^= 0x55;
        let _ = from_binary(&mut rt, &flipped);
        flipped[i] ^= 0x55;
    }
    for garbage in [
        "",
        "<",
        "<Envelope>",
        "<Envelope><Body><int>x</int></Body></Envelope>",
    ] {
        let _ = from_soap_string(&mut rt, garbage);
    }
    let _ = ObjectEnvelope::from_string("<ptiMessage version=\"1\"/>");
}
