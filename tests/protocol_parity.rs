//! Optimistic vs eager parity: both protocols must deliver semantically
//! identical objects; they differ only in traffic (experiment F1's
//! correctness precondition).

use pti_core::prelude::*;
use pti_core::samples;

fn fixture() -> (Swarm, PeerId, PeerId) {
    let mut swarm = Swarm::new(NetConfig::default());
    let pub_ = swarm.add_peer(ConformanceConfig::pragmatic());
    let sub = swarm.add_peer(ConformanceConfig::pragmatic());
    let a = samples::person_vendor_a();
    swarm.publish(pub_, samples::person_assembly(&a)).unwrap();
    let b = samples::person_vendor_b();
    swarm.peer_mut(sub).subscribe(TypeDescription::from_def(&b));
    (swarm, pub_, sub)
}

fn delivered_names(swarm: &mut Swarm, sub: PeerId) -> Vec<String> {
    let handles: Vec<_> = swarm
        .peer_mut(sub)
        .take_deliveries()
        .into_iter()
        .filter_map(|d| match d {
            Delivery::Accepted { value, .. } => value.as_obj().ok(),
            Delivery::Rejected { .. } => None,
        })
        .collect();
    handles
        .into_iter()
        .map(|h| {
            swarm
                .peer_mut(sub)
                .runtime
                .get_field(h, "name")
                .unwrap()
                .as_str()
                .unwrap()
                .to_string()
        })
        .collect()
}

#[test]
fn both_protocols_deliver_identical_objects() {
    let names = ["ada", "grace", "edsger"];
    let mut results = Vec::new();
    for eager in [false, true] {
        let (mut swarm, pub_, sub) = fixture();
        for n in names {
            let v = samples::make_person(&mut swarm.peer_mut(pub_).runtime, n);
            if eager {
                swarm
                    .send_object_eager(pub_, sub, &v, PayloadFormat::Binary)
                    .unwrap();
            } else {
                swarm
                    .send_object(pub_, sub, &v, PayloadFormat::Binary)
                    .unwrap();
            }
            swarm.run().unwrap();
        }
        results.push(delivered_names(&mut swarm, sub));
    }
    assert_eq!(results[0], results[1]);
    assert_eq!(
        results[0],
        names.iter().map(|s| s.to_string()).collect::<Vec<_>>()
    );
}

#[test]
fn optimistic_wins_bytes_when_types_repeat() {
    let runs = 20usize;
    let mut bytes = Vec::new();
    for eager in [false, true] {
        let (mut swarm, pub_, sub) = fixture();
        for i in 0..runs {
            let v = samples::make_person(&mut swarm.peer_mut(pub_).runtime, &format!("p{i}"));
            if eager {
                swarm
                    .send_object_eager(pub_, sub, &v, PayloadFormat::Binary)
                    .unwrap();
            } else {
                swarm
                    .send_object(pub_, sub, &v, PayloadFormat::Binary)
                    .unwrap();
            }
            swarm.run().unwrap();
        }
        bytes.push(swarm.net().metrics().bytes);
    }
    let (optimistic, eager) = (bytes[0], bytes[1]);
    assert!(
        optimistic * 2 < eager,
        "with {runs} repeats optimistic ({optimistic} B) should be far below eager ({eager} B)"
    );
}

#[test]
fn eager_wastes_code_on_rejected_types() {
    // Subscriber wants nothing the publisher sends.
    let mk = |eager: bool| {
        let mut swarm = Swarm::new(NetConfig::default());
        let pub_ = swarm.add_peer(ConformanceConfig::pragmatic());
        let sub = swarm.add_peer(ConformanceConfig::pragmatic());
        for v in samples::generate_population(3, 8, 0.0) {
            swarm.publish(pub_, v.assembly.clone()).unwrap();
            let h = swarm
                .peer_mut(pub_)
                .runtime
                .instantiate_def(&v.def, &[])
                .unwrap();
            if eager {
                swarm
                    .send_object_eager(pub_, sub, &Value::Obj(h), PayloadFormat::Binary)
                    .unwrap();
            } else {
                swarm
                    .send_object(pub_, sub, &Value::Obj(h), PayloadFormat::Binary)
                    .unwrap();
            }
        }
        swarm.run().unwrap();
        swarm.net().metrics().bytes
    };
    let optimistic = mk(false);
    let eager = mk(true);
    assert!(
        optimistic * 2 < eager,
        "all-rejected workload: optimistic {optimistic} B, eager {eager} B"
    );
}

#[test]
fn single_cold_transfer_overhead_is_bounded() {
    // For exactly one novel conformant object the optimistic protocol
    // pays extra round trips; its *byte* total should still be in the
    // same ballpark (the description + code dominate both).
    let (mut swarm, pub_, sub) = fixture();
    let v = samples::make_person(&mut swarm.peer_mut(pub_).runtime, "solo");
    swarm
        .send_object(pub_, sub, &v, PayloadFormat::Binary)
        .unwrap();
    swarm.run().unwrap();
    let optimistic = swarm.net().metrics().bytes;

    let (mut swarm, pub_, sub) = fixture();
    let v = samples::make_person(&mut swarm.peer_mut(pub_).runtime, "solo");
    swarm
        .send_object_eager(pub_, sub, &v, PayloadFormat::Binary)
        .unwrap();
    swarm.run().unwrap();
    let eager = swarm.net().metrics().bytes;

    let ratio = optimistic as f64 / eager as f64;
    assert!(
        (0.5..=1.5).contains(&ratio),
        "cold-transfer ratio optimistic/eager = {ratio:.2} (opt {optimistic} B, eager {eager} B)"
    );
}

#[test]
fn round_trips_cost_virtual_time_on_cold_start() {
    let (mut swarm, pub_, sub) = fixture();
    let v = samples::make_person(&mut swarm.peer_mut(pub_).runtime, "t");
    swarm
        .send_object(pub_, sub, &v, PayloadFormat::Binary)
        .unwrap();
    swarm.run().unwrap();
    let optimistic_cold = swarm.net().now_us();

    let (mut swarm, pub_, sub) = fixture();
    let v = samples::make_person(&mut swarm.peer_mut(pub_).runtime, "t");
    swarm
        .send_object_eager(pub_, sub, &v, PayloadFormat::Binary)
        .unwrap();
    swarm.run().unwrap();
    let eager_cold = swarm.net().now_us();

    assert!(
        optimistic_cold > eager_cold,
        "optimistic cold start ({optimistic_cold} µs) pays round trips vs eager ({eager_cold} µs)"
    );
}
