//! The generated-population ground truth, driven through the *full
//! protocol* (not just the checker): every variant kind must be accepted
//! or rejected by a live peer exactly as the generator predicts.

use pti_core::prelude::*;
use pti_core::samples::{self, VariantKind};

fn run_population(config: ConformanceConfig, seed: u64, count: usize) -> Vec<(VariantKind, bool)> {
    let mut swarm = Swarm::new(NetConfig::default());
    let publisher = swarm.add_peer(config.clone());
    let subscriber = swarm.add_peer(config);
    let interest = samples::sensor_interest("local");
    swarm
        .peer_mut(subscriber)
        .runtime
        .register_type(interest.clone())
        .unwrap();
    swarm
        .peer_mut(subscriber)
        .subscribe(TypeDescription::from_def(&interest));

    let variants = samples::generate_population(seed, count, 0.5);
    let mut out = Vec::new();
    for v in variants {
        swarm.publish(publisher, v.assembly.clone()).unwrap();
        let h = swarm
            .peer_mut(publisher)
            .runtime
            .instantiate_def(&v.def, &[])
            .unwrap();
        swarm
            .send_object(publisher, subscriber, &Value::Obj(h), PayloadFormat::Binary)
            .unwrap();
        swarm.run().unwrap();
        let ds = swarm.peer_mut(subscriber).take_deliveries();
        assert_eq!(ds.len(), 1);
        out.push((v.kind, ds[0].is_accepted()));
    }
    out
}

#[test]
fn pragmatic_profile_matches_ground_truth_through_the_protocol() {
    for (kind, accepted) in run_population(ConformanceConfig::pragmatic(), 11, 40) {
        assert_eq!(
            accepted,
            kind.conformant_pragmatic(),
            "variant {kind:?} mis-delivered under pragmatic profile"
        );
    }
}

#[test]
fn paper_profile_matches_ground_truth_through_the_protocol() {
    for (kind, accepted) in run_population(ConformanceConfig::paper(), 13, 40) {
        assert_eq!(
            accepted,
            kind.conformant_paper(),
            "variant {kind:?} mis-delivered under paper profile"
        );
    }
}

#[test]
fn rejected_variants_cost_no_code_downloads() {
    let mut swarm = Swarm::new(NetConfig::default());
    let publisher = swarm.add_peer(ConformanceConfig::pragmatic());
    let subscriber = swarm.add_peer(ConformanceConfig::pragmatic());
    let interest = samples::sensor_interest("local");
    swarm
        .peer_mut(subscriber)
        .runtime
        .register_type(interest.clone())
        .unwrap();
    swarm
        .peer_mut(subscriber)
        .subscribe(TypeDescription::from_def(&interest));

    // All-nonconforming population: many descriptions, zero assemblies.
    for v in samples::generate_population(5, 15, 0.0) {
        swarm.publish(publisher, v.assembly.clone()).unwrap();
        let h = swarm
            .peer_mut(publisher)
            .runtime
            .instantiate_def(&v.def, &[])
            .unwrap();
        swarm
            .send_object(publisher, subscriber, &Value::Obj(h), PayloadFormat::Binary)
            .unwrap();
    }
    swarm.run().unwrap();
    let stats = swarm.peer(subscriber).stats;
    assert_eq!(stats.rejected, 15);
    assert_eq!(
        stats.asm_requests, 0,
        "the optimistic protocol's whole point"
    );
    assert!(stats.desc_requests > 0);
}

#[test]
fn strict_variance_rejects_paper_accepted_pairs() {
    // A source whose argument types are *narrower* than the interest's:
    // accepted under the paper's covariant reading, rejected by Strict.
    use pti_metamodel::ParamDef;
    let base_t = TypeDef::class("Payload", "tgt")
        .field("len", primitives::INT32)
        .build();
    let base_s = TypeDef::class("Payload", "src")
        .field("len", primitives::INT32)
        .build();
    let narrow_s = TypeDef::class("Packet", "src")
        .field("len", primitives::INT32)
        .field("crc", primitives::INT32)
        .build();
    let want = TypeDef::class("Channel", "tgt")
        .method(
            "push",
            vec![ParamDef::new("p", "Payload")],
            primitives::VOID,
        )
        .build();
    let have = TypeDef::class("Channel", "src")
        .method("push", vec![ParamDef::new("p", "Packet")], primitives::VOID)
        .build();

    let mut rt_reg = TypeRegistry::with_builtins();
    rt_reg.register(base_t.clone()).unwrap();
    let mut rs_reg = TypeRegistry::with_builtins();
    rs_reg.register(base_s.clone()).unwrap();
    rs_reg.register(narrow_s.clone()).unwrap();

    // Packet ≼ Payload must hold for the covariant check; relax type
    // names to isolate variance.
    let relaxed = ConformanceConfig::paper().with_type_names(NameMatcher::Levenshtein(7));
    let cov = ConformanceChecker::new(relaxed.clone());
    assert!(cov.conforms(
        &TypeDescription::from_def(&have),
        &TypeDescription::from_def(&want),
        &rs_reg,
        &rt_reg
    ));
    let strict = ConformanceChecker::new(relaxed.with_variance(Variance::Strict));
    assert!(!strict.conforms(
        &TypeDescription::from_def(&have),
        &TypeDescription::from_def(&want),
        &rs_reg,
        &rt_reg
    ));
}

#[test]
fn ambiguity_policies_affect_protocol_outcomes() {
    // A source type with two members matching one expected member.
    let interest = TypeDef::class("Logger", "tgt")
        .method(
            "log",
            vec![pti_metamodel::ParamDef::new("m", primitives::STRING)],
            primitives::VOID,
        )
        .build();
    let source = TypeDef::class("Logger", "src")
        .method(
            "logMessage",
            vec![pti_metamodel::ParamDef::new("m", primitives::STRING)],
            primitives::VOID,
        )
        .method(
            "logMessageWithContext",
            vec![pti_metamodel::ParamDef::new("m", primitives::STRING)],
            primitives::VOID,
        )
        .build();
    let reg = TypeRegistry::with_builtins();
    let sd = TypeDescription::from_def(&source);
    let td = TypeDescription::from_def(&interest);

    let first =
        ConformanceChecker::new(ConformanceConfig::pragmatic().with_ambiguity(Ambiguity::First));
    let got = first.check(&sd, &td, &reg, &reg).unwrap();
    assert_eq!(
        got.binding(&td).method("log", 1).unwrap().actual_name,
        "logMessage"
    );

    let error =
        ConformanceChecker::new(ConformanceConfig::pragmatic().with_ambiguity(Ambiguity::Error));
    assert!(error.check(&sd, &td, &reg, &reg).is_err());

    let best =
        ConformanceChecker::new(ConformanceConfig::pragmatic().with_ambiguity(Ambiguity::BestName));
    assert_eq!(
        best.check(&sd, &td, &reg, &reg)
            .unwrap()
            .binding(&td)
            .method("log", 1)
            .unwrap()
            .actual_name,
        "logMessage",
        "shorter name is closer to `log`"
    );
}

#[test]
fn population_statistics_are_reproducible() {
    let a: Vec<bool> = run_population(ConformanceConfig::pragmatic(), 21, 30)
        .into_iter()
        .map(|(_, ok)| ok)
        .collect();
    let b: Vec<bool> = run_population(ConformanceConfig::pragmatic(), 21, 30)
        .into_iter()
        .map(|(_, ok)| ok)
        .collect();
    assert_eq!(
        a, b,
        "same seed, same verdicts — experiments are deterministic"
    );
}
