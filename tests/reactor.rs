//! Reactor acceptance: a `ReactorHost` drives many `Swarm<ReactorNet>`
//! instances on one thread through the full optimistic protocol —
//! readiness-driven stepping (no polling of idle swarms), a fairness
//! budget that round-robins busy swarms, timer-wheel parking in place of
//! `recv_deadline` sleeps, and the `pti-tps` `mount_on` hook for session
//! groups.

use pti_core::prelude::*;
use pti_core::samples;

/// A publisher swarm and a subscriber swarm on one host: the join
/// handshake, interest gossip, routed publish and desc/asm exchange all
/// converge through `run_until_quiescent` alone.
#[test]
fn host_drives_the_cross_swarm_protocol_to_quiescence() {
    let mut host = ReactorHost::new();
    let code = CodeRegistry::new();
    let pub_slot = {
        let code = code.clone();
        host.mount(move |net| Swarm::with_code_registry(net, code))
    };
    let sub_slot = {
        let code = code.clone();
        host.mount(move |net| Swarm::with_code_registry(net, code))
    };

    let p1 = host.with_swarm(pub_slot, |s| {
        s.add_peer_as(PeerId(1), ConformanceConfig::pragmatic())
    });
    let p2 = host.with_swarm(sub_slot, |s| {
        s.add_peer_as(PeerId(2), ConformanceConfig::pragmatic())
    });
    host.with_swarm(sub_slot, |s| {
        s.subscribe(
            p2,
            TypeDescription::from_def(&samples::sensor_interest("sub")),
        );
        s.join(p1).unwrap();
    });
    host.run_until_quiescent().unwrap();

    let event = samples::generate_population(3, 1, 1.0).remove(0);
    let routed = host.with_swarm(pub_slot, |s| {
        s.publish(p1, event.assembly.clone()).unwrap();
        let h = s
            .peer_mut(p1)
            .runtime
            .instantiate_def(&event.def, &[])
            .unwrap();
        s.route_object(p1, &Value::Obj(h), PayloadFormat::Binary)
            .unwrap()
    });
    assert_eq!(routed, 1, "interest gossip reached the publisher");
    host.run_until_quiescent().unwrap();

    let stats = host.with_swarm(sub_slot, |s| s.peer(p2).stats);
    assert_eq!(stats.accepted, 1);
    assert!(stats.desc_requests > 0 && stats.asm_requests > 0);

    // Readiness means no idle stepping: every wakeup the fabric counted
    // was a session with actual traffic (or a host kick), and nothing is
    // left ready or backlogged afterwards.
    let hub = host.reactor();
    assert!(!hub.has_ready());
    assert!(hub.stats().sends > 0);
    assert_eq!(hub.stats().recvs, hub.stats().sends, "every ring drained");
}

/// Two flooded subscribers must share the thread: with a budget of 2
/// messages per wakeup and 8 standalone events queued per subscriber,
/// the pump trace must strictly alternate between them — neither swarm
/// may monopolise the loop until its ring is dry.
#[test]
fn fairness_budget_round_robins_flooded_swarms() {
    let mut host = ReactorHost::new();
    let code = CodeRegistry::new();
    let mk = |code: &CodeRegistry| {
        let code = code.clone();
        move |net| Swarm::with_code_registry(net, code)
    };
    let pub_slot = host.mount(mk(&code));
    let s1_slot = host.mount(mk(&code));
    let s2_slot = host.mount(mk(&code));

    let p1 = host.with_swarm(pub_slot, |s| {
        s.add_peer_as(PeerId(1), ConformanceConfig::pragmatic())
    });
    for (slot, id, salt) in [(s1_slot, 2, "s1"), (s2_slot, 3, "s2")] {
        host.with_swarm(slot, |s| {
            let p = s.add_peer_as(PeerId(id), ConformanceConfig::pragmatic());
            s.subscribe(
                p,
                TypeDescription::from_def(&samples::sensor_interest(salt)),
            );
            s.join(p1).unwrap();
        });
    }
    host.run_until_quiescent().unwrap();

    // Warmup: one event settles the desc/asm exchange so the flood below
    // is pure OBJECT traffic.
    let event = samples::generate_population(3, 1, 1.0).remove(0);
    host.with_swarm(pub_slot, |s| {
        s.publish(p1, event.assembly.clone()).unwrap();
        // One frame per wire message: each event reaches each subscriber
        // as its own standalone OBJECT, so the budget counts events.
        s.set_wire_cap(1, usize::MAX);
        let h = s
            .peer_mut(p1)
            .runtime
            .instantiate_def(&event.def, &[])
            .unwrap();
        s.route_object(p1, &Value::Obj(h), PayloadFormat::Binary)
            .unwrap();
    });
    host.run_until_quiescent().unwrap();

    host.set_fairness_budget(2);
    host.set_pump_trace(true);
    host.with_swarm(pub_slot, |s| {
        for _ in 0..8 {
            let h = s
                .peer_mut(p1)
                .runtime
                .instantiate_def(&event.def, &[])
                .unwrap();
            s.route_object(p1, &Value::Obj(h), PayloadFormat::Binary)
                .unwrap();
        }
    });
    host.run_until_quiescent().unwrap();

    let turns: Vec<(usize, usize)> = host
        .take_pump_trace()
        .into_iter()
        .filter(|&(slot, handled)| (slot == s1_slot || slot == s2_slot) && handled > 0)
        .collect();
    // 8 events / 2 per turn = 4 full turns each, strictly interleaved.
    assert_eq!(turns.len(), 8, "turns: {turns:?}");
    for pair in turns.chunks(2) {
        assert_eq!(
            (pair[0].0, pair[1].0),
            (s1_slot, s2_slot),
            "round-robin order violated: {turns:?}"
        );
    }
    assert!(
        turns.iter().all(|&(_, handled)| handled == 2),
        "budget respected: {turns:?}"
    );

    let accepted = (
        host.with_swarm(s1_slot, |s| s.peer(PeerId(2)).stats.accepted),
        host.with_swarm(s2_slot, |s| s.peer(PeerId(3)).stats.accepted),
    );
    assert_eq!(accepted, (9, 9), "warmup + 8 flooded events each");
}

/// Timer-wheel parking: with nothing ready, `run_for` jumps the virtual
/// clock straight to each deadline — firing parked slots in deadline
/// order with exactly one idle advance per jump, never a spin — and a
/// window that ends before the next deadline leaves it pending.
#[test]
fn run_for_parks_on_the_timer_wheel_instead_of_polling() {
    let mut host = ReactorHost::new();
    let a = host.mount(Swarm::over);
    let b = host.mount(Swarm::over);
    let c = host.mount(Swarm::over);
    let hub = host.reactor();

    host.wake_after(a, 30_000);
    host.wake_after(b, 10_000);
    host.wake_after(c, 20_000);
    host.set_pump_trace(true);
    host.run_for(50_000).unwrap();

    // First three trace entries are the unconditional kick; the rest are
    // timer wakeups, in deadline order (b, c, a), not mount order.
    let woken: Vec<usize> = host
        .take_pump_trace()
        .into_iter()
        .skip(3)
        .map(|(slot, _)| slot)
        .collect();
    assert_eq!(woken, vec![b, c, a]);
    let stats = hub.stats();
    assert_eq!(stats.timer_fires, 3);
    assert_eq!(stats.idle_advances, 3, "one clock jump per deadline");
    assert_eq!(hub.now_us(), 50_000, "window fully consumed");

    // A deadline beyond the window stays parked.
    host.wake_after(a, 100_000);
    host.run_for(10_000).unwrap();
    assert_eq!(hub.now_us(), 60_000);
    assert!(hub.timers_pending());
}

/// The `pti-tps` hook: two session groups mounted on one host, joined
/// through a seed member, publishing and draining through the typed
/// handles — with the host's event loop as the only driver.
#[test]
fn typed_pubsub_groups_mount_on_a_shared_reactor() {
    let mut host = ReactorHost::new();
    let code = CodeRegistry::new();
    let group_a = TypedPubSub::builder()
        .code_registry(code.clone())
        .mount_on(&mut host);
    let group_b = TypedPubSub::builder()
        .code_registry(code)
        .join(PeerId(1))
        .mount_on(&mut host);

    let exchange = group_a.add_member_as(PeerId(1));
    let trader = group_b.add_member_as(PeerId(2));
    host.run_until_quiescent().unwrap();

    let quote = TypeDef::class("StockQuote", "pub")
        .field("symbol", primitives::STRING)
        .field("price", primitives::FLOAT64)
        .ctor(vec![])
        .build();
    let g = quote.guid;
    let quotes = exchange
        .publisher_for(
            Assembly::builder("quotes")
                .ty(quote)
                .ctor_body(g, 0, bodies::ctor_assign(&[]))
                .build(),
        )
        .unwrap();

    let my_quote = TypeDef::class("StockQuote", "sub")
        .field("symbol", primitives::STRING)
        .field("price", primitives::FLOAT64)
        .build();
    let sub = trader.subscribe(TypeDescription::from_def(&my_quote));
    host.run_until_quiescent().unwrap();

    quotes
        .publish_with(|e| {
            e.set("symbol", "ACME")?.set("price", 42.5)?;
            Ok(())
        })
        .unwrap();
    host.run_until_quiescent().unwrap();

    let events = sub.drain();
    assert_eq!(events.len(), 1);
    assert_eq!(events[0].interest.full(), "StockQuote");
    assert_eq!(events[0].from, PeerId(1));
}

/// Unmount tears a swarm down without leaking sessions: its endpoint
/// vanishes from the fabric (senders prune the route), its undelivered
/// backlog is dropped and accounted, other slots keep their indices,
/// and a remount under the same peer id rejoins cleanly.
#[test]
fn unmount_drains_the_slot_and_a_remount_rejoins() {
    let mut host = ReactorHost::new();
    let code = CodeRegistry::new();
    let mk = |code: &CodeRegistry| {
        let code = code.clone();
        move |net| Swarm::with_code_registry(net, code)
    };
    let pub_slot = host.mount(mk(&code));
    let sub_slot = host.mount(mk(&code));
    let p1 = host.with_swarm(pub_slot, |s| {
        s.add_peer_as(PeerId(1), ConformanceConfig::pragmatic())
    });
    host.with_swarm(sub_slot, |s| {
        let p = s.add_peer_as(PeerId(2), ConformanceConfig::pragmatic());
        s.subscribe(
            p,
            TypeDescription::from_def(&samples::sensor_interest("sub")),
        );
        s.join(p1).unwrap();
    });
    host.run_until_quiescent().unwrap();

    let event = samples::generate_population(3, 1, 1.0).remove(0);
    let publish = |host: &mut ReactorHost| {
        host.with_swarm(pub_slot, |s| {
            s.publish(p1, event.assembly.clone()).unwrap();
            let h = s
                .peer_mut(p1)
                .runtime
                .instantiate_def(&event.def, &[])
                .unwrap();
            s.route_object(p1, &Value::Obj(h), PayloadFormat::Binary)
                .unwrap()
        })
    };
    assert_eq!(publish(&mut host), 1);
    // Flush the publisher's wire batch so the event lands in the
    // subscriber's ring — then leave it *undelivered* there: unmount
    // must drop it, not deliver it to a corpse.
    host.with_swarm(pub_slot, |s| s.flush_wire());
    let hub = host.reactor();
    let sub_session = host.session_of(sub_slot);
    assert!(hub.backlog(sub_session) > 0);
    assert_eq!(host.len(), 2);
    let dropped = host.unmount(sub_slot);
    assert!(dropped > 0, "undelivered backlog was dropped, not leaked");
    assert_eq!(host.len(), 1);
    assert_eq!(hub.backlog(sub_session), 0);

    // The fabric forgot the endpoint. The publisher's routing table
    // still holds the stale interest, so the next publish routes — but
    // the wire flush finds the peer gone and prunes the route (no
    // error, no ghost wakeups for the tombstoned slot), and the publish
    // after that routes to nobody.
    host.run_until_quiescent().unwrap();
    let wakeups_before = hub.stats().wakeups;
    assert_eq!(publish(&mut host), 1, "stale route until the flush prunes");
    host.run_until_quiescent().unwrap();
    assert_eq!(
        hub.stats().wakeups,
        wakeups_before,
        "a tombstoned slot never wakes"
    );
    assert_eq!(publish(&mut host), 0, "dead route pruned");
    host.run_until_quiescent().unwrap();

    // Remount: a fresh swarm joins under a fresh id (the old id's
    // membership tombstone outlives the endpoint, same as any departed
    // peer), re-announces the interest, and deliveries resume.
    let re_slot = host.mount(mk(&code));
    assert_ne!(re_slot, sub_slot, "tombstoned slots are not recycled");
    host.with_swarm(re_slot, |s| {
        let p = s.add_peer_as(PeerId(3), ConformanceConfig::pragmatic());
        s.subscribe(
            p,
            TypeDescription::from_def(&samples::sensor_interest("sub")),
        );
        s.join(p1).unwrap();
    });
    host.run_until_quiescent().unwrap();
    assert_eq!(publish(&mut host), 1, "remounted subscriber is routed");
    host.run_until_quiescent().unwrap();
    let accepted = host.with_swarm(re_slot, |s| s.peer(PeerId(3)).stats.accepted);
    assert_eq!(accepted, 1);
}

/// The sharded host end-to-end: typed groups pinned to *different*
/// shards exchange a routed publish across the bridge, and
/// `migrate_member` moves a subscriber to another shard with its
/// interests intact.
#[test]
fn sharded_groups_publish_and_migrate_across_shards() {
    let mut host = ShardedHost::new(2);
    let code = CodeRegistry::new();
    let group_a = TypedPubSub::builder()
        .code_registry(code.clone())
        .mount_sharded_pinned(&mut host, 0);
    let group_b = TypedPubSub::builder()
        .code_registry(code)
        .join(PeerId(1))
        .mount_sharded_pinned(&mut host, 1);
    assert_eq!(group_a.shard(&host), 0);
    assert_eq!(group_b.shard(&host), 1);

    group_a.with(&mut host, |g| {
        g.add_member_as(PeerId(1));
    });
    group_b.with(&mut host, |g| {
        g.add_member_as(PeerId(2));
    });
    host.run_until_quiescent().unwrap();

    // Publisher on shard 0, subscriber on shard 1.
    group_b.with(&mut host, |g| {
        let trader = g.member(PeerId(2)).expect("member is live");
        let my_quote = TypeDef::class("StockQuote", "sub")
            .field("symbol", primitives::STRING)
            .field("price", primitives::FLOAT64)
            .build();
        trader.subscribe(TypeDescription::from_def(&my_quote));
    });
    host.run_until_quiescent().unwrap();

    let publish = |host: &mut ShardedHost| {
        group_a.with(host, |g| {
            let exchange = g.member(PeerId(1)).expect("member is live");
            let quote = TypeDef::class("StockQuote", "pub")
                .field("symbol", primitives::STRING)
                .field("price", primitives::FLOAT64)
                .ctor(vec![])
                .build();
            let guid = quote.guid;
            let quotes = exchange
                .publisher_for(
                    Assembly::builder("quotes")
                        .ty(quote)
                        .ctor_body(guid, 0, bodies::ctor_assign(&[]))
                        .build(),
                )
                .unwrap();
            quotes
                .publish_with(|e| {
                    e.set("symbol", "ACME")?.set("price", 42.5)?;
                    Ok(())
                })
                .unwrap();
        })
    };
    publish(&mut host);
    host.run_until_quiescent().unwrap();

    let drained = group_b.with(&mut host, |g| {
        g.notifications(PeerId(2))
            .into_iter()
            .map(|ev| (ev.from, ev.interest.full().to_string()))
            .collect::<Vec<_>>()
    });
    assert_eq!(drained, vec![(PeerId(1), "StockQuote".to_string())]);
    let m = host.metrics();
    assert!(m.bridge_crossings > 0, "the publish crossed shards");

    // Migrate the subscriber from shard 1's group to shard 0's: the
    // interest moves with it and the next publish is shard-local.
    let moved = group_b.migrate_member(&mut host, PeerId(2), &group_a, PeerId(3));
    assert_eq!(moved, 1, "one interest migrated");
    host.run_until_quiescent().unwrap();
    assert_eq!(host.owner_of(PeerId(3)), Some(0));
    assert_eq!(host.owner_of(PeerId(2)), None, "old id departed");

    publish(&mut host);
    host.run_until_quiescent().unwrap();
    let drained = group_a.with(&mut host, |g| {
        g.notifications(PeerId(3))
            .into_iter()
            .map(|ev| (ev.from, ev.interest.full().to_string()))
            .collect::<Vec<_>>()
    });
    assert_eq!(drained, vec![(PeerId(1), "StockQuote".to_string())]);
}

/// Scale smoke: 64 single-peer swarms (one publisher, 63 subscribers)
/// converge and exchange a routed publish on one host — the shape the
/// R4 experiment runs at 1k+ members.
#[test]
fn a_mid_sized_fleet_converges_on_one_host() {
    const FLEET: usize = 64;
    let mut host = ReactorHost::new();
    let code = CodeRegistry::new();

    let mk = |code: &CodeRegistry| {
        let code = code.clone();
        move |net| Swarm::with_code_registry(net, code)
    };
    let pub_slot = host.mount(mk(&code));
    let p1 = host.with_swarm(pub_slot, |s| {
        s.add_peer_as(PeerId(1), ConformanceConfig::pragmatic())
    });
    let mut sub_slots = Vec::new();
    for i in 0..FLEET - 1 {
        let slot = host.mount(mk(&code));
        host.with_swarm(slot, |s| {
            let p = s.add_peer_as(PeerId(2 + i as u32), ConformanceConfig::pragmatic());
            s.subscribe(
                p,
                TypeDescription::from_def(&samples::sensor_interest("fleet")),
            );
            s.join(p1).unwrap();
        });
        sub_slots.push(slot);
    }
    host.run_until_quiescent().unwrap();

    let event = samples::generate_population(3, 1, 1.0).remove(0);
    let routed = host.with_swarm(pub_slot, |s| {
        s.publish(p1, event.assembly.clone()).unwrap();
        let h = s
            .peer_mut(p1)
            .runtime
            .instantiate_def(&event.def, &[])
            .unwrap();
        s.route_object(p1, &Value::Obj(h), PayloadFormat::Binary)
            .unwrap()
    });
    assert_eq!(routed, FLEET - 1);
    host.run_until_quiescent().unwrap();

    let accepted: u64 = sub_slots
        .iter()
        .enumerate()
        .map(|(i, &slot)| host.with_swarm(slot, |s| s.peer(PeerId(2 + i as u32)).stats.accepted))
        .sum();
    assert_eq!(accepted, (FLEET - 1) as u64);
}
