//! Full-stack integration: peers, protocol, conformance, proxies — the
//! complete Figure 1 flow under several network and vendor conditions.

use pti_core::prelude::*;
use pti_core::samples;

fn two_vendor_swarm(config: NetConfig) -> (Swarm, PeerId, PeerId) {
    let mut swarm = Swarm::new(config);
    let alice = swarm.add_peer(ConformanceConfig::pragmatic());
    let bob = swarm.add_peer(ConformanceConfig::pragmatic());
    let a = samples::person_vendor_a();
    swarm.publish(alice, samples::person_assembly(&a)).unwrap();
    let b = samples::person_vendor_b();
    swarm.publish(bob, samples::person_assembly(&b)).unwrap();
    swarm.peer_mut(bob).subscribe(TypeDescription::from_def(&b));
    (swarm, alice, bob)
}

#[test]
fn paper_motivating_scenario_end_to_end() {
    let (mut swarm, alice, bob) = two_vendor_swarm(NetConfig::default());
    let v = samples::make_person(&mut swarm.peer_mut(alice).runtime, "ada");
    swarm
        .send_object(alice, bob, &v, PayloadFormat::Binary)
        .unwrap();
    swarm.run().unwrap();
    let ds = swarm.peer_mut(bob).take_deliveries();
    let Delivery::Accepted { proxy: Some(p), .. } = &ds[0] else {
        panic!("{ds:?}")
    };
    assert_eq!(
        p.invoke(&mut swarm.peer_mut(bob).runtime, "getPersonName", &[])
            .unwrap()
            .as_str()
            .unwrap(),
        "ada"
    );
}

#[test]
fn object_state_is_independent_after_transfer() {
    // Pass-by-value: mutating the received copy must not touch the
    // sender's original.
    let (mut swarm, alice, bob) = two_vendor_swarm(NetConfig::default());
    let v = samples::make_person(&mut swarm.peer_mut(alice).runtime, "original");
    let alice_handle = v.as_obj().unwrap();
    swarm
        .send_object(alice, bob, &v, PayloadFormat::Binary)
        .unwrap();
    swarm.run().unwrap();
    let ds = swarm.peer_mut(bob).take_deliveries();
    let Delivery::Accepted { proxy: Some(p), .. } = &ds[0] else {
        panic!()
    };
    p.invoke(
        &mut swarm.peer_mut(bob).runtime,
        "setPersonName",
        &[Value::from("mutated")],
    )
    .unwrap();
    assert_eq!(
        swarm
            .peer_mut(alice)
            .runtime
            .get_field(alice_handle, "name")
            .unwrap()
            .as_str()
            .unwrap(),
        "original",
        "sender copy untouched"
    );
}

#[test]
fn wan_and_lan_deliver_identically_but_wan_is_slower() {
    let mut clocks = Vec::new();
    for cfg in [NetConfig::default(), NetConfig::wan()] {
        let (mut swarm, alice, bob) = two_vendor_swarm(cfg);
        let v = samples::make_person(&mut swarm.peer_mut(alice).runtime, "w");
        swarm
            .send_object(alice, bob, &v, PayloadFormat::Binary)
            .unwrap();
        swarm.run().unwrap();
        let ds = swarm.peer_mut(bob).take_deliveries();
        assert!(ds[0].is_accepted());
        clocks.push(swarm.net().now_us());
    }
    assert!(
        clocks[1] > clocks[0],
        "WAN {} µs vs LAN {} µs",
        clocks[1],
        clocks[0]
    );
}

#[test]
fn bidirectional_exchange_between_vendors() {
    let (mut swarm, alice, bob) = two_vendor_swarm(NetConfig::default());
    // Alice also subscribes to her own view.
    let a = samples::person_vendor_a();
    swarm
        .peer_mut(alice)
        .subscribe(TypeDescription::from_def(&a));

    let va = samples::make_person(&mut swarm.peer_mut(alice).runtime, "from-alice");
    swarm
        .send_object(alice, bob, &va, PayloadFormat::Binary)
        .unwrap();
    swarm.run().unwrap();
    let vb = samples::make_person(&mut swarm.peer_mut(bob).runtime, "from-bob");
    swarm
        .send_object(bob, alice, &vb, PayloadFormat::Binary)
        .unwrap();
    swarm.run().unwrap();

    let ds_bob = swarm.peer_mut(bob).take_deliveries();
    let ds_alice = swarm.peer_mut(alice).take_deliveries();
    assert!(ds_bob[0].is_accepted());
    let Delivery::Accepted { proxy, .. } = &ds_alice[0] else {
        panic!()
    };
    // Alice's proxy speaks vendor-a names over the vendor-b object.
    let p = proxy.as_ref().unwrap();
    assert_eq!(
        p.invoke(&mut swarm.peer_mut(alice).runtime, "getName", &[])
            .unwrap()
            .as_str()
            .unwrap(),
        "from-bob"
    );
}

#[test]
fn three_peer_relay_propagates_types() {
    // Alice -> Bob -> Carol: Bob re-serializes the object he received
    // (the type now has local provenance from the downloaded assembly?
    // no — Bob cannot republish Alice's code, so Bob sends his *own*
    // vendor-b object to Carol instead, who knows neither vendor).
    let (mut swarm, alice, bob) = two_vendor_swarm(NetConfig::default());
    let carol = swarm.add_peer(ConformanceConfig::pragmatic());
    let carol_view = TypeDef::class("Person", "carol")
        .field("name", primitives::STRING)
        .method("getName", vec![], primitives::STRING)
        .build();
    swarm
        .peer_mut(carol)
        .subscribe(TypeDescription::from_def(&carol_view));

    let v = samples::make_person(&mut swarm.peer_mut(alice).runtime, "hop1");
    swarm
        .send_object(alice, bob, &v, PayloadFormat::Binary)
        .unwrap();
    swarm.run().unwrap();
    assert!(swarm.peer_mut(bob).take_deliveries()[0].is_accepted());

    let v2 = samples::make_person(&mut swarm.peer_mut(bob).runtime, "hop2");
    swarm
        .send_object(bob, carol, &v2, PayloadFormat::Binary)
        .unwrap();
    swarm.run().unwrap();
    let ds = swarm.peer_mut(carol).take_deliveries();
    let Delivery::Accepted { proxy: Some(p), .. } = &ds[0] else {
        panic!("{ds:?}")
    };
    // Carol's own contract name (`getName`) is translated to vendor-b's
    // `getPersonName` by token matching.
    assert_eq!(
        p.invoke(&mut swarm.peer_mut(carol).runtime, "getName", &[])
            .unwrap()
            .as_str()
            .unwrap(),
        "hop2"
    );
}

#[test]
fn strict_paper_rules_reject_renamed_vendor() {
    // Under the paper's exact-name profile the two vendor Persons do NOT
    // interoperate (their method names differ) — the printed rule is
    // stricter than the motivation.
    let mut swarm = Swarm::new(NetConfig::default());
    let alice = swarm.add_peer(ConformanceConfig::paper());
    let bob = swarm.add_peer(ConformanceConfig::paper());
    let a = samples::person_vendor_a();
    swarm.publish(alice, samples::person_assembly(&a)).unwrap();
    let b = samples::person_vendor_b();
    swarm.peer_mut(bob).subscribe(TypeDescription::from_def(&b));
    let v = samples::make_person(&mut swarm.peer_mut(alice).runtime, "x");
    swarm
        .send_object(alice, bob, &v, PayloadFormat::Binary)
        .unwrap();
    swarm.run().unwrap();
    let ds = swarm.peer_mut(bob).take_deliveries();
    assert!(matches!(ds[0], Delivery::Rejected { .. }));
}

#[test]
fn nested_object_graph_travels_with_both_assemblies() {
    let mut swarm = Swarm::new(NetConfig::default());
    let alice = swarm.add_peer(ConformanceConfig::pragmatic());
    let bob = swarm.add_peer(ConformanceConfig::pragmatic());
    let (_, _, asm) = samples::person_with_address("alice");
    swarm.publish(alice, asm).unwrap();
    let (_, bob_person, _) = samples::person_with_address("bob");
    swarm
        .peer_mut(bob)
        .subscribe(TypeDescription::from_def(&bob_person));
    // Bob needs Address resolvable for the conformance recursion.
    let (bob_addr, _, _) = samples::person_with_address("bob");
    swarm.peer_mut(bob).runtime.register_type(bob_addr).unwrap();

    let rt = &mut swarm.peer_mut(alice).runtime;
    let ah = rt.instantiate(&"Address".into(), &[]).unwrap();
    rt.set_field(ah, "street", Value::from("Rue de la Gare 12"))
        .unwrap();
    rt.set_field(ah, "zip", Value::I32(1003)).unwrap();
    let ph = rt.instantiate(&"Person".into(), &[]).unwrap();
    rt.set_field(ph, "name", Value::from("nested")).unwrap();
    rt.set_field(ph, "home", Value::Obj(ah)).unwrap();

    swarm
        .send_object(alice, bob, &Value::Obj(ph), PayloadFormat::Soap)
        .unwrap();
    swarm.run().unwrap();
    let ds = swarm.peer_mut(bob).take_deliveries();
    let Delivery::Accepted { value, .. } = &ds[0] else {
        panic!("{ds:?}")
    };
    let h = value.as_obj().unwrap();
    let rt = &mut swarm.peer_mut(bob).runtime;
    let home = rt.get_field(h, "home").unwrap().as_obj().unwrap();
    assert_eq!(rt.get_field(home, "zip").unwrap().as_i32().unwrap(), 1003);
    assert_eq!(
        rt.invoke(home, "getStreet", &[]).unwrap().as_str().unwrap(),
        "Rue de la Gare 12"
    );
}

#[test]
fn runtime_subtype_evolution() {
    // The paper's dig at CORBA value types: "this makes it hard to add
    // value (sub)types with new behavior at runtime". Here the publisher
    // introduces `Student extends Person` *after* the system is running;
    // the subscriber (interested in Person only) accepts it via the
    // explicit-conformance route once the new assembly is fetched, and
    // the student's overriding behavior comes along.
    let (mut swarm, alice, bob) = two_vendor_swarm(NetConfig::default());

    // Warm up with plain Persons.
    let v = samples::make_person(&mut swarm.peer_mut(alice).runtime, "warm");
    swarm
        .send_object(alice, bob, &v, PayloadFormat::Binary)
        .unwrap();
    swarm.run().unwrap();
    assert!(swarm.peer_mut(bob).take_deliveries()[0].is_accepted());

    // A new subtype appears at runtime on Alice's side.
    let student = TypeDef::class("Student", "vendor-a")
        .extends("Person")
        .field("university", primitives::STRING)
        .method("getUniversity", vec![], primitives::STRING)
        .ctor(vec![])
        .build();
    let sg = student.guid;
    swarm
        .publish(
            alice,
            Assembly::builder("vendor-a-student")
                .ty(student)
                .body(sg, "getUniversity", 0, bodies::getter("university"))
                .ctor_body(sg, 0, bodies::ctor_assign(&[]))
                .build(),
        )
        .unwrap();
    let rt = &mut swarm.peer_mut(alice).runtime;
    let sh = rt.instantiate(&"Student".into(), &[]).unwrap();
    rt.set_field(sh, "name", Value::from("grad")).unwrap();
    rt.set_field(sh, "university", Value::from("EPFL")).unwrap();

    swarm
        .send_object(alice, bob, &Value::Obj(sh), PayloadFormat::Binary)
        .unwrap();
    swarm.run().unwrap();
    let ds = swarm.peer_mut(bob).take_deliveries();
    let Delivery::Accepted {
        value,
        proxy: Some(p),
        ..
    } = &ds[0]
    else {
        panic!("{ds:?}")
    };
    // Through Bob's Person interest contract:
    assert_eq!(
        p.invoke(&mut swarm.peer_mut(bob).runtime, "getPersonName", &[])
            .unwrap()
            .as_str()
            .unwrap(),
        "grad"
    );
    // The new behavior arrived too (direct dispatch on the object).
    let h = value.as_obj().unwrap();
    assert_eq!(
        swarm
            .peer_mut(bob)
            .runtime
            .invoke(h, "getUniversity", &[])
            .unwrap()
            .as_str()
            .unwrap(),
        "EPFL"
    );
}

#[test]
fn interleaved_sends_from_two_publishers() {
    let mut swarm = Swarm::new(NetConfig::default());
    let p1 = swarm.add_peer(ConformanceConfig::pragmatic());
    let p2 = swarm.add_peer(ConformanceConfig::pragmatic());
    let sub = swarm.add_peer(ConformanceConfig::pragmatic());
    let a = samples::person_vendor_a();
    swarm.publish(p1, samples::person_assembly(&a)).unwrap();
    let b = samples::person_vendor_b();
    swarm.publish(p2, samples::person_assembly(&b)).unwrap();
    let sub_view = TypeDef::class("Person", "sub")
        .field("name", primitives::STRING)
        .method("getName", vec![], primitives::STRING)
        .build();
    swarm
        .peer_mut(sub)
        .subscribe(TypeDescription::from_def(&sub_view));

    for i in 0..4 {
        let v1 = samples::make_person(&mut swarm.peer_mut(p1).runtime, &format!("a{i}"));
        swarm
            .send_object(p1, sub, &v1, PayloadFormat::Binary)
            .unwrap();
        let v2 = samples::make_person(&mut swarm.peer_mut(p2).runtime, &format!("b{i}"));
        swarm
            .send_object(p2, sub, &v2, PayloadFormat::Binary)
            .unwrap();
    }
    swarm.run().unwrap();
    let ds = swarm.peer_mut(sub).take_deliveries();
    assert_eq!(ds.len(), 8);
    assert!(ds.iter().all(Delivery::is_accepted));
    // Each vendor's assembly fetched exactly once despite interleaving.
    assert_eq!(swarm.peer(sub).stats.asm_requests, 2);
}
