//! Application-level scenarios combining TPS and borrow/lend — the
//! paper's Section 8 use cases at integration scale, written against the
//! typed Publisher/Subscription session API.

use pti_core::prelude::*;
use pti_core::samples;
use pti_metamodel::bodies;

fn quote_assembly(salt: &str, getter: &str) -> (TypeDef, Assembly) {
    let def = TypeDef::class("StockQuote", salt)
        .field("symbol", primitives::STRING)
        .field("price", primitives::FLOAT64)
        .method(getter, vec![], primitives::STRING)
        .ctor(vec![])
        .build();
    let g = def.guid;
    let asm = Assembly::builder(format!("quotes-{salt}"))
        .ty(def.clone())
        .body(g, getter, 0, bodies::getter("symbol"))
        .ctor_body(g, 0, bodies::ctor_assign(&[]))
        .build();
    (def, asm)
}

#[test]
fn tps_fan_out_to_heterogeneous_subscribers() {
    let tps = TypedPubSub::builder().build();
    let publisher = tps.add_member();
    let (_, asm) = quote_assembly("pub", "getSymbol");
    let quotes = publisher.publisher_for(asm).unwrap();

    // Five subscribers, each with its own independently named view.
    let getters = [
        "getSymbol",
        "getQuoteSymbol",
        "getSymbolName",
        "getSymbol",
        "getStockSymbol",
    ];
    let mut subs = Vec::new();
    for (i, g) in getters.iter().enumerate() {
        let member = tps.add_member();
        let (view, _) = quote_assembly(&format!("sub{i}"), g);
        subs.push((member.subscribe(TypeDescription::from_def(&view)), *g));
    }

    for i in 0..4 {
        let symbol = format!("S{i}");
        quotes
            .publish_with(|e| {
                e.set("symbol", symbol.as_str())?;
                Ok(())
            })
            .unwrap();
    }
    tps.run().unwrap();

    for (sub, getter) in subs {
        let events = sub.drain();
        assert_eq!(
            events.len(),
            4,
            "subscriber {:?} got all events",
            sub.member_id()
        );
        // Each subscriber reads through its own contract.
        let sym = sub.invoke(&events[0], getter, &[]).unwrap();
        assert_eq!(sym.as_str().unwrap(), "S0");
    }
}

#[test]
fn tps_subscriber_joining_late_still_interoperates() {
    let tps = TypedPubSub::builder().build();
    let publisher = tps.add_member();
    let (_, asm) = quote_assembly("pub", "getSymbol");
    let quotes = publisher.publisher_for(asm).unwrap();

    let early = tps.add_member();
    let (early_view, _) = quote_assembly("early", "getSymbol");
    let early_sub = early.subscribe(TypeDescription::from_def(&early_view));

    // First wave.
    quotes
        .publish_with(|e| {
            e.set("symbol", "WAVE1")?;
            Ok(())
        })
        .unwrap();
    tps.run().unwrap();
    assert_eq!(early_sub.drain().len(), 1);

    // Late joiner with yet another naming convention.
    let late = tps.add_member();
    let (late_view, _) = quote_assembly("late", "getTickerSymbol");
    let late_sub = late.subscribe(TypeDescription::from_def(&late_view));
    quotes
        .publish_with(|e| {
            e.set("symbol", "WAVE2")?;
            Ok(())
        })
        .unwrap();
    tps.run().unwrap();

    assert_eq!(
        late_sub.drain().len(),
        1,
        "late joiner gets the second wave"
    );
    assert_eq!(early_sub.drain().len(), 1);
}

#[test]
fn borrow_lend_selects_conforming_resource_among_many() {
    let mut market = Market::new(NetConfig::default());
    let lender = market.add_peer(ConformanceConfig::pragmatic());
    let borrower = market.add_peer(ConformanceConfig::pragmatic());

    // Lender offers a mixed bag: a Person and a StockQuote.
    let person_def = samples::person_vendor_a();
    market
        .publish(lender, samples::person_assembly(&person_def))
        .unwrap();
    let (_, quote_asm) = quote_assembly("lender", "getSymbol");
    market.publish(lender, quote_asm).unwrap();
    let p = market
        .peer_mut(lender)
        .runtime
        .instantiate(&"Person".into(), &[])
        .unwrap();
    market
        .peer_mut(lender)
        .runtime
        .set_field(p, "name", Value::from("lent"))
        .unwrap();
    let q = market
        .peer_mut(lender)
        .runtime
        .instantiate(&"StockQuote".into(), &[])
        .unwrap();
    market.lend(lender, p).unwrap();
    market.lend(lender, q).unwrap();

    // Borrower wants "a Person" in its own dialect.
    let want = samples::person_vendor_b();
    let borrowed = market
        .borrow(borrower, &TypeDescription::from_def(&want))
        .unwrap()
        .expect("the Person lending conforms");
    let name = market
        .invoke(borrower, &borrowed, "getPersonName", &[])
        .unwrap();
    assert_eq!(name.as_str().unwrap(), "lent");
}

#[test]
fn tps_and_market_share_a_runtime_model() {
    // An event received via TPS can immediately be lent via the market
    // semantics (both operate on the same peer runtimes) — here we just
    // verify the object materialized by TPS is a first-class local
    // object, reachable through the protocol-level escape hatch.
    let tps = TypedPubSub::builder().build();
    let publisher = tps.add_member();
    let subscriber = tps.add_member();
    let (_, asm) = quote_assembly("pub", "getSymbol");
    let quotes = publisher.publisher_for(asm).unwrap();
    let (view, _) = quote_assembly("sub", "getSymbol");
    let sub = subscriber.subscribe(TypeDescription::from_def(&view));

    quotes
        .publish_with(|e| {
            e.set("symbol", "LOCAL")?;
            Ok(())
        })
        .unwrap();
    tps.run().unwrap();

    let ev = sub.drain().remove(0);
    let h = ev.value.as_obj().unwrap();
    let sub_id = subscriber.id();
    // Direct runtime access works — it is a real local object now.
    tps.with_swarm(|swarm| {
        let rt = &mut swarm.peer_mut(sub_id).runtime;
        assert_eq!(
            rt.get_field(h, "symbol").unwrap().as_str().unwrap(),
            "LOCAL"
        );
        assert_eq!(
            rt.invoke(h, "getSymbol", &[]).unwrap().as_str().unwrap(),
            "LOCAL"
        );
    });
}
