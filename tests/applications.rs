//! Application-level scenarios combining TPS and borrow/lend — the
//! paper's Section 8 use cases at integration scale.

use pti_core::prelude::*;
use pti_core::samples;
use pti_metamodel::bodies;

fn quote_assembly(salt: &str, getter: &str) -> (TypeDef, Assembly) {
    let def = TypeDef::class("StockQuote", salt)
        .field("symbol", primitives::STRING)
        .field("price", primitives::FLOAT64)
        .method(getter, vec![], primitives::STRING)
        .ctor(vec![])
        .build();
    let g = def.guid;
    let asm = Assembly::builder(format!("quotes-{salt}"))
        .ty(def.clone())
        .body(g, getter, 0, bodies::getter("symbol"))
        .ctor_body(g, 0, bodies::ctor_assign(&[]))
        .build();
    (def, asm)
}

#[test]
fn tps_fan_out_to_heterogeneous_subscribers() {
    let mut tps = TypedPubSub::new(NetConfig::default());
    let publisher = tps.add_member(ConformanceConfig::pragmatic());
    let (def, asm) = quote_assembly("pub", "getSymbol");
    tps.publish_types(publisher, asm).unwrap();
    let _ = def;

    // Five subscribers, each with its own independently named view.
    let getters = ["getSymbol", "getQuoteSymbol", "getSymbolName", "getSymbol", "getStockSymbol"];
    let mut subs = Vec::new();
    for (i, g) in getters.iter().enumerate() {
        let id = tps.add_member(ConformanceConfig::pragmatic());
        let (view, _) = quote_assembly(&format!("sub{i}"), g);
        tps.subscribe(id, TypeDescription::from_def(&view));
        subs.push((id, *g));
    }

    for i in 0..4 {
        let rt = &mut tps.member_mut(publisher).runtime;
        let e = rt.instantiate(&"StockQuote".into(), &[]).unwrap();
        rt.set_field(e, "symbol", Value::from(format!("S{i}"))).unwrap();
        tps.publish(publisher, &Value::Obj(e), PayloadFormat::Binary).unwrap();
    }
    tps.run().unwrap();

    for (id, getter) in subs {
        let events = tps.notifications(id);
        assert_eq!(events.len(), 4, "subscriber {id} got all events");
        // Each subscriber reads through its own contract.
        let proxy = events[0].proxy.as_ref().unwrap();
        let sym = proxy.invoke(&mut tps.member_mut(id).runtime, getter, &[]).unwrap();
        assert_eq!(sym.as_str().unwrap(), "S0");
    }
}

#[test]
fn tps_subscriber_joining_late_still_interoperates() {
    let mut tps = TypedPubSub::new(NetConfig::default());
    let publisher = tps.add_member(ConformanceConfig::pragmatic());
    let (_, asm) = quote_assembly("pub", "getSymbol");
    tps.publish_types(publisher, asm).unwrap();

    let early = tps.add_member(ConformanceConfig::pragmatic());
    let (early_view, _) = quote_assembly("early", "getSymbol");
    tps.subscribe(early, TypeDescription::from_def(&early_view));

    // First wave.
    let rt = &mut tps.member_mut(publisher).runtime;
    let e = rt.instantiate(&"StockQuote".into(), &[]).unwrap();
    rt.set_field(e, "symbol", Value::from("WAVE1")).unwrap();
    tps.publish(publisher, &Value::Obj(e), PayloadFormat::Binary).unwrap();
    tps.run().unwrap();
    assert_eq!(tps.notifications(early).len(), 1);

    // Late joiner with yet another naming convention.
    let late = tps.add_member(ConformanceConfig::pragmatic());
    let (late_view, _) = quote_assembly("late", "getTickerSymbol");
    tps.subscribe(late, TypeDescription::from_def(&late_view));
    let rt = &mut tps.member_mut(publisher).runtime;
    let e2 = rt.instantiate(&"StockQuote".into(), &[]).unwrap();
    rt.set_field(e2, "symbol", Value::from("WAVE2")).unwrap();
    tps.publish(publisher, &Value::Obj(e2), PayloadFormat::Binary).unwrap();
    tps.run().unwrap();

    let late_events = tps.notifications(late);
    assert_eq!(late_events.len(), 1, "late joiner gets the second wave");
    assert_eq!(tps.notifications(early).len(), 1);
}

#[test]
fn borrow_lend_selects_conforming_resource_among_many() {
    let mut market = Market::new(NetConfig::default());
    let lender = market.add_peer(ConformanceConfig::pragmatic());
    let borrower = market.add_peer(ConformanceConfig::pragmatic());

    // Lender offers a mixed bag: a Person and a StockQuote.
    let person_def = samples::person_vendor_a();
    market.publish(lender, samples::person_assembly(&person_def)).unwrap();
    let (_, quote_asm) = quote_assembly("lender", "getSymbol");
    market.publish(lender, quote_asm).unwrap();
    let p = market.peer_mut(lender).runtime.instantiate(&"Person".into(), &[]).unwrap();
    market.peer_mut(lender).runtime.set_field(p, "name", Value::from("lent")).unwrap();
    let q = market.peer_mut(lender).runtime.instantiate(&"StockQuote".into(), &[]).unwrap();
    market.lend(lender, p).unwrap();
    market.lend(lender, q).unwrap();

    // Borrower wants "a Person" in its own dialect.
    let want = samples::person_vendor_b();
    let borrowed = market
        .borrow(borrower, &TypeDescription::from_def(&want))
        .unwrap()
        .expect("the Person lending conforms");
    let name = market
        .invoke(borrower, &borrowed, "getPersonName", &[])
        .unwrap();
    assert_eq!(name.as_str().unwrap(), "lent");
}

#[test]
fn tps_and_market_share_a_runtime_model() {
    // An event received via TPS can immediately be lent via the market
    // semantics (both operate on the same peer runtimes) — here we just
    // verify the object materialized by TPS is a first-class local
    // object.
    let mut tps = TypedPubSub::new(NetConfig::default());
    let publisher = tps.add_member(ConformanceConfig::pragmatic());
    let subscriber = tps.add_member(ConformanceConfig::pragmatic());
    let (_, asm) = quote_assembly("pub", "getSymbol");
    tps.publish_types(publisher, asm).unwrap();
    let (view, _) = quote_assembly("sub", "getSymbol");
    tps.subscribe(subscriber, TypeDescription::from_def(&view));

    let rt = &mut tps.member_mut(publisher).runtime;
    let e = rt.instantiate(&"StockQuote".into(), &[]).unwrap();
    rt.set_field(e, "symbol", Value::from("LOCAL")).unwrap();
    tps.publish(publisher, &Value::Obj(e), PayloadFormat::Binary).unwrap();
    tps.run().unwrap();

    let ev = tps.notifications(subscriber).remove(0);
    let h = ev.value.as_obj().unwrap();
    // Direct runtime access works — it is a real local object now.
    let rt = &mut tps.member_mut(subscriber).runtime;
    assert_eq!(rt.get_field(h, "symbol").unwrap().as_str().unwrap(), "LOCAL");
    assert_eq!(rt.invoke(h, "getSymbol", &[]).unwrap().as_str().unwrap(), "LOCAL");
}
