//! `SharedSimNet` multi-swarm determinism: the virtual-time fabric's
//! whole value is reproducibility, so a seeded churn script — joins,
//! leaves, routed publishes — must produce a **byte-identical** delivery
//! log across two runs. Any hidden iteration-order or timing
//! nondeterminism in the shared fabric, the membership gossip, or the
//! interest router would scramble the log and fail the comparison.

use pti_core::prelude::*;
use pti_core::samples;

/// The tiny deterministic PRNG driving the churn script (SplitMix64).
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Sweeps every swarm until a full pass moves no traffic.
fn pump(swarms: &mut [Swarm<SharedSimNet>]) {
    let mut last = u64::MAX;
    loop {
        for s in swarms.iter_mut() {
            s.run().unwrap();
        }
        let now = swarms[0].metrics().messages;
        if now == last {
            return;
        }
        last = now;
    }
}

/// Runs the seeded churn script and returns its full observable log:
/// every delivery (in swarm order after every step) plus the final
/// traffic counters.
fn churn_run(seed: u64) -> Vec<u8> {
    let mut rng = SplitMix64(seed);
    let fabric = SharedSimNet::new(NetConfig::default());
    let code = CodeRegistry::new();
    let mut log = Vec::new();

    // The founder publishes the event type every routed publish uses.
    let mut founder: Swarm<SharedSimNet> = Swarm::with_code_registry(fabric.clone(), code.clone());
    let p1 = founder.add_peer_as(PeerId(1), ConformanceConfig::pragmatic());
    let event = samples::generate_population(7, 1, 1.0).remove(0);
    founder.publish(p1, event.assembly.clone()).unwrap();

    // `swarms[0]` stays the founder; later entries churn in and out.
    let mut swarms = vec![founder];
    let mut peer_of = vec![p1];
    let mut next_id = 2u32;

    for step in 0..24 {
        match rng.next_u64() % 3 {
            // Join: a fresh single-peer swarm subscribes, then joins
            // through the founder.
            0 => {
                let mut s: Swarm<SharedSimNet> =
                    Swarm::with_code_registry(fabric.clone(), code.clone());
                let p = s.add_peer_as(PeerId(next_id), ConformanceConfig::pragmatic());
                next_id += 1;
                s.subscribe(
                    p,
                    TypeDescription::from_def(&samples::sensor_interest("churn")),
                );
                s.join(p1).unwrap();
                swarms.push(s);
                peer_of.push(p);
            }
            // Leave: a non-founder swarm departs (if any).
            1 if swarms.len() > 1 => {
                let victim = 1 + (rng.next_u64() as usize) % (swarms.len() - 1);
                let mut s = swarms.remove(victim);
                peer_of.remove(victim);
                s.leave();
            }
            // Publish: the founder routes one event to every live
            // subscriber.
            _ => {
                let h = swarms[0]
                    .peer_mut(p1)
                    .runtime
                    .instantiate_def(&event.def, &[])
                    .unwrap();
                let routed = swarms[0]
                    .route_object(p1, &Value::Obj(h), PayloadFormat::Binary)
                    .unwrap();
                log.extend_from_slice(&(routed as u64).to_le_bytes());
            }
        }
        pump(&mut swarms);

        // Record every delivery in fixed swarm order — the byte log any
        // reordering would corrupt.
        log.push(0xFE);
        log.push(step);
        for (i, s) in swarms.iter_mut().enumerate() {
            let p = peer_of[i];
            for d in s.peer_mut(p).take_deliveries() {
                match d {
                    Delivery::Accepted { from, interest, .. } => {
                        log.push(b'A');
                        log.extend_from_slice(&p.0.to_le_bytes());
                        log.extend_from_slice(&from.0.to_le_bytes());
                        if let Some(name) = interest {
                            log.extend_from_slice(name.full().as_bytes());
                        }
                    }
                    Delivery::Rejected { from, type_name } => {
                        log.push(b'R');
                        log.extend_from_slice(&p.0.to_le_bytes());
                        log.extend_from_slice(&from.0.to_le_bytes());
                        log.extend_from_slice(type_name.full().as_bytes());
                    }
                }
            }
        }
    }

    // Fold the fabric-wide counters in: identical scripts must also cost
    // identical traffic, message by message and byte by byte.
    let m = fabric.metrics();
    log.extend_from_slice(&m.messages.to_le_bytes());
    log.extend_from_slice(&m.bytes.to_le_bytes());
    log.extend_from_slice(&m.batched_frames().to_le_bytes());
    log
}

#[test]
fn seeded_churn_is_byte_identical_across_runs() {
    let first = churn_run(42);
    let second = churn_run(42);
    assert!(!first.is_empty());
    assert_eq!(first, second, "same seed, same fabric, same bytes");
}

#[test]
fn different_seeds_take_different_trajectories() {
    // Not a determinism requirement per se, but it proves the script is
    // actually seed-sensitive (a constant log would vacuously pass the
    // identity check above).
    assert_ne!(churn_run(42), churn_run(1234));
}
