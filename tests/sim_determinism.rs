//! `SharedSimNet` multi-swarm determinism: the virtual-time fabric's
//! whole value is reproducibility, so a seeded churn script — joins,
//! leaves, routed publishes — must produce a **byte-identical** delivery
//! log across two runs. Any hidden iteration-order or timing
//! nondeterminism in the shared fabric, the membership gossip, or the
//! interest router would scramble the log and fail the comparison.

use pti_core::prelude::*;
use pti_core::samples;

/// The tiny deterministic PRNG driving the churn script (SplitMix64).
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Sweeps every swarm until a full pass moves no traffic.
fn pump(swarms: &mut [Swarm<SharedSimNet>]) {
    let mut last = u64::MAX;
    loop {
        for s in swarms.iter_mut() {
            s.run().unwrap();
        }
        let now = swarms[0].metrics().messages;
        if now == last {
            return;
        }
        last = now;
    }
}

/// Runs the seeded churn script and returns its full observable log:
/// every delivery (in swarm order after every step) plus the final
/// traffic counters.
fn churn_run(seed: u64) -> Vec<u8> {
    let mut rng = SplitMix64(seed);
    let fabric = SharedSimNet::new(NetConfig::default());
    let code = CodeRegistry::new();
    let mut log = Vec::new();

    // The founder publishes the event type every routed publish uses.
    let mut founder: Swarm<SharedSimNet> = Swarm::with_code_registry(fabric.clone(), code.clone());
    let p1 = founder.add_peer_as(PeerId(1), ConformanceConfig::pragmatic());
    let event = samples::generate_population(7, 1, 1.0).remove(0);
    founder.publish(p1, event.assembly.clone()).unwrap();

    // `swarms[0]` stays the founder; later entries churn in and out.
    let mut swarms = vec![founder];
    let mut peer_of = vec![p1];
    let mut next_id = 2u32;

    for step in 0..24 {
        match rng.next_u64() % 3 {
            // Join: a fresh single-peer swarm subscribes, then joins
            // through the founder.
            0 => {
                let mut s: Swarm<SharedSimNet> =
                    Swarm::with_code_registry(fabric.clone(), code.clone());
                let p = s.add_peer_as(PeerId(next_id), ConformanceConfig::pragmatic());
                next_id += 1;
                s.subscribe(
                    p,
                    TypeDescription::from_def(&samples::sensor_interest("churn")),
                );
                s.join(p1).unwrap();
                swarms.push(s);
                peer_of.push(p);
            }
            // Leave: a non-founder swarm departs (if any).
            1 if swarms.len() > 1 => {
                let victim = 1 + (rng.next_u64() as usize) % (swarms.len() - 1);
                let mut s = swarms.remove(victim);
                peer_of.remove(victim);
                s.leave();
            }
            // Publish: the founder routes one event to every live
            // subscriber.
            _ => {
                let h = swarms[0]
                    .peer_mut(p1)
                    .runtime
                    .instantiate_def(&event.def, &[])
                    .unwrap();
                let routed = swarms[0]
                    .route_object(p1, &Value::Obj(h), PayloadFormat::Binary)
                    .unwrap();
                log.extend_from_slice(&(routed as u64).to_le_bytes());
            }
        }
        pump(&mut swarms);

        // Record every delivery in fixed swarm order — the byte log any
        // reordering would corrupt.
        log.push(0xFE);
        log.push(step);
        for (i, s) in swarms.iter_mut().enumerate() {
            let p = peer_of[i];
            for d in s.peer_mut(p).take_deliveries() {
                match d {
                    Delivery::Accepted { from, interest, .. } => {
                        log.push(b'A');
                        log.extend_from_slice(&p.0.to_le_bytes());
                        log.extend_from_slice(&from.0.to_le_bytes());
                        if let Some(name) = interest {
                            log.extend_from_slice(name.full().as_bytes());
                        }
                    }
                    Delivery::Rejected { from, type_name } => {
                        log.push(b'R');
                        log.extend_from_slice(&p.0.to_le_bytes());
                        log.extend_from_slice(&from.0.to_le_bytes());
                        log.extend_from_slice(type_name.full().as_bytes());
                    }
                }
            }
        }
    }

    // Fold the fabric-wide counters in: identical scripts must also cost
    // identical traffic, message by message and byte by byte.
    let m = fabric.metrics();
    log.extend_from_slice(&m.messages.to_le_bytes());
    log.extend_from_slice(&m.bytes.to_le_bytes());
    log.extend_from_slice(&m.batched_frames().to_le_bytes());
    log
}

/// Sweeps every swarm to quiescence *through* at-least-once retransmit
/// deadlines: drain, then jump the shared virtual clock to the earliest
/// armed deadline, until every reliable link is settled or shed.
fn pump_durable(swarms: &mut [Swarm<SharedSimNet>]) {
    loop {
        pump(swarms);
        let Some(deadline) = swarms
            .iter()
            .filter_map(Swarm::next_delivery_deadline_us)
            .min()
        else {
            return;
        };
        if !swarms[0].net_mut().advance_virtual_time(deadline) {
            return;
        }
    }
}

/// The faulty analogue of [`churn_run`]: the same churn shapes under an
/// `AtLeastOnce` group with a seeded [`FaultPlan`] — probabilistic loss
/// and duplication plus one partition that heals — installed on the
/// shared fabric. The log additionally folds in the isolated dispatch
/// errors, the founder's delivery-repair counters, and the fabric's
/// fault counters: *everything* observable about the fault handling
/// must be a pure function of the seed.
fn faulty_churn_run(seed: u64) -> Vec<u8> {
    let mut rng = SplitMix64(seed);
    let fabric = SharedSimNet::new(NetConfig::default());
    let code = CodeRegistry::new();
    let mut log = Vec::new();

    let mut founder: Swarm<SharedSimNet> = Swarm::with_code_registry(fabric.clone(), code.clone());
    founder.set_qos(QoS::AtLeastOnce);
    founder.set_retransmit(2_000, 6);
    let p1 = founder.add_peer_as(PeerId(1), ConformanceConfig::pragmatic());
    let event = samples::generate_population(7, 1, 1.0).remove(0);
    founder.publish(p1, event.assembly.clone()).unwrap();

    // Loss + duplication from the first send, and one partition that
    // isolates the founder for a window of fabric sends before healing
    // — all decided by the plan's own seeded stream.
    fabric.install_fault_plan(
        FaultPlan::new(seed ^ 0xFA17)
            .with_loss(40)
            .with_duplication(25)
            .with_partition([p1], 30, 60),
    );

    let mut swarms = vec![founder];
    let mut peer_of = vec![p1];
    let mut next_id = 2u32;

    for step in 0..24 {
        match rng.next_u64() % 3 {
            0 => {
                let mut s: Swarm<SharedSimNet> =
                    Swarm::with_code_registry(fabric.clone(), code.clone());
                s.set_qos(QoS::AtLeastOnce);
                s.set_retransmit(2_000, 6);
                let p = s.add_peer_as(PeerId(next_id), ConformanceConfig::pragmatic());
                next_id += 1;
                s.subscribe(
                    p,
                    TypeDescription::from_def(&samples::sensor_interest("churn")),
                );
                s.join(p1).unwrap();
                swarms.push(s);
                peer_of.push(p);
            }
            1 if swarms.len() > 1 => {
                let victim = 1 + (rng.next_u64() as usize) % (swarms.len() - 1);
                let mut s = swarms.remove(victim);
                peer_of.remove(victim);
                s.leave();
            }
            _ => {
                let h = swarms[0]
                    .peer_mut(p1)
                    .runtime
                    .instantiate_def(&event.def, &[])
                    .unwrap();
                let routed = swarms[0]
                    .route_object(p1, &Value::Obj(h), PayloadFormat::Binary)
                    .unwrap();
                log.extend_from_slice(&(routed as u64).to_le_bytes());
            }
        }
        pump_durable(&mut swarms);

        log.push(0xFE);
        log.push(step);
        for (i, s) in swarms.iter_mut().enumerate() {
            let p = peer_of[i];
            for d in s.peer_mut(p).take_deliveries() {
                match d {
                    Delivery::Accepted { from, interest, .. } => {
                        log.push(b'A');
                        log.extend_from_slice(&p.0.to_le_bytes());
                        log.extend_from_slice(&from.0.to_le_bytes());
                        if let Some(name) = interest {
                            log.extend_from_slice(name.full().as_bytes());
                        }
                    }
                    Delivery::Rejected { from, type_name } => {
                        log.push(b'R');
                        log.extend_from_slice(&p.0.to_le_bytes());
                        log.extend_from_slice(&from.0.to_le_bytes());
                        log.extend_from_slice(type_name.full().as_bytes());
                    }
                }
            }
            // Isolated errors (lost control gossip, shed links) are part
            // of the observable outcome too.
            for (at, e) in s.take_dispatch_errors() {
                log.push(b'E');
                log.extend_from_slice(&at.0.to_le_bytes());
                log.extend_from_slice(e.to_string().as_bytes());
            }
        }
    }

    // The founder's repair counters: the *work* the faults caused must
    // replay identically, not just the deliveries.
    let st = swarms[0].delivery_stats();
    for v in [
        st.frames_sent,
        st.retransmits,
        st.delivered,
        st.link_duplicates,
        st.duplicates_suppressed,
        st.unreachable,
    ] {
        log.extend_from_slice(&v.to_le_bytes());
    }
    let m = fabric.metrics();
    log.extend_from_slice(&m.messages.to_le_bytes());
    log.extend_from_slice(&m.bytes.to_le_bytes());
    log.extend_from_slice(&m.batched_frames().to_le_bytes());
    log.extend_from_slice(&m.faults_dropped.to_le_bytes());
    log.extend_from_slice(&m.faults_duplicated.to_le_bytes());
    log.extend_from_slice(&m.faults_partitioned.to_le_bytes());
    log
}

/// The sharded analogue: the same seeded churn script on a 2-shard
/// `ShardedHost` with autonomy off, every joiner explicitly pinned by
/// id. Returns one byte log **per shard** — deliveries recorded on the
/// shard that owns the member, plus that shard's own traffic counters.
/// The serialized two-phase barrier is what makes this reproducible:
/// with autonomy off, shards only run inside `run_until_quiescent`'s
/// round-robin, so bridge interleavings are a pure function of the
/// script.
fn sharded_churn_run(seed: u64) -> Vec<Vec<u8>> {
    let mut rng = SplitMix64(seed);
    let mut host = ShardedHost::new(2);
    host.set_autonomous(false);
    let code = CodeRegistry::new();
    let mut logs = vec![Vec::new(), Vec::new()];

    // The founder lives on shard 0 and publishes the event type.
    let founder_slot = {
        let code = code.clone();
        host.mount_pinned(0, move |net| Swarm::with_code_registry(net, code))
    };
    let p1 = host.with_swarm(founder_slot, |s| {
        let p = s.add_peer_as(PeerId(1), ConformanceConfig::pragmatic());
        let event = samples::generate_population(7, 1, 1.0).remove(0);
        s.publish(p, event.assembly.clone()).unwrap();
        p
    });

    // `members[0]` stays the founder; later entries churn in and out.
    let mut members = vec![(founder_slot, p1)];
    let mut next_id = 2u32;

    for step in 0..24 {
        match rng.next_u64() % 3 {
            // Join: a fresh single-peer swarm, pinned by id parity so
            // the placement is a pure function of the script.
            0 => {
                let id = next_id;
                next_id += 1;
                let slot = {
                    let code = code.clone();
                    host.mount_pinned((id as usize) % 2, move |net| {
                        Swarm::with_code_registry(net, code)
                    })
                };
                let p = host.with_swarm(slot, move |s| {
                    let p = s.add_peer_as(PeerId(id), ConformanceConfig::pragmatic());
                    s.subscribe(
                        p,
                        TypeDescription::from_def(&samples::sensor_interest("churn")),
                    );
                    s.join(PeerId(1)).unwrap();
                    p
                });
                members.push((slot, p));
            }
            // Leave: a non-founder departs (gossip first, then the
            // slot is unmounted so its proxies are revoked fabric-wide).
            1 if members.len() > 1 => {
                let victim = 1 + (rng.next_u64() as usize) % (members.len() - 1);
                let (slot, _) = members.remove(victim);
                host.with_swarm(slot, |s| s.leave());
                host.unmount(slot);
            }
            // Publish: the founder routes one event to every live
            // subscriber, local or across the bridge.
            _ => {
                let routed = host.with_swarm(founder_slot, move |s| {
                    let event = samples::generate_population(7, 1, 1.0).remove(0);
                    let h = s
                        .peer_mut(p1)
                        .runtime
                        .instantiate_def(&event.def, &[])
                        .unwrap();
                    s.route_object(p1, &Value::Obj(h), PayloadFormat::Binary)
                        .unwrap()
                });
                logs[0].extend_from_slice(&(routed as u64).to_le_bytes());
            }
        }
        host.run_until_quiescent().unwrap();

        // Record every delivery on the shard that owns the member, in
        // fixed member order.
        for log in &mut logs {
            log.push(0xFE);
            log.push(step);
        }
        for &(slot, p) in &members {
            let shard = host.shard_of(slot);
            let chunk = host.with_swarm(slot, move |s| {
                let mut b = Vec::new();
                for d in s.peer_mut(p).take_deliveries() {
                    match d {
                        Delivery::Accepted { from, interest, .. } => {
                            b.push(b'A');
                            b.extend_from_slice(&p.0.to_le_bytes());
                            b.extend_from_slice(&from.0.to_le_bytes());
                            if let Some(name) = interest {
                                b.extend_from_slice(name.full().as_bytes());
                            }
                        }
                        Delivery::Rejected { from, type_name } => {
                            b.push(b'R');
                            b.extend_from_slice(&p.0.to_le_bytes());
                            b.extend_from_slice(&from.0.to_le_bytes());
                            b.extend_from_slice(type_name.full().as_bytes());
                        }
                    }
                }
                b
            });
            logs[shard].extend_from_slice(&chunk);
        }
    }

    // Fold each shard's own traffic counters in (messages and bytes —
    // not wakeups or busy time, which are scheduling detail, not
    // protocol observables).
    for (shard, log) in logs.iter_mut().enumerate() {
        let m = host.exec(shard, |h| Transport::metrics(&h.reactor()));
        log.extend_from_slice(&m.messages.to_le_bytes());
        log.extend_from_slice(&m.bytes.to_le_bytes());
    }
    logs
}

#[test]
fn seeded_churn_is_byte_identical_across_runs() {
    let first = churn_run(42);
    let second = churn_run(42);
    assert!(!first.is_empty());
    assert_eq!(first, second, "same seed, same fabric, same bytes");
}

#[test]
fn sharded_churn_is_byte_identical_per_shard_across_runs() {
    let first = sharded_churn_run(42);
    let second = sharded_churn_run(42);
    assert!(first.iter().all(|log| !log.is_empty()));
    assert_eq!(
        first, second,
        "same seed, same pinning, same per-shard bytes"
    );
    // And the script is actually shard-sensitive: both shards saw work.
    assert_ne!(first[0], first[1]);
}

#[test]
fn faulty_churn_is_byte_identical_across_runs() {
    let first = faulty_churn_run(42);
    let second = faulty_churn_run(42);
    assert!(!first.is_empty());
    assert_eq!(
        first, second,
        "same seed, same fault plan, same bytes — deliveries, repairs and fault counters included"
    );
}

#[test]
fn faulty_churn_actually_exercises_the_fault_plan() {
    // Guard against a vacuous determinism check: the chosen seed must
    // really drop, duplicate and partition traffic, and the reliable
    // layer must really repair some of it.
    let log = faulty_churn_run(42);
    assert!(!log.is_empty());
    let tail = &log[log.len() - 48..];
    let dropped = u64::from_le_bytes(tail[24..32].try_into().unwrap());
    let duplicated = u64::from_le_bytes(tail[32..40].try_into().unwrap());
    let partitioned = u64::from_le_bytes(tail[40..48].try_into().unwrap());
    assert!(dropped > 0, "plan dropped nothing");
    assert!(duplicated > 0, "plan duplicated nothing");
    assert!(partitioned > 0, "partition never severed a send");
}

#[test]
fn faulty_churn_is_seed_sensitive() {
    assert_ne!(faulty_churn_run(42), faulty_churn_run(1234));
}

#[test]
fn different_seeds_take_different_trajectories() {
    // Not a determinism requirement per se, but it proves the script is
    // actually seed-sensitive (a constant log would vacuously pass the
    // identity check above).
    assert_ne!(churn_run(42), churn_run(1234));
}
