//! Concurrency integration: real threads exchanging PTI envelopes over
//! the crossbeam [`LiveBus`] fabric.
//!
//! The virtual-time swarm is single-threaded by design; this test shows
//! the same wire artifacts (hybrid envelopes, type descriptions) flowing
//! between *actually concurrent* peers, with each side running its own
//! runtime, conformance checker and proxy construction.

use std::thread;

use pti_core::prelude::*;
use pti_core::samples;
use pti_net::LiveBus;
use pti_serialize::{description_from_string, description_to_string, Payload};

#[test]
fn two_threads_exchange_conformant_objects() {
    let bus = LiveBus::new();
    let producer_ep = bus.join(PeerId(1));
    let consumer_ep = bus.join(PeerId(2));

    const N: usize = 50;

    // Producer thread: vendor-a Person objects, serialized into hybrid
    // envelopes; answers description requests.
    let producer = thread::spawn(move || {
        let def = samples::person_vendor_a();
        let desc_xml = description_to_string(&TypeDescription::from_def(&def));
        let mut rt = Runtime::new();
        samples::person_assembly(&def).install(&mut rt).unwrap();

        for i in 0..N {
            let v = samples::make_person(&mut rt, &format!("p{i}"));
            let env = ObjectEnvelope {
                type_name: def.name.clone(),
                type_guid: def.guid,
                assemblies: vec![],
                payload: Payload::Binary(pti_serialize::to_binary(&rt, &v).unwrap()),
            };
            producer_ep
                .send(PeerId(2), "object", env.to_string_compact().into_bytes())
                .unwrap();
        }
        // Serve description requests until the consumer says goodbye.
        loop {
            let m = producer_ep.recv().expect("bus alive");
            match m.kind.as_str() {
                "desc-request" => producer_ep
                    .send(m.from, "desc-response", desc_xml.clone().into_bytes())
                    .unwrap(),
                "done" => break,
                other => panic!("unexpected message kind {other}"),
            }
        }
    });

    // Consumer thread: vendor-b view; requests the description once,
    // checks conformance, then deserializes every object.
    //
    // Deserializing needs the *code* in a real deployment; in this
    // threaded test both vendors' assemblies are available locally (the
    // protocol-level download dance is covered by the SimNet suites).
    let consumer = thread::spawn(move || {
        let b_def = samples::person_vendor_b();
        let a_def = samples::person_vendor_a();
        let mut rt = Runtime::new();
        samples::person_assembly(&b_def).install(&mut rt).unwrap();
        samples::person_assembly(&a_def).install(&mut rt).unwrap();
        let checker = ConformanceChecker::new(ConformanceConfig::pragmatic());
        let interest = TypeDescription::from_def(&b_def);

        let mut remote_desc: Option<TypeDescription> = None;
        let mut received = Vec::new();
        let mut pending = Vec::new();
        while received.len() < N {
            let m = consumer_ep.recv().expect("bus alive");
            match m.kind.as_str() {
                "object" => {
                    let env =
                        ObjectEnvelope::from_string(&String::from_utf8(m.payload).unwrap())
                            .unwrap();
                    if remote_desc.is_none() {
                        if pending.is_empty() {
                            consumer_ep
                                .send(m.from, "desc-request", env.type_name.full().into())
                                .unwrap();
                        }
                        pending.push(env);
                        continue;
                    }
                    received.push(env);
                }
                "desc-response" => {
                    let desc =
                        description_from_string(&String::from_utf8(m.payload).unwrap()).unwrap();
                    checker
                        .check(&desc, &interest, &rt.registry, &rt.registry)
                        .expect("vendor-a Person conforms to vendor-b interest");
                    remote_desc = Some(desc);
                    received.append(&mut pending);
                }
                other => panic!("unexpected message kind {other}"),
            }
        }
        consumer_ep.send(PeerId(1), "done", vec![]).unwrap();

        // Materialize everything and read through conformant proxies.
        let desc = remote_desc.expect("description downloaded");
        let conf = checker.check(&desc, &interest, &rt.registry, &rt.registry).unwrap();
        let mut names = Vec::new();
        for env in received {
            let Payload::Binary(bytes) = &env.payload else { panic!() };
            let h = pti_serialize::from_binary(&mut rt, bytes).unwrap().as_obj().unwrap();
            let proxy = DynamicProxy::from_conformance(&interest, &conf, h);
            names.push(
                proxy
                    .invoke(&mut rt, "getPersonName", &[])
                    .unwrap()
                    .as_str()
                    .unwrap()
                    .to_string(),
            );
        }
        names
    });

    producer.join().unwrap();
    let names = consumer.join().unwrap();
    assert_eq!(names.len(), N);
    // Per-link FIFO on the bus: names arrive in publication order.
    for (i, n) in names.iter().enumerate() {
        assert_eq!(n, &format!("p{i}"));
    }
    // Traffic accounting happened on the shared bus.
    let m = bus.metrics();
    assert_eq!(m.kind("object").messages as usize, N);
    assert_eq!(m.kind("desc-request").messages, 1);
    assert_eq!(m.kind("desc-response").messages, 1);
}

#[test]
fn many_concurrent_publishers_fan_into_one_consumer() {
    let bus = LiveBus::new();
    const PUBS: usize = 4;
    const PER_PUB: usize = 25;

    let consumer_ep = bus.join(PeerId(100));
    let mut handles = Vec::new();
    for p in 0..PUBS {
        let ep = bus.join(PeerId(p as u32 + 1));
        handles.push(thread::spawn(move || {
            let def = samples::person_vendor_a();
            let mut rt = Runtime::new();
            samples::person_assembly(&def).install(&mut rt).unwrap();
            for i in 0..PER_PUB {
                let v = samples::make_person(&mut rt, &format!("pub{p}-{i}"));
                let env = ObjectEnvelope {
                    type_name: def.name.clone(),
                    type_guid: def.guid,
                    assemblies: vec![],
                    payload: Payload::Binary(pti_serialize::to_binary(&rt, &v).unwrap()),
                };
                ep.send(PeerId(100), "object", env.to_string_compact().into_bytes())
                    .unwrap();
            }
        }));
    }

    let mut rt = Runtime::new();
    samples::person_assembly(&samples::person_vendor_a()).install(&mut rt).unwrap();
    let mut per_pub = vec![0usize; PUBS];
    for _ in 0..PUBS * PER_PUB {
        let m = consumer_ep.recv().unwrap();
        let env = ObjectEnvelope::from_string(&String::from_utf8(m.payload).unwrap()).unwrap();
        let Payload::Binary(bytes) = &env.payload else { panic!() };
        let h = pti_serialize::from_binary(&mut rt, bytes).unwrap().as_obj().unwrap();
        let name = rt.get_field(h, "name").unwrap().as_str().unwrap().to_string();
        let pub_idx: usize = name[3..name.find('-').unwrap()].parse().unwrap();
        per_pub[pub_idx] += 1;
    }
    for h in handles {
        h.join().unwrap();
    }
    assert!(per_pub.iter().all(|&c| c == PER_PUB), "{per_pub:?}");
    assert_eq!(bus.metrics().kind("object").messages as usize, PUBS * PER_PUB);
}
