//! Concurrency integration: real threads running the *shared* optimistic
//! protocol over the crossbeam-free [`LiveBus`] fabric.
//!
//! Each thread owns a `Swarm<LiveBus>` — the exact state machine the
//! virtual-time experiments run — wired to a clone of one bus handle and
//! a shared [`CodeRegistry`]. No hand-built envelopes, no re-implemented
//! description dance: the protocol code is identical to the SimNet
//! path, only the fabric differs.

use std::thread;
use std::time::{Duration, Instant};

use pti_core::prelude::*;
use pti_core::samples;

/// How long a serving loop tolerates silence before deciding the
/// exchange is over (generous: CI machines stall).
const IDLE: Duration = Duration::from_secs(5);

#[test]
fn two_threads_exchange_conformant_objects() {
    let bus = LiveBus::new();
    let code = CodeRegistry::new();
    const N: usize = 50;

    let producer_id = PeerId(1);
    let consumer_id = PeerId(2);

    // Register both inboxes on their threads' handles *before* spawning
    // so neither side can send into a not-yet-registered peer.
    let mut producer_bus = bus.clone();
    producer_bus.register(producer_id);
    let mut consumer_bus = bus.clone();
    consumer_bus.register(consumer_id);

    // Producer thread: publishes vendor-a Person, sends N objects, then
    // serves description/assembly fetches until the consumer says done.
    let producer_code = code.clone();
    // pti-allow(thread-confinement): LiveBus integration test — one swarm per OS thread is the workload under test
    let producer = thread::spawn(move || {
        let mut swarm: Swarm<LiveBus> = Swarm::with_code_registry(producer_bus, producer_code);
        swarm.add_peer_as(producer_id, ConformanceConfig::pragmatic());
        let a_def = samples::person_vendor_a();
        swarm
            .publish(producer_id, samples::person_assembly(&a_def))
            .unwrap();

        for i in 0..N {
            let v =
                samples::make_person(&mut swarm.peer_mut(producer_id).runtime, &format!("p{i}"));
            swarm
                .send_object(producer_id, consumer_id, &v, PayloadFormat::Binary)
                .unwrap();
        }
        // Serve protocol requests until the consumer's `done` arrives.
        loop {
            let Some((at, msg)) = swarm.poll_deadline(Instant::now() + IDLE).unwrap() else {
                panic!("producer idled out before the consumer finished");
            };
            if msg.kind == "done" {
                break;
            }
            assert!(
                swarm.dispatch(at, msg).unwrap(),
                "only protocol traffic expected"
            );
        }
    });

    // Consumer thread: vendor-b interest; the swarm's protocol engine
    // fetches the description, checks conformance, downloads the code
    // from the shared registry, and delivers proxied events.
    let consumer_code = code.clone();
    // pti-allow(thread-confinement): LiveBus integration test — one swarm per OS thread is the workload under test
    let consumer = thread::spawn(move || {
        let mut swarm: Swarm<LiveBus> = Swarm::with_code_registry(consumer_bus, consumer_code);
        swarm.add_peer_as(consumer_id, ConformanceConfig::pragmatic());
        let b_def = samples::person_vendor_b();
        swarm
            .peer_mut(consumer_id)
            .subscribe(TypeDescription::from_def(&b_def));

        let mut deliveries = Vec::new();
        while deliveries.len() < N {
            let Some((at, msg)) = swarm.poll_deadline(Instant::now() + IDLE).unwrap() else {
                panic!(
                    "consumer idled out with {}/{N} deliveries",
                    deliveries.len()
                );
            };
            assert!(
                swarm.dispatch(at, msg).unwrap(),
                "only protocol traffic expected"
            );
            deliveries.extend(swarm.peer_mut(consumer_id).take_deliveries());
        }
        swarm
            .send_raw(consumer_id, producer_id, "done", vec![])
            .unwrap();

        // Read every event through the consumer's own contract.
        let mut names = Vec::new();
        for d in deliveries {
            let Delivery::Accepted {
                proxy: Some(proxy), ..
            } = d
            else {
                panic!("expected accepted proxied deliveries, got {d:?}");
            };
            names.push(
                proxy
                    .invoke(
                        &mut swarm.peer_mut(consumer_id).runtime,
                        "getPersonName",
                        &[],
                    )
                    .unwrap()
                    .as_str()
                    .unwrap()
                    .to_string(),
            );
        }
        let stats = swarm.peer(consumer_id).stats;
        (names, stats)
    });

    producer.join().unwrap();
    let (names, stats) = consumer.join().unwrap();
    assert_eq!(names.len(), N);
    // Per-link FIFO on the bus: names arrive in publication order.
    for (i, n) in names.iter().enumerate() {
        assert_eq!(n, &format!("p{i}"));
    }
    // The optimistic protocol paid for description and code exactly once.
    assert_eq!(stats.desc_requests, 1);
    assert_eq!(stats.asm_requests, 1);
    assert_eq!(stats.accepted as usize, N);
    let m = bus.metrics();
    assert_eq!(m.kind("object").messages as usize, N);
    assert_eq!(m.kind("desc-request").messages, 1);
    assert_eq!(m.kind("desc-response").messages, 1);
    assert_eq!(m.kind("asm-request").messages, 1);
    assert_eq!(m.kind("asm-response").messages, 1);
}

#[test]
fn many_concurrent_publishers_fan_into_one_consumer() {
    let bus = LiveBus::new();
    let code = CodeRegistry::new();
    const PUBS: usize = 4;
    const PER_PUB: usize = 25;

    let consumer_id = PeerId(100);

    // The consumer's inbox must exist before any publisher sends.
    let mut consumer_bus = bus.clone();
    consumer_bus.register(consumer_id);

    let mut handles = Vec::new();
    for p in 0..PUBS {
        let pub_bus = bus.clone();
        let pub_code = code.clone();
        // pti-allow(thread-confinement): LiveBus integration test — one swarm per OS thread is the workload under test
        handles.push(thread::spawn(move || {
            let id = PeerId(p as u32 + 1);
            let mut swarm: Swarm<LiveBus> = Swarm::with_code_registry(pub_bus, pub_code);
            swarm.add_peer_as(id, ConformanceConfig::pragmatic());
            let def = samples::person_vendor_a();
            swarm.publish(id, samples::person_assembly(&def)).unwrap();
            for i in 0..PER_PUB {
                let v =
                    samples::make_person(&mut swarm.peer_mut(id).runtime, &format!("pub{p}-{i}"));
                swarm
                    .send_object(id, consumer_id, &v, PayloadFormat::Binary)
                    .unwrap();
            }
            // Serve desc/asm fetches until the consumer broadcasts done.
            loop {
                let Some((at, msg)) = swarm.poll_deadline(Instant::now() + IDLE).unwrap() else {
                    panic!("publisher {p} idled out");
                };
                if msg.kind == "done" {
                    break;
                }
                assert!(swarm.dispatch(at, msg).unwrap());
            }
        }));
    }

    // Consumer on the main thread, same protocol engine.
    let mut swarm: Swarm<LiveBus> = Swarm::with_code_registry(consumer_bus, code);
    swarm.add_peer_as(consumer_id, ConformanceConfig::pragmatic());
    let b_def = samples::person_vendor_b();
    swarm
        .peer_mut(consumer_id)
        .subscribe(TypeDescription::from_def(&b_def));

    let mut accepted = Vec::new();
    while accepted.len() < PUBS * PER_PUB {
        let Some((at, msg)) = swarm.poll_deadline(Instant::now() + IDLE).unwrap() else {
            panic!(
                "consumer idled out with {}/{} events",
                accepted.len(),
                PUBS * PER_PUB
            );
        };
        assert!(swarm.dispatch(at, msg).unwrap());
        accepted.extend(swarm.peer_mut(consumer_id).take_deliveries());
    }
    for p in 0..PUBS {
        swarm
            .send_raw(consumer_id, PeerId(p as u32 + 1), "done", vec![])
            .unwrap();
    }
    for h in handles {
        h.join().unwrap();
    }

    // Every publisher's full stream arrived and materialized.
    let mut per_pub = vec![0usize; PUBS];
    for d in accepted {
        let Delivery::Accepted { value, .. } = d else {
            panic!("{d:?}")
        };
        let h = value.as_obj().unwrap();
        let name = swarm
            .peer_mut(consumer_id)
            .runtime
            .get_field(h, "name")
            .unwrap()
            .as_str()
            .unwrap()
            .to_string();
        let pub_idx: usize = name[3..name.find('-').unwrap()].parse().unwrap();
        per_pub[pub_idx] += 1;
    }
    assert!(per_pub.iter().all(|&c| c == PER_PUB), "{per_pub:?}");
    assert_eq!(
        bus.metrics().kind("object").messages as usize,
        PUBS * PER_PUB
    );
    // The same logical assembly is fetched at most once per distinct
    // download path (timing decides how many paths are in flight before
    // content-hash identity starts deduplicating).
    let stats = swarm.peer(consumer_id).stats;
    assert!((1..=PUBS as u64).contains(&stats.asm_requests), "{stats:?}");
    assert!(
        (1..=PUBS as u64).contains(&stats.desc_requests),
        "{stats:?}"
    );
}
