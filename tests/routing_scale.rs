//! The acceptance gate for interest-indexed routing: with a 32-member
//! group and one subscriber per event type, routed delivery must cut
//! `object` traffic at least 4x against the flood baseline — the
//! O(members)→O(subscribers) saving the routing layer exists for.

use pti_core::prelude::*;
use pti_core::samples::{topic_event_assembly, topic_event_def};

const MEMBERS: usize = 32;
const TOPICS: usize = 8;
const EVENTS: usize = 16;

/// Runs the scenario in one delivery mode; returns (object messages on
/// the wire — standalone plus batched frames —, events delivered).
fn run(mode: DeliveryMode) -> (u64, usize) {
    let tps = TypedPubSub::builder().delivery_mode(mode).build();
    let members: Vec<Member<_>> = (0..MEMBERS).map(|_| tps.add_member()).collect();
    let publisher = &members[0];

    let publishers: Vec<Publisher<_>> = (0..TOPICS)
        .map(|t| publisher.publisher_for(topic_event_assembly(t)).unwrap())
        .collect();

    // Exactly one subscriber per topic; the remaining members are idle.
    let subs: Vec<Subscription<_>> = (0..TOPICS)
        .map(|t| members[1 + t].subscribe(TypeDescription::from_def(&topic_event_def(t, "sub"))))
        .collect();

    for i in 0..EVENTS {
        publishers[i % TOPICS]
            .publish_with(|e| {
                e.set("value", i as f64)?;
                Ok(())
            })
            .unwrap();
        // Pump per event so each burst ships immediately (batching across
        // a burst is measured elsewhere; here we compare per-event cost).
        tps.run().unwrap();
    }

    let delivered: usize = subs.iter().map(|s| s.drain().len()).sum();
    let m = tps.metrics();
    (m.kind("object").messages + m.batched_frames(), delivered)
}

#[test]
fn routed_cuts_object_messages_at_least_4x_vs_flood() {
    let (routed_objects, routed_delivered) = run(DeliveryMode::Routed);
    let (flood_objects, flood_delivered) = run(DeliveryMode::Flood);

    // Both modes deliver the same events to the same subscribers...
    assert_eq!(routed_delivered, EVENTS);
    assert_eq!(flood_delivered, EVENTS);

    // ...but routing sends one envelope per event (the one subscriber)
    // while flooding sends one per other member.
    assert_eq!(routed_objects as usize, EVENTS);
    assert_eq!(flood_objects as usize, EVENTS * (MEMBERS - 1));
    assert!(
        flood_objects >= 4 * routed_objects,
        "expected >=4x saving, got routed={routed_objects} flood={flood_objects}"
    );
}
