//! Cross-"language" interoperability: the same module written with C#,
//! VB and Java naming conventions, plus a look at how the name-matcher
//! configuration (the paper's "wildcards could be allowed" remark)
//! changes what interoperates.
//!
//! The paper's platform (.NET) already unifies *languages* under one type
//! system; type interoperability unifies *types*. We simulate three
//! dialect conventions of one logical `Customer` module — PascalCase
//! (C#-style), `get_`/snake_case (Java-ish via a port), and prefixed VB
//! style — and show which pairs conform under each matcher.
//!
//! Run with: `cargo run --example cross_language`

use pti_core::prelude::*;
use pti_metamodel::bodies;

/// C#-style: PascalCase members.
fn customer_csharp() -> TypeDef {
    TypeDef::class("Customer", "csharp")
        .field("name", primitives::STRING)
        .field("balance", primitives::INT64)
        .method("GetName", vec![], primitives::STRING)
        .method(
            "Credit",
            vec![ParamDef::new("amount", primitives::INT64)],
            primitives::VOID,
        )
        .ctor(vec![])
        .build()
}

/// Java-port style: camelCase with `get` prefixes.
fn customer_java() -> TypeDef {
    TypeDef::class("Customer", "java")
        .field("name", primitives::STRING)
        .field("balance", primitives::INT64)
        .method("getName", vec![], primitives::STRING)
        .method(
            "credit",
            vec![ParamDef::new("amount", primitives::INT64)],
            primitives::VOID,
        )
        .ctor(vec![])
        .build()
}

/// VB-style: verbose prefixed names.
fn customer_vb() -> TypeDef {
    TypeDef::class("Customer", "vb")
        .field("name", primitives::STRING)
        .field("balance", primitives::INT64)
        .method("GetCustomerName", vec![], primitives::STRING)
        .method(
            "CreditCustomer",
            vec![ParamDef::new("amount", primitives::INT64)],
            primitives::VOID,
        )
        .ctor(vec![])
        .build()
}

fn assembly_for(def: &TypeDef) -> Assembly {
    let g = def.guid;
    let mut b = Assembly::builder(format!("customer-{}", def.guid))
        .ty(def.clone())
        .ctor_body(g, 0, bodies::ctor_assign(&[]));
    for m in &def.methods {
        if m.arity() == 0 {
            b = b.body(g, m.name.clone(), 0, bodies::getter("name"));
        } else {
            b = b.body(
                g,
                m.name.clone(),
                1,
                std::sync::Arc::new(|rt: &mut Runtime, recv: Value, args: &[Value]| {
                    let h = recv.as_obj()?;
                    let bal = rt.get_field(h, "balance")?.as_i64()? + args[0].as_i64()?;
                    rt.set_field(h, "balance", Value::I64(bal))?;
                    Ok(Value::Null)
                }),
            );
        }
    }
    b.build()
}

fn check_pair(label: &str, cfg: ConformanceConfig, source: &TypeDef, target: &TypeDef) -> bool {
    let mut reg = TypeRegistry::with_builtins();
    reg.register(source.clone()).unwrap();
    reg.register(target.clone()).unwrap();
    let checker = ConformanceChecker::new(cfg);
    let ok = checker.conforms(
        &TypeDescription::from_def(source),
        &TypeDescription::from_def(target),
        &reg,
        &reg,
    );
    println!("  {label:<52} {}", if ok { "conforms" } else { "REJECTED" });
    ok
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cs = customer_csharp();
    let java = customer_java();
    let vb = customer_vb();

    println!("paper profile (exact case-insensitive names):");
    // Case-insensitivity makes C# and Java dialects interoperate already.
    assert!(check_pair(
        "C# Customer   as  Java Customer",
        ConformanceConfig::paper(),
        &cs,
        &java
    ));
    assert!(check_pair(
        "Java Customer as  C# Customer",
        ConformanceConfig::paper(),
        &java,
        &cs
    ));
    // The VB dialect renames methods — exact matching rejects it.
    assert!(!check_pair(
        "VB Customer   as  C# Customer",
        ConformanceConfig::paper(),
        &vb,
        &cs
    ));

    println!("\npragmatic profile (token-subsequence member names):");
    assert!(check_pair(
        "VB Customer   as  C# Customer",
        ConformanceConfig::pragmatic(),
        &vb,
        &cs
    ));
    assert!(check_pair(
        "VB Customer   as  Java Customer",
        ConformanceConfig::pragmatic(),
        &vb,
        &java
    ));

    println!("\nwildcard type names (subscription patterns):");
    let pattern = TypeDef::class("Cust*", "pattern")
        .field("name", primitives::STRING)
        .field("balance", primitives::INT64)
        .method("GetName", vec![], primitives::STRING)
        .method(
            "Credit",
            vec![ParamDef::new("a", primitives::INT64)],
            primitives::VOID,
        )
        .build();
    let wild = ConformanceConfig::pragmatic().with_type_names(NameMatcher::Wildcard);
    assert!(check_pair(
        "C# Customer   as  Cust* pattern",
        wild,
        &cs,
        &pattern
    ));

    // Full end-to-end: the VB object used through the C# contract, via
    // the typed session API (SOAP on the wire, as the paper's platform
    // would).
    println!("\nend-to-end: a VB-built object used through the C# contract");
    let tps = TypedPubSub::builder()
        .default_conformance(ConformanceConfig::pragmatic())
        .payload_format(PayloadFormat::Soap)
        .build();
    let vb_member = tps.add_member();
    let cs_member = tps.add_member();
    let customers = vb_member.publisher_for(assembly_for(&vb))?;
    let cs_sub = cs_member.subscribe(TypeDescription::from_def(&cs));

    customers.publish_with(|c| {
        c.set("name", "Wernher")?;
        Ok(())
    })?;
    tps.run()?;

    let events = cs_sub.drain();
    let event = events.first().expect("the VB Customer conforms");
    let name = cs_sub.invoke(event, "GetName", &[])?;
    cs_sub.invoke(event, "Credit", &[Value::I64(100)])?;
    let balance = cs_sub.get_field(event, "balance")?;
    println!("  GetName() -> {name}, balance after Credit(100) = {balance}");
    assert_eq!(name.as_str()?, "Wernher");
    assert_eq!(balance.as_i64()?, 100);
    Ok(())
}
