//! Type-based publish/subscribe with interoperable event types.
//!
//! The paper's Section 8: classic TPS forces publishers and subscribers
//! to agree a priori on event types. With type interoperability, a
//! market-data publisher and two independently written subscribers
//! interoperate although each party defined "the same" event type on its
//! own: one subscriber wrote its own `StockQuote` with renamed accessors,
//! the other only cares about `NewsFlash` events and never pays for quote
//! code downloads.
//!
//! Run with: `cargo run --example tps_news`

use pti_core::prelude::*;
use pti_metamodel::bodies;

fn quote_type(salt: &str, getter: &str) -> TypeDef {
    TypeDef::class("StockQuote", salt)
        .field("symbol", primitives::STRING)
        .field("price", primitives::FLOAT64)
        .method(getter, vec![], primitives::STRING)
        .ctor(vec![])
        .build()
}

fn news_type(salt: &str) -> TypeDef {
    TypeDef::class("NewsFlash", salt)
        .field("headline", primitives::STRING)
        .method("getHeadline", vec![], primitives::STRING)
        .ctor(vec![])
        .build()
}

fn assembly_for(def: &TypeDef, getter_field: &str) -> Assembly {
    let g = def.guid;
    let mut b = Assembly::builder(format!("{}-{}", def.name.simple(), def.guid))
        .ty(def.clone())
        .ctor_body(g, 0, bodies::ctor_assign(&[]));
    for m in &def.methods {
        b = b.body(g, m.name.clone(), 0, bodies::getter(getter_field));
    }
    b.build()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut tps = TypedPubSub::new(NetConfig::default());
    let exchange = tps.add_member(ConformanceConfig::pragmatic());
    let trader = tps.add_member(ConformanceConfig::pragmatic());
    let newsroom = tps.add_member(ConformanceConfig::pragmatic());

    // The exchange publishes quotes and news under its own types.
    let quote = quote_type("exchange", "getSymbol");
    let news = news_type("exchange");
    tps.publish_types(exchange, assembly_for(&quote, "symbol"))?;
    tps.publish_types(exchange, assembly_for(&news, "headline"))?;

    // The trader wrote its own StockQuote with a differently named getter.
    let trader_quote = quote_type("trader", "getQuoteSymbol");
    tps.subscribe(trader, TypeDescription::from_def(&trader_quote));
    // The newsroom wants news only.
    let newsroom_news = news_type("newsroom");
    tps.subscribe(newsroom, TypeDescription::from_def(&newsroom_news));

    // A burst of events.
    for (sym, price) in [("ACME", 42.5), ("GLOBEX", 17.25), ("INITECH", 3.5)] {
        let rt = &mut tps.member_mut(exchange).runtime;
        let e = rt.instantiate(&"StockQuote".into(), &[])?;
        rt.set_field(e, "symbol", Value::from(sym))?;
        rt.set_field(e, "price", Value::F64(price))?;
        tps.publish(exchange, &Value::Obj(e), PayloadFormat::Binary)?;
    }
    {
        let rt = &mut tps.member_mut(exchange).runtime;
        let n = rt.instantiate(&"NewsFlash".into(), &[])?;
        rt.set_field(n, "headline", Value::from("Types now interoperable!"))?;
        tps.publish(exchange, &Value::Obj(n), PayloadFormat::Binary)?;
    }
    tps.run()?;

    // The trader got exactly the quotes, through its own contract.
    let quotes = tps.notifications(trader);
    println!("trader received {} quote(s):", quotes.len());
    for ev in &quotes {
        let proxy = ev.proxy.as_ref().expect("conformant event has a proxy");
        let sym = proxy.invoke(&mut tps.member_mut(trader).runtime, "getQuoteSymbol", &[])?;
        println!("  quote: {sym}");
    }
    assert_eq!(quotes.len(), 3);

    // The newsroom got exactly the news.
    let flashes = tps.notifications(newsroom);
    println!("newsroom received {} flash(es):", flashes.len());
    for ev in &flashes {
        let proxy = ev.proxy.as_ref().unwrap();
        let h = proxy.invoke(&mut tps.member_mut(newsroom).runtime, "getHeadline", &[])?;
        println!("  news: {h}");
    }
    assert_eq!(flashes.len(), 1);

    // The optimistic protocol never shipped quote code to the newsroom.
    let newsroom_stats = tps.member(newsroom).stats;
    println!(
        "\nnewsroom: {} accepted, {} rejected, {} code download(s)",
        newsroom_stats.accepted, newsroom_stats.rejected, newsroom_stats.asm_requests
    );
    assert_eq!(newsroom_stats.asm_requests, 1, "news assembly only");
    Ok(())
}
