//! Type-based publish/subscribe with interoperable event types.
//!
//! The paper's Section 8: classic TPS forces publishers and subscribers
//! to agree a priori on event types. With type interoperability, a
//! market-data publisher and two independently written subscribers
//! interoperate although each party defined "the same" event type on its
//! own: one subscriber wrote its own `StockQuote` with renamed accessors,
//! the other only cares about `NewsFlash` events and never pays for quote
//! code downloads.
//!
//! Run with: `cargo run --example tps_news`

use pti_core::prelude::*;
use pti_metamodel::bodies;

fn quote_type(salt: &str, getter: &str) -> TypeDef {
    TypeDef::class("StockQuote", salt)
        .field("symbol", primitives::STRING)
        .field("price", primitives::FLOAT64)
        .method(getter, vec![], primitives::STRING)
        .ctor(vec![])
        .build()
}

fn news_type(salt: &str) -> TypeDef {
    TypeDef::class("NewsFlash", salt)
        .field("headline", primitives::STRING)
        .method("getHeadline", vec![], primitives::STRING)
        .ctor(vec![])
        .build()
}

fn assembly_for(def: &TypeDef, getter_field: &str) -> Assembly {
    let g = def.guid;
    let mut b = Assembly::builder(format!("{}-{}", def.name.simple(), def.guid))
        .ty(def.clone())
        .ctor_body(g, 0, bodies::ctor_assign(&[]));
    for m in &def.methods {
        b = b.body(g, m.name.clone(), 0, bodies::getter(getter_field));
    }
    b.build()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tps = TypedPubSub::builder()
        .default_conformance(ConformanceConfig::pragmatic())
        .payload_format(PayloadFormat::Binary)
        .build();
    let exchange = tps.add_member();
    let trader = tps.add_member();
    let newsroom = tps.add_member();

    // The exchange publishes quotes and news under its own types, with a
    // typed publisher for each event type.
    let quotes =
        exchange.publisher_for(assembly_for(&quote_type("exchange", "getSymbol"), "symbol"))?;
    let news = exchange.publisher_for(assembly_for(&news_type("exchange"), "headline"))?;

    // The trader wrote its own StockQuote with a differently named getter.
    let trader_sub = trader.subscribe(TypeDescription::from_def(&quote_type(
        "trader",
        "getQuoteSymbol",
    )));
    // The newsroom wants news only.
    let newsroom_sub = newsroom.subscribe(TypeDescription::from_def(&news_type("newsroom")));

    // A burst of events.
    for (sym, price) in [("ACME", 42.5), ("GLOBEX", 17.25), ("INITECH", 3.5)] {
        quotes.publish_with(|e| {
            e.set("symbol", sym)?.set("price", price)?;
            Ok(())
        })?;
    }
    news.publish_with(|e| {
        e.set("headline", "Types now interoperable!")?;
        Ok(())
    })?;
    tps.run()?;

    // The trader got exactly the quotes, through its own contract.
    let got_quotes = trader_sub.drain();
    println!("trader received {} quote(s):", got_quotes.len());
    for ev in &got_quotes {
        let sym = trader_sub.invoke(ev, "getQuoteSymbol", &[])?;
        println!("  quote: {sym}");
    }
    assert_eq!(got_quotes.len(), 3);

    // The newsroom got exactly the news.
    let flashes = newsroom_sub.drain();
    println!("newsroom received {} flash(es):", flashes.len());
    for ev in &flashes {
        let h = newsroom_sub.invoke(ev, "getHeadline", &[])?;
        println!("  news: {h}");
    }
    assert_eq!(flashes.len(), 1);

    // The optimistic protocol never shipped quote code to the newsroom.
    let newsroom_stats = newsroom.stats();
    println!(
        "\nnewsroom: {} accepted, {} rejected, {} code download(s)",
        newsroom_stats.accepted, newsroom_stats.rejected, newsroom_stats.asm_requests
    );
    assert_eq!(newsroom_stats.asm_requests, 1, "news assembly only");
    Ok(())
}
