//! Quickstart: the paper's Section 3.1 scenario, end to end.
//!
//! Two programmers independently implement the same logical `Person`
//! module — one with `getName`/`setName`, the other with
//! `getPersonName`/`setPersonName`. Alice sends her object to Bob; the
//! optimistic protocol fetches the description, the conformance rules
//! match it against Bob's own Person type, the code is downloaded, and
//! Bob uses the object through a dynamic proxy speaking *his* contract.
//!
//! Run with: `cargo run --example quickstart`

use pti_core::prelude::*;
use pti_core::samples;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A two-peer swarm on a simulated LAN.
    let mut swarm = Swarm::new(NetConfig::default());
    let alice = swarm.add_peer(ConformanceConfig::pragmatic());
    let bob = swarm.add_peer(ConformanceConfig::pragmatic());

    // Alice publishes vendor A's Person implementation.
    let a_def = samples::person_vendor_a();
    swarm.publish(alice, samples::person_assembly(&a_def))?;
    println!("alice published {} ({})", a_def.name, a_def.guid);

    // Bob knows only vendor B's Person and subscribes to it.
    let b_def = samples::person_vendor_b();
    swarm.publish(bob, samples::person_assembly(&b_def))?;
    swarm.peer_mut(bob).subscribe(TypeDescription::from_def(&b_def));
    println!("bob   subscribed to {} ({})", b_def.name, b_def.guid);

    // Alice ships an object by value.
    let v = samples::make_person(&mut swarm.peer_mut(alice).runtime, "Ada Lovelace");
    swarm.send_object(alice, bob, &v, PayloadFormat::Binary)?;
    swarm.run()?;

    // Bob received it, conformance-checked, downloaded the code, and got
    // a proxy exposing *his* method names.
    let deliveries = swarm.peer_mut(bob).take_deliveries();
    let Delivery::Accepted { interest, proxy: Some(proxy), .. } = &deliveries[0] else {
        panic!("expected an accepted delivery, got {deliveries:?}");
    };
    println!(
        "bob   accepted an object matching interest {:?}",
        interest.as_ref().unwrap().full()
    );

    let name = proxy.invoke(&mut swarm.peer_mut(bob).runtime, "getPersonName", &[])?;
    println!("bob   calls getPersonName() -> {name}");
    proxy.invoke(
        &mut swarm.peer_mut(bob).runtime,
        "setPersonName",
        &[Value::from("Grace Hopper")],
    )?;
    let renamed = proxy.invoke(&mut swarm.peer_mut(bob).runtime, "getPersonName", &[])?;
    println!("bob   after setPersonName(): {renamed}");

    // The protocol's traffic, for the curious.
    let m = swarm.net().metrics();
    println!(
        "\nwire: {} messages, {} bytes total (desc fetches: {}, code fetches: {})",
        m.messages,
        m.bytes,
        m.kind("desc-request").messages,
        m.kind("asm-request").messages,
    );
    assert_eq!(name.as_str()?, "Ada Lovelace");
    assert_eq!(renamed.as_str()?, "Grace Hopper");
    Ok(())
}
