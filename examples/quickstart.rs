//! Quickstart: the paper's Section 3.1 scenario, end to end, on the
//! typed session API.
//!
//! Two programmers independently implement the same logical `Person`
//! module — one with `getName`/`setName`, the other with
//! `getPersonName`/`setPersonName`. Alice publishes her type and emits
//! an event; the optimistic protocol fetches the description, the
//! conformance rules match it against Bob's own Person type, the code is
//! downloaded, and Bob uses the object through his subscription — which
//! speaks *his* contract.
//!
//! Run with: `cargo run --example quickstart`

use pti_core::prelude::*;
use pti_core::samples;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A two-member group on a simulated LAN.
    let tps = TypedPubSub::builder()
        .net(NetConfig::default())
        .default_conformance(ConformanceConfig::pragmatic())
        .build();
    let alice = tps.add_member();
    let bob = tps.add_member();

    // Alice publishes vendor A's Person implementation and gets a typed
    // publisher back.
    let a_def = samples::person_vendor_a();
    let people = alice.publisher_for(samples::person_assembly(&a_def))?;
    println!("alice published {} ({})", a_def.name, a_def.guid);

    // Bob knows only vendor B's Person and subscribes to it.
    let b_def = samples::person_vendor_b();
    let sub = bob.subscribe(TypeDescription::from_def(&b_def));
    println!("bob   subscribed to {} ({})", b_def.name, b_def.guid);

    // Alice ships an object by value — no envelopes, no runtime access.
    people.publish_with(|p| {
        p.set("name", "Ada Lovelace")?;
        Ok(())
    })?;
    tps.run()?;

    // Bob received it, conformance-checked, downloaded the code, and the
    // subscription exposes *his* method names.
    let events = sub.drain();
    let event = events.first().expect("one accepted event");
    println!(
        "bob   accepted an object matching interest {:?}",
        event.interest.full()
    );

    let name = sub.invoke(event, "getPersonName", &[])?;
    println!("bob   calls getPersonName() -> {name}");
    sub.invoke(event, "setPersonName", &[Value::from("Grace Hopper")])?;
    let renamed = sub.invoke(event, "getPersonName", &[])?;
    println!("bob   after setPersonName(): {renamed}");

    // The protocol's traffic, for the curious.
    let m = tps.metrics();
    println!(
        "\nwire: {} messages, {} bytes total (desc fetches: {}, code fetches: {})",
        m.messages,
        m.bytes,
        m.kind("desc-request").messages,
        m.kind("asm-request").messages,
    );
    assert_eq!(name.as_str()?, "Ada Lovelace");
    assert_eq!(renamed.as_str()?, "Grace Hopper");
    Ok(())
}
