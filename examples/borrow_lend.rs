//! The borrow/lend abstraction with type conformance as the matching
//! criterion (paper Section 8).
//!
//! A lab lends out instruments (live objects, pass-by-reference). A
//! visiting researcher asks for "anything conforming to *my* notion of a
//! printer" — written independently, with different method names. The
//! market matches by implicit structural conformance and hands back a
//! remote proxy; invocations run on the lender's machine.
//!
//! Run with: `cargo run --example borrow_lend`

use std::sync::Arc;

use pti_core::prelude::*;
use pti_metamodel::bodies;

fn lab_printer() -> (TypeDef, Assembly) {
    let def = TypeDef::class("Printer", "lab")
        .field("jobs", primitives::INT32)
        .method(
            "printDocument",
            vec![ParamDef::new("doc", primitives::STRING)],
            primitives::INT32,
        )
        .method("getJobs", vec![], primitives::INT32)
        .ctor(vec![])
        .build();
    let g = def.guid;
    let asm = Assembly::builder("lab-printer")
        .ty(def.clone())
        .body(
            g,
            "printDocument",
            1,
            Arc::new(|rt: &mut Runtime, recv: Value, args: &[Value]| {
                let h = recv.as_obj()?;
                let jobs = rt.get_field(h, "jobs")?.as_i32()? + 1;
                rt.set_field(h, "jobs", Value::I32(jobs))?;
                println!(
                    "    [lab printer] printing {:?} (job #{jobs})",
                    args[0].as_str()?
                );
                Ok(Value::I32(jobs))
            }),
        )
        .body(g, "getJobs", 0, bodies::getter("jobs"))
        .ctor_body(g, 0, bodies::ctor_assign(&[]))
        .build();
    (def, asm)
}

fn lab_telescope() -> (TypeDef, Assembly) {
    let def = TypeDef::class("Telescope", "lab")
        .field("azimuth", primitives::FLOAT64)
        .method(
            "pointAt",
            vec![ParamDef::new("az", primitives::FLOAT64)],
            primitives::VOID,
        )
        .ctor(vec![])
        .build();
    let g = def.guid;
    let asm = Assembly::builder("lab-telescope")
        .ty(def.clone())
        .body(g, "pointAt", 1, bodies::setter("azimuth"))
        .ctor_body(g, 0, bodies::ctor_assign(&[]))
        .build();
    (def, asm)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut market = Market::new(NetConfig::default());
    let lab = market.add_peer(ConformanceConfig::pragmatic());
    let researcher = market.add_peer(ConformanceConfig::pragmatic());

    // The lab publishes and lends two instruments.
    let (_printer_def, printer_asm) = lab_printer();
    let (_scope_def, scope_asm) = lab_telescope();
    market.publish(lab, printer_asm)?;
    market.publish(lab, scope_asm)?;
    let printer = market
        .peer_mut(lab)
        .runtime
        .instantiate(&"Printer".into(), &[])?;
    let scope = market
        .peer_mut(lab)
        .runtime
        .instantiate(&"Telescope".into(), &[])?;
    let printer_id = market.lend(lab, printer)?;
    let _scope_id = market.lend(lab, scope)?;
    println!("lab lends {} resource(s)", market.lendings().len());

    // The researcher's own idea of a printer (different method names).
    let my_printer = TypeDef::class("Printer", "researcher")
        .field("jobs", primitives::INT32)
        .method(
            "print",
            vec![ParamDef::new("doc", primitives::STRING)],
            primitives::INT32,
        )
        .method("getJobs", vec![], primitives::INT32)
        .build();

    let borrowed = market
        .borrow(researcher, &TypeDescription::from_def(&my_printer))?
        .expect("the lab's printer conforms");
    println!(
        "researcher borrowed lending #{} exposing `{}`",
        borrowed.lending_id, borrowed.proxy.expected.name
    );

    // Use it under the researcher's own contract; state stays at the lab.
    let j1 = market.invoke(researcher, &borrowed, "print", &[Value::from("thesis.pdf")])?;
    let j2 = market.invoke(researcher, &borrowed, "print", &[Value::from("slides.pdf")])?;
    let jobs = market.invoke(researcher, &borrowed, "getJobs", &[])?;
    println!("researcher printed jobs {j1} and {j2}; printer reports {jobs} total");
    assert_eq!(jobs.as_i32()?, 2);

    // The printer is exclusive while borrowed.
    let other = market.add_peer(ConformanceConfig::pragmatic());
    assert!(market
        .borrow(other, &TypeDescription::from_def(&my_printer))?
        .is_none());
    market.give_back(printer_id)?;
    assert!(market
        .borrow(other, &TypeDescription::from_def(&my_printer))?
        .is_some());
    println!("after give_back, another peer could borrow it");

    // Pass-by-reference means no assembly ever crossed the wire.
    let m = market.swarm().net().metrics();
    println!(
        "\nwire: {} messages, {} bytes; code downloads: {}",
        m.messages,
        m.bytes,
        m.kind("asm-request").messages
    );
    assert_eq!(m.kind("asm-request").messages, 0);
    Ok(())
}
