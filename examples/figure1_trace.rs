//! A message-by-message trace of Figure 1's optimistic protocol.
//!
//! Sends three objects — a novel conformant type, a repeat of it, and a
//! non-conformant type — and prints every message the protocol put on the
//! wire, annotated with the step of Figure 1 it corresponds to.
//!
//! Run with: `cargo run --example figure1_trace`

use pti_core::prelude::*;
use pti_core::samples;

fn step_of(kind: &str) -> &'static str {
    match kind {
        "object" => "1. Receiving an object",
        "desc-request" => "2. Asking for the new object type information",
        "desc-response" => "3. Receiving type information, rules check",
        "asm-request" => "4. Types conform, asking for the code",
        "asm-response" => "5. Receiving the code, object usable",
        _ => "",
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut swarm = Swarm::new(NetConfig::default());
    let alice = swarm.add_peer(ConformanceConfig::pragmatic());
    let bob = swarm.add_peer(ConformanceConfig::pragmatic());

    let a = samples::person_vendor_a();
    swarm.publish(alice, samples::person_assembly(&a))?;
    let spaceship = TypeDef::class("Spaceship", "alice")
        .field("fuel", primitives::INT64)
        .ctor(vec![])
        .build();
    let sg = spaceship.guid;
    swarm.publish(
        alice,
        Assembly::builder("ship")
            .ty(spaceship)
            .ctor_body(sg, 0, bodies::ctor_assign(&[]))
            .build(),
    )?;
    let b = samples::person_vendor_b();
    swarm.peer_mut(bob).subscribe(TypeDescription::from_def(&b));

    let scenarios: Vec<(&str, Value)> = vec![
        ("novel conformant type (full handshake)", {
            samples::make_person(&mut swarm.peer_mut(alice).runtime, "first")
        }),
        ("same type again (no fetches)", {
            samples::make_person(&mut swarm.peer_mut(alice).runtime, "second")
        }),
        ("non-conformant type (no code download)", {
            let rt = &mut swarm.peer_mut(alice).runtime;
            Value::Obj(rt.instantiate(&"Spaceship".into(), &[])?)
        }),
    ];

    for (label, v) in scenarios {
        println!("\n=== {label} ===");
        swarm.send_object(alice, bob, &v, PayloadFormat::Binary)?;
        // Drive the protocol one message at a time so we can narrate.
        while let Some((at, msg)) = swarm.poll_message()? {
            println!(
                "  {} -> {}  {:<14} {:>6} B   {}",
                msg.from,
                at,
                msg.kind,
                msg.payload.len(),
                step_of(msg.kind),
            );
            swarm.dispatch(at, msg)?;
        }
        for d in swarm.peer_mut(bob).take_deliveries() {
            match d {
                Delivery::Accepted { interest, .. } => {
                    println!(
                        "  => accepted (interest: {:?})",
                        interest.map(|i| i.full().to_string())
                    )
                }
                Delivery::Rejected { type_name, .. } => {
                    println!("  => rejected `{type_name}` — assembly never requested")
                }
            }
        }
    }

    let m = swarm.net().metrics();
    println!(
        "\ntotals: {} messages, {} bytes; code fetched {} time(s) for 3 objects",
        m.messages,
        m.bytes,
        m.kind("asm-request").messages
    );
    assert_eq!(m.kind("asm-request").messages, 1);
    Ok(())
}
