//! Fixture tests: every rule in the table is proven by one firing case
//! and one suppressed case, against the real engine and real scope
//! decisions (fake workspace paths pick the scope).
//!
//! The fixture sources live in raw strings; the outer lexer blanks
//! string interiors, so the violations (and the allow comments) inside
//! them are invisible when `pti-lint` scans this file itself.

use pti_analyze::engine::{analyze_source, Finding};
use pti_analyze::rules::Severity;

fn deny_hits<'a>(findings: &'a [Finding], rule: &str) -> Vec<&'a Finding> {
    findings
        .iter()
        .filter(|f| f.rule == rule && f.severity == Severity::Deny)
        .collect()
}

fn advisory_hits<'a>(findings: &'a [Finding], rule: &str) -> Vec<&'a Finding> {
    findings
        .iter()
        .filter(|f| f.rule == rule && f.severity == Severity::Advisory)
        .collect()
}

// ---------------------------------------------------------------- wall-clock

#[test]
fn wall_clock_fires_in_fabric_code() {
    let src = r#"
fn deadline() -> Instant {
    Instant::now() + Duration::from_millis(5)
}
"#;
    let f = analyze_source("crates/net/src/sim.rs", src);
    let hits = deny_hits(&f, "wall-clock");
    assert_eq!(hits.len(), 1, "{f:?}");
    assert_eq!(hits[0].line, 3);
    assert!(hits[0].message.contains("Instant::now"));
}

#[test]
fn wall_clock_suppressed_by_allow() {
    let src = r#"
// pti-allow(wall-clock): live-bus driver owns real time by design
fn deadline() -> Instant {
    Instant::now() + Duration::from_millis(5)
}
"#;
    // The allow on line 2 binds to line 3 (next code line) — move it
    // onto the violating line's predecessor instead:
    let src2 = r#"
fn deadline() -> Instant {
    // pti-allow(wall-clock): live-bus driver owns real time by design
    Instant::now() + Duration::from_millis(5)
}
"#;
    let f = analyze_source("crates/net/src/sim.rs", src2);
    assert!(deny_hits(&f, "wall-clock").is_empty(), "{f:?}");
    assert!(advisory_hits(&f, "unused-allow").is_empty(), "{f:?}");
    // The mis-bound variant still fires (allow bound to `fn deadline`).
    let f = analyze_source("crates/net/src/sim.rs", src);
    assert_eq!(deny_hits(&f, "wall-clock").len(), 1);
}

#[test]
fn wall_clock_exempts_bus_and_tests() {
    let src = "fn x() { let t = Instant::now(); }\n";
    assert!(deny_hits(&analyze_source("crates/net/src/bus.rs", src), "wall-clock").is_empty());
    assert!(deny_hits(&analyze_source("tests/live_bus.rs", src), "wall-clock").is_empty());
    let in_test = "#[cfg(test)]\nmod tests {\n    fn x() { let t = Instant::now(); }\n}\n";
    assert!(deny_hits(
        &analyze_source("crates/net/src/sim.rs", in_test),
        "wall-clock"
    )
    .is_empty());
}

// ------------------------------------------------------------ unordered-iter

#[test]
fn unordered_iter_fires_on_declared_hash_field() {
    let src = r#"
struct Directory {
    routes: HashMap<PeerId, usize>,
}
impl Directory {
    fn dump(&self) -> Vec<usize> {
        self.routes.values().copied().collect()
    }
}
"#;
    let f = analyze_source("crates/transport/src/sharded.rs", src);
    let hits = deny_hits(&f, "unordered-iter");
    assert_eq!(hits.len(), 1, "{f:?}");
    assert_eq!(hits[0].line, 7);
    assert!(hits[0].message.contains("routes"));
}

#[test]
fn unordered_iter_sees_through_rustfmt_chain_breaks() {
    let src = r#"
struct Directory {
    routes: HashMap<PeerId, usize>,
}
impl Directory {
    fn dump(&self) -> Vec<(PeerId, usize)> {
        self.routes
            .iter()
            .map(|(k, v)| (*k, *v))
            .collect()
    }
}
"#;
    let f = analyze_source("crates/transport/src/sharded.rs", src);
    assert_eq!(deny_hits(&f, "unordered-iter").len(), 1, "{f:?}");
}

#[test]
fn unordered_iter_suppressed_by_allow() {
    let src = r#"
struct Directory {
    routes: HashMap<PeerId, usize>,
}
impl Directory {
    fn dump(&self) -> Vec<usize> {
        // pti-allow(unordered-iter): sorted on the next line before use
        let mut v: Vec<usize> = self.routes.values().copied().collect();
        v.sort();
        v
    }
}
"#;
    let f = analyze_source("crates/transport/src/sharded.rs", src);
    assert!(deny_hits(&f, "unordered-iter").is_empty(), "{f:?}");
}

#[test]
fn unordered_iter_ignores_btree_and_out_of_scope_files() {
    let btree = r#"
struct Directory {
    routes: BTreeMap<PeerId, usize>,
}
impl Directory {
    fn dump(&self) -> Vec<usize> {
        self.routes.values().copied().collect()
    }
}
"#;
    let f = analyze_source("crates/transport/src/sharded.rs", btree);
    assert!(deny_hits(&f, "unordered-iter").is_empty(), "{f:?}");
    // Same hash-iterating source in a file whose order never reaches a
    // byte-compared log is out of scope.
    let hash = btree.replace("BTreeMap", "HashMap");
    let f = analyze_source("crates/tps/src/lib.rs", &hash);
    assert!(deny_hits(&f, "unordered-iter").is_empty(), "{f:?}");
}

// -------------------------------------------------------- thread-confinement

#[test]
fn thread_confinement_fires_outside_the_threaded_files() {
    let src = r#"
fn go() {
    std::thread::spawn(move || run());
}
"#;
    let f = analyze_source("crates/net/src/reactor.rs", src);
    let hits = deny_hits(&f, "thread-confinement");
    assert_eq!(hits.len(), 1, "{f:?}");
    assert_eq!(hits[0].line, 3);
}

#[test]
fn thread_confinement_suppressed_by_allow() {
    let src = r#"
fn go() {
    // pti-allow(thread-confinement): integration test drives one swarm per OS thread
    std::thread::spawn(move || run());
}
"#;
    let f = analyze_source("crates/net/src/reactor.rs", src);
    assert!(deny_hits(&f, "thread-confinement").is_empty(), "{f:?}");
}

#[test]
fn thread_confinement_exempts_the_threaded_files_only() {
    let src = "fn go() { std::thread::spawn(move || run()); }\n";
    for ok in [
        "crates/net/src/bus.rs",
        "crates/net/src/bridge.rs",
        "crates/transport/src/sharded.rs",
    ] {
        assert!(
            deny_hits(&analyze_source(ok, src), "thread-confinement").is_empty(),
            "{ok} should be exempt"
        );
    }
    // The rule is not test-exempt: a spawn in a #[cfg(test)] module of a
    // non-threaded file still fires.
    let in_test = "#[cfg(test)]\nmod tests {\n    fn go() { std::thread::spawn(|| ()); }\n}\n";
    assert_eq!(
        deny_hits(
            &analyze_source("crates/net/src/sim.rs", in_test),
            "thread-confinement"
        )
        .len(),
        1
    );
}

// -------------------------------------------------------------- panic-policy

#[test]
fn panic_policy_is_deny_on_fabric_crates_advisory_elsewhere() {
    let src = "fn take(o: Option<u32>) -> u32 { o.unwrap() }\n";
    let f = analyze_source("crates/net/src/sim.rs", src);
    assert_eq!(deny_hits(&f, "panic-policy").len(), 1, "{f:?}");
    let f = analyze_source("crates/tps/src/lib.rs", src);
    assert!(deny_hits(&f, "panic-policy").is_empty());
    assert_eq!(advisory_hits(&f, "panic-policy").len(), 1, "{f:?}");
    // Tests unwrap freely.
    let f = analyze_source("crates/net/tests/it.rs", src);
    assert!(f.iter().all(|f| f.rule != "panic-policy"), "{f:?}");
}

#[test]
fn panic_policy_suppressed_by_allow() {
    let src = r#"
fn take(o: Option<u32>) -> u32 {
    // pti-allow(panic-policy): caller checked is_some() on the line above
    o.unwrap()
}
"#;
    let f = analyze_source("crates/net/src/sim.rs", src);
    assert!(deny_hits(&f, "panic-policy").is_empty(), "{f:?}");
}

// ---------------------------------------------------------- print-discipline

#[test]
fn print_discipline_fires_in_library_code_only() {
    let src = "fn log(n: u64) { println!(\"sent {n}\"); }\n";
    let f = analyze_source("crates/transport/src/swarm.rs", src);
    assert_eq!(deny_hits(&f, "print-discipline").len(), 1, "{f:?}");
    // Binaries, bench and examples may print.
    for ok in [
        "crates/analyze/src/bin/pti_lint.rs",
        "crates/bench/src/main.rs",
        "examples/demo.rs",
    ] {
        assert!(
            analyze_source(ok, src)
                .iter()
                .all(|f| f.rule != "print-discipline"),
            "{ok} may print"
        );
    }
}

#[test]
fn print_discipline_suppressed_by_allow() {
    let src = r#"
fn log(n: u64) {
    // pti-allow(print-discipline): one-shot startup banner requested by operators
    println!("sent {n}");
}
"#;
    let f = analyze_source("crates/transport/src/swarm.rs", src);
    assert!(f.iter().all(|f| f.rule != "print-discipline"), "{f:?}");
}

// ------------------------------------------------------------ unbounded-queue

#[test]
fn unbounded_queue_fires_on_uncapped_field_pushes() {
    let src = r#"
impl Wire {
    fn enqueue(&mut self, msg: Msg) {
        self.outbox.push_back(msg);
    }
    fn record(&mut self, err: Error) {
        self.errors.push(err);
    }
}
"#;
    let f = analyze_source("crates/transport/src/swarm.rs", src);
    let hits = advisory_hits(&f, "unbounded-queue");
    assert_eq!(hits.len(), 2, "{f:?}");
    assert_eq!(hits[0].line, 4);
    assert_eq!(hits[1].line, 7);
}

#[test]
fn unbounded_queue_attributes_chained_pushes_to_the_statement_head() {
    let src = r#"
impl Wire {
    fn enqueue(&mut self, to: PeerId, msg: Msg) {
        self.outbox
            .entry(to)
            .or_default()
            .push(msg);
    }
}
"#;
    let f = analyze_source("crates/transport/src/swarm.rs", src);
    let hits = advisory_hits(&f, "unbounded-queue");
    assert_eq!(hits.len(), 1, "{f:?}");
    assert_eq!(hits[0].line, 4, "reported where the receiver lives");
}

#[test]
fn unbounded_queue_cleared_by_a_visible_cap_check() {
    let src = r#"
impl Wire {
    fn enqueue(&mut self, msg: Msg) {
        if self.outbox.len() >= self.cap {
            return;
        }
        self.outbox.push_back(msg);
    }
    fn retain_ring(&mut self, msg: Msg) {
        self.ring.push_back(msg);
        while self.ring.len() > self.depth {
            self.ring.pop_front();
        }
    }
}
"#;
    let f = analyze_source("crates/transport/src/delivery.rs", src);
    assert!(advisory_hits(&f, "unbounded-queue").is_empty(), "{f:?}");
}

#[test]
fn unbounded_queue_suppressed_by_allow_and_ignores_scratch_vecs() {
    let src = r#"
impl Wire {
    fn enqueue(&mut self, msg: Msg) {
        // pti-allow(unbounded-queue): drained fully at every flush
        self.outbox.push_back(msg);
    }
    fn collect(&self) -> Vec<u64> {
        let mut out = Vec::new();
        out.push(1);
        out
    }
}
"#;
    let f = analyze_source("crates/net/src/sim.rs", src);
    assert!(
        f.iter().all(|f| f.rule != "unbounded-queue"),
        "allowed + local scratch Vec: {f:?}"
    );
    assert!(advisory_hits(&f, "unused-allow").is_empty(), "{f:?}");
}

#[test]
fn unbounded_queue_scoped_to_queue_paths_and_exempts_tests() {
    let src = "fn f(&mut self) { self.q.push_back(1); }\n";
    assert!(
        analyze_source("crates/tps/src/lib.rs", src)
            .iter()
            .all(|f| f.rule != "unbounded-queue"),
        "out of scope"
    );
    let in_test = "#[cfg(test)]\nmod tests {\n    fn f(q: &mut Q) { q.inner.push_back(1); }\n}\n";
    assert!(
        analyze_source("crates/net/src/sim.rs", in_test)
            .iter()
            .all(|f| f.rule != "unbounded-queue"),
        "tests exempt"
    );
}

// -------------------------------------------------------- violations in text

#[test]
fn violations_inside_strings_and_comments_do_not_fire() {
    let src = r##"
fn doc() -> &'static str {
    // Instant::now() in a comment is prose, not code.
    r"Instant::now() and thread::spawn in a string are data"
}
"##;
    let f = analyze_source("crates/net/src/sim.rs", src);
    assert!(
        f.iter()
            .all(|f| f.rule != "wall-clock" && f.rule != "thread-confinement"),
        "{f:?}"
    );
}
