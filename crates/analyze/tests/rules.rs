//! Fixture tests: every rule in the table is proven by one firing case
//! and one suppressed case, against the real engine and real scope
//! decisions (fake workspace paths pick the scope).
//!
//! The fixture sources live in raw strings; the outer lexer blanks
//! string interiors, so the violations (and the allow comments) inside
//! them are invisible when `pti-lint` scans this file itself.

use pti_analyze::engine::{analyze_source, Finding};
use pti_analyze::rules::Severity;

fn deny_hits<'a>(findings: &'a [Finding], rule: &str) -> Vec<&'a Finding> {
    findings
        .iter()
        .filter(|f| f.rule == rule && f.severity == Severity::Deny)
        .collect()
}

fn advisory_hits<'a>(findings: &'a [Finding], rule: &str) -> Vec<&'a Finding> {
    findings
        .iter()
        .filter(|f| f.rule == rule && f.severity == Severity::Advisory)
        .collect()
}

// ---------------------------------------------------------------- wall-clock

#[test]
fn wall_clock_fires_in_fabric_code() {
    let src = r#"
fn deadline() -> Instant {
    Instant::now() + Duration::from_millis(5)
}
"#;
    let f = analyze_source("crates/net/src/sim.rs", src);
    let hits = deny_hits(&f, "wall-clock");
    assert_eq!(hits.len(), 1, "{f:?}");
    assert_eq!(hits[0].line, 3);
    assert!(hits[0].message.contains("Instant::now"));
}

#[test]
fn wall_clock_suppressed_by_allow() {
    let src = r#"
// pti-allow(wall-clock): live-bus driver owns real time by design
fn deadline() -> Instant {
    Instant::now() + Duration::from_millis(5)
}
"#;
    // The allow on line 2 binds to line 3 (next code line) — move it
    // onto the violating line's predecessor instead:
    let src2 = r#"
fn deadline() -> Instant {
    // pti-allow(wall-clock): live-bus driver owns real time by design
    Instant::now() + Duration::from_millis(5)
}
"#;
    let f = analyze_source("crates/net/src/sim.rs", src2);
    assert!(deny_hits(&f, "wall-clock").is_empty(), "{f:?}");
    assert!(advisory_hits(&f, "unused-allow").is_empty(), "{f:?}");
    // The mis-bound variant still fires (allow bound to `fn deadline`).
    let f = analyze_source("crates/net/src/sim.rs", src);
    assert_eq!(deny_hits(&f, "wall-clock").len(), 1);
}

#[test]
fn wall_clock_exempts_bus_and_tests() {
    let src = "fn x() { let t = Instant::now(); }\n";
    assert!(deny_hits(&analyze_source("crates/net/src/bus.rs", src), "wall-clock").is_empty());
    assert!(deny_hits(&analyze_source("tests/live_bus.rs", src), "wall-clock").is_empty());
    let in_test = "#[cfg(test)]\nmod tests {\n    fn x() { let t = Instant::now(); }\n}\n";
    assert!(deny_hits(
        &analyze_source("crates/net/src/sim.rs", in_test),
        "wall-clock"
    )
    .is_empty());
}

// ------------------------------------------------------------ unordered-iter

#[test]
fn unordered_iter_fires_on_declared_hash_field() {
    let src = r#"
struct Directory {
    routes: HashMap<PeerId, usize>,
}
impl Directory {
    fn dump(&self) -> Vec<usize> {
        self.routes.values().copied().collect()
    }
}
"#;
    let f = analyze_source("crates/transport/src/sharded.rs", src);
    let hits = deny_hits(&f, "unordered-iter");
    assert_eq!(hits.len(), 1, "{f:?}");
    assert_eq!(hits[0].line, 7);
    assert!(hits[0].message.contains("routes"));
}

#[test]
fn unordered_iter_sees_through_rustfmt_chain_breaks() {
    let src = r#"
struct Directory {
    routes: HashMap<PeerId, usize>,
}
impl Directory {
    fn dump(&self) -> Vec<(PeerId, usize)> {
        self.routes
            .iter()
            .map(|(k, v)| (*k, *v))
            .collect()
    }
}
"#;
    let f = analyze_source("crates/transport/src/sharded.rs", src);
    assert_eq!(deny_hits(&f, "unordered-iter").len(), 1, "{f:?}");
}

#[test]
fn unordered_iter_suppressed_by_allow() {
    let src = r#"
struct Directory {
    routes: HashMap<PeerId, usize>,
}
impl Directory {
    fn dump(&self) -> Vec<usize> {
        // pti-allow(unordered-iter): sorted on the next line before use
        let mut v: Vec<usize> = self.routes.values().copied().collect();
        v.sort();
        v
    }
}
"#;
    let f = analyze_source("crates/transport/src/sharded.rs", src);
    assert!(deny_hits(&f, "unordered-iter").is_empty(), "{f:?}");
}

#[test]
fn unordered_iter_ignores_btree_and_out_of_scope_files() {
    let btree = r#"
struct Directory {
    routes: BTreeMap<PeerId, usize>,
}
impl Directory {
    fn dump(&self) -> Vec<usize> {
        self.routes.values().copied().collect()
    }
}
"#;
    let f = analyze_source("crates/transport/src/sharded.rs", btree);
    assert!(deny_hits(&f, "unordered-iter").is_empty(), "{f:?}");
    // Same hash-iterating source in a file whose order never reaches a
    // byte-compared log is out of scope.
    let hash = btree.replace("BTreeMap", "HashMap");
    let f = analyze_source("crates/tps/src/lib.rs", &hash);
    assert!(deny_hits(&f, "unordered-iter").is_empty(), "{f:?}");
}

// -------------------------------------------------------- thread-confinement

#[test]
fn thread_confinement_fires_outside_the_threaded_files() {
    let src = r#"
fn go() {
    std::thread::spawn(move || run());
}
"#;
    let f = analyze_source("crates/net/src/reactor.rs", src);
    let hits = deny_hits(&f, "thread-confinement");
    assert_eq!(hits.len(), 1, "{f:?}");
    assert_eq!(hits[0].line, 3);
}

#[test]
fn thread_confinement_suppressed_by_allow() {
    let src = r#"
fn go() {
    // pti-allow(thread-confinement): integration test drives one swarm per OS thread
    std::thread::spawn(move || run());
}
"#;
    let f = analyze_source("crates/net/src/reactor.rs", src);
    assert!(deny_hits(&f, "thread-confinement").is_empty(), "{f:?}");
}

#[test]
fn thread_confinement_exempts_the_threaded_files_only() {
    let src = "fn go() { std::thread::spawn(move || run()); }\n";
    for ok in [
        "crates/net/src/bus.rs",
        "crates/net/src/bridge.rs",
        "crates/transport/src/sharded.rs",
    ] {
        assert!(
            deny_hits(&analyze_source(ok, src), "thread-confinement").is_empty(),
            "{ok} should be exempt"
        );
    }
    // The rule is not test-exempt: a spawn in a #[cfg(test)] module of a
    // non-threaded file still fires.
    let in_test = "#[cfg(test)]\nmod tests {\n    fn go() { std::thread::spawn(|| ()); }\n}\n";
    assert_eq!(
        deny_hits(
            &analyze_source("crates/net/src/sim.rs", in_test),
            "thread-confinement"
        )
        .len(),
        1
    );
}

// -------------------------------------------------------------- panic-policy

#[test]
fn panic_policy_is_deny_on_fabric_crates_advisory_elsewhere() {
    let src = "fn take(o: Option<u32>) -> u32 { o.unwrap() }\n";
    let f = analyze_source("crates/net/src/sim.rs", src);
    assert_eq!(deny_hits(&f, "panic-policy").len(), 1, "{f:?}");
    let f = analyze_source("crates/tps/src/lib.rs", src);
    assert!(deny_hits(&f, "panic-policy").is_empty());
    assert_eq!(advisory_hits(&f, "panic-policy").len(), 1, "{f:?}");
    // Tests unwrap freely.
    let f = analyze_source("crates/net/tests/it.rs", src);
    assert!(f.iter().all(|f| f.rule != "panic-policy"), "{f:?}");
}

#[test]
fn panic_policy_suppressed_by_allow() {
    let src = r#"
fn take(o: Option<u32>) -> u32 {
    // pti-allow(panic-policy): caller checked is_some() on the line above
    o.unwrap()
}
"#;
    let f = analyze_source("crates/net/src/sim.rs", src);
    assert!(deny_hits(&f, "panic-policy").is_empty(), "{f:?}");
}

// ---------------------------------------------------------- print-discipline

#[test]
fn print_discipline_fires_in_library_code_only() {
    let src = "fn log(n: u64) { println!(\"sent {n}\"); }\n";
    let f = analyze_source("crates/transport/src/swarm.rs", src);
    assert_eq!(advisory_hits(&f, "print-discipline").len(), 1, "{f:?}");
    // Binaries, bench and examples may print.
    for ok in [
        "crates/analyze/src/bin/pti_lint.rs",
        "crates/bench/src/main.rs",
        "examples/demo.rs",
    ] {
        assert!(
            analyze_source(ok, src)
                .iter()
                .all(|f| f.rule != "print-discipline"),
            "{ok} may print"
        );
    }
}

#[test]
fn print_discipline_suppressed_by_allow() {
    let src = r#"
fn log(n: u64) {
    // pti-allow(print-discipline): one-shot startup banner requested by operators
    println!("sent {n}");
}
"#;
    let f = analyze_source("crates/transport/src/swarm.rs", src);
    assert!(f.iter().all(|f| f.rule != "print-discipline"), "{f:?}");
}

// -------------------------------------------------------- violations in text

#[test]
fn violations_inside_strings_and_comments_do_not_fire() {
    let src = r##"
fn doc() -> &'static str {
    // Instant::now() in a comment is prose, not code.
    r"Instant::now() and thread::spawn in a string are data"
}
"##;
    let f = analyze_source("crates/net/src/sim.rs", src);
    assert!(
        f.iter()
            .all(|f| f.rule != "wall-clock" && f.rule != "thread-confinement"),
        "{f:?}"
    );
}
