//! Fixture tests for the interprocedural rules: each rule gets a firing
//! case, a suppressed case, and a cross-file reachability case (the
//! caller lives in a different module than the offending callee), run
//! through the public [`analyze_files`] entry point exactly as
//! `pti-lint` does.

use pti_analyze::{analyze_files, Analysis, Severity};

fn run(files: &[(&str, &str)]) -> Analysis {
    let owned: Vec<(String, String)> = files
        .iter()
        .map(|(p, s)| (p.to_string(), s.to_string()))
        .collect();
    analyze_files(&owned)
}

fn rule_hits<'a>(a: &'a Analysis, rule: &str) -> Vec<&'a pti_analyze::Finding> {
    a.findings.iter().filter(|f| f.rule == rule).collect()
}

// ------------------------------------------------------------ reactor-blocking

/// The acceptance fixture: a pump loop in one module reaches a blocking
/// call defined in a different file of the crate.
#[test]
fn reactor_blocking_fires_across_modules() {
    let a = run(&[
        (
            "crates/fx/src/reactor_host.rs",
            "pub fn pump_slot(budget: u32) { crate::inner::drain(budget); }\n",
        ),
        (
            "crates/fx/src/inner.rs",
            "pub fn drain(budget: u32) {\n    std::thread::sleep(Duration::from_millis(1));\n}\n",
        ),
    ]);
    let hits = rule_hits(&a, "reactor-blocking");
    assert_eq!(hits.len(), 1, "{:?}", a.findings);
    let f = hits[0];
    assert_eq!(f.severity, Severity::Deny);
    assert_eq!(f.path, "crates/fx/src/inner.rs");
    assert_eq!(f.line, 2);
    assert!(
        f.message.contains("pump_slot") && f.message.contains("drain"),
        "message should carry the call path: {}",
        f.message
    );
}

#[test]
fn reactor_blocking_allow_suppresses_and_is_used() {
    let a = run(&[
        (
            "crates/fx/src/reactor_host.rs",
            "pub fn pump_slot(budget: u32) { crate::inner::drain(budget); }\n",
        ),
        (
            "crates/fx/src/inner.rs",
            "pub fn drain(budget: u32) {\n    \
             // pti-allow(reactor-blocking): startup-only warmup, never on the pump path at steady state\n    \
             std::thread::sleep(Duration::from_millis(1));\n}\n",
        ),
    ]);
    assert!(
        rule_hits(&a, "reactor-blocking").is_empty(),
        "{:?}",
        a.findings
    );
    assert!(rule_hits(&a, "unused-allow").is_empty(), "{:?}", a.findings);
}

/// `bus.rs` (the threaded live fabric) is excluded from the traversal:
/// the type system keeps it off reactor hosts.
#[test]
fn reactor_blocking_does_not_traverse_bus() {
    let a = run(&[
        (
            "crates/fx/src/reactor_host.rs",
            "pub fn run_for(idle: u64) { crate::bus::nap(idle); }\n",
        ),
        (
            "crates/fx/src/bus.rs",
            "pub fn nap(idle: u64) { std::thread::sleep(Duration::from_millis(idle)); }\n",
        ),
    ]);
    assert!(
        rule_hits(&a, "reactor-blocking").is_empty(),
        "{:?}",
        a.findings
    );
}

/// Blocking prims inside `#[cfg(test)]` code never fire.
#[test]
fn reactor_blocking_ignores_test_code() {
    let a = run(&[(
        "crates/fx/src/reactor_host.rs",
        "pub fn kick_all() { helper(); }\nfn helper() {}\n\
         #[cfg(test)]\nmod tests {\n    fn helper() { std::thread::sleep(d); }\n}\n",
    )]);
    assert!(
        rule_hits(&a, "reactor-blocking").is_empty(),
        "{:?}",
        a.findings
    );
}

// --------------------------------------------------------- refcell-reentrancy

const NET_REENTRANT: &str = "\
pub struct Net {
    core: Rc<RefCell<Core>>,
}
impl Net {
    pub fn depth(&self) -> u64 {
        self.core.borrow().depth
    }
    pub fn pump(&self) {
        let mut core = self.core.borrow_mut();
        let d = self.depth();
        core.advance(d);
    }
}
";

#[test]
fn refcell_reentrancy_fires_on_held_guard() {
    let a = run(&[("crates/fx/src/net.rs", NET_REENTRANT)]);
    let hits = rule_hits(&a, "refcell-reentrancy");
    assert_eq!(hits.len(), 1, "{:?}", a.findings);
    let f = hits[0];
    assert_eq!(f.severity, Severity::Advisory);
    // flagged at the borrow_mut() holder, naming the re-entered method
    assert_eq!(f.line, 9, "{f:?}");
    assert!(f.message.contains("Net::depth"), "{}", f.message);
}

#[test]
fn refcell_reentrancy_allow_suppresses() {
    let src = NET_REENTRANT.replace(
        "let mut core = self.core.borrow_mut();",
        "// pti-allow(refcell-reentrancy): depth() runs before the guard in program order\n        \
         let mut core = self.core.borrow_mut();",
    );
    let a = run(&[("crates/fx/src/net.rs", &src)]);
    assert!(
        rule_hits(&a, "refcell-reentrancy").is_empty(),
        "{:?}",
        a.findings
    );
    assert!(rule_hits(&a, "unused-allow").is_empty(), "{:?}", a.findings);
}

/// Calls on the guard itself run on the cell's interior type — not a
/// re-entry, even when a method name collides with the wrapper's.
#[test]
fn refcell_reentrancy_skips_calls_on_the_guard() {
    let a = run(&[(
        "crates/fx/src/net.rs",
        "\
pub struct Net {
    core: Rc<RefCell<Core>>,
}
impl Net {
    pub fn advance(&self) -> u64 {
        self.core.borrow().depth
    }
    pub fn pump(&self) {
        let mut core = self.core.borrow_mut();
        core.advance(1);
    }
}
",
    )]);
    assert!(
        rule_hits(&a, "refcell-reentrancy").is_empty(),
        "{:?}",
        a.findings
    );
}

/// Cross-file: the holder calls a free fn in another module that calls
/// back into the cell type.
#[test]
fn refcell_reentrancy_reaches_across_files() {
    let a = run(&[
        (
            "crates/fx/src/net.rs",
            "\
pub struct Net {
    core: Rc<RefCell<Core>>,
}
impl Net {
    pub fn depth(&self) -> u64 {
        self.core.borrow().depth
    }
    pub fn pump(&self) {
        let mut core = self.core.borrow_mut();
        crate::relay::observe(self);
    }
}
",
        ),
        (
            "crates/fx/src/relay.rs",
            "pub fn observe(net: &Net) -> u64 { net.depth() }\n",
        ),
    ]);
    let hits = rule_hits(&a, "refcell-reentrancy");
    assert_eq!(hits.len(), 1, "{:?}", a.findings);
    assert!(hits[0].message.contains("observe"), "{}", hits[0].message);
}

// ---------------------------------------------------- wire-determinism-taint

#[test]
fn taint_flows_from_hash_values_to_send() {
    let a = run(&[(
        "crates/fx/src/wire.rs",
        "\
pub fn emit(m: &HashMap<u64, u64>, out: &mut Conn) {
    let vals: Vec<u64> = m.values().copied().collect();
    out.send(vals);
}
",
    )]);
    let hits = rule_hits(&a, "wire-determinism-taint");
    assert_eq!(hits.len(), 1, "{:?}", a.findings);
    let f = hits[0];
    assert_eq!(f.severity, Severity::Deny);
    assert_eq!(f.line, 3);
    assert!(f.message.contains('m'), "{}", f.message);
}

#[test]
fn taint_cleared_by_sort() {
    let a = run(&[(
        "crates/fx/src/wire.rs",
        "\
pub fn emit(m: &HashMap<u64, u64>, out: &mut Conn) {
    let mut vals: Vec<u64> = m.values().copied().collect();
    vals.sort_unstable();
    out.send(vals);
}
",
    )]);
    assert!(
        rule_hits(&a, "wire-determinism-taint").is_empty(),
        "{:?}",
        a.findings
    );
}

#[test]
fn taint_cleared_by_btree_collect() {
    let a = run(&[(
        "crates/fx/src/wire.rs",
        "\
pub fn emit(m: &HashMap<u64, u64>, out: &mut Conn) {
    let vals: BTreeSet<u64> = m.values().copied().collect();
    out.send(vals);
}
",
    )]);
    assert!(
        rule_hits(&a, "wire-determinism-taint").is_empty(),
        "{:?}",
        a.findings
    );
}

#[test]
fn taint_reaches_framebatch_push_through_a_loop() {
    let a = run(&[(
        "crates/fx/src/wire.rs",
        "\
pub fn pack(m: &HashMap<u64, u64>) -> FrameBatch {
    let batch = FrameBatch::new();
    for k in m.keys() {
        batch.push(k);
    }
    batch
}
",
    )]);
    let hits = rule_hits(&a, "wire-determinism-taint");
    assert_eq!(hits.len(), 1, "{:?}", a.findings);
    assert_eq!(hits[0].line, 4, "{:?}", hits[0]);
}

#[test]
fn taint_allow_suppresses() {
    let a = run(&[(
        "crates/fx/src/wire.rs",
        "\
pub fn emit(m: &HashMap<u64, u64>, out: &mut Conn) {
    let vals: Vec<u64> = m.values().copied().collect();
    // pti-allow(wire-determinism-taint): receiver is a local echo harness, bytes never leave the process
    out.send(vals);
}
",
    )]);
    assert!(
        rule_hits(&a, "wire-determinism-taint").is_empty(),
        "{:?}",
        a.findings
    );
    assert!(rule_hits(&a, "unused-allow").is_empty(), "{:?}", a.findings);
}

// -------------------------------------------------------- panic-reachability

#[test]
fn panic_reachability_reports_cross_file_sites() {
    let a = run(&[
        (
            "crates/fx/src/swarm.rs",
            "impl Swarm {\n    pub fn dispatch(&mut self) { crate::codec::decode(); }\n}\n",
        ),
        (
            "crates/fx/src/codec.rs",
            "pub fn decode() {\n    parse_header().unwrap();\n}\n",
        ),
    ]);
    assert_eq!(a.panic_sites.len(), 1, "{:?}", a.panic_sites);
    let s = &a.panic_sites[0];
    assert_eq!(s.path, "crates/fx/src/codec.rs");
    assert_eq!(s.line, 2);
    assert_eq!(s.what, ".unwrap()");
    assert!(s.via.contains("Swarm::dispatch"), "{}", s.via);
}

/// An allowed site drops out of the gated count, and the allow counts
/// as used.
#[test]
fn panic_reachability_allow_excludes_site() {
    let a = run(&[
        (
            "crates/fx/src/swarm.rs",
            "impl Swarm {\n    pub fn dispatch(&mut self) { crate::codec::decode(); }\n}\n",
        ),
        (
            "crates/fx/src/codec.rs",
            "pub fn decode() {\n    \
             // pti-allow(panic-reachability): header length is validated by the frame gate before decode\n    \
             parse_header().unwrap();\n}\n",
        ),
    ]);
    assert!(a.panic_sites.is_empty(), "{:?}", a.panic_sites);
    assert!(rule_hits(&a, "unused-allow").is_empty(), "{:?}", a.findings);
}

/// Functions only reachable outside the dispatch root stay out of the
/// report.
#[test]
fn panic_reachability_is_rooted_at_dispatch() {
    let a = run(&[(
        "crates/fx/src/swarm.rs",
        "impl Swarm {\n    pub fn dispatch(&mut self) {}\n    \
         pub fn shutdown(&mut self) { teardown().unwrap(); }\n}\n",
    )]);
    assert!(a.panic_sites.is_empty(), "{:?}", a.panic_sites);
}
