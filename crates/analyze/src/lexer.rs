//! A hand-rolled Rust source lexer, just deep enough for line-oriented
//! lint rules: it blanks out everything a textual pattern must never
//! match inside (string and char literal interiors, comment bodies) and
//! tracks which lines sit inside a `#[cfg(test)]` region.
//!
//! This is deliberately **not** a token-stream lexer. The rules in
//! [`crate::rules`] are substring matchers over code text, so all the
//! lexer owes them is:
//!
//! * `code`: the line with comments removed and literal interiors
//!   replaced by spaces (delimiters are kept, so `"x"` becomes `" "`).
//!   `Instant::now` inside a string or a doc comment can no longer trip
//!   the wall-clock rule.
//! * `comment`: the text of any `//` line comment on the line — where
//!   `pti-allow(rule): reason` suppressions live.
//! * `in_test`: whether the line is inside a `#[cfg(test)]`-gated item
//!   (attribute line included), tracked by brace depth.
//!
//! The tricky corners it gets right, each pinned by a unit test:
//! raw strings (`r"…"`, `r#"…"#`, any hash depth, `b`/`br` prefixes)
//! whose bodies may contain `//` or `"`; char literals (`'a'`, `'\n'`,
//! `'\u{1F600}'`) vs lifetimes (`'a`, `'static`); nested block comments
//! (`/* /* */ */`); and strings spanning multiple lines.

/// One source line, classified for rule matching.
#[derive(Debug, Clone, Default)]
pub struct Line {
    /// Code text with comment bodies removed and literal interiors
    /// blanked to spaces. Column positions of surviving code are
    /// preserved.
    pub code: String,
    /// Concatenated text of `//` comments on this line (without the
    /// slashes), used to parse `pti-allow` suppressions.
    pub comment: String,
    /// Whether the line belongs to a `#[cfg(test)]` region.
    pub in_test: bool,
}

/// Lexer state carried across characters (and lines, for multi-line
/// constructs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// Plain code.
    Code,
    /// Inside a `/* … */` comment, at the given nesting depth.
    Block(u32),
    /// Inside a `"…"` string; `true` when the previous char was an
    /// unconsumed backslash.
    Str(bool),
    /// Inside a raw string closed by `"` followed by this many `#`s.
    Raw(u32),
}

/// Splits source text into classified [`Line`]s.
pub fn lex(src: &str) -> Vec<Line> {
    let mut lines: Vec<Line> = Vec::new();
    let mut state = State::Code;

    for raw in src.lines() {
        let mut line = Line {
            in_test: false, // filled in by the cfg(test) pass below
            ..Line::default()
        };
        let chars: Vec<char> = raw.chars().collect();
        let mut i = 0usize;
        while i < chars.len() {
            let c = chars[i];
            match state {
                State::Code => {
                    if c == '/' && chars.get(i + 1) == Some(&'/') {
                        // Line comment: capture the body (plain `//`
                        // comments only — doc text in `///` and `//!`
                        // is never parsed for allow suppressions),
                        // dropping the rest of the line from code.
                        let is_doc = matches!(chars.get(i + 2), Some(&'/') | Some(&'!'));
                        if !is_doc {
                            line.comment
                                .push_str(&chars[i + 2..].iter().collect::<String>());
                        }
                        break;
                    } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                        state = State::Block(1);
                        line.code.push(' ');
                        line.code.push(' ');
                        i += 2;
                    } else if c == '"' {
                        line.code.push('"');
                        state = State::Str(false);
                        i += 1;
                    } else if let Some(hashes) = raw_string_open(&chars, i) {
                        // `r"`, `r#"`, `br##"` … — emit the opener
                        // verbatim, then blank the body.
                        let opener_len = raw_opener_len(&chars, i, hashes);
                        for &oc in &chars[i..i + opener_len] {
                            line.code.push(oc);
                        }
                        i += opener_len;
                        state = State::Raw(hashes);
                    } else if c == '\'' {
                        if let Some(end) = char_literal_end(&chars, i) {
                            // Char literal: keep the quotes, blank the
                            // interior.
                            line.code.push('\'');
                            for _ in i + 1..end {
                                line.code.push(' ');
                            }
                            line.code.push('\'');
                            i = end + 1;
                        } else {
                            // Lifetime — plain code.
                            line.code.push('\'');
                            i += 1;
                        }
                    } else {
                        line.code.push(c);
                        i += 1;
                    }
                }
                State::Block(depth) => {
                    if c == '*' && chars.get(i + 1) == Some(&'/') {
                        state = if depth == 1 {
                            State::Code
                        } else {
                            State::Block(depth - 1)
                        };
                        line.code.push(' ');
                        line.code.push(' ');
                        i += 2;
                    } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                        state = State::Block(depth + 1);
                        line.code.push(' ');
                        line.code.push(' ');
                        i += 2;
                    } else {
                        line.code.push(' ');
                        i += 1;
                    }
                }
                State::Str(escaped) => {
                    if escaped {
                        state = State::Str(false);
                        line.code.push(' ');
                        i += 1;
                    } else if c == '\\' {
                        state = State::Str(true);
                        line.code.push(' ');
                        i += 1;
                    } else if c == '"' {
                        state = State::Code;
                        line.code.push('"');
                        i += 1;
                    } else {
                        line.code.push(' ');
                        i += 1;
                    }
                }
                State::Raw(hashes) => {
                    if c == '"' && closes_raw(&chars, i, hashes) {
                        line.code.push('"');
                        for _ in 0..hashes {
                            line.code.push('#');
                        }
                        i += 1 + hashes as usize;
                        state = State::Code;
                    } else {
                        line.code.push(' ');
                        i += 1;
                    }
                }
            }
        }
        // A backslash escape at end of line continues the string with
        // the escape consumed by the newline.
        if let State::Str(true) = state {
            state = State::Str(false);
        }
        lines.push(line);
    }

    mark_cfg_test(&mut lines);
    lines
}

/// Whether position `i` starts a raw-string opener (`r`, `br`, or `b`
/// then `r`, followed by zero or more `#` and a quote), with the
/// preceding char not part of an identifier. Returns the hash count.
fn raw_string_open(chars: &[char], i: usize) -> Option<u32> {
    let prev_is_ident = i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_');
    if prev_is_ident {
        return None;
    }
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0u32;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    (chars.get(j) == Some(&'"')).then_some(hashes)
}

/// Length in chars of the raw-string opener at `i` (prefix + hashes +
/// quote).
fn raw_opener_len(chars: &[char], i: usize, hashes: u32) -> usize {
    let prefix = if chars[i] == 'b' { 2 } else { 1 };
    prefix + hashes as usize + 1
}

/// Whether the quote at `i` is followed by enough `#`s to close a raw
/// string of the given hash depth.
fn closes_raw(chars: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

/// Decides whether the `'` at position `i` opens a char literal, and if
/// so returns the index of its closing quote. A lifetime (`'a`,
/// `'static`, `'_`) returns `None`.
fn char_literal_end(chars: &[char], i: usize) -> Option<usize> {
    match chars.get(i + 1)? {
        '\\' => {
            // Escaped char: scan to the closing quote.
            let mut j = i + 2;
            // Skip the escaped character itself (it may be `'`).
            j += 1;
            while j < chars.len() && chars[j] != '\'' {
                j += 1;
            }
            (j < chars.len()).then_some(j)
        }
        // `'x'` — exactly one char then a quote is a literal; anything
        // else (`'a>`, `'static`) is a lifetime.
        _ => (chars.get(i + 2) == Some(&'\'')).then_some(i + 2),
    }
}

/// Marks lines inside `#[cfg(test)]` regions by tracking brace depth in
/// blanked code. The attribute line itself counts; stacked attributes
/// between it and the item body are covered by the "pending" flag; an
/// attribute gating a braceless item (`#[cfg(test)] use x;`) ends at
/// the `;` on the attribute's depth.
fn mark_cfg_test(lines: &mut [Line]) {
    let mut depth = 0i32;
    let mut region_floor: Option<i32> = None; // depth the region's `{` sits at
    let mut pending: Option<i32> = None; // depth where the attribute appeared

    for line in lines.iter_mut() {
        let attr_at = find_cfg_test(&line.code);
        let mut in_test_here = region_floor.is_some() || pending.is_some();
        for (col, c) in line.code.char_indices() {
            if let Some(a) = attr_at {
                if col == a {
                    pending = pending.or(Some(depth));
                    in_test_here = true;
                }
            }
            match c {
                '{' => {
                    depth += 1;
                    if let Some(p) = pending {
                        if depth == p + 1 && region_floor.is_none() {
                            region_floor = Some(depth);
                            pending = None;
                        }
                    }
                }
                '}' => {
                    if region_floor == Some(depth) {
                        region_floor = None;
                        in_test_here = true; // closing brace still in region
                    }
                    depth -= 1;
                }
                ';' if pending == Some(depth) => {
                    pending = None;
                    in_test_here = true;
                }
                _ => {}
            }
        }
        line.in_test = in_test_here || region_floor.is_some() || pending.is_some();
    }
}

/// Byte offset of a `#[cfg(test)]` attribute in blanked code, if any.
/// Rustfmt normalises the attribute to exactly this spelling; the
/// `cfg(all(test, …))` form is matched too.
fn find_cfg_test(code: &str) -> Option<usize> {
    code.find("#[cfg(test)]")
        .or_else(|| code.find("#[cfg(all(test"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(src: &str) -> Vec<String> {
        lex(src).into_iter().map(|l| l.code).collect()
    }

    #[test]
    fn line_comments_are_stripped_and_captured() {
        let lines = lex("let x = 1; // Instant::now() here is prose\n");
        assert_eq!(lines[0].code, "let x = 1; ");
        assert!(lines[0].comment.contains("Instant::now"));
    }

    #[test]
    fn string_interiors_are_blanked() {
        let lines = lex("let s = \"Instant::now()\";\n");
        assert!(!lines[0].code.contains("Instant"));
        assert!(lines[0].code.contains('"'));
    }

    #[test]
    fn raw_string_containing_line_comment_stays_a_string() {
        // The `//` inside the raw string must not start a comment and
        // the body must not leak into code.
        let src = "let s = r#\"no // comment \"quote\" Instant::now\"#; let y = 2;\n";
        let lines = lex(src);
        assert!(!lines[0].code.contains("Instant"));
        assert!(lines[0].code.contains("let y = 2;"), "{}", lines[0].code);
        assert!(lines[0].comment.is_empty());
    }

    #[test]
    fn raw_string_hash_depths_and_byte_prefix() {
        let src = "let a = br##\"body \"# still in\"##; let b = r\"x\"; done();\n";
        let lines = lex(src);
        assert!(lines[0].code.contains("done();"), "{}", lines[0].code);
        assert!(!lines[0].code.contains("body"));
        assert!(!lines[0].code.contains("still in"));
    }

    #[test]
    fn char_literal_vs_lifetime() {
        // `'a'` is a literal (interior blanked); `'a` in a generic
        // bound is a lifetime (kept as code, no string state entered).
        let src = "fn f<'a>(x: &'a str) { let q = 'a'; let nl = '\\n'; g(x) }\n";
        let lines = lex(src);
        assert!(lines[0].code.contains("fn f<'a>(x: &'a str)"));
        assert!(lines[0].code.contains("g(x)"), "{}", lines[0].code);
        assert!(!lines[0].code.contains("'a'"), "literal interior blanked");
    }

    #[test]
    fn quote_char_literal_does_not_open_a_string() {
        let src = "let q = '\\''; let s = \"x\"; done();\n";
        let lines = lex(src);
        assert!(lines[0].code.contains("done();"), "{}", lines[0].code);
    }

    #[test]
    fn nested_block_comments() {
        let src = "a(); /* outer /* inner */ still comment */ b();\n";
        let lines = lex(src);
        assert!(lines[0].code.contains("a();"));
        assert!(lines[0].code.contains("b();"));
        assert!(!lines[0].code.contains("still"));
    }

    #[test]
    fn multi_line_constructs_carry_state() {
        let src = "let s = \"spans\nlines\"; a();\n/* spans\nlines too */ b();\n";
        let c = codes(src);
        assert!(!c[0].contains("spans"));
        assert!(!c[1].contains("lines"));
        assert!(c[1].contains("a();"));
        assert!(!c[2].contains("spans"));
        assert!(c[3].contains("b();"));
        assert!(!c[3].contains("too"));
    }

    #[test]
    fn cfg_test_region_tracking() {
        let src = "\
fn lib_code() {}
#[cfg(test)]
mod tests {
    use super::*;
    #[test]
    fn t() { inner(); }
}
fn more_lib() {}
";
        let lines = lex(src);
        assert!(!lines[0].in_test);
        assert!(lines[1].in_test, "attribute line is in the region");
        assert!(lines[2].in_test);
        assert!(lines[5].in_test);
        assert!(lines[6].in_test, "closing brace line");
        assert!(!lines[7].in_test, "region ends at its brace");
    }

    #[test]
    fn cfg_test_on_braceless_item_ends_at_semicolon() {
        let src = "#[cfg(test)]\nuse std::collections::HashMap;\nfn lib() {}\n";
        let lines = lex(src);
        assert!(lines[0].in_test);
        assert!(lines[1].in_test);
        assert!(!lines[2].in_test);
    }

    #[test]
    fn stacked_attributes_stay_pending_until_the_item_brace() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nmod t {\n    x();\n}\nfn lib() {}\n";
        let lines = lex(src);
        assert!(lines[1].in_test);
        assert!(lines[3].in_test);
        assert!(!lines[5].in_test);
    }

    #[test]
    fn braces_in_strings_do_not_move_the_depth() {
        let src = "#[cfg(test)]\nmod t {\n    let s = \"}\";\n    y();\n}\nfn lib() {}\n";
        let lines = lex(src);
        assert!(lines[3].in_test, "string brace must not close the region");
        assert!(!lines[5].in_test);
    }
}
