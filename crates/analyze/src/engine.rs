//! Drives the [rule table](crate::rules::RULES) and the
//! [interprocedural passes](crate::ipr) over source text and a
//! workspace tree: lex, parse, build the call graph, check, apply
//! `pti-allow` suppressions, report.

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

use crate::graph::CallGraph;
use crate::ipr::{self, IprContext, RawFinding};
use crate::lexer::{lex, Line};
use crate::parser::{parse_file, FileModel};
use crate::rules::{
    classify, code_is_blank, known_rule_id, parse_allows, AllowParse, Check, Severity, RULES,
};

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path (forward slashes).
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule id (`wall-clock`, …, or the engine's own `allow-syntax` /
    /// `unused-allow`).
    pub rule: &'static str,
    /// Whether it fails the run.
    pub severity: Severity,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let tier = match self.severity {
            Severity::Deny => "deny",
            Severity::Advisory => "advisory",
        };
        write!(
            f,
            "{}:{} {} [{}] {}",
            self.path, self.line, self.rule, tier, self.message
        )
    }
}

/// One entry of the `panic-reachability` report: a panic site in
/// library code transitively reachable from `Swarm::dispatch`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PanicSite {
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// The spelling at the site (`.unwrap()`, `panic!`, …).
    pub what: String,
    /// The call path from the dispatch root.
    pub via: String,
}

/// Everything one lint run produces.
#[derive(Debug, Clone, Default)]
pub struct Analysis {
    /// Suppression-filtered findings, sorted by path/line/rule.
    pub findings: Vec<Finding>,
    /// Total `pti-allow` annotations parsed across the input set — the
    /// number CI gates so it can only go down.
    pub allow_count: usize,
    /// The `panic-reachability` report (advisory; count gated in CI).
    pub panic_sites: Vec<PanicSite>,
}

/// The allows in force for each line: an allow on a code line binds to
/// that line; an allow on a comment-only line binds to the next
/// non-comment-only line (runs of comment-only lines accumulate).
/// Returns per-line `(rule, allow-line)` bindings plus any syntax
/// findings.
fn bind_allows(path: &str, lines: &[Line]) -> (Vec<Vec<(String, usize)>>, Vec<Finding>) {
    let mut bound: Vec<Vec<(String, usize)>> = vec![Vec::new(); lines.len()];
    let mut findings = Vec::new();
    let mut carried: Vec<(String, usize)> = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        match parse_allows(&line.comment) {
            AllowParse::None => {}
            AllowParse::Malformed(msg) => findings.push(Finding {
                path: path.to_string(),
                line: idx + 1,
                rule: "allow-syntax",
                severity: Severity::Deny,
                message: msg,
            }),
            AllowParse::Allows(allows) => {
                for a in allows {
                    if code_is_blank(line) {
                        carried.push((a.rule, idx));
                    } else {
                        bound[idx].push((a.rule, idx));
                    }
                }
            }
        }
        if !code_is_blank(line) && !carried.is_empty() {
            bound[idx].append(&mut carried);
        }
    }
    // Allows still carried at EOF bind nowhere; they surface as unused.
    for (rule, at) in carried {
        bound.push(Vec::new());
        let last = bound.len() - 1;
        bound[last].push((rule, at));
    }
    (bound, findings)
}

/// Finds an allow for `rule` governing the finding at 0-based `idx`.
///
/// Besides the finding's own line, rustfmt-split method chains are
/// handled: when the finding's line starts with `.` (a chained
/// continuation), the search walks back through the chain to the
/// statement head, so an allow written where the statement begins
/// suppresses a finding the checker attributes to a later link — and is
/// marked *used* rather than surfacing as `unused-allow`.
fn find_allow(
    bound: &[Vec<(String, usize)>],
    lines: &[Line],
    mut idx: usize,
    rule: &str,
) -> Option<usize> {
    loop {
        if let Some(&(_, allow_line)) = bound
            .get(idx)
            .and_then(|b| b.iter().find(|(r, _)| r == rule))
        {
            return Some(allow_line);
        }
        let line = lines.get(idx)?;
        if !line.code.trim_start().starts_with('.') || idx == 0 {
            return None;
        }
        // Walk one link up the chain: the previous non-blank code line.
        let mut j = idx;
        loop {
            j -= 1;
            if !code_is_blank(&lines[j]) {
                break;
            }
            if j == 0 {
                return None;
            }
        }
        idx = j;
    }
}

/// Lints a set of files as one workspace: file-granularity rules per
/// file, then the interprocedural passes over the whole set's call
/// graph. `inputs` are `(relpath, source)` pairs; relpaths choose rule
/// scopes and should use forward slashes.
pub fn analyze_files(inputs: &[(String, String)]) -> Analysis {
    let lines: Vec<Vec<Line>> = inputs.iter().map(|(_, src)| lex(src)).collect();

    let mut findings = Vec::new();
    let mut bounds: Vec<Vec<Vec<(String, usize)>>> = Vec::new();
    let mut allow_count = 0usize;
    for (fi, (path, _)) in inputs.iter().enumerate() {
        let (bound, syntax) = bind_allows(path, &lines[fi]);
        allow_count += bound.iter().map(Vec::len).sum::<usize>();
        findings.extend(syntax);
        bounds.push(bound);
    }

    // -- file-granularity rules -------------------------------------
    let mut raw: Vec<RawFinding> = Vec::new();
    for (fi, (path, _)) in inputs.iter().enumerate() {
        let class = classify(path);
        for rule in RULES {
            let Some(severity) = (rule.severity_for)(path, class) else {
                continue;
            };
            let hits: Vec<(usize, String)> = match rule.check {
                Check::Line(f) => lines[fi]
                    .iter()
                    .enumerate()
                    .filter_map(|(i, l)| f(&l.code).map(|m| (i, m)))
                    .collect(),
                Check::File(f) => f(&lines[fi]),
            };
            for (idx, message) in hits {
                if rule.exempt_tests && lines[fi][idx].in_test {
                    continue;
                }
                raw.push(RawFinding {
                    file: fi,
                    line: idx,
                    rule: rule.id,
                    severity,
                    message,
                });
            }
        }
    }

    // -- interprocedural passes -------------------------------------
    let models: Vec<FileModel> = inputs
        .iter()
        .enumerate()
        .map(|(fi, (path, _))| parse_file(path, &lines[fi]))
        .collect();
    let graph = CallGraph::build(&models);
    let ctx = IprContext {
        files: &models,
        lines: &lines,
        graph: &graph,
    };
    raw.extend(ipr::reactor_blocking(&ctx));
    raw.extend(ipr::refcell_reentrancy(&ctx));
    raw.extend(ipr::wire_determinism_taint(&ctx));

    // -- one suppression path for everything ------------------------
    let mut used: BTreeSet<(usize, usize, String)> = BTreeSet::new();
    for f in raw {
        match find_allow(&bounds[f.file], &lines[f.file], f.line, f.rule) {
            Some(allow_line) => {
                used.insert((f.file, allow_line, f.rule.to_string()));
            }
            None => findings.push(Finding {
                path: inputs[f.file].0.clone(),
                line: f.line + 1,
                rule: f.rule,
                severity: f.severity,
                message: f.message,
            }),
        }
    }

    // The panic report is suppression-aware too: an allowed site drops
    // out of the count the CI ceiling gates.
    let mut panic_sites = Vec::new();
    for s in ipr::panic_reachability(&ctx) {
        match find_allow(
            &bounds[s.file],
            &lines[s.file],
            s.line,
            "panic-reachability",
        ) {
            Some(allow_line) => {
                used.insert((s.file, allow_line, "panic-reachability".to_string()));
            }
            None => panic_sites.push(PanicSite {
                path: inputs[s.file].0.clone(),
                line: s.line + 1,
                what: s.what,
                via: s.via,
            }),
        }
    }

    // Advisory hygiene: an allow that suppressed nothing is stale —
    // either the violation was fixed (drop the comment) or the allow is
    // bound to the wrong line.
    for (fi, bound) in bounds.iter().enumerate() {
        for binds in bound {
            for (rule, allow_line) in binds {
                let consumed = used.contains(&(fi, *allow_line, rule.clone()));
                if !consumed && known_rule_id(rule) {
                    findings.push(Finding {
                        path: inputs[fi].0.clone(),
                        line: allow_line + 1,
                        rule: "unused-allow",
                        severity: Severity::Advisory,
                        message: format!("pti-allow({rule}) suppresses nothing on its target line"),
                    });
                }
            }
        }
    }

    findings.sort_by(|a, b| {
        (&a.path, a.line, a.rule, &a.message).cmp(&(&b.path, b.line, b.rule, &b.message))
    });
    findings.dedup();
    Analysis {
        findings,
        allow_count,
        panic_sites,
    }
}

/// Lints one file's source text (single-file view of [`analyze_files`];
/// interprocedural rules see only this file's call graph).
pub fn analyze_source(relpath: &str, src: &str) -> Vec<Finding> {
    analyze_files(&[(relpath.to_string(), src.to_string())]).findings
}

/// Recursively collects `.rs` files under `dir` (skipping `target`).
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            if path
                .file_name()
                .is_some_and(|n| n == "target" || n == ".git")
            {
                continue;
            }
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Reads the workspace rooted at `root` (the directory holding the
/// top-level `Cargo.toml`) into `(relpath, source)` pairs: `crates/`,
/// `tests/`, `examples/`.
pub fn read_workspace(root: &Path) -> std::io::Result<Vec<(String, String)>> {
    let mut files = Vec::new();
    for sub in ["crates", "tests", "examples"] {
        collect_rs(&root.join(sub), &mut files);
    }
    let mut inputs = Vec::new();
    for file in files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        let src = fs::read_to_string(&file)?;
        inputs.push((rel, src));
    }
    Ok(inputs)
}

/// Lints the whole workspace rooted at `root`.
pub fn analyze_workspace(root: &Path) -> std::io::Result<Analysis> {
    Ok(analyze_files(&read_workspace(root)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allow_on_comment_line_binds_to_next_code_line() {
        let src = "\
// pti-allow(wall-clock): prose explains why this is fine
let deadline = Instant::now();
";
        let f = analyze_source("crates/net/src/sim.rs", src);
        assert!(f.iter().all(|f| f.rule != "wall-clock"), "{f:?}");
    }

    #[test]
    fn malformed_allow_is_a_deny_finding() {
        let src = "let x = 1; // pti-allow(wall-clock)\n";
        let f = analyze_source("crates/net/src/sim.rs", src);
        assert!(f
            .iter()
            .any(|f| f.rule == "allow-syntax" && f.severity == Severity::Deny));
    }

    #[test]
    fn unknown_rule_in_allow_is_rejected() {
        let src = "let x = 1; // pti-allow(wallclock): typo\n";
        let f = analyze_source("crates/net/src/sim.rs", src);
        assert!(f.iter().any(|f| f.rule == "allow-syntax"));
    }

    #[test]
    fn unused_allow_is_advisory() {
        let src = "let x = 1; // pti-allow(wall-clock): nothing here trips it\n";
        let f = analyze_source("crates/net/src/sim.rs", src);
        assert!(f
            .iter()
            .any(|f| f.rule == "unused-allow" && f.severity == Severity::Advisory));
    }

    #[test]
    fn chained_finding_uses_statement_head_allow() {
        // The finding lands on a `.iter()` continuation line; the allow
        // sits on the statement head. It must suppress AND be counted
        // as used (no unused-allow).
        let src = "\
fn emit(&self, peers: HashMap<u64, Peer>) {
    let order = peers // pti-allow(unordered-iter): sorted three lines down
        .keys()
        .copied()
        .collect::<Vec<_>>();
}
";
        let f = analyze_source("crates/serialize/src/wire.rs", src);
        assert!(f.iter().all(|f| f.rule != "unordered-iter"), "{f:?}");
        assert!(f.iter().all(|f| f.rule != "unused-allow"), "{f:?}");
    }
}
