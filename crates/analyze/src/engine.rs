//! Drives the [rule table](crate::rules::RULES) over source text and a
//! workspace tree: lex, check, apply `pti-allow` suppressions, report.

use std::fs;
use std::path::{Path, PathBuf};

use crate::lexer::{lex, Line};
use crate::rules::{
    classify, code_is_blank, parse_allows, rule_by_id, AllowParse, Check, Severity, RULES,
};

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path (forward slashes).
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule id (`wall-clock`, …, or the engine's own `allow-syntax` /
    /// `unused-allow`).
    pub rule: &'static str,
    /// Whether it fails the run.
    pub severity: Severity,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let tier = match self.severity {
            Severity::Deny => "deny",
            Severity::Advisory => "advisory",
        };
        write!(
            f,
            "{}:{} {} [{}] {}",
            self.path, self.line, self.rule, tier, self.message
        )
    }
}

/// The allows in force for each line: an allow on a code line binds to
/// that line; an allow on a comment-only line binds to the next
/// non-comment-only line (runs of comment-only lines accumulate).
/// Returns per-line `(rule, allow-line)` bindings plus any syntax
/// findings.
fn bind_allows(path: &str, lines: &[Line]) -> (Vec<Vec<(String, usize)>>, Vec<Finding>) {
    let mut bound: Vec<Vec<(String, usize)>> = vec![Vec::new(); lines.len()];
    let mut findings = Vec::new();
    let mut carried: Vec<(String, usize)> = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        match parse_allows(&line.comment) {
            AllowParse::None => {}
            AllowParse::Malformed(msg) => findings.push(Finding {
                path: path.to_string(),
                line: idx + 1,
                rule: "allow-syntax",
                severity: Severity::Deny,
                message: msg,
            }),
            AllowParse::Allows(allows) => {
                for a in allows {
                    if code_is_blank(line) {
                        carried.push((a.rule, idx));
                    } else {
                        bound[idx].push((a.rule, idx));
                    }
                }
            }
        }
        if !code_is_blank(line) && !carried.is_empty() {
            bound[idx].append(&mut carried);
        }
    }
    // Allows still carried at EOF bind nowhere; they surface as unused.
    for (rule, at) in carried {
        bound.push(Vec::new());
        let last = bound.len() - 1;
        bound[last].push((rule, at));
    }
    (bound, findings)
}

/// Lints one file's source text. `relpath` chooses rule scopes (use the
/// workspace-relative path with forward slashes).
pub fn analyze_source(relpath: &str, src: &str) -> Vec<Finding> {
    let class = classify(relpath);
    let lines = lex(src);
    let (bound, mut findings) = bind_allows(relpath, &lines);
    let mut used: Vec<(usize, &str)> = Vec::new(); // (allow-line, rule)

    for rule in RULES {
        let Some(severity) = (rule.severity_for)(relpath, class) else {
            continue;
        };
        let raw: Vec<(usize, String)> = match rule.check {
            Check::Line(f) => lines
                .iter()
                .enumerate()
                .filter_map(|(i, l)| f(&l.code).map(|m| (i, m)))
                .collect(),
            Check::File(f) => f(&lines),
        };
        for (idx, message) in raw {
            if rule.exempt_tests && lines[idx].in_test {
                continue;
            }
            let allow = bound
                .get(idx)
                .and_then(|b| b.iter().find(|(r, _)| r == rule.id));
            if let Some((_, allow_line)) = allow {
                used.push((*allow_line, rule.id));
                continue;
            }
            findings.push(Finding {
                path: relpath.to_string(),
                line: idx + 1,
                rule: rule.id,
                severity,
                message,
            });
        }
    }

    // Advisory hygiene: an allow that suppressed nothing is stale —
    // either the violation was fixed (drop the comment) or the allow is
    // bound to the wrong line.
    for binds in &bound {
        for (rule, allow_line) in binds {
            let consumed = used.iter().any(|&(l, r)| l == *allow_line && r == rule);
            if !consumed && rule_by_id(rule).is_some() {
                findings.push(Finding {
                    path: relpath.to_string(),
                    line: allow_line + 1,
                    rule: "unused-allow",
                    severity: Severity::Advisory,
                    message: format!("pti-allow({rule}) suppresses nothing on its target line"),
                });
            }
        }
    }

    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    findings.dedup();
    findings
}

/// Recursively collects `.rs` files under `dir` (skipping `target`).
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            if path
                .file_name()
                .is_some_and(|n| n == "target" || n == ".git")
            {
                continue;
            }
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Lints the whole workspace rooted at `root` (the directory holding
/// the top-level `Cargo.toml`): `crates/`, `tests/`, `examples/`.
/// Returns findings sorted by path and line.
pub fn analyze_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    for sub in ["crates", "tests", "examples"] {
        collect_rs(&root.join(sub), &mut files);
    }
    let mut findings = Vec::new();
    for file in files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        let src = fs::read_to_string(&file)?;
        findings.extend(analyze_source(&rel, &src));
    }
    findings
        .sort_by(|a, b| (a.path.clone(), a.line, a.rule).cmp(&(b.path.clone(), b.line, b.rule)));
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allow_on_comment_line_binds_to_next_code_line() {
        let src = "\
// pti-allow(wall-clock): prose explains why this is fine
let deadline = Instant::now();
";
        let f = analyze_source("crates/net/src/sim.rs", src);
        assert!(f.iter().all(|f| f.rule != "wall-clock"), "{f:?}");
    }

    #[test]
    fn malformed_allow_is_a_deny_finding() {
        let src = "let x = 1; // pti-allow(wall-clock)\n";
        let f = analyze_source("crates/net/src/sim.rs", src);
        assert!(f
            .iter()
            .any(|f| f.rule == "allow-syntax" && f.severity == Severity::Deny));
    }

    #[test]
    fn unknown_rule_in_allow_is_rejected() {
        let src = "let x = 1; // pti-allow(wallclock): typo\n";
        let f = analyze_source("crates/net/src/sim.rs", src);
        assert!(f.iter().any(|f| f.rule == "allow-syntax"));
    }

    #[test]
    fn unused_allow_is_advisory() {
        let src = "let x = 1; // pti-allow(wall-clock): nothing here trips it\n";
        let f = analyze_source("crates/net/src/sim.rs", src);
        assert!(f
            .iter()
            .any(|f| f.rule == "unused-allow" && f.severity == Severity::Advisory));
    }
}
