//! Workspace item index and over-approximate call graph.
//!
//! Built once per lint run from every file's [`FileModel`]: each
//! function body (a raw token range) is scanned for call shapes and
//! *primitive effects* (blocking calls, panics, `RefCell` borrows), and
//! calls are resolved to candidate callees with deliberately simple
//! rules that **over-approximate** — when resolution is unsure it adds
//! more edges, never fewer, so reachability-based deny rules cannot
//! miss a path (they may report an impossible one, which a `pti-allow`
//! documents away):
//!
//! * `recv.name(…)` — if the receiver's type is known (it is `self`, a
//!   typed parameter, or a `let x = Type::new(…)` local), the call
//!   resolves to that type's method of that name; otherwise it resolves
//!   to **every** method of that name in the workspace (this is the
//!   trait-call rule: calls through `T: Transport` reach all impls) —
//!   except std-trait impls (`Clone`, `Display`, …), which only typed
//!   receivers reach.
//! * `Type::name(…)` — methods of `Type` (through `use` aliases), then
//!   free fns inside a module with that name; qualified paths are
//!   static, so an unresolved one gets no edges rather than all of them.
//! * `name(…)` — every free fn of that name.
//! * prim-shaped methods (`.borrow()`, `.unwrap()`, `.recv()`, …) are
//!   effects, never edges.
//!
//! Reachability queries record parent edges so a finding can print the
//! call path that makes it reachable.

use std::collections::BTreeMap;

use crate::parser::{FileModel, FnDef, Tok};

/// Primitive effects a function body can contain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Prim {
    /// `thread::sleep(…)`.
    Sleep,
    /// `Instant::now()`.
    InstantNow,
    /// `SystemTime::now()`.
    SystemTimeNow,
    /// `.recv()`, `.recv_timeout(…)`, `.recv_deadline(…)`.
    BlockingRecv,
    /// `panic!`, `unreachable!`, `.unwrap()`, `.expect(…)`.
    Panic,
    /// `.borrow_mut()`.
    BorrowMut,
    /// `.borrow()`.
    Borrow,
}

impl Prim {
    /// Short display form used in finding messages.
    pub fn label(self) -> &'static str {
        match self {
            Prim::Sleep => "thread::sleep",
            Prim::InstantNow => "Instant::now",
            Prim::SystemTimeNow => "SystemTime::now",
            Prim::BlockingRecv => "blocking recv",
            Prim::Panic => "panic site",
            Prim::BorrowMut => "borrow_mut()",
            Prim::Borrow => "borrow()",
        }
    }
}

/// One primitive-effect site inside a function body.
#[derive(Debug, Clone)]
pub struct PrimUse {
    /// Which effect.
    pub prim: Prim,
    /// 0-based source line.
    pub line: usize,
    /// Token index in the file's token stream.
    pub tok: usize,
    /// Whether the site is inside `#[cfg(test)]` code.
    pub in_test: bool,
    /// The exact spelling (`.unwrap()`, `panic!`, …) for messages.
    pub what: String,
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Callee name as written.
    pub name: String,
    /// 0-based source line.
    pub line: usize,
    /// Token index of the callee name in the file's token stream.
    pub tok: usize,
    /// Resolved candidate callees (indices into [`CallGraph::fns`]).
    pub targets: Vec<usize>,
}

/// One function in the flattened workspace index.
#[derive(Debug, Clone)]
pub struct FnNode {
    /// Index of the owning file in the workspace file list.
    pub file: usize,
    /// Index of the [`FnDef`] within that file's model.
    pub def: usize,
    /// Calls made from the body.
    pub calls: Vec<CallSite>,
    /// Primitive effects in the body.
    pub prims: Vec<PrimUse>,
}

/// The workspace call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Flattened function nodes.
    pub fns: Vec<FnNode>,
    /// Parallel adjacency (deduped targets of all call sites).
    pub edges: Vec<Vec<usize>>,
}

/// Borrowed view of one function's identity (for display and rules).
pub struct FnRef<'a> {
    /// Workspace-relative path of the defining file.
    pub relpath: &'a str,
    /// The parsed definition.
    pub def: &'a FnDef,
}

impl CallGraph {
    /// Builds the index and graph from every parsed file.
    pub fn build(files: &[FileModel]) -> CallGraph {
        let mut graph = CallGraph::default();
        // ---- flatten + resolution maps
        let mut methods_by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut by_type_method: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        let mut free_by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut mod_fns: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        for (fi, file) in files.iter().enumerate() {
            for (di, def) in file.fns.iter().enumerate() {
                let id = graph.fns.len();
                graph.fns.push(FnNode {
                    file: fi,
                    def: di,
                    calls: Vec::new(),
                    prims: Vec::new(),
                });
                match &def.self_ty {
                    Some(ty) => {
                        // Untyped method calls spread to every method of
                        // the name — except std-trait impls (`Clone`,
                        // `Display`, …): a bare `.clone()` resolving to
                        // every hand-written `Clone` impl floods the
                        // graph with absurd edges. Typed receivers still
                        // resolve to them through `by_type_method`.
                        if !def
                            .trait_name
                            .as_deref()
                            .is_some_and(|t| STD_TRAITS.contains(&t))
                        {
                            methods_by_name.entry(&def.name).or_default().push(id);
                        }
                        by_type_method
                            .entry((ty.as_str(), &def.name))
                            .or_default()
                            .push(id);
                    }
                    None if def.trait_name.is_some() => {
                        // Trait default method: callable through any impl.
                        // Body-less declarations are interface surface,
                        // not code — the impls are the candidates.
                        if !def.body.is_empty() {
                            methods_by_name.entry(&def.name).or_default().push(id);
                        }
                    }
                    None => {
                        free_by_name.entry(&def.name).or_default().push(id);
                        // A file IS a module: `crate::inner::drain` must
                        // resolve to a top-level fn in `inner.rs` just
                        // like one in an inline `mod inner`.
                        let m = def
                            .module
                            .last()
                            .map(String::as_str)
                            .unwrap_or_else(|| file_stem(&file.relpath));
                        if !m.is_empty() {
                            mod_fns.entry((m, &def.name)).or_default().push(id);
                        }
                    }
                }
            }
        }
        // use-alias maps per file: local name -> final segment
        let alias: Vec<BTreeMap<&str, &str>> = files
            .iter()
            .map(|f| {
                f.uses
                    .iter()
                    .filter_map(|u| Some((u.local.as_str(), u.path.last()?.as_str())))
                    .collect()
            })
            .collect();

        // ---- scan bodies
        let mut id = 0usize;
        for (fi, file) in files.iter().enumerate() {
            for def in &file.fns {
                let locals = local_types(file, def);
                let node = &mut graph.fns[id];
                scan_body(file, def, &locals, node);
                // resolve the recorded call names
                for call in &mut node.calls {
                    call.targets = resolve(
                        &call.resolution_key(file, def, &locals),
                        &alias[fi],
                        &methods_by_name,
                        &by_type_method,
                        &free_by_name,
                        &mod_fns,
                    );
                }
                id += 1;
            }
        }
        graph.edges = graph
            .fns
            .iter()
            .map(|n| {
                let mut e: Vec<usize> = n.calls.iter().flat_map(|c| c.targets.clone()).collect();
                e.sort_unstable();
                e.dedup();
                e
            })
            .collect();
        graph
    }

    /// Identity view of fn `id`.
    pub fn fn_ref<'a>(&'a self, files: &'a [FileModel], id: usize) -> FnRef<'a> {
        let node = &self.fns[id];
        FnRef {
            relpath: &files[node.file].relpath,
            def: &files[node.file].fns[node.def],
        }
    }

    /// Display name: `Type::name` or `name`.
    pub fn display(&self, files: &[FileModel], id: usize) -> String {
        let r = self.fn_ref(files, id);
        match &r.def.self_ty {
            Some(ty) => format!("{ty}::{}", r.def.name),
            None => r.def.name.clone(),
        }
    }

    /// BFS from `roots`, skipping functions for which `exclude` returns
    /// true (they are neither visited nor traversed). Returns, for every
    /// reachable fn, the id of the fn it was first reached from (`None`
    /// for roots).
    pub fn reach(
        &self,
        roots: &[usize],
        mut exclude: impl FnMut(usize) -> bool,
    ) -> BTreeMap<usize, Option<usize>> {
        let mut parent: BTreeMap<usize, Option<usize>> = BTreeMap::new();
        let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
        for &r in roots {
            if !exclude(r) && !parent.contains_key(&r) {
                parent.insert(r, None);
                queue.push_back(r);
            }
        }
        while let Some(at) = queue.pop_front() {
            for &next in &self.edges[at] {
                if !parent.contains_key(&next) && !exclude(next) {
                    parent.insert(next, Some(at));
                    queue.push_back(next);
                }
            }
        }
        parent
    }

    /// The call path `root → … → id` implied by a `reach` parent map,
    /// rendered with display names (capped to the last `max` hops).
    pub fn path_to(
        &self,
        files: &[FileModel],
        parents: &BTreeMap<usize, Option<usize>>,
        id: usize,
        max: usize,
    ) -> String {
        let mut hops = vec![self.display(files, id)];
        let mut at = id;
        while let Some(Some(p)) = parents.get(&at) {
            hops.push(self.display(files, *p));
            at = *p;
        }
        hops.reverse();
        if hops.len() > max {
            let skipped = hops.len() - max;
            let tail = hops.split_off(skipped);
            format!("{} → … → {}", hops[0], tail.join(" → "))
        } else {
            hops.join(" → ")
        }
    }

    /// DOT rendering of the whole graph (debug aid for `--graph`).
    pub fn to_dot(&self, files: &[FileModel]) -> String {
        let mut out = String::from("digraph calls {\n  rankdir=LR;\n");
        for id in 0..self.fns.len() {
            let r = self.fn_ref(files, id);
            out.push_str(&format!(
                "  n{id} [label=\"{}\\n{}\"];\n",
                self.display(files, id),
                r.relpath
            ));
        }
        for (id, edges) in self.edges.iter().enumerate() {
            for e in edges {
                out.push_str(&format!("  n{id} -> n{e};\n"));
            }
        }
        out.push_str("}\n");
        out
    }
}

/// The implicit module name a file defines (`…/inner.rs` → `inner`;
/// `lib.rs`/`main.rs`/`mod.rs` name no usable module segment).
fn file_stem(relpath: &str) -> &str {
    let name = relpath.rsplit('/').next().unwrap_or(relpath);
    let stem = name.strip_suffix(".rs").unwrap_or(name);
    match stem {
        "lib" | "main" | "mod" => "",
        s => s,
    }
}

/// Std traits whose impls untyped method calls do NOT spread to (see
/// [`CallGraph::build`]).
const STD_TRAITS: &[&str] = &[
    "Clone",
    "Copy",
    "Default",
    "Drop",
    "Debug",
    "Display",
    "PartialEq",
    "Eq",
    "PartialOrd",
    "Ord",
    "Hash",
    "Iterator",
    "IntoIterator",
    "From",
    "Into",
    "TryFrom",
    "TryInto",
    "FromStr",
    "Deref",
    "DerefMut",
    "Index",
    "IndexMut",
    "Read",
    "Write",
];

/// Keywords that look like calls when followed by `(`.
const NON_CALLS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "let", "in", "move", "fn", "as", "else",
    "break", "continue", "where", "unsafe", "dyn", "impl", "ref", "mut", "self", "Self", "super",
    "crate", "pub", "use", "true", "false",
];

/// How a call site should be resolved.
enum Key<'a> {
    Method {
        name: &'a str,
        recv_ty: Option<String>,
    },
    Qualified {
        name: &'a str,
        qualifier: String,
    },
    Free {
        name: &'a str,
    },
}

impl CallSite {
    /// Re-derives the resolution key from the token context (receiver
    /// shape is recomputed — the site only stores the callee name/tok).
    fn resolution_key<'a>(
        &'a self,
        file: &FileModel,
        def: &FnDef,
        locals: &BTreeMap<String, String>,
    ) -> Key<'a> {
        let j = self.tok;
        let prev = |k: usize| file.toks.get(j.wrapping_sub(k)).map(|t| t.text.as_str());
        if prev(1) == Some(".") {
            // method call: type the receiver if it is a bare ident (or
            // `self`) not itself part of a field chain
            let recv_ty = match prev(2) {
                Some("self") if prev(3) != Some(".") => def.self_ty.clone(),
                Some(id)
                    if file.toks.get(j.wrapping_sub(2)).is_some_and(|t| t.is_ident)
                        && prev(3) != Some(".") =>
                {
                    locals.get(id).cloned()
                }
                _ => None,
            };
            Key::Method {
                name: &self.name,
                recv_ty,
            }
        } else if prev(1) == Some(":") && prev(2) == Some(":") {
            let qualifier = match prev(3) {
                Some("Self") => def.self_ty.clone().unwrap_or_else(|| "Self".to_string()),
                Some(q) => q.to_string(),
                None => String::new(),
            };
            Key::Qualified {
                name: &self.name,
                qualifier,
            }
        } else {
            Key::Free { name: &self.name }
        }
    }
}

fn resolve(
    key: &Key<'_>,
    alias: &BTreeMap<&str, &str>,
    methods_by_name: &BTreeMap<&str, Vec<usize>>,
    by_type_method: &BTreeMap<(&str, &str), Vec<usize>>,
    free_by_name: &BTreeMap<&str, Vec<usize>>,
    mod_fns: &BTreeMap<(&str, &str), Vec<usize>>,
) -> Vec<usize> {
    match key {
        Key::Method { name, recv_ty } => {
            if let Some(ty) = recv_ty {
                let exact = by_type_method.get(&(ty.as_str(), *name));
                if let Some(t) = exact {
                    return t.clone();
                }
            }
            methods_by_name.get(*name).cloned().unwrap_or_default()
        }
        Key::Qualified { name, qualifier } => {
            // Qualified paths are static — resolve exactly (methods of
            // the type, then free fns in a module of that name) or not
            // at all. Falling back to "any fn of this name" would wire
            // every `Vec::new()` to every user constructor.
            let q: &str = alias.get(qualifier.as_str()).copied().unwrap_or(qualifier);
            if let Some(t) = by_type_method.get(&(q, *name)) {
                return t.clone();
            }
            mod_fns.get(&(q, *name)).cloned().unwrap_or_default()
        }
        Key::Free { name } => free_by_name.get(*name).cloned().unwrap_or_default(),
    }
}

/// Builds the local ident → base-type map for a function: `self_ty` for
/// `self`, typed parameters, and `let x: Ty` / `let x = Ty::…(…)` lets.
fn local_types(file: &FileModel, def: &FnDef) -> BTreeMap<String, String> {
    let mut map = BTreeMap::new();
    let toks = &file.toks;
    // parameters: `name: [&][mut] Type` pairs at paren depth 0
    let mut depth = 0i32;
    let mut i = def.params.start;
    while i < def.params.end {
        match toks[i].text.as_str() {
            "(" | "<" | "[" => depth += 1,
            ")" | ">" | "]" => depth -= 1,
            ":" if depth == 0
                && toks.get(i + 1).is_none_or(|t| t.text != ":")
                && toks.get(i.wrapping_sub(1)).is_some_and(|t| t.is_ident) =>
            {
                let name = toks[i - 1].text.clone();
                if let Some(ty) = base_type(toks, i + 1, def.params.end) {
                    map.insert(name, ty);
                }
            }
            _ => {}
        }
        i += 1;
    }
    // lets in the body
    let mut j = def.body.start;
    while j < def.body.end {
        if toks[j].text == "let" && toks[j].is_ident {
            let mut k = j + 1;
            if toks.get(k).is_some_and(|t| t.text == "mut") {
                k += 1;
            }
            if toks.get(k).is_some_and(|t| t.is_ident) {
                let name = toks[k].text.clone();
                let next = toks.get(k + 1).map(|t| t.text.as_str());
                if next == Some(":") && toks.get(k + 2).is_none_or(|t| t.text != ":") {
                    if let Some(ty) = base_type(toks, k + 2, def.body.end) {
                        map.insert(name, ty);
                    }
                } else if next == Some("=") {
                    // `let x = Type::ctor(…)` — a capitalized path head
                    let head = toks.get(k + 2);
                    let is_path = toks.get(k + 3).is_some_and(|t| t.text == ":")
                        && toks.get(k + 4).is_some_and(|t| t.text == ":");
                    if let Some(h) = head {
                        if h.is_ident
                            && is_path
                            && h.text.chars().next().is_some_and(char::is_uppercase)
                        {
                            map.insert(name, h.text.clone());
                        }
                    }
                }
            }
        }
        j += 1;
    }
    map
}

/// The base identifier of the type starting at `i` (`&mut Swarm<T>` →
/// `Swarm`).
fn base_type(toks: &[Tok], mut i: usize, end: usize) -> Option<String> {
    while i < end {
        let t = &toks[i];
        if t.is_ident {
            if matches!(t.text.as_str(), "mut" | "dyn" | "impl" | "const") {
                i += 1;
                continue;
            }
            // walk `a::b::C` to the final segment
            let mut last = t.text.clone();
            let mut j = i + 1;
            while toks.get(j).is_some_and(|t| t.text == ":")
                && toks.get(j + 1).is_some_and(|t| t.text == ":")
                && toks.get(j + 2).is_some_and(|t| t.is_ident)
            {
                last = toks[j + 2].text.clone();
                j += 3;
            }
            return Some(last);
        }
        if matches!(t.text.as_str(), "&" | "'" | "*" | "(") {
            i += 1;
            continue;
        }
        return None;
    }
    None
}

/// Scans a body's tokens for call sites and primitive effects.
fn scan_body(file: &FileModel, def: &FnDef, _locals: &BTreeMap<String, String>, node: &mut FnNode) {
    let toks = &file.toks;
    let mut j = def.body.start;
    while j < def.body.end {
        let t = &toks[j];
        if !t.is_ident {
            j += 1;
            continue;
        }
        let next = toks.get(j + 1).map(|t| t.text.as_str());
        let prev = toks.get(j.wrapping_sub(1)).map(|t| t.text.as_str());
        let is_method = prev == Some(".");
        // ---- primitive effects
        let qualified_by = |q: &str| {
            j >= 3 && toks[j - 1].text == ":" && toks[j - 2].text == ":" && toks[j - 3].text == q
        };
        let prim = match t.text.as_str() {
            "sleep" if qualified_by("thread") => Some((Prim::Sleep, "thread::sleep")),
            "now" if qualified_by("Instant") => Some((Prim::InstantNow, "Instant::now")),
            "now" if qualified_by("SystemTime") => Some((Prim::SystemTimeNow, "SystemTime::now")),
            "recv" if is_method && next == Some("(") => Some((Prim::BlockingRecv, ".recv()")),
            "recv_timeout" if is_method && next == Some("(") => {
                Some((Prim::BlockingRecv, ".recv_timeout(…)"))
            }
            "recv_deadline" if is_method && next == Some("(") => {
                Some((Prim::BlockingRecv, ".recv_deadline(…)"))
            }
            "unwrap" if is_method && next == Some("(") => Some((Prim::Panic, ".unwrap()")),
            "expect" if is_method && next == Some("(") => Some((Prim::Panic, ".expect(…)")),
            "panic" if next == Some("!") => Some((Prim::Panic, "panic!")),
            "unreachable" if next == Some("!") => Some((Prim::Panic, "unreachable!")),
            "borrow_mut" if is_method && next == Some("(") => {
                Some((Prim::BorrowMut, ".borrow_mut()"))
            }
            "borrow" if is_method && next == Some("(") => Some((Prim::Borrow, ".borrow()")),
            _ => None,
        };
        if let Some((prim, what)) = prim {
            node.prims.push(PrimUse {
                prim,
                line: t.line,
                tok: j,
                in_test: t.in_test,
                what: what.to_string(),
            });
        }
        // ---- call sites (a prim-shaped method is an *effect*, not an
        // edge: `.borrow()` must not resolve to some user type's
        // `borrow` method and drag its callees into the graph)
        let prim_shaped = is_method
            && matches!(
                t.text.as_str(),
                "recv"
                    | "recv_timeout"
                    | "recv_deadline"
                    | "unwrap"
                    | "expect"
                    | "borrow"
                    | "borrow_mut"
            );
        if next == Some("(") && !prim_shaped && !NON_CALLS.contains(&t.text.as_str()) {
            node.calls.push(CallSite {
                name: t.text.clone(),
                line: t.line,
                tok: j,
                targets: Vec::new(),
            });
        }
        j += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse_file;

    fn build(srcs: &[(&str, &str)]) -> (Vec<FileModel>, CallGraph) {
        let files: Vec<FileModel> = srcs.iter().map(|(p, s)| parse_file(p, &lex(s))).collect();
        let graph = CallGraph::build(&files);
        (files, graph)
    }

    fn fid(files: &[FileModel], graph: &CallGraph, name: &str) -> usize {
        (0..graph.fns.len())
            .find(|&i| graph.fn_ref(files, i).def.name == name)
            .unwrap()
    }

    #[test]
    fn free_calls_resolve_across_files() {
        let (files, g) = build(&[
            ("crates/a/src/lib.rs", "fn caller() { helper(); }\n"),
            ("crates/b/src/lib.rs", "fn helper() {}\n"),
        ]);
        let caller = fid(&files, &g, "caller");
        let helper = fid(&files, &g, "helper");
        assert_eq!(g.edges[caller], vec![helper]);
    }

    #[test]
    fn typed_receivers_resolve_to_one_impl_untyped_to_all() {
        let src = "
struct A; struct B;
impl A { fn go(&self) {} }
impl B { fn go(&self) {} }
fn typed() { let a = A::new(); a.go(); }
fn untyped(x: &X) { x.go(); }
";
        let (files, g) = build(&[("crates/a/src/lib.rs", src)]);
        let typed = fid(&files, &g, "typed");
        let untyped = fid(&files, &g, "untyped");
        // a is typed A (let a = A::new()) → only A::go (A::new also
        // recorded as an unresolved qualified call → no targets).
        let a_go = (0..g.fns.len())
            .find(|&i| {
                let r = g.fn_ref(&files, i);
                r.def.name == "go" && r.def.self_ty.as_deref() == Some("A")
            })
            .unwrap();
        assert_eq!(g.edges[typed], vec![a_go]);
        // x's type X has no methods here → every `go` in the workspace.
        assert_eq!(g.edges[untyped].len(), 2);
    }

    #[test]
    fn trait_calls_spread_to_all_impls() {
        let src = "
trait Transport { fn send(&self); }
struct Sim; struct Bus;
impl Transport for Sim { fn send(&self) {} }
impl Transport for Bus { fn send(&self) {} }
fn fan(t: &T) { t.send(); }
";
        let (files, g) = build(&[("crates/a/src/lib.rs", src)]);
        let fan = fid(&files, &g, "fan");
        assert_eq!(g.edges[fan].len(), 2, "both impls are candidates");
    }

    #[test]
    fn prims_are_detected() {
        let src = "
fn blocky(rx: &Receiver<u8>) {
    std::thread::sleep(d);
    let t = Instant::now();
    let _ = rx.recv();
    maybe.unwrap();
    panic!(\"boom\");
}
";
        let (files, g) = build(&[("crates/a/src/lib.rs", src)]);
        let f = fid(&files, &g, "blocky");
        let prims: Vec<Prim> = g.fns[f].prims.iter().map(|p| p.prim).collect();
        assert_eq!(
            prims,
            [
                Prim::Sleep,
                Prim::InstantNow,
                Prim::BlockingRecv,
                Prim::Panic,
                Prim::Panic
            ]
        );
    }

    #[test]
    fn reach_reports_parent_paths_and_respects_exclusion() {
        let (files, g) = build(&[(
            "crates/a/src/lib.rs",
            "fn root() { mid(); }\nfn mid() { leaf(); }\nfn leaf() {}\nfn island() {}\n",
        )]);
        let root = fid(&files, &g, "root");
        let mid = fid(&files, &g, "mid");
        let leaf = fid(&files, &g, "leaf");
        let island = fid(&files, &g, "island");
        let parents = g.reach(&[root], |_| false);
        assert!(parents.contains_key(&leaf));
        assert!(!parents.contains_key(&island));
        assert_eq!(g.path_to(&files, &parents, leaf, 8), "root → mid → leaf");
        // Excluding `mid` cuts the path to leaf.
        let parents = g.reach(&[root], |id| id == mid);
        assert!(!parents.contains_key(&leaf));
    }

    #[test]
    fn qualified_calls_resolve_through_use_aliases() {
        let (files, g) = build(&[
            (
                "crates/a/src/lib.rs",
                "use crate::fabric::SimNet as Fabric;\nfn mk() { Fabric::start(); }\n",
            ),
            ("crates/b/src/lib.rs", "impl SimNet { fn start() {} }\n"),
        ]);
        let mk = fid(&files, &g, "mk");
        let start = fid(&files, &g, "start");
        assert_eq!(g.edges[mk], vec![start]);
    }
}
