//! `pti-analyze`: a zero-dependency workspace lint pass enforcing the
//! invariants no compiler checks.
//!
//! The fabric stack rests on three promises the type system cannot
//! state: deterministic fabrics never read the wall clock, the
//! `Rc`-based reactor state never leaves its owning shard thread, and
//! nothing whose iteration order reaches the wire (or a byte-identical
//! determinism log) iterates a hash container. This crate encodes them
//! — plus the panic and print policies — as five lint rules over a
//! [hand-rolled lexer](lexer) and runs them from the `pti-lint` binary
//! (`cargo run -p pti-analyze --bin pti-lint`), which exits nonzero on
//! any deny-tier finding.
//!
//! | rule | tier | scope |
//! |------|------|-------|
//! | `wall-clock` | deny | `crates/net/src` (minus `bus.rs`/`bridge.rs`), `crates/serialize/src`, `crates/transport/src` |
//! | `unordered-iter` | deny | wire-encode / gossip-codec / metrics files + `crates/serialize/src` |
//! | `thread-confinement` | deny | everywhere except `bus.rs`, `bridge.rs`, `sharded.rs` |
//! | `panic-policy` | deny on `pti-net`/`pti-transport`, advisory elsewhere | library + bin code |
//! | `print-discipline` | advisory | library code (bins, bench, examples, tests exempt) |
//!
//! A finding is suppressed by `// pti-allow(rule): reason` on the same
//! line, or on a comment-only line directly above it. The reason is
//! mandatory; a malformed allow is itself a deny finding
//! (`allow-syntax`), and an allow that suppresses nothing is reported
//! as advisory `unused-allow`.

pub mod engine;
pub mod lexer;
pub mod rules;

pub use engine::{analyze_source, analyze_workspace, Finding};
pub use rules::{classify, FileClass, Severity, RULES};
