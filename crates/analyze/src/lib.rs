//! `pti-analyze`: a zero-dependency workspace lint pass enforcing the
//! invariants no compiler checks.
//!
//! The fabric stack rests on promises the type system cannot state:
//! deterministic fabrics never read the wall clock, the `Rc`-based
//! reactor state never leaves its owning shard thread, nothing whose
//! iteration order reaches the wire iterates a hash container, and no
//! pump turn ever blocks. This crate encodes them as two layers of
//! rules and runs them from the `pti-lint` binary
//! (`cargo run -p pti-analyze --bin pti-lint`), which exits nonzero on
//! any deny-tier finding.
//!
//! **File-granularity rules** pattern-match [lexed](lexer) blanked
//! lines, scoped by path:
//!
//! | rule | tier | scope |
//! |------|------|-------|
//! | `wall-clock` | deny | `crates/net/src` (minus `bus.rs`/`bridge.rs`), `crates/serialize/src` |
//! | `unordered-iter` | deny | wire-encode / gossip-codec / metrics files + `crates/serialize/src` |
//! | `thread-confinement` | deny | everywhere except `bus.rs`, `bridge.rs`, `sharded.rs` |
//! | `panic-policy` | deny on `pti-net`/`pti-transport`, advisory elsewhere | library + bin code |
//! | `print-discipline` | deny | library code (bins, bench, examples, tests exempt) |
//! | `unbounded-queue` | advisory | fabric wire-queue / inbox files |
//!
//! **Interprocedural rules** run over a workspace-wide
//! [call graph](graph) built from a hand-rolled recursive-descent
//! [item parser](parser) (fn/impl/mod/use; bodies kept as token
//! streams). Trait calls resolve to *all* impls — over-approximate, so
//! a clean report is a real guarantee:
//!
//! | rule | tier | what |
//! |------|------|------|
//! | `reactor-blocking` | deny | `thread::sleep` / blocking `recv` / `Instant::now` reachable from the reactor pump loops |
//! | `refcell-reentrancy` | advisory | `borrow_mut()` held across a call that can re-enter the same cell |
//! | `wire-determinism-taint` | deny | HashMap/HashSet iteration values flowing into `FrameBatch::push` / `encode_wire` / `.send(…)` |
//! | `panic-reachability` | report | every panic site reachable from `Swarm::dispatch`, count-gated in CI |
//!
//! A finding is suppressed by `// pti-allow(rule): reason` on the same
//! line, on a comment-only line directly above it, or — for rustfmt-
//! split method chains — on the statement head line. The reason is
//! mandatory; a malformed allow is itself a deny finding
//! (`allow-syntax`), and an allow that suppresses nothing is reported
//! as advisory `unused-allow`. CI gates the total allow count (it can
//! only go down) and the panic-reachability count ceiling via
//! `pti-lint --json`.

pub mod engine;
pub mod graph;
pub mod ipr;
pub mod lexer;
pub mod parser;
pub mod rules;

pub use engine::{analyze_files, analyze_source, analyze_workspace, Analysis, Finding, PanicSite};
pub use graph::CallGraph;
pub use parser::{parse_file, FileModel};
pub use rules::{classify, FileClass, Severity, IPR_RULE_IDS, RULES};
