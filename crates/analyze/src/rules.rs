//! The rule set: each rule encodes one invariant the compiler cannot
//! check, scoped to the paths where the invariant actually holds. The
//! layout follows the checker-with-rule-table shape the conformance
//! solver already borrowed (SNIPPETS.md snippet 1): a static table of
//! rules, each deciding *where* it applies ([`Rule::severity_for`]) and
//! *what* trips it ([`Rule::check`]).
//!
//! Severity has two tiers: [`Severity::Deny`] findings fail `pti-lint`
//! (and CI); [`Severity::Advisory`] findings are reported but do not
//! fail the build. A finding on a line (or directly under a
//! comment-only line) carrying `// pti-allow(rule): reason` is
//! suppressed — the reason is mandatory, and a malformed or unknown
//! allow is itself a deny finding (`allow-syntax`).

use crate::lexer::Line;

/// How a finding counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Fails the lint run (nonzero exit).
    Deny,
    /// Reported, never fails the run.
    Advisory,
}

/// Where a file sits in the workspace — decides which rules apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// `crates/<c>/src/**` (library code).
    Lib,
    /// `crates/<c>/src/bin/**` (binaries — may print).
    Bin,
    /// `crates/<c>/tests/**` (crate integration tests).
    CrateTests,
    /// Workspace `tests/**` (umbrella integration tests).
    IntegrationTests,
    /// Workspace `examples/**`.
    Examples,
    /// `crates/bench/**` (the experiments harness).
    Bench,
}

/// Classifies a workspace-relative path (forward slashes).
pub fn classify(relpath: &str) -> FileClass {
    if relpath.starts_with("crates/bench/") {
        FileClass::Bench
    } else if relpath.starts_with("tests/") {
        FileClass::IntegrationTests
    } else if relpath.starts_with("examples/") {
        FileClass::Examples
    } else if relpath.contains("/src/bin/") {
        FileClass::Bin
    } else if relpath.starts_with("crates/") && relpath.contains("/tests/") {
        FileClass::CrateTests
    } else {
        FileClass::Lib
    }
}

/// How a rule inspects a file.
#[derive(Clone, Copy)]
pub enum Check {
    /// Independent per-line pattern check on blanked code.
    Line(fn(code: &str) -> Option<String>),
    /// Whole-file check (for rules needing cross-line state, like
    /// receiver-type tracking); returns `(zero-based line, message)`.
    File(fn(lines: &[Line]) -> Vec<(usize, String)>),
}

/// One lint rule.
#[derive(Clone, Copy)]
pub struct Rule {
    /// Stable id, used in output and in `pti-allow(<id>)` comments.
    pub id: &'static str,
    /// One-line statement of the invariant.
    pub summary: &'static str,
    /// Whether `#[cfg(test)]` code is exempt.
    pub exempt_tests: bool,
    /// Scope + tier decision for a file.
    pub severity_for: fn(relpath: &str, class: FileClass) -> Option<Severity>,
    /// The pattern check.
    pub check: Check,
}

/// The rule table. Order is the report order.
pub const RULES: &[Rule] = &[
    Rule {
        id: "wall-clock",
        summary: "deterministic fabrics and codecs must not read the wall clock",
        exempt_tests: true,
        severity_for: wall_clock_scope,
        check: Check::Line(wall_clock_check),
    },
    Rule {
        id: "unordered-iter",
        summary: "no HashMap/HashSet iteration on paths that feed byte-identical logs",
        exempt_tests: true,
        severity_for: unordered_iter_scope,
        check: Check::File(unordered_iter_file),
    },
    Rule {
        id: "thread-confinement",
        summary: "thread primitives are confined to bus.rs, bridge.rs and sharded.rs",
        exempt_tests: false,
        severity_for: thread_confinement_scope,
        check: Check::Line(thread_confinement_check),
    },
    Rule {
        id: "panic-policy",
        summary: "unwrap/expect/panic! in fabric library code needs a pti-allow reason",
        exempt_tests: true,
        severity_for: panic_policy_scope,
        check: Check::Line(panic_policy_check),
    },
    Rule {
        id: "print-discipline",
        summary: "library crates do not print; use metrics or return values",
        exempt_tests: true,
        severity_for: print_discipline_scope,
        check: Check::Line(print_discipline_check),
    },
    Rule {
        id: "unbounded-queue",
        summary: "wire/inbox queue pushes need a visible bound or a stated reason",
        exempt_tests: true,
        severity_for: unbounded_queue_scope,
        check: Check::File(unbounded_queue_file),
    },
];

/// Looks a rule up by id (for allow-comment validation).
pub fn rule_by_id(id: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.id == id)
}

/// The interprocedural rule ids, implemented in [`crate::ipr`] rather
/// than the [`RULES`] table (they need the whole workspace's call
/// graph, not one file's lines).
pub const IPR_RULE_IDS: &[&str] = &[
    "reactor-blocking",
    "refcell-reentrancy",
    "wire-determinism-taint",
    "panic-reachability",
];

/// Whether `id` names any rule a `pti-allow` may reference: a table
/// rule or an interprocedural one.
pub fn known_rule_id(id: &str) -> bool {
    rule_by_id(id).is_some() || IPR_RULE_IDS.contains(&id)
}

/// Whether `needle` occurs in `hay` as a standalone token: the chars on
/// both sides (if any) must not be identifier chars. `::`-qualified
/// callers still match (`:` is not an identifier char).
fn contains_token(hay: &str, needle: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = hay[from..].find(needle) {
        let at = from + pos;
        let before_ok = at == 0
            || !hay[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = hay[at + needle.len()..].chars().next();
        let after_ok = !after.is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        from = at + needle.len();
    }
    false
}

// ---------------------------------------------------------------- wall-clock

/// The virtual-time fabrics (`SimNet`, `SharedSimNet`, `ReactorNet`)
/// and the codecs must be pure functions of their inputs; only
/// `LiveBus` (bus.rs) and the bridge own real time. `crates/transport`
/// left this file-granularity scope when the interprocedural
/// `reactor-blocking` rule landed: `Swarm::run`/`run_for` legitimately
/// own deadlines on the live path, and every reactor-driven path is now
/// covered with call-graph precision instead of a blanket file ban.
fn wall_clock_scope(relpath: &str, class: FileClass) -> Option<Severity> {
    if class != FileClass::Lib && class != FileClass::Bin {
        return None;
    }
    let in_net = relpath.starts_with("crates/net/src/")
        && !relpath.ends_with("/bus.rs")
        && !relpath.ends_with("/bridge.rs");
    let in_scope = in_net || relpath.starts_with("crates/serialize/src/");
    in_scope.then_some(Severity::Deny)
}

fn wall_clock_check(code: &str) -> Option<String> {
    for pat in ["Instant::now", "SystemTime::now", "thread::sleep"] {
        if code.contains(pat) {
            return Some(format!(
                "`{pat}` reads the wall clock on a virtual-time path; use the fabric clock"
            ));
        }
    }
    None
}

// ------------------------------------------------------------ unordered-iter

/// Files whose iteration order reaches the wire, the gossip codec, or a
/// metrics dump that the byte-identical determinism tests compare.
/// `reactor.rs` dropped out when `wire-determinism-taint` landed — the
/// taint pass tracks hash iteration *flowing to the wire* instead of
/// banning iteration wholesale in a file that sorts before exposing.
const UNORDERED_ITER_FILES: &[&str] = &[
    "crates/net/src/metrics.rs",
    "crates/net/src/frame.rs",
    "crates/transport/src/membership.rs",
    "crates/transport/src/routing.rs",
    "crates/transport/src/swarm.rs",
    "crates/transport/src/sharded.rs",
    "crates/transport/src/peer.rs",
];

fn unordered_iter_scope(relpath: &str, class: FileClass) -> Option<Severity> {
    if class != FileClass::Lib {
        return None;
    }
    let in_scope =
        UNORDERED_ITER_FILES.contains(&relpath) || relpath.starts_with("crates/serialize/src/");
    in_scope.then_some(Severity::Deny)
}

/// Methods whose result order is the hasher's, not the data's.
const UNORDERED_METHODS: &[&str] = &[
    "iter()",
    "iter_mut()",
    "keys()",
    "values()",
    "values_mut()",
    "drain()",
    "into_iter()",
    "into_keys()",
    "into_values()",
    "retain(",
];

/// Two-pass file check: pass one collects every identifier declared
/// with a hash type on some line (`name: HashMap<…>`,
/// `let [mut] name = HashSet::new()` — the only declaration shapes this
/// workspace uses); pass two flags hasher-ordered iteration through any
/// of those names, or through an inline hash value, on any line.
fn unordered_iter_file(lines: &[Line]) -> Vec<(usize, String)> {
    let mut hash_idents: Vec<String> = Vec::new();
    for line in lines {
        collect_hash_idents(&line.code, &mut hash_idents);
    }
    let mut out = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        let code = &line.code;
        for m in UNORDERED_METHODS {
            let pat = format!(".{m}");
            let mut from = 0;
            while let Some(pos) = code[from..].find(&pat) {
                let at = from + pos;
                let mut receiver = ident_before(code, at);
                // Rustfmt breaks long chains one link per line: a
                // leading `.iter()` takes its receiver from the tail of
                // the nearest preceding non-blank code line.
                if receiver.is_empty() && code[..at].trim().is_empty() {
                    receiver = lines[..idx]
                        .iter()
                        .rev()
                        .find(|l| !l.code.trim().is_empty())
                        .map(|l| last_ident(&l.code))
                        .unwrap_or("");
                }
                if hash_idents.iter().any(|h| h == receiver) {
                    out.push((
                        idx,
                        format!(
                            "`{receiver}.{m}` iterates a HashMap/HashSet in hasher \
                             order; collect into a BTreeMap/BTreeSet or sort first"
                        ),
                    ));
                    break;
                }
                from = at + pat.len();
            }
        }
        // `for x in &map` / `for x in map` over a known hash ident.
        if code.contains("for ") {
            if let Some(pos) = code.find(" in ") {
                let tail = &code[pos + 4..];
                if let Some(h) = hash_idents.iter().find(|h| contains_token(tail, h)) {
                    // Skip when the hit is a method call already reported.
                    if !tail.contains(&format!("{h}.")) {
                        out.push((
                            idx,
                            format!(
                                "`for … in {h}` iterates a HashMap/HashSet in hasher \
                                 order; collect into a BTreeMap/BTreeSet or sort first"
                            ),
                        ));
                    }
                }
            }
        }
    }
    out
}

/// Records identifiers declared with `HashMap`/`HashSet` types on this
/// line (see [`collect_decls`]).
fn collect_hash_idents(code: &str, out: &mut Vec<String>) {
    collect_decls(code, &["HashMap", "HashSet"], out);
}

/// Records identifiers declared with any of `types` on this line:
/// `name: [&][mut] Type<…>` (fields, params, let-annotations) and
/// `[let [mut]] name = Type::new/with_capacity/from(…)`.
pub(crate) fn collect_decls(code: &str, types: &[&str], out: &mut Vec<String>) {
    for ty in types {
        let mut from = 0;
        while let Some(pos) = code[from..].find(ty) {
            let at = from + pos;
            from = at + ty.len();
            let before_ok = at == 0
                || !code[..at]
                    .chars()
                    .next_back()
                    .is_some_and(|c| c.is_alphanumeric() || c == '_');
            let after_ok = !code[at + ty.len()..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
            if !before_ok || !after_ok {
                continue;
            }
            // `name: &mut HashMap<…>` declares through references too.
            let mut before = code[..at].trim_end();
            loop {
                if let Some(p) = before.strip_suffix('&') {
                    before = p.trim_end();
                } else if let Some(p) = before.strip_suffix("mut") {
                    before = p.trim_end();
                } else {
                    break;
                }
            }
            let name = if let Some(prefix) = before.strip_suffix(':') {
                // `name: HashMap<…>`
                last_ident(prefix)
            } else if let Some(prefix) = before.strip_suffix('=') {
                // `name = HashMap::new()` (only when followed by `::`)
                if code[at + ty.len()..].starts_with("::") {
                    last_ident(prefix)
                } else {
                    ""
                }
            } else {
                ""
            };
            if !name.is_empty() && !out.iter().any(|n| n == name) {
                out.push(name.to_string());
            }
        }
    }
}

/// The identifier ending at the end of `s` (empty if none).
fn last_ident(s: &str) -> &str {
    let trimmed = s.trim_end();
    let start = trimmed
        .rfind(|c: char| !c.is_alphanumeric() && c != '_')
        .map(|p| p + 1)
        .unwrap_or(0);
    &trimmed[start..]
}

/// The identifier ending just before byte `at` (skipping one `.` chain
/// link is not attempted — the direct receiver is what we report).
fn ident_before(code: &str, at: usize) -> &str {
    last_ident(&code[..at])
}

// -------------------------------------------------------- thread-confinement

/// Only the threaded fabric (`LiveBus`), the shard bridge, and the
/// sharded host may touch OS threads; everything else is single-thread
/// deterministic by construction (the `Rc`-based reactor state relies
/// on it).
const THREAD_FILES: &[&str] = &[
    "crates/net/src/bus.rs",
    "crates/net/src/bridge.rs",
    "crates/transport/src/sharded.rs",
];

fn thread_confinement_scope(relpath: &str, _class: FileClass) -> Option<Severity> {
    (!THREAD_FILES.contains(&relpath)).then_some(Severity::Deny)
}

fn thread_confinement_check(code: &str) -> Option<String> {
    for pat in ["thread::spawn", "thread::park", "thread::Builder"] {
        if code.contains(pat) {
            return Some(format!(
                "`{pat}` outside bus.rs/bridge.rs/sharded.rs breaks thread confinement"
            ));
        }
    }
    if contains_token(code, "JoinHandle") {
        return Some(
            "`JoinHandle` held outside bus.rs/bridge.rs/sharded.rs breaks thread confinement"
                .to_string(),
        );
    }
    None
}

// -------------------------------------------------------------- panic-policy

/// A panic in fabric library code tears down a whole reactor (and with
/// it every mounted swarm), so each one must be a stated invariant:
/// deny-tier on the fabric crates, advisory elsewhere. Tests, examples
/// and the bench harness unwrap freely.
fn panic_policy_scope(relpath: &str, class: FileClass) -> Option<Severity> {
    if class != FileClass::Lib && class != FileClass::Bin {
        return None;
    }
    if relpath.starts_with("crates/net/src/") || relpath.starts_with("crates/transport/src/") {
        Some(Severity::Deny)
    } else {
        Some(Severity::Advisory)
    }
}

fn panic_policy_check(code: &str) -> Option<String> {
    for pat in [".unwrap()", ".expect(", "panic!", "unreachable!"] {
        if code.contains(pat) {
            return Some(format!(
                "`{pat}` in library code: return an error, or state the invariant \
                 with a pti-allow reason"
            ));
        }
    }
    None
}

// ---------------------------------------------------------- print-discipline

/// Library crates talk through return values and `NetMetrics`, never
/// stdout/stderr. Binaries, the bench harness, examples and tests may
/// print. Deny-tier since the workspace proved clean under the
/// advisory run: a stray `println!` in library code now fails CI.
fn print_discipline_scope(_relpath: &str, class: FileClass) -> Option<Severity> {
    (class == FileClass::Lib).then_some(Severity::Deny)
}

fn print_discipline_check(code: &str) -> Option<String> {
    for pat in ["println!", "eprintln!", "print!(", "eprint!(", "dbg!"] {
        if code.contains(pat) {
            return Some(format!(
                "`{pat}` in a library crate; route output through the caller"
            ));
        }
    }
    None
}

// ------------------------------------------------------------ unbounded-queue

/// The wire-queue and inbox paths of the fabrics and the delivery
/// layer: the files where an uncapped `push` is how a slow consumer or
/// a fault storm turns into unbounded memory growth. Advisory-tier —
/// the heuristic is lexical, so it asks for a justification rather than
/// failing the build.
const UNBOUNDED_QUEUE_FILES: &[&str] = &[
    "crates/net/src/sim.rs",
    "crates/net/src/bus.rs",
    "crates/net/src/reactor.rs",
    "crates/net/src/bridge.rs",
    "crates/transport/src/swarm.rs",
    "crates/transport/src/delivery.rs",
];

fn unbounded_queue_scope(relpath: &str, _class: FileClass) -> Option<Severity> {
    UNBOUNDED_QUEUE_FILES
        .contains(&relpath)
        .then_some(Severity::Advisory)
}

/// Tokens that mark a push as visibly bounded when they appear in the
/// push statement or the few code lines leading up to it: an explicit
/// capacity/depth check, or a drain on the same structure.
const CAP_TOKENS: &[&str] = &[
    "cap",
    "limit",
    "bound",
    "depth",
    "pop_front",
    "truncate",
    "drain",
];

fn has_cap_token(code: &str) -> bool {
    let lower = code.to_ascii_lowercase();
    CAP_TOKENS.iter().any(|t| lower.contains(t))
}

/// Flags `.push(…)`/`.push_back(…)` onto queue-like state — any
/// `push_back` (the VecDeque idiom), and `push` when the statement's
/// receiver is a field (`self.…`) rather than a local scratch Vec —
/// unless a cap token is visible in the statement or the six preceding
/// code lines. Chained calls are attributed to the statement's first
/// line, where the receiver (and any `pti-allow`) lives.
fn unbounded_queue_file(lines: &[Line]) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        let code = &line.code;
        let is_push_back = code.contains(".push_back(");
        let is_push = code.contains(".push(");
        if !is_push_back && !is_push {
            continue;
        }
        // Walk chained calls back to the statement's first line.
        let mut at = idx;
        while at > 0 && lines[at].code.trim_start().starts_with('.') {
            match lines[..at].iter().rposition(|l| !l.code.trim().is_empty()) {
                Some(prev) => at = prev,
                None => break,
            }
        }
        if !is_push_back && !lines[at].code.contains("self.") {
            continue;
        }
        let bounded = (at..=idx).any(|i| has_cap_token(&lines[i].code))
            || lines[..at]
                .iter()
                .rev()
                .filter(|l| !l.code.trim().is_empty())
                .take(6)
                .any(|l| has_cap_token(&l.code));
        if bounded {
            continue;
        }
        let what = if is_push_back { "push_back" } else { "push" };
        out.push((
            at,
            format!(
                "`.{what}(…)` grows a wire/inbox queue with no visible cap or drain \
                 nearby; bound it (credit window, capacity check) or justify with \
                 pti-allow(unbounded-queue)"
            ),
        ));
    }
    out
}

// -------------------------------------------------------------- allow parser

/// A parsed `pti-allow(rule): reason` suppression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// The suppressed rule id.
    pub rule: String,
    /// The mandatory justification.
    pub reason: String,
}

/// Outcome of scanning one comment for allow syntax.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AllowParse {
    /// No `pti-allow` present.
    None,
    /// Well-formed suppressions.
    Allows(Vec<Allow>),
    /// `pti-allow` present but malformed (message explains).
    Malformed(String),
}

/// Parses every `pti-allow(rule): reason` occurrence in a comment.
/// Grammar: `pti-allow(` *rule-id* `):` *non-empty reason*. The rule id
/// must exist; the reason runs to the next `pti-allow` or end of
/// comment.
pub fn parse_allows(comment: &str) -> AllowParse {
    if !comment.contains("pti-allow") {
        return AllowParse::None;
    }
    let mut allows = Vec::new();
    let mut rest = comment;
    while let Some(pos) = rest.find("pti-allow") {
        let after = &rest[pos + "pti-allow".len()..];
        let Some(open) = after.strip_prefix('(') else {
            return AllowParse::Malformed("expected `pti-allow(rule): reason`".to_string());
        };
        let Some(close) = open.find(')') else {
            return AllowParse::Malformed("unclosed `pti-allow(` rule id".to_string());
        };
        let rule = open[..close].trim();
        if !known_rule_id(rule) {
            return AllowParse::Malformed(format!("unknown rule `{rule}` in pti-allow"));
        }
        let Some(tail) = open[close + 1..].strip_prefix(':') else {
            return AllowParse::Malformed(format!(
                "pti-allow({rule}) needs `: reason` — suppressions must be justified"
            ));
        };
        let reason_end = tail.find("pti-allow").unwrap_or(tail.len());
        let reason = tail[..reason_end].trim();
        if reason.is_empty() {
            return AllowParse::Malformed(format!(
                "pti-allow({rule}) has an empty reason — suppressions must be justified"
            ));
        }
        allows.push(Allow {
            rule: rule.to_string(),
            reason: reason.to_string(),
        });
        rest = &tail[reason_end..];
    }
    AllowParse::Allows(allows)
}

/// Whether a blanked code line is effectively empty (comment-only line
/// in the source) — its allows then bind to the next code line.
pub fn code_is_blank(line: &Line) -> bool {
    line.code.trim().is_empty()
}
