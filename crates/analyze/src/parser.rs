//! A hand-rolled recursive-descent *item* parser: just enough syntax to
//! build a workspace-wide item index for the interprocedural rules.
//!
//! The [lexer](crate::lexer) already blanks comment bodies and literal
//! interiors, so this parser tokenizes the blanked code (identifiers,
//! numbers, single-char punctuation) and then walks the token stream
//! recognising the item grammar the rules need:
//!
//! * `fn` items — free functions, inherent/trait-impl methods, trait
//!   default methods — each with its enclosing module path, `Self` type,
//!   trait name, and its **body kept as a token range** (bodies are
//!   never parsed into expressions; the call-graph pass pattern-matches
//!   call shapes over the raw tokens).
//! * `impl Type { … }` / `impl Trait for Type { … }` blocks (context
//!   for the methods inside).
//! * `trait Name { … }` declarations (method names, so trait calls can
//!   resolve to every impl).
//! * `mod name { … }` nesting and `use` declarations (alias → path
//!   segments, for resolving `Alias::method(…)` qualifiers).
//! * `struct`/`enum` declarations — skipped, except that a struct whose
//!   body mentions `RefCell` is recorded as a *cell type* for the
//!   `refcell-reentrancy` rule.
//!
//! Everything else (consts, statics, macros, attributes) is skipped
//! with balanced-delimiter error tolerance: an unrecognised token never
//! aborts the parse, it just isn't an item.

use crate::lexer::Line;

/// One token of blanked code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// Token text (identifier/number text, or the single punct char).
    pub text: String,
    /// Whether this is an identifier-shaped token.
    pub is_ident: bool,
    /// 0-based source line.
    pub line: usize,
    /// Whether the token sits in a `#[cfg(test)]` region.
    pub in_test: bool,
}

/// Tokenizes blanked [`Line`]s: identifiers (incl. keywords), number
/// literals, and single-char punctuation. String/char interiors were
/// blanked by the lexer, so their delimiters surface as plain puncts
/// with nothing interesting between them.
pub fn tokenize(lines: &[Line]) -> Vec<Tok> {
    let mut toks = Vec::new();
    for (ln, line) in lines.iter().enumerate() {
        let chars: Vec<char> = line.code.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let c = chars[i];
            if c.is_whitespace() {
                i += 1;
            } else if c.is_alphabetic() || c == '_' {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                toks.push(Tok {
                    text: chars[start..i].iter().collect(),
                    is_ident: true,
                    line: ln,
                    in_test: line.in_test,
                });
            } else if c.is_ascii_digit() {
                let start = i;
                while i < chars.len()
                    && (chars[i].is_alphanumeric() || chars[i] == '_' || chars[i] == '.')
                {
                    i += 1;
                }
                toks.push(Tok {
                    text: chars[start..i].iter().collect(),
                    is_ident: false,
                    line: ln,
                    in_test: line.in_test,
                });
            } else {
                toks.push(Tok {
                    text: c.to_string(),
                    is_ident: false,
                    line: ln,
                    in_test: line.in_test,
                });
                i += 1;
            }
        }
    }
    toks
}

/// A function item: free fn, inherent or trait-impl method, or trait
/// default method.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Inline-module path within the file (`["tests"]`, …).
    pub module: Vec<String>,
    /// `Self` type for methods (base identifier: `Swarm`, not
    /// `Swarm<T>`), `None` for free fns and trait-decl defaults.
    pub self_ty: Option<String>,
    /// Trait name for trait-impl methods and trait default methods.
    pub trait_name: Option<String>,
    /// The function's name.
    pub name: String,
    /// 0-based line of the `fn` keyword.
    pub line: usize,
    /// Whether the item sits in a `#[cfg(test)]` region.
    pub in_test: bool,
    /// Token range of the parameter list (between the parens).
    pub params: std::ops::Range<usize>,
    /// Token range of the body (between the braces); empty for
    /// body-less trait method declarations.
    pub body: std::ops::Range<usize>,
}

/// A `use` alias: local name → full path segments.
#[derive(Debug, Clone)]
pub struct UseDecl {
    /// The name the item is visible under locally.
    pub local: String,
    /// The full path (`["std", "collections", "HashMap"]`).
    pub path: Vec<String>,
}

/// A trait method declaration (`fn name(…);` inside `trait T`), used to
/// spread trait calls to every impl.
#[derive(Debug, Clone)]
pub struct TraitMethod {
    /// The declaring trait.
    pub trait_name: String,
    /// The method name.
    pub method: String,
}

/// Everything the item parser learned about one file.
#[derive(Debug, Clone, Default)]
pub struct FileModel {
    /// Workspace-relative path (forward slashes).
    pub relpath: String,
    /// The file's token stream (fn bodies index into this).
    pub toks: Vec<Tok>,
    /// Every function item.
    pub fns: Vec<FnDef>,
    /// Every `use` alias.
    pub uses: Vec<UseDecl>,
    /// Trait method declarations.
    pub trait_methods: Vec<TraitMethod>,
    /// Struct names whose bodies mention `RefCell` (shared-cell types —
    /// candidates for the reentrancy rule).
    pub cell_types: Vec<String>,
}

/// Parses one file's blanked lines into a [`FileModel`].
pub fn parse_file(relpath: &str, lines: &[Line]) -> FileModel {
    let toks = tokenize(lines);
    let mut model = FileModel {
        relpath: relpath.to_string(),
        ..FileModel::default()
    };
    let mut p = Parser {
        toks: &toks,
        model: &mut model,
        module: Vec::new(),
    };
    let end = p.toks.len();
    p.items(0, end, None, None);
    model.toks = toks;
    model
}

struct Parser<'a> {
    toks: &'a [Tok],
    model: &'a mut FileModel,
    module: Vec<String>,
}

impl Parser<'_> {
    fn is(&self, i: usize, text: &str) -> bool {
        self.toks.get(i).is_some_and(|t| t.text == text)
    }

    fn ident(&self, i: usize) -> Option<&str> {
        self.toks
            .get(i)
            .filter(|t| t.is_ident)
            .map(|t| t.text.as_str())
    }

    /// Index just past the delimiter balanced-matching `open` at `i`
    /// (where `toks[i] == open`). Caps at `end`.
    fn skip_balanced(&self, i: usize, end: usize, open: &str, close: &str) -> usize {
        let mut depth = 0usize;
        let mut j = i;
        while j < end {
            if self.is(j, open) {
                depth += 1;
            } else if self.is(j, close) {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            j += 1;
        }
        end
    }

    /// Skips a generic-argument list starting at `<` (angle depth
    /// counting — fine in item headers, where shift operators cannot
    /// appear).
    fn skip_generics(&self, i: usize, end: usize) -> usize {
        if !self.is(i, "<") {
            return i;
        }
        let mut depth = 0i32;
        let mut j = i;
        while j < end {
            if self.is(j, "<") {
                depth += 1;
            } else if self.is(j, ">") {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            j += 1;
        }
        end
    }

    /// Parses a type path (`a::b::C<D>` / `&mut C` / `dyn C`), returning
    /// `(base identifier of the final segment, index past the path)`.
    fn type_path(&self, mut i: usize, end: usize) -> (Option<String>, usize) {
        while self.is(i, "&") || self.is(i, "'") || self.is(i, "*") {
            i += 1;
            // skip a lifetime name or `mut`/`const` qualifier
            if self.ident(i).is_some_and(|t| t == "mut" || t == "const")
                || (self.toks.get(i).is_some_and(|t| t.is_ident)
                    && self
                        .toks
                        .get(i.wrapping_sub(1))
                        .is_some_and(|t| t.text == "'"))
            {
                i += 1;
            }
        }
        if self.ident(i) == Some("dyn") || self.ident(i) == Some("impl") {
            i += 1;
        }
        let mut base = None;
        while let Some(name) = self.ident(i) {
            base = Some(name.to_string());
            i += 1;
            i = self.skip_generics(i, end);
            if self.is(i, ":") && self.is(i + 1, ":") {
                i += 2;
            } else {
                break;
            }
        }
        (base, i)
    }

    /// Parses the items in `toks[start..end]` under the given impl
    /// context.
    fn items(&mut self, start: usize, end: usize, self_ty: Option<&str>, trait_name: Option<&str>) {
        let mut i = start;
        while i < end {
            let Some(word) = self.ident(i) else {
                i = self.skip_item_token(i, end);
                continue;
            };
            match word {
                "pub" => {
                    i += 1;
                    if self.is(i, "(") {
                        i = self.skip_balanced(i, end, "(", ")");
                    }
                }
                "unsafe" | "async" | "extern" | "default" => i += 1,
                "const" if self.ident(i + 1) != Some("fn") => {
                    // `const NAME: T = …;` — skip to the terminator.
                    i = self.skip_to_semi(i, end);
                }
                "const" => i += 1, // `const fn`
                "static" | "type" => i = self.skip_to_semi(i, end),
                "macro_rules" => {
                    // `macro_rules! name { … }`
                    while i < end && !self.is(i, "{") {
                        i += 1;
                    }
                    i = self.skip_balanced(i, end, "{", "}");
                }
                "mod" => {
                    let name = self.ident(i + 1).unwrap_or("").to_string();
                    i += 2;
                    if self.is(i, "{") {
                        let body_end = self.skip_balanced(i, end, "{", "}");
                        self.module.push(name);
                        self.items(i + 1, body_end.saturating_sub(1), None, None);
                        self.module.pop();
                        i = body_end;
                    } else {
                        i = self.skip_to_semi(i, end);
                    }
                }
                "use" => {
                    let semi = self.skip_to_semi(i, end);
                    self.parse_use(i + 1, semi.saturating_sub(1));
                    i = semi;
                }
                "impl" => {
                    i += 1;
                    i = self.skip_generics(i, end);
                    let (first, after) = self.type_path(i, end);
                    i = after;
                    let (ty, tr) = if self.ident(i) == Some("for") {
                        let (second, after) = self.type_path(i + 1, end);
                        i = after;
                        (second, first)
                    } else {
                        (first, None)
                    };
                    // skip a `where` clause up to the brace
                    while i < end && !self.is(i, "{") && !self.is(i, ";") {
                        i += 1;
                    }
                    if self.is(i, "{") {
                        let body_end = self.skip_balanced(i, end, "{", "}");
                        self.items(
                            i + 1,
                            body_end.saturating_sub(1),
                            ty.as_deref(),
                            tr.as_deref(),
                        );
                        i = body_end;
                    } else {
                        i += 1;
                    }
                }
                "trait" => {
                    let name = self.ident(i + 1).unwrap_or("").to_string();
                    i += 2;
                    while i < end && !self.is(i, "{") && !self.is(i, ";") {
                        i += 1;
                    }
                    if self.is(i, "{") {
                        let body_end = self.skip_balanced(i, end, "{", "}");
                        self.trait_body(i + 1, body_end.saturating_sub(1), &name);
                        i = body_end;
                    } else {
                        i += 1;
                    }
                }
                "struct" | "enum" | "union" => {
                    let name = self.ident(i + 1).unwrap_or("").to_string();
                    i += 2;
                    while i < end && !self.is(i, "{") && !self.is(i, ";") && !self.is(i, "(") {
                        i += 1;
                    }
                    let body_start = i;
                    if self.is(i, "{") {
                        i = self.skip_balanced(i, end, "{", "}");
                    } else if self.is(i, "(") {
                        i = self.skip_balanced(i, end, "(", ")");
                        i = self.skip_to_semi(i, end);
                    } else {
                        i += 1;
                    }
                    let body = &self.toks[body_start..i.min(end)];
                    if !name.is_empty() && body.iter().any(|t| t.text == "RefCell") {
                        self.model.cell_types.push(name);
                    }
                }
                "fn" => i = self.parse_fn(i, end, self_ty, trait_name),
                _ => i = self.skip_item_token(i, end),
            }
        }
    }

    /// Skips one non-item token; attributes skip their bracket group so
    /// `#[derive(…)]` internals never look like items.
    fn skip_item_token(&self, i: usize, end: usize) -> usize {
        if self.is(i, "#") {
            let mut j = i + 1;
            if self.is(j, "!") {
                j += 1;
            }
            if self.is(j, "[") {
                return self.skip_balanced(j, end, "[", "]");
            }
        }
        i + 1
    }

    fn skip_to_semi(&self, mut i: usize, end: usize) -> usize {
        // Balanced skip: a `;` inside braces/brackets/parens (array
        // types, const fn bodies in types) does not terminate the item.
        let mut depth = 0i32;
        while i < end {
            match self.toks[i].text.as_str() {
                "{" | "[" | "(" => depth += 1,
                "}" | "]" | ")" => depth -= 1,
                ";" if depth == 0 => return i + 1,
                _ => {}
            }
            i += 1;
        }
        end
    }

    fn parse_use(&mut self, start: usize, end: usize) {
        // `use a::b::{c, d as e, f::g}` — walk the tree, recording each
        // leaf as local-name → full path.
        let mut prefix: Vec<String> = Vec::new();
        self.use_tree(start, end, &mut prefix);
    }

    fn use_tree(&mut self, start: usize, end: usize, prefix: &mut Vec<String>) {
        let mut i = start;
        let mut segs: Vec<String> = Vec::new();
        while i < end {
            if let Some(name) = self.ident(i) {
                if name == "as" {
                    let alias = self.ident(i + 1).unwrap_or("").to_string();
                    let mut path = prefix.clone();
                    path.append(&mut segs);
                    if !alias.is_empty() {
                        self.model.uses.push(UseDecl { local: alias, path });
                    }
                    segs = Vec::new();
                    i += 2;
                    continue;
                }
                segs.push(name.to_string());
                i += 1;
            } else if self.is(i, ":") && self.is(i + 1, ":") {
                i += 2;
            } else if self.is(i, "{") {
                let close = self.skip_balanced(i, end + 1, "{", "}");
                let depth_before = prefix.len();
                prefix.append(&mut segs);
                // split the group on top-level commas
                let mut item_start = i + 1;
                let mut depth = 0i32;
                for j in i + 1..close.saturating_sub(1) {
                    match self.toks[j].text.as_str() {
                        "{" => depth += 1,
                        "}" => depth -= 1,
                        "," if depth == 0 => {
                            self.use_tree(item_start, j, prefix);
                            item_start = j + 1;
                        }
                        _ => {}
                    }
                }
                self.use_tree(item_start, close.saturating_sub(1), prefix);
                prefix.truncate(depth_before);
                return;
            } else if self.is(i, ",") || self.is(i, "*") {
                i += 1;
                segs.clear();
            } else {
                i += 1;
            }
        }
        if let Some(local) = segs.last().cloned() {
            let mut path = prefix.clone();
            path.append(&mut segs);
            self.model.uses.push(UseDecl { local, path });
        }
    }

    fn trait_body(&mut self, start: usize, end: usize, trait_name: &str) {
        let mut i = start;
        while i < end {
            match self.ident(i) {
                Some("fn") => {
                    if let Some(name) = self.ident(i + 1) {
                        self.model.trait_methods.push(TraitMethod {
                            trait_name: trait_name.to_string(),
                            method: name.to_string(),
                        });
                    }
                    i = self.parse_fn(i, end, None, Some(trait_name));
                }
                Some("type") | Some("const") => i = self.skip_to_semi(i, end),
                _ => i = self.skip_item_token(i, end),
            }
        }
    }

    /// Parses `fn name<…>(params) -> Ret where … { body }` (or `;`),
    /// starting at the `fn` keyword. Returns the index past the item.
    fn parse_fn(
        &mut self,
        at: usize,
        end: usize,
        self_ty: Option<&str>,
        trait_name: Option<&str>,
    ) -> usize {
        let fn_tok = &self.toks[at];
        let Some(name) = self.ident(at + 1) else {
            return at + 1;
        };
        let name = name.to_string();
        let mut i = self.skip_generics(at + 2, end);
        if !self.is(i, "(") {
            return at + 2;
        }
        let params_end = self.skip_balanced(i, end, "(", ")");
        let params = i + 1..params_end.saturating_sub(1);
        i = params_end;
        // Return type + where clause: scan to the body brace or `;`.
        // Braces cannot appear in a return type in this codebase's
        // idiom, and closures in where-clauses don't occur.
        while i < end && !self.is(i, "{") && !self.is(i, ";") {
            i += 1;
        }
        let body = if self.is(i, "{") {
            let body_end = self.skip_balanced(i, end, "{", "}");
            let r = i + 1..body_end.saturating_sub(1);
            i = body_end;
            r
        } else {
            i += 1;
            0..0
        };
        self.model.fns.push(FnDef {
            module: self.module.clone(),
            self_ty: self_ty.map(str::to_string),
            trait_name: trait_name.map(str::to_string),
            name,
            line: fn_tok.line,
            in_test: fn_tok.in_test,
            params,
            body,
        });
        i
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> FileModel {
        parse_file("crates/x/src/lib.rs", &lex(src))
    }

    #[test]
    fn free_fns_and_methods_are_indexed() {
        let m = parse(
            "fn free() { a(); }\n\
             impl Host { fn pump(&mut self) -> u32 { 1 } }\n\
             impl Transport for Sim { fn send(&self, m: Msg) {} }\n",
        );
        assert_eq!(m.fns.len(), 3);
        assert_eq!(m.fns[0].name, "free");
        assert!(m.fns[0].self_ty.is_none());
        assert_eq!(m.fns[1].self_ty.as_deref(), Some("Host"));
        assert_eq!(m.fns[2].self_ty.as_deref(), Some("Sim"));
        assert_eq!(m.fns[2].trait_name.as_deref(), Some("Transport"));
    }

    #[test]
    fn generic_impl_headers_resolve_to_the_base_type() {
        let m = parse("impl<T: Transport> Swarm<T> { fn run(&mut self) {} }\n");
        assert_eq!(m.fns[0].self_ty.as_deref(), Some("Swarm"));
    }

    #[test]
    fn bodies_are_token_ranges() {
        let m = parse("fn f() { g(1); h(); }\n");
        let body: Vec<&str> = m.fns[0]
            .body
            .clone()
            .map(|i| m.toks[i].text.as_str())
            .collect();
        assert_eq!(body, ["g", "(", "1", ")", ";", "h", "(", ")", ";"]);
    }

    #[test]
    fn nested_modules_carry_their_path() {
        let m = parse("mod outer { mod inner { fn deep() {} } fn mid() {} }\n");
        assert_eq!(m.fns[0].module, ["outer", "inner"]);
        assert_eq!(m.fns[1].module, ["outer"]);
    }

    #[test]
    fn trait_decl_methods_are_recorded() {
        let m = parse("trait Transport { fn send(&self, m: Msg); fn kind(&self) -> u8 { 0 } }\n");
        let names: Vec<&str> = m.trait_methods.iter().map(|t| t.method.as_str()).collect();
        assert_eq!(names, ["send", "kind"]);
        // The default method body is indexed as a fn with trait context.
        assert_eq!(m.fns.len(), 2);
        assert_eq!(m.fns[1].name, "kind");
        assert_eq!(m.fns[1].trait_name.as_deref(), Some("Transport"));
    }

    #[test]
    fn use_aliases_map_local_names_to_paths() {
        let m = parse("use std::collections::{HashMap, hash_map::Entry};\nuse crate::sim::SimNet as Fabric;\n");
        let find = |local: &str| m.uses.iter().find(|u| u.local == local).unwrap();
        assert_eq!(find("HashMap").path, ["std", "collections", "HashMap"]);
        assert_eq!(
            find("Entry").path,
            ["std", "collections", "hash_map", "Entry"]
        );
        assert_eq!(find("Fabric").path, ["crate", "sim", "SimNet"]);
    }

    #[test]
    fn refcell_structs_are_cell_types() {
        let m = parse(
            "pub struct ReactorNet { core: Rc<RefCell<Core>> }\n\
             pub struct Plain { x: u32 }\n",
        );
        assert_eq!(m.cell_types, ["ReactorNet"]);
    }

    #[test]
    fn const_items_do_not_swallow_following_fns() {
        let m = parse("const N: usize = 3;\nconst fn c() -> u8 { 1 }\nfn after() {}\n");
        let names: Vec<&str> = m.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["c", "after"]);
    }

    #[test]
    fn cfg_test_fns_are_marked() {
        let m = parse("#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn lib() {}\n");
        assert!(m.fns[0].in_test);
        assert!(!m.fns[1].in_test);
    }
}
