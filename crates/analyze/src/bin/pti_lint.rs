//! `pti-lint`: runs the workspace lint pass and reports findings as
//! `file:line rule [tier] message`. Exits nonzero when any deny-tier
//! finding survives. Advisory findings print as a per-rule summary by
//! default; pass `--advisory` for every line.
//!
//! Usage: `pti-lint [--advisory] [ROOT]` (ROOT defaults to the current
//! directory — `cargo run -p pti-analyze --bin pti-lint` from the
//! workspace root just works).

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;

use pti_analyze::{analyze_workspace, Severity};

fn main() -> ExitCode {
    let mut show_advisory = false;
    let mut root: Option<PathBuf> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--advisory" => show_advisory = true,
            "--help" | "-h" => {
                println!("usage: pti-lint [--advisory] [ROOT]");
                return ExitCode::SUCCESS;
            }
            other => root = Some(PathBuf::from(other)),
        }
    }
    let root = root.unwrap_or_else(|| PathBuf::from("."));

    let findings = match analyze_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("pti-lint: cannot walk {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };

    let mut denies = 0usize;
    let mut advisory_by_rule: BTreeMap<&'static str, usize> = BTreeMap::new();
    for f in &findings {
        match f.severity {
            Severity::Deny => {
                denies += 1;
                println!("{f}");
            }
            Severity::Advisory => {
                *advisory_by_rule.entry(f.rule).or_default() += 1;
                if show_advisory {
                    println!("{f}");
                }
            }
        }
    }

    if !show_advisory && !advisory_by_rule.is_empty() {
        let total: usize = advisory_by_rule.values().sum();
        let detail: Vec<String> = advisory_by_rule
            .iter()
            .map(|(rule, n)| format!("{rule}: {n}"))
            .collect();
        println!(
            "advisory: {total} finding(s) ({}) — rerun with --advisory for detail",
            detail.join(", ")
        );
    }

    if denies > 0 {
        println!("pti-lint: {denies} deny finding(s)");
        ExitCode::FAILURE
    } else {
        println!(
            "pti-lint: clean ({} file-scoped rules enforced)",
            pti_analyze::RULES.len()
        );
        ExitCode::SUCCESS
    }
}
