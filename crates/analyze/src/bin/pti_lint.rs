//! `pti-lint`: runs the workspace lint pass and reports findings as
//! `file:line rule [tier] message`. Exits nonzero when any deny-tier
//! finding survives. Advisory findings print as a per-rule summary by
//! default; pass `--advisory` for every line.
//!
//! `--json` emits the whole analysis (findings, allow count, the
//! panic-reachability report) as machine-readable JSON on stdout — CI
//! gates the allow count and panic ceiling from it. `--graph` dumps the
//! workspace call graph in Graphviz DOT for inspection.
//!
//! Usage: `pti-lint [--advisory|--json|--graph] [ROOT]` (ROOT defaults
//! to the current directory — `cargo run -p pti-analyze --bin pti-lint`
//! from the workspace root just works).

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;

use pti_analyze::engine::read_workspace;
use pti_analyze::lexer::lex;
use pti_analyze::{analyze_files, parse_file, Analysis, CallGraph, Severity};

/// Output schema version stamped into `--json`; bump on shape changes
/// so CI gates fail loudly instead of reading absent fields.
const SCHEMA_VERSION: u32 = 1;

enum Mode {
    Text { show_advisory: bool },
    Json,
    Graph,
}

fn main() -> ExitCode {
    let mut mode = Mode::Text {
        show_advisory: false,
    };
    let mut root: Option<PathBuf> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--advisory" => {
                mode = Mode::Text {
                    show_advisory: true,
                }
            }
            "--json" => mode = Mode::Json,
            "--graph" => mode = Mode::Graph,
            "--help" | "-h" => {
                println!("usage: pti-lint [--advisory|--json|--graph] [ROOT]");
                return ExitCode::SUCCESS;
            }
            other => root = Some(PathBuf::from(other)),
        }
    }
    let root = root.unwrap_or_else(|| PathBuf::from("."));

    let inputs = match read_workspace(&root) {
        Ok(i) => i,
        Err(e) => {
            eprintln!("pti-lint: cannot walk {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };

    if let Mode::Graph = mode {
        let models: Vec<_> = inputs
            .iter()
            .map(|(path, src)| parse_file(path, &lex(src)))
            .collect();
        let graph = CallGraph::build(&models);
        print!("{}", graph.to_dot(&models));
        return ExitCode::SUCCESS;
    }

    let analysis = analyze_files(&inputs);
    match mode {
        Mode::Json => report_json(&analysis),
        _ => report_text(
            &analysis,
            matches!(
                mode,
                Mode::Text {
                    show_advisory: true
                }
            ),
        ),
    }
}

fn report_text(analysis: &Analysis, show_advisory: bool) -> ExitCode {
    let mut denies = 0usize;
    let mut advisory_by_rule: BTreeMap<&'static str, usize> = BTreeMap::new();
    for f in &analysis.findings {
        match f.severity {
            Severity::Deny => {
                denies += 1;
                println!("{f}");
            }
            Severity::Advisory => {
                *advisory_by_rule.entry(f.rule).or_default() += 1;
                if show_advisory {
                    println!("{f}");
                }
            }
        }
    }

    if !show_advisory && !advisory_by_rule.is_empty() {
        let total: usize = advisory_by_rule.values().sum();
        let detail: Vec<String> = advisory_by_rule
            .iter()
            .map(|(rule, n)| format!("{rule}: {n}"))
            .collect();
        println!(
            "advisory: {total} finding(s) ({}) — rerun with --advisory for detail",
            detail.join(", ")
        );
    }
    println!(
        "panic-reachability: {} site(s) reachable from Swarm::dispatch — \
         see --json for the report",
        analysis.panic_sites.len()
    );

    if denies > 0 {
        println!("pti-lint: {denies} deny finding(s)");
        ExitCode::FAILURE
    } else {
        println!(
            "pti-lint: clean ({} file rules + {} interprocedural, {} allows in force)",
            pti_analyze::RULES.len(),
            pti_analyze::IPR_RULE_IDS.len(),
            analysis.allow_count
        );
        ExitCode::SUCCESS
    }
}

fn report_json(analysis: &Analysis) -> ExitCode {
    let denies = analysis
        .findings
        .iter()
        .filter(|f| f.severity == Severity::Deny)
        .count();
    let advisories = analysis.findings.len() - denies;

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema_version\": {SCHEMA_VERSION},\n"));
    out.push_str(&format!("  \"deny_count\": {denies},\n"));
    out.push_str(&format!("  \"advisory_count\": {advisories},\n"));
    out.push_str(&format!("  \"allow_count\": {},\n", analysis.allow_count));
    out.push_str("  \"findings\": [");
    for (i, f) in analysis.findings.iter().enumerate() {
        let tier = match f.severity {
            Severity::Deny => "deny",
            Severity::Advisory => "advisory",
        };
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"path\": {}, \"line\": {}, \"rule\": {}, \"tier\": \"{}\", \
             \"message\": {}}}",
            json_str(&f.path),
            f.line,
            json_str(f.rule),
            tier,
            json_str(&f.message)
        ));
    }
    out.push_str(if analysis.findings.is_empty() {
        "],\n"
    } else {
        "\n  ],\n"
    });
    out.push_str("  \"panic_reachability\": {\n");
    out.push_str(&format!("    \"count\": {},\n", analysis.panic_sites.len()));
    out.push_str("    \"sites\": [");
    for (i, s) in analysis.panic_sites.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n      {{\"path\": {}, \"line\": {}, \"what\": {}, \"via\": {}}}",
            json_str(&s.path),
            s.line,
            json_str(&s.what),
            json_str(&s.via)
        ));
    }
    out.push_str(if analysis.panic_sites.is_empty() {
        "]\n"
    } else {
        "\n    ]\n"
    });
    out.push_str("  }\n}\n");
    print!("{out}");

    if denies > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Minimal JSON string encoder (the only non-ASCII we emit is UTF-8,
/// which JSON passes through verbatim).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
