//! The interprocedural rules: reachability and taint passes over the
//! [call graph](crate::graph), where the line rules in [`crate::rules`]
//! cannot see far enough.
//!
//! All four passes share the same philosophy as the graph itself:
//! over-approximate, then let a finding's *call path* tell the reader
//! which edge is impossible (and a `pti-allow` document it). Only
//! library and binary code participates — test, example and bench
//! functions are neither roots nor traversed, so a test helper sharing
//! a hot-path method name cannot fabricate reachability.

use std::collections::BTreeMap;

use crate::graph::{CallGraph, Prim};
use crate::lexer::Line;
use crate::parser::FileModel;
use crate::rules::{classify, collect_decls, FileClass, Severity};

/// A rule finding before allow-suppression (file index + 0-based line).
#[derive(Debug, Clone)]
pub struct RawFinding {
    /// Index into the workspace file list.
    pub file: usize,
    /// 0-based line.
    pub line: usize,
    /// Rule id.
    pub rule: &'static str,
    /// Tier.
    pub severity: Severity,
    /// Explanation, including the call path.
    pub message: String,
}

/// One panic site reachable from the dispatch root (the
/// `panic-reachability` report).
#[derive(Debug, Clone)]
pub struct RawPanicSite {
    /// Index into the workspace file list.
    pub file: usize,
    /// 0-based line.
    pub line: usize,
    /// The spelling at the site (`.unwrap()`, `panic!`, …).
    pub what: String,
    /// The call path that reaches it.
    pub via: String,
}

/// Shared input to every interprocedural pass.
pub struct IprContext<'a> {
    /// Parsed file models, parallel to `lines`.
    pub files: &'a [FileModel],
    /// Blanked lines per file (for declaration collection).
    pub lines: &'a [Vec<Line>],
    /// The workspace call graph.
    pub graph: &'a CallGraph,
}

impl IprContext<'_> {
    /// Whether fn `id` participates in interprocedural analysis:
    /// library/binary code outside `#[cfg(test)]`.
    fn analyzable(&self, id: usize) -> bool {
        let r = self.graph.fn_ref(self.files, id);
        if r.def.in_test {
            return false;
        }
        matches!(classify(r.relpath), FileClass::Lib | FileClass::Bin)
    }

    fn fns_where(&self, mut pred: impl FnMut(&str, &str, Option<&str>) -> bool) -> Vec<usize> {
        (0..self.graph.fns.len())
            .filter(|&id| {
                let r = self.graph.fn_ref(self.files, id);
                self.analyzable(id) && pred(r.relpath, &r.def.name, r.def.self_ty.as_deref())
            })
            .collect()
    }
}

// ------------------------------------------------------------ reactor-blocking

/// The functions whose bodies *are* the reactor hot path: everything
/// they can transitively reach runs inside a pump turn, where one
/// blocking call stalls every mounted swarm on the shard.
const REACTOR_ROOTS: &[(&str, &str)] = &[
    ("reactor_host.rs", "pump_slot"),
    ("reactor_host.rs", "kick_all"),
    ("reactor_host.rs", "run_until_quiescent"),
    ("reactor_host.rs", "run_for"),
    ("sharded.rs", "worker"),
];

/// Deny: a function transitively reachable from the reactor pump loops
/// calls `thread::sleep`, a blocking `recv`, or reads the wall clock.
/// `bus.rs` (the threaded `LiveBus` fabric) is cut out of the traversal
/// — the type system already guarantees a `ReactorHost` only mounts
/// `Swarm<ReactorNet>`, so call edges into `LiveBus` impls are artifacts
/// of trait-call over-approximation.
pub fn reactor_blocking(ctx: &IprContext<'_>) -> Vec<RawFinding> {
    let roots = ctx.fns_where(|path, name, _| {
        REACTOR_ROOTS
            .iter()
            .any(|(file, root)| path.ends_with(file) && name == *root)
    });
    let parents = ctx.graph.reach(&roots, |id| {
        !ctx.analyzable(id) || ctx.graph.fn_ref(ctx.files, id).relpath.ends_with("/bus.rs")
    });
    let mut out = Vec::new();
    for &id in parents.keys() {
        let node = &ctx.graph.fns[id];
        for p in &node.prims {
            let blocking = matches!(
                p.prim,
                Prim::Sleep | Prim::InstantNow | Prim::SystemTimeNow | Prim::BlockingRecv
            );
            if !blocking || p.in_test {
                continue;
            }
            out.push(RawFinding {
                file: node.file,
                line: p.line,
                rule: "reactor-blocking",
                severity: Severity::Deny,
                message: format!(
                    "`{}` blocks the reactor hot path (reachable: {})",
                    p.what,
                    ctx.graph.path_to(ctx.files, &parents, id, 5)
                ),
            });
        }
    }
    out
}

// --------------------------------------------------------- refcell-reentrancy

/// Advisory: a method of a shared-cell type (a struct holding
/// `Rc<RefCell<…>>`) takes `borrow_mut()` and, while the guard is still
/// live, calls something that can transitively re-enter a method of the
/// same type that borrows the cell again — the shape that panics at
/// runtime with "already borrowed".
///
/// The guard's hold region is approximated from the token stream: a
/// `let`-bound guard lives to the end of its enclosing block, an
/// expression temporary to the end of its statement. Delegation
/// self-loops (`self.inner.borrow_mut().send(…)` resolving back to the
/// holder itself) are skipped.
pub fn refcell_reentrancy(ctx: &IprContext<'_>) -> Vec<RawFinding> {
    let mut cell_types: Vec<&str> = ctx
        .files
        .iter()
        .flat_map(|f| f.cell_types.iter().map(String::as_str))
        .collect();
    cell_types.sort_unstable();
    cell_types.dedup();

    let mut out = Vec::new();
    for id in 0..ctx.graph.fns.len() {
        if !ctx.analyzable(id) {
            continue;
        }
        let r = ctx.graph.fn_ref(ctx.files, id);
        let Some(ty) = r.def.self_ty.as_deref() else {
            continue;
        };
        if !cell_types.contains(&ty) {
            continue;
        }
        let node = &ctx.graph.fns[id];
        let file = &ctx.files[node.file];
        for p in &node.prims {
            if p.prim != Prim::BorrowMut || p.in_test {
                continue;
            }
            let (region_end, guard) = hold_region(file, r.def.body.clone(), p.tok);
            // Calls made while the guard is (conservatively) live.
            // Calls *on the guard itself* (`core.mark_ready(…)`) run on
            // the cell's interior type and cannot re-enter the wrapper,
            // so they are not offenders — even though untyped-receiver
            // resolution would spread them to the wrapper's methods.
            let mut offenders: Vec<usize> = Vec::new();
            for call in &node.calls {
                if call.tok <= p.tok || call.tok >= region_end {
                    continue;
                }
                let on_guard = guard.as_deref().is_some_and(|g| {
                    file.toks
                        .get(call.tok.wrapping_sub(1))
                        .is_some_and(|t| t.text == ".")
                        && file
                            .toks
                            .get(call.tok.wrapping_sub(2))
                            .is_some_and(|t| t.is_ident && t.text == g)
                });
                if on_guard {
                    continue;
                }
                offenders.extend(call.targets.iter().copied().filter(|&t| t != id));
            }
            offenders.sort_unstable();
            offenders.dedup();
            let parents = ctx
                .graph
                .reach(&offenders, |t| t == id || !ctx.analyzable(t));
            let reentry = parents.keys().copied().find(|&t| {
                let rr = ctx.graph.fn_ref(ctx.files, t);
                rr.def.self_ty.as_deref() == Some(ty)
                    && ctx.graph.fns[t]
                        .prims
                        .iter()
                        .any(|q| matches!(q.prim, Prim::Borrow | Prim::BorrowMut) && !q.in_test)
            });
            if let Some(t) = reentry {
                out.push(RawFinding {
                    file: node.file,
                    line: p.line,
                    rule: "refcell-reentrancy",
                    severity: Severity::Advisory,
                    message: format!(
                        "`borrow_mut()` in {}::{} is held across a call that can re-enter \
                         {} (via {}), which borrows the same cell — runtime panic shape",
                        ty,
                        r.def.name,
                        ctx.graph.display(ctx.files, t),
                        ctx.graph.path_to(ctx.files, &parents, t, 4),
                    ),
                });
            }
        }
    }
    out
}

/// The region where the borrow at `at` is held: token index just past
/// the end of the enclosing block for a `let`-bound guard (plus the
/// guard's binding name), end of the statement for an expression
/// temporary.
fn hold_region(
    file: &FileModel,
    body: std::ops::Range<usize>,
    at: usize,
) -> (usize, Option<String>) {
    let toks = &file.toks;
    // statement start: walk back to the previous `;`, `{` or `}`.
    let mut stmt_start = body.start;
    for j in (body.start..at).rev() {
        if matches!(toks[j].text.as_str(), ";" | "{" | "}") {
            stmt_start = j + 1;
            break;
        }
    }
    let let_at = (stmt_start..at).find(|&j| toks[j].is_ident && toks[j].text == "let");
    if let Some(let_at) = let_at {
        let mut k = let_at + 1;
        if toks.get(k).is_some_and(|t| t.text == "mut") {
            k += 1;
        }
        let guard = toks.get(k).filter(|t| t.is_ident).map(|t| t.text.clone());
        // to the close of the enclosing block: depth goes negative
        let mut depth = 0i32;
        for (j, t) in toks.iter().enumerate().take(body.end).skip(at) {
            match t.text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth < 0 {
                        return (j, guard);
                    }
                }
                _ => {}
            }
        }
        (body.end, guard)
    } else {
        // to the end of the statement
        let mut depth = 0i32;
        for (j, t) in toks.iter().enumerate().take(body.end).skip(at) {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                ";" if depth <= 0 => return (j, None),
                _ => {}
            }
        }
        (body.end, None)
    }
}

// ---------------------------------------------------- wire-determinism-taint

/// Iterator-producing methods whose order is the hasher's.
const UNORDERED_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];

const SORTERS: &[&str] = &[
    "sort",
    "sort_unstable",
    "sort_by",
    "sort_by_key",
    "sort_unstable_by",
    "sort_unstable_by_key",
];

/// Deny: a value produced by `HashMap`/`HashSet` iteration flows — via
/// local def-use inside one body — into a wire sink (`FrameBatch::push`,
/// `encode_wire`, or a `.send(…)` argument). Sorting the carrier or
/// collecting into a BTree container sanitizes the flow.
pub fn wire_determinism_taint(ctx: &IprContext<'_>) -> Vec<RawFinding> {
    let mut out = Vec::new();
    for (fi, file) in ctx.files.iter().enumerate() {
        if classify(&file.relpath) != FileClass::Lib {
            continue;
        }
        let lines = &ctx.lines[fi];
        let mut hash_idents: Vec<String> = Vec::new();
        let mut batch_idents: Vec<String> = Vec::new();
        for line in lines {
            collect_decls(&line.code, &["HashMap", "HashSet"], &mut hash_idents);
            collect_decls(&line.code, &["FrameBatch"], &mut batch_idents);
        }
        if hash_idents.is_empty() {
            continue;
        }
        for def in &file.fns {
            if def.in_test || def.body.is_empty() {
                continue;
            }
            taint_fn(
                file,
                def.body.clone(),
                &hash_idents,
                &batch_idents,
                fi,
                &mut out,
            );
        }
    }
    out
}

/// Runs the def-use walk over one body.
fn taint_fn(
    file: &FileModel,
    body: std::ops::Range<usize>,
    hash_idents: &[String],
    batch_idents: &[String],
    fi: usize,
    out: &mut Vec<RawFinding>,
) {
    let toks = &file.toks;
    // tainted local → the hash ident it came from
    let mut tainted: BTreeMap<String, String> = BTreeMap::new();

    let mut start = body.start;
    let mut j = body.start;
    while j <= body.end {
        let boundary = j == body.end || matches!(toks[j].text.as_str(), ";" | "{" | "}");
        if !boundary {
            j += 1;
            continue;
        }
        let stmt = start..j;
        start = j + 1;
        j += 1;
        if stmt.is_empty() {
            continue;
        }

        // Source scan: `h.keys()`-shaped chains on a known hash ident.
        let stmt_source = |range: &std::ops::Range<usize>| -> Option<String> {
            for k in range.clone() {
                let t = &toks[k];
                if t.is_ident
                    && hash_idents.contains(&t.text)
                    && toks.get(k + 1).is_some_and(|n| n.text == ".")
                    && toks
                        .get(k + 2)
                        .is_some_and(|n| UNORDERED_METHODS.contains(&n.text.as_str()))
                {
                    return Some(t.text.clone());
                }
            }
            None
        };
        // (a fn, not a closure, so `tainted` stays mutably borrowable)
        fn range_tainted(
            toks: &[crate::parser::Tok],
            tainted: &BTreeMap<String, String>,
            range: &std::ops::Range<usize>,
        ) -> Option<String> {
            for k in range.clone() {
                let t = &toks[k];
                if t.is_ident {
                    if let Some(src) = tainted.get(&t.text) {
                        return Some(src.clone());
                    }
                }
            }
            None
        }

        // ---- sinks first (they judge the pre-statement state plus
        // any inline source in their argument list)
        for k in stmt.clone() {
            let t = &toks[k];
            if !t.is_ident || toks.get(k + 1).is_none_or(|n| n.text != "(") {
                continue;
            }
            let is_method = toks.get(k.wrapping_sub(1)).is_some_and(|p| p.text == ".");
            let sink: Option<String> = match t.text.as_str() {
                "encode_wire" => Some("encode_wire(…)".to_string()),
                "send" if is_method => Some(".send(…)".to_string()),
                "push" if is_method => {
                    let recv = toks.get(k.wrapping_sub(2));
                    recv.filter(|r| r.is_ident && batch_idents.contains(&r.text))
                        .map(|r| format!("{}.push(…) [FrameBatch]", r.text))
                }
                _ => None,
            };
            let Some(sink) = sink else { continue };
            // argument span
            let mut depth = 0i32;
            let mut arg_end = k + 1;
            for (m, tok) in toks.iter().enumerate().take(body.end).skip(k + 1) {
                match tok.text.as_str() {
                    "(" => depth += 1,
                    ")" => {
                        depth -= 1;
                        if depth == 0 {
                            arg_end = m;
                            break;
                        }
                    }
                    _ => {}
                }
            }
            let args = k + 2..arg_end;
            let origin = stmt_source(&args).or_else(|| range_tainted(toks, &tainted, &args));
            if let Some(origin) = origin {
                out.push(RawFinding {
                    file: fi,
                    line: t.line,
                    rule: "wire-determinism-taint",
                    severity: Severity::Deny,
                    message: format!(
                        "hasher-ordered value from `{origin}` (HashMap/HashSet iteration) \
                         reaches the wire via `{sink}`; sort it or use a BTree container"
                    ),
                });
            }
        }

        // ---- taint updates
        let words: Vec<&str> = stmt
            .clone()
            .filter(|&k| toks[k].is_ident)
            .map(|k| toks[k].text.as_str())
            .collect();
        let sanitized = stmt.clone().any(|k| {
            toks[k].is_ident && (toks[k].text == "BTreeMap" || toks[k].text == "BTreeSet")
        });
        // sanitizer: `x.sort…()` clears x
        if words.len() >= 2 && SORTERS.contains(&words[1]) {
            tainted.remove(words[0]);
        }
        // `let <pat> = RHS` (incl. `if let` / `while let`)
        if let Some(let_at) = stmt
            .clone()
            .find(|&k| toks[k].is_ident && toks[k].text == "let")
        {
            if let Some(eq_at) = (let_at..stmt.end).find(|&k| {
                toks[k].text == "="
                    && toks.get(k + 1).is_none_or(|n| n.text != "=")
                    // skip `==`/`!=`; a type ascription's closing `>` may
                    // directly precede the binding's `=` (`let x: Vec<u64> =`)
                    && toks
                        .get(k.wrapping_sub(1))
                        .is_none_or(|p| p.text != "=" && p.text != "!")
            }) {
                let rhs = eq_at + 1..stmt.end;
                let origin = stmt_source(&rhs).or_else(|| range_tainted(toks, &tainted, &rhs));
                if let Some(origin) = origin {
                    if !sanitized {
                        for t in &toks[let_at + 1..eq_at] {
                            if t.is_ident
                                && t.text != "mut"
                                && t.text.chars().next().is_some_and(char::is_lowercase)
                            {
                                tainted.insert(t.text.clone(), origin.clone());
                            }
                        }
                    }
                }
            }
        } else if words.first() == Some(&"for") {
            // `for <pat> in TAIL` — TAIL includes a bare hash ident too
            if let Some(in_at) = stmt
                .clone()
                .find(|&k| toks[k].is_ident && toks[k].text == "in")
            {
                let tail = in_at + 1..stmt.end;
                let origin = stmt_source(&tail)
                    .or_else(|| range_tainted(toks, &tainted, &tail))
                    .or_else(|| {
                        tail.clone().find_map(|k| {
                            let t = &toks[k];
                            (t.is_ident && hash_idents.contains(&t.text)).then(|| t.text.clone())
                        })
                    });
                if let Some(origin) = origin {
                    for t in &toks[stmt.start + 1..in_at] {
                        if t.is_ident && t.text.chars().next().is_some_and(char::is_lowercase) {
                            tainted.insert(t.text.clone(), origin.clone());
                        }
                    }
                }
            }
        } else if words.len() >= 2 && (words[1] == "push" || words[1] == "extend") {
            // `v.push(tainted)` taints the carrier
            if let Some(origin) =
                stmt_source(&stmt).or_else(|| range_tainted(toks, &tainted, &stmt))
            {
                if words[0] != origin {
                    tainted.insert(words[0].to_string(), origin);
                }
            }
        } else if stmt.clone().any(|k| {
            toks[k].text == "=" && toks.get(k + 1).is_none_or(|n| n.text != "=") && k > stmt.start
        }) {
            // plain reassignment `x = RHS`
            if let Some(eq_at) = stmt.clone().find(|&k| toks[k].text == "=") {
                let rhs = eq_at + 1..stmt.end;
                if let Some(origin) =
                    stmt_source(&rhs).or_else(|| range_tainted(toks, &tainted, &rhs))
                {
                    if !sanitized {
                        if let Some(first) = stmt.clone().next() {
                            if toks[first].is_ident {
                                tainted.insert(toks[first].text.clone(), origin);
                            }
                        }
                    }
                }
            }
        }
    }
}

// -------------------------------------------------------- panic-reachability

/// Advisory report: every `panic!` / `unwrap` / `expect` /
/// `unreachable!` in library code transitively reachable from
/// `Swarm::dispatch` — the set of lines that can tear down a reactor
/// (and every mounted swarm with it) when a hostile frame lands. The
/// count is ceiling-gated in CI via `pti-lint --json`.
pub fn panic_reachability(ctx: &IprContext<'_>) -> Vec<RawPanicSite> {
    let roots = ctx.fns_where(|_, name, self_ty| name == "dispatch" && self_ty == Some("Swarm"));
    let parents = ctx.graph.reach(&roots, |id| !ctx.analyzable(id));
    let mut out = Vec::new();
    for &id in parents.keys() {
        let node = &ctx.graph.fns[id];
        for p in &node.prims {
            if p.prim != Prim::Panic || p.in_test {
                continue;
            }
            out.push(RawPanicSite {
                file: node.file,
                line: p.line,
                what: p.what.clone(),
                via: ctx.graph.path_to(ctx.files, &parents, id, 5),
            });
        }
    }
    out.sort_by_key(|a| (a.file, a.line, a.what.clone()));
    out.dedup_by(|a, b| a.file == b.file && a.line == b.line && a.what == b.what);
    out
}
