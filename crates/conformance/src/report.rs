//! Diagnostic reports for failed (and successful) conformance checks.
//!
//! The paper's rules are a conjunction of aspects; when a check fails, a
//! downstream user needs to know *which* aspect failed and on which
//! member. [`NonConformance`] carries one [`Reason`] per violated aspect.

use std::fmt;

use pti_metamodel::TypeName;

/// The aspect of Figure 2 a reason refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Aspect {
    /// (i) type-name conformance.
    Name,
    /// (ii) field conformance.
    Fields,
    /// (iii) supertype conformance.
    Supertypes,
    /// (iv) method conformance.
    Methods,
    /// (v) constructor conformance.
    Constructors,
    /// Type kind compatibility (class/interface/primitive) — implicit in
    /// the paper's setting, explicit here.
    Kind,
}

impl fmt::Display for Aspect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Aspect::Name => "name",
            Aspect::Fields => "fields",
            Aspect::Supertypes => "supertypes",
            Aspect::Methods => "methods",
            Aspect::Constructors => "constructors",
            Aspect::Kind => "kind",
        };
        f.write_str(s)
    }
}

/// A single violated aspect with enough context to act on it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reason {
    /// The type names do not match under the configured matcher.
    NameMismatch {
        /// Expected (target) type name.
        expected: TypeName,
        /// Received (source) type name.
        found: TypeName,
    },
    /// Incompatible type kinds (e.g. expected a class, received a
    /// primitive).
    KindMismatch {
        /// Human-readable expected kind.
        expected: String,
        /// Human-readable received kind.
        found: String,
    },
    /// An expected member has no conforming counterpart.
    MissingMember {
        /// Which aspect the member belongs to.
        aspect: Aspect,
        /// Member description, e.g. `getName() -> String`.
        member: String,
    },
    /// An expected member matched several counterparts under
    /// [`Ambiguity::Error`](crate::config::Ambiguity::Error).
    AmbiguousMember {
        /// Which aspect the member belongs to.
        aspect: Aspect,
        /// Member description.
        member: String,
        /// Names of the candidates that all matched.
        candidates: Vec<String>,
    },
    /// The supertype aspect failed.
    SupertypeMismatch {
        /// Expected supertype (superclass or interface) name.
        expected: TypeName,
        /// What the received type offered, if anything.
        found: Option<TypeName>,
    },
    /// A referenced type could not be resolved under
    /// [`Unresolved::Fail`](crate::config::Unresolved::Fail).
    UnresolvedType {
        /// The name that could not be resolved to a description.
        name: TypeName,
    },
    /// Recursion exceeded the checker's depth bound (malformed or
    /// adversarial descriptions).
    DepthExceeded,
}

impl fmt::Display for Reason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Reason::NameMismatch { expected, found } => {
                write!(f, "type name `{found}` does not conform to `{expected}`")
            }
            Reason::KindMismatch { expected, found } => {
                write!(f, "kind mismatch: expected {expected}, found {found}")
            }
            Reason::MissingMember { aspect, member } => {
                write!(f, "no conforming {aspect} member for `{member}`")
            }
            Reason::AmbiguousMember {
                aspect,
                member,
                candidates,
            } => write!(
                f,
                "{aspect} member `{member}` matches {} candidates ({})",
                candidates.len(),
                candidates.join(", ")
            ),
            Reason::SupertypeMismatch { expected, found } => match found {
                Some(found) => {
                    write!(f, "supertype `{found}` does not conform to `{expected}`")
                }
                None => write!(f, "missing supertype conforming to `{expected}`"),
            },
            Reason::UnresolvedType { name } => {
                write!(f, "referenced type `{name}` has no available description")
            }
            Reason::DepthExceeded => f.write_str("conformance recursion depth exceeded"),
        }
    }
}

/// The failure outcome of a conformance check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NonConformance {
    /// The expected (target) type name.
    pub expected: TypeName,
    /// The received (source) type name.
    pub found: TypeName,
    /// Every violated aspect discovered (the checker does not stop at the
    /// first failure within a member list, so reports are actionable).
    pub reasons: Vec<Reason>,
}

impl fmt::Display for NonConformance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "`{}` does not implicitly structurally conform to `{}`: ",
            self.found, self.expected
        )?;
        for (i, r) in self.reasons.iter().enumerate() {
            if i > 0 {
                f.write_str("; ")?;
            }
            write!(f, "{r}")?;
        }
        Ok(())
    }
}

impl std::error::Error for NonConformance {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reasons_render_readably() {
        let r = Reason::MissingMember {
            aspect: Aspect::Methods,
            member: "getName() -> String".into(),
        };
        assert_eq!(
            r.to_string(),
            "no conforming methods member for `getName() -> String`"
        );
    }

    #[test]
    fn nonconformance_renders_all_reasons() {
        let nc = NonConformance {
            expected: TypeName::new("Person"),
            found: TypeName::new("Human"),
            reasons: vec![
                Reason::NameMismatch {
                    expected: TypeName::new("Person"),
                    found: TypeName::new("Human"),
                },
                Reason::DepthExceeded,
            ],
        };
        let s = nc.to_string();
        assert!(s.contains("Human"));
        assert!(s.contains("; "), "multiple reasons joined: {s}");
    }

    #[test]
    fn ambiguous_member_lists_candidates() {
        let r = Reason::AmbiguousMember {
            aspect: Aspect::Methods,
            member: "f(Int32)".into(),
            candidates: vec!["f1".into(), "f2".into()],
        };
        let s = r.to_string();
        assert!(s.contains("2 candidates"));
        assert!(s.contains("f1, f2"));
    }

    #[test]
    fn supertype_mismatch_with_and_without_found() {
        let some = Reason::SupertypeMismatch {
            expected: TypeName::new("Base"),
            found: Some(TypeName::new("Other")),
        };
        assert!(some.to_string().contains("Other"));
        let none = Reason::SupertypeMismatch {
            expected: TypeName::new("Base"),
            found: None,
        };
        assert!(none.to_string().contains("missing supertype"));
    }
}
