//! Implicit *behavioral* type conformance — the paper's Section 4.1
//! extension.
//!
//! "The implicit behavioral type conformance is based on the behavior of
//! the type, i.e., based on the result of its methods. … these methods
//! must also be executed in order to compare their results for
//! corresponding inputs. That should be feasible for types dealing only
//! with primitive types but for more complex types it is rather tricky."
//!
//! This module implements exactly that feasible fragment: given two types
//! whose *structure* already conforms (a [`ConformanceBinding`] exists),
//! a [`BehavioralTester`] executes the bound method pairs on freshly
//! constructed instances with seeded pseudo-random **primitive** inputs
//! and compares outputs — first method-by-method on fresh receivers, then
//! as a randomized call *sequence* against one receiver pair (catching
//! setter/getter interactions). Methods touching non-primitive types are
//! reported as skipped, as the paper anticipates.
//!
//! Combining a structural pass with a behavioral pass yields the paper's
//! "strong implicit type conformance".

use pti_metamodel::{MetamodelError, ObjHandle, Runtime, TypeDef, TypeName, Value};

use crate::binding::{ConformanceBinding, MethodBinding};

/// A deterministic SplitMix64 generator — enough randomness for probe
/// inputs without pulling a dependency into the rule crate.
#[derive(Debug, Clone)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// Outcome of probing one bound method pair.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodVerdict {
    /// Method name on the expected type.
    pub expected_name: String,
    /// Method name on the received type.
    pub actual_name: String,
    /// Number of probes executed.
    pub probes: usize,
    /// Probes on which both implementations agreed.
    pub agreements: usize,
    /// A bounded sample of disagreements: (arguments, expected-side
    /// output, received-side output). Outputs are rendered to strings so
    /// the report is self-contained.
    pub disagreements: Vec<(Vec<Value>, String, String)>,
}

impl MethodVerdict {
    /// Whether every probe agreed.
    pub fn agrees(&self) -> bool {
        self.agreements == self.probes
    }
}

/// The full behavioral comparison report.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BehavioralReport {
    /// Per-method probe verdicts.
    pub methods: Vec<MethodVerdict>,
    /// Bound methods that could not be probed (non-primitive parameter
    /// or return types), by expected name.
    pub skipped: Vec<String>,
    /// Disagreements found by the randomized call-sequence pass, rendered
    /// as `(step, method, detail)`.
    pub sequence_disagreements: Vec<(usize, String, String)>,
    /// Steps executed in the sequence pass.
    pub sequence_steps: usize,
}

impl BehavioralReport {
    /// The paper's behavioral conformance verdict: every probed method
    /// and every sequence step agreed. Skipped methods do not fail the
    /// verdict (they are outside the feasible fragment) but are listed.
    pub fn conformant(&self) -> bool {
        self.methods.iter().all(MethodVerdict::agrees) && self.sequence_disagreements.is_empty()
    }
}

/// Configuration and driver for behavioral probing.
#[derive(Debug, Clone)]
pub struct BehavioralTester {
    /// Probes per bound method (fresh receivers each probe).
    pub probes_per_method: usize,
    /// Steps in the randomized call-sequence pass (0 disables it).
    pub sequence_steps: usize,
    /// Seed for input generation (probes are deterministic per seed).
    pub seed: u64,
    /// Cap on recorded disagreements per method.
    pub max_recorded: usize,
}

impl Default for BehavioralTester {
    fn default() -> Self {
        BehavioralTester {
            probes_per_method: 16,
            sequence_steps: 64,
            seed: 0x9D1C_E2F1,
            max_recorded: 4,
        }
    }
}

fn primitive_probe(rng: &mut SplitMix64, ty: &TypeName) -> Option<Value> {
    use pti_metamodel::primitives as prim;
    Some(match ty.full() {
        prim::BOOL => Value::Bool(rng.below(2) == 1),
        prim::INT32 => Value::I32((rng.next() as i32) % 1000),
        prim::INT64 => Value::I64((rng.next() as i64) % 100_000),
        prim::FLOAT64 => Value::F64((rng.below(1_000_000) as f64) / 128.0),
        prim::STRING => {
            let len = rng.below(12) as usize;
            let s: String = (0..len)
                .map(|_| char::from(b'a' + (rng.below(26) as u8)))
                .collect();
            Value::Str(s)
        }
        _ => return None,
    })
}

/// Whether a method is within the feasible fragment: all parameters and
/// the return type are primitives (or `Void` return).
fn probeable(def: &TypeDef, binding_name: &str, arity: usize) -> Option<bool> {
    use pti_metamodel::primitives as prim;
    let (_, sig) = def.find_method(binding_name, arity)?;
    let params_ok = sig.params.iter().all(|p| prim::is_primitive(&p.ty));
    let ret_ok = prim::is_primitive(&sig.return_type) || sig.return_type.full() == prim::VOID;
    Some(params_ok && ret_ok)
}

impl BehavioralTester {
    /// Probes the behavior of `received` against `expected` through the
    /// structural `binding`. Both types (and their method bodies) must be
    /// installed in `rt`.
    ///
    /// # Errors
    /// Construction failures (no usable constructor) or runtime errors
    /// *outside* method execution. A method body raising an error is not
    /// an error here: the pair of outcomes is compared like any result
    /// (both failing identically counts as agreement).
    pub fn test(
        &self,
        rt: &mut Runtime,
        received: &TypeDef,
        expected: &TypeDef,
        binding: &ConformanceBinding,
    ) -> Result<BehavioralReport, MetamodelError> {
        let mut report = BehavioralReport::default();
        let mut rng = SplitMix64(self.seed);

        // Pass 1: per-method probes on fresh receiver pairs.
        for mb in &binding.methods {
            let arity = mb.perm.len();
            let exp_ok = probeable(expected, &mb.expected_name, arity);
            let act_ok = probeable(received, &mb.actual_name, arity);
            if exp_ok != Some(true) || act_ok != Some(true) {
                report.skipped.push(mb.expected_name.clone());
                continue;
            }
            let sig_params: Vec<TypeName> = expected
                .find_method(&mb.expected_name, arity)
                .expect("probeable checked")
                .1
                .params
                .iter()
                .map(|p| p.ty.clone())
                .collect();
            let mut verdict = MethodVerdict {
                expected_name: mb.expected_name.clone(),
                actual_name: mb.actual_name.clone(),
                probes: self.probes_per_method,
                agreements: 0,
                disagreements: Vec::new(),
            };
            for _ in 0..self.probes_per_method {
                let args: Option<Vec<Value>> = sig_params
                    .iter()
                    .map(|t| primitive_probe(&mut rng, t))
                    .collect();
                let args = args.expect("probeable params are primitive");
                let eh = fresh_instance(rt, expected)?;
                let ah = fresh_instance(rt, received)?;
                let out_e = rt.invoke(eh, &mb.expected_name, &args);
                let out_a = rt.invoke(ah, &mb.actual_name, &mb.reorder(&args));
                if outcome_eq(&out_e, &out_a) {
                    verdict.agreements += 1;
                } else if verdict.disagreements.len() < self.max_recorded {
                    verdict
                        .disagreements
                        .push((args, render(&out_e), render(&out_a)));
                }
                let _ = rt.heap.free(eh);
                let _ = rt.heap.free(ah);
            }
            report.methods.push(verdict);
        }

        // Pass 2: one receiver pair, randomized call sequence over the
        // probeable bound methods (catches stateful interactions like
        // set-then-get).
        let seq_methods: Vec<&MethodBinding> = binding
            .methods
            .iter()
            .filter(|mb| {
                probeable(expected, &mb.expected_name, mb.perm.len()) == Some(true)
                    && probeable(received, &mb.actual_name, mb.perm.len()) == Some(true)
            })
            .collect();
        if !seq_methods.is_empty() && self.sequence_steps > 0 {
            let eh = fresh_instance(rt, expected)?;
            let ah = fresh_instance(rt, received)?;
            for step in 0..self.sequence_steps {
                let mb = seq_methods[rng.below(seq_methods.len() as u64) as usize];
                let sig_params: Vec<TypeName> = expected
                    .find_method(&mb.expected_name, mb.perm.len())
                    .expect("filtered")
                    .1
                    .params
                    .iter()
                    .map(|p| p.ty.clone())
                    .collect();
                let args: Vec<Value> = sig_params
                    .iter()
                    .map(|t| primitive_probe(&mut rng, t).expect("primitive"))
                    .collect();
                let out_e = rt.invoke(eh, &mb.expected_name, &args);
                let out_a = rt.invoke(ah, &mb.actual_name, &mb.reorder(&args));
                report.sequence_steps = step + 1;
                if !outcome_eq(&out_e, &out_a) {
                    report.sequence_disagreements.push((
                        step,
                        mb.expected_name.clone(),
                        format!("{} vs {}", render(&out_e), render(&out_a)),
                    ));
                    if report.sequence_disagreements.len() >= self.max_recorded {
                        break;
                    }
                }
            }
            let _ = rt.heap.free(eh);
            let _ = rt.heap.free(ah);
        }

        Ok(report)
    }
}

fn fresh_instance(rt: &mut Runtime, def: &TypeDef) -> Result<ObjHandle, MetamodelError> {
    if def.find_ctor(0).is_some() && def.is_instantiable() {
        rt.instantiate_def(def, &[])
    } else {
        rt.allocate_raw(def)
    }
}

fn outcome_eq(a: &Result<Value, MetamodelError>, b: &Result<Value, MetamodelError>) -> bool {
    match (a, b) {
        (Ok(x), Ok(y)) => x == y,
        (Err(_), Err(_)) => true, // both fail: identical observable behavior
        _ => false,
    }
}

fn render(r: &Result<Value, MetamodelError>) -> String {
    match r {
        Ok(v) => v.to_string(),
        Err(e) => format!("error: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ConformanceChecker, ConformanceConfig};
    use pti_metamodel::{bodies, primitives, Assembly, ParamDef, TypeDescription};
    use std::sync::Arc;

    /// Two "Adder" types with renamed methods; `faithful` controls whether
    /// vendor B's add actually adds or sneakily subtracts.
    fn adders(faithful: bool) -> (Runtime, TypeDef, TypeDef, ConformanceBinding) {
        let expected = TypeDef::class("Adder", "vendor-a")
            .field("acc", primitives::INT64)
            .method(
                "add",
                vec![ParamDef::new("x", primitives::INT64)],
                primitives::INT64,
            )
            .method("total", vec![], primitives::INT64)
            .ctor(vec![])
            .build();
        let received = TypeDef::class("Adder", "vendor-b")
            .field("acc", primitives::INT64)
            .method(
                "addValue",
                vec![ParamDef::new("x", primitives::INT64)],
                primitives::INT64,
            )
            .method("totalValue", vec![], primitives::INT64)
            .ctor(vec![])
            .build();
        let (eg, rg) = (expected.guid, received.guid);
        let mut rt = Runtime::new();
        let add = |sign: i64| -> pti_metamodel::NativeFn {
            Arc::new(move |rt: &mut Runtime, recv: Value, args: &[Value]| {
                let h = recv.as_obj()?;
                let acc = rt.get_field(h, "acc")?.as_i64()? + sign * args[0].as_i64()?;
                rt.set_field(h, "acc", Value::I64(acc))?;
                Ok(Value::I64(acc))
            })
        };
        Assembly::builder("a")
            .ty(expected.clone())
            .body(eg, "add", 1, add(1))
            .body(eg, "total", 0, bodies::getter("acc"))
            .ctor_body(eg, 0, bodies::ctor_assign(&[]))
            .build()
            .install(&mut rt)
            .unwrap();
        Assembly::builder("b")
            .ty(received.clone())
            .body(rg, "addValue", 1, add(if faithful { 1 } else { -1 }))
            .body(rg, "totalValue", 0, bodies::getter("acc"))
            .ctor_body(rg, 0, bodies::ctor_assign(&[]))
            .build()
            .install(&mut rt)
            .unwrap();
        let checker = ConformanceChecker::new(ConformanceConfig::pragmatic());
        let conf = checker
            .check(
                &TypeDescription::from_def(&received),
                &TypeDescription::from_def(&expected),
                &rt.registry,
                &rt.registry,
            )
            .expect("structurally conformant");
        let binding = conf.binding(&TypeDescription::from_def(&expected));
        (rt, received, expected, binding)
    }

    #[test]
    fn faithful_implementation_passes() {
        let (mut rt, received, expected, binding) = adders(true);
        let report = BehavioralTester::default()
            .test(&mut rt, &received, &expected, &binding)
            .unwrap();
        assert!(report.conformant(), "{report:?}");
        assert_eq!(report.methods.len(), 2);
        assert!(report.skipped.is_empty());
        assert!(report.sequence_steps > 0);
    }

    #[test]
    fn divergent_implementation_fails_with_witnesses() {
        let (mut rt, received, expected, binding) = adders(false);
        let report = BehavioralTester::default()
            .test(&mut rt, &received, &expected, &binding)
            .unwrap();
        assert!(!report.conformant());
        let add = report
            .methods
            .iter()
            .find(|m| m.expected_name == "add")
            .unwrap();
        assert!(!add.agrees());
        assert!(!add.disagreements.is_empty(), "witness inputs recorded");
        // The pure getter agrees per-probe (fresh receivers)…
        let total = report
            .methods
            .iter()
            .find(|m| m.expected_name == "total")
            .unwrap();
        assert!(total.agrees());
        // …but the sequence pass exposes the divergent accumulated state.
        assert!(!report.sequence_disagreements.is_empty());
    }

    #[test]
    fn probing_is_deterministic_per_seed() {
        let (mut rt, received, expected, binding) = adders(false);
        let t = BehavioralTester {
            seed: 7,
            ..BehavioralTester::default()
        };
        let r1 = t.test(&mut rt, &received, &expected, &binding).unwrap();
        let r2 = t.test(&mut rt, &received, &expected, &binding).unwrap();
        assert_eq!(r1, r2);
        let t2 = BehavioralTester {
            seed: 8,
            ..BehavioralTester::default()
        };
        let r3 = t2.test(&mut rt, &received, &expected, &binding).unwrap();
        // Same verdict, (very likely) different witnesses.
        assert_eq!(r1.conformant(), r3.conformant());
    }

    #[test]
    fn non_primitive_methods_are_skipped() {
        let expected = TypeDef::class("Box", "a")
            .method("wrap", vec![ParamDef::new("x", "Widget")], "Widget")
            .method("tag", vec![], primitives::STRING)
            .ctor(vec![])
            .build();
        let received = TypeDef::class("Box", "b")
            .method("wrap", vec![ParamDef::new("x", "Widget")], "Widget")
            .method("tag", vec![], primitives::STRING)
            .ctor(vec![])
            .build();
        let (eg, rg) = (expected.guid, received.guid);
        let mut rt = Runtime::new();
        for (def, g) in [(&expected, eg), (&received, rg)] {
            Assembly::builder(format!("box-{g}"))
                .ty(def.clone())
                .body(g, "wrap", 1, bodies::constant(Value::Null))
                .body(g, "tag", 0, bodies::constant(Value::from("t")))
                .ctor_body(g, 0, bodies::ctor_assign(&[]))
                .build()
                .install(&mut rt)
                .unwrap();
        }
        let binding = ConformanceBinding::identity(&TypeDescription::from_def(&expected));
        let report = BehavioralTester::default()
            .test(&mut rt, &received, &expected, &binding)
            .unwrap();
        assert_eq!(report.skipped, vec!["wrap".to_string()]);
        assert_eq!(report.methods.len(), 1, "only `tag` is probeable");
        assert!(report.conformant(), "skips do not fail the verdict");
    }

    #[test]
    fn matching_error_behavior_counts_as_agreement() {
        // Both implementations declare a method with no body installed:
        // both invocations fail, which is identical observable behavior.
        let expected = TypeDef::class("E", "a")
            .method("boom", vec![], primitives::INT32)
            .ctor(vec![])
            .build();
        let received = TypeDef::class("E", "b")
            .method("boom", vec![], primitives::INT32)
            .ctor(vec![])
            .build();
        let mut rt = Runtime::new();
        rt.register_type(expected.clone()).unwrap();
        rt.register_type(received.clone()).unwrap();
        let binding = ConformanceBinding::identity(&TypeDescription::from_def(&expected));
        let report = BehavioralTester {
            sequence_steps: 4,
            ..Default::default()
        }
        .test(&mut rt, &received, &expected, &binding)
        .unwrap();
        assert!(report.conformant(), "{report:?}");
    }
}
