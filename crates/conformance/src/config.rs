//! Configuration of the conformance checker.

use crate::matcher::NameMatcher;

/// Variance applied to method/constructor argument types (design decision
/// D2 in DESIGN.md).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Variance {
    /// The rule exactly as printed in the paper: the received method's
    /// argument type must implicitly structurally conform to the expected
    /// method's argument type (*covariant* arguments — pragmatic, not
    /// sound in general, but symmetric with the return-type direction).
    #[default]
    PaperCovariant,
    /// Sound (contravariant) arguments: the *expected* argument type must
    /// conform to the received method's argument type, so any value the
    /// caller may legally pass is accepted by the callee.
    Strict,
}

/// What to do when one expected member matches several received members —
/// the paper "does not impose any criterion, it is up to the programmer"
/// (design decision D3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Ambiguity {
    /// Bind to the first matching member in declaration order.
    #[default]
    First,
    /// Bind to the candidate whose name has the smallest edit distance to
    /// the expected name; ties broken by declaration order.
    BestName,
    /// Refuse to conform when more than one candidate matches.
    Error,
}

/// Behaviour when a referenced type name cannot be resolved to a
/// description on either side (e.g. the description was never published).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Unresolved {
    /// Fall back to name conformance between the two type names — the
    /// optimistic reading that keeps the protocol "pragmatic".
    #[default]
    NameFallback,
    /// Treat unresolvable references as non-conformant.
    Fail,
}

/// Full configuration of a conformance check.
///
/// The default value reproduces the paper's printed rules: exact
/// case-insensitive names, covariant arguments, programmer-chosen (first)
/// ambiguity resolution, modifier equality required.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ConformanceConfig {
    /// Matcher for *type* names (aspect i).
    pub type_names: NameMatcher,
    /// Matcher for member (field/method) names (aspects ii & iv).
    pub member_names: NameMatcher,
    /// Argument variance for methods and constructors (aspects iv & v).
    pub variance: Variance,
    /// Resolution of multiple matching candidates.
    pub ambiguity: Ambiguity,
    /// Handling of unresolvable referenced types.
    pub unresolved: Unresolved,
    /// Whether method/constructor modifiers must be equal ("this
    /// assumption is implicitly assumed in the rule"). On by default.
    pub ignore_modifiers: bool,
}

impl ConformanceConfig {
    /// The paper's rules exactly as printed (also `Default`).
    pub fn paper() -> ConformanceConfig {
        ConformanceConfig::default()
    }

    /// A *pragmatic* profile that also accepts the paper's Section 3.1
    /// motivating example: token-subsequence member names
    /// (`setName` ≈ `setPersonName`) with exact type names.
    pub fn pragmatic() -> ConformanceConfig {
        ConformanceConfig {
            member_names: NameMatcher::TokenSubsequence,
            ..ConformanceConfig::default()
        }
    }

    /// A strict profile: sound argument variance and ambiguity as error.
    pub fn strict() -> ConformanceConfig {
        ConformanceConfig {
            variance: Variance::Strict,
            ambiguity: Ambiguity::Error,
            unresolved: Unresolved::Fail,
            ..ConformanceConfig::default()
        }
    }

    /// Builder-style override of the type-name matcher.
    #[must_use]
    pub fn with_type_names(mut self, m: NameMatcher) -> Self {
        self.type_names = m;
        self
    }

    /// Builder-style override of the member-name matcher.
    #[must_use]
    pub fn with_member_names(mut self, m: NameMatcher) -> Self {
        self.member_names = m;
        self
    }

    /// Builder-style override of the variance mode.
    #[must_use]
    pub fn with_variance(mut self, v: Variance) -> Self {
        self.variance = v;
        self
    }

    /// Builder-style override of ambiguity resolution.
    #[must_use]
    pub fn with_ambiguity(mut self, a: Ambiguity) -> Self {
        self.ambiguity = a;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_paper_profile() {
        let d = ConformanceConfig::default();
        assert_eq!(d, ConformanceConfig::paper());
        assert_eq!(d.type_names, NameMatcher::Exact);
        assert_eq!(d.variance, Variance::PaperCovariant);
        assert_eq!(d.ambiguity, Ambiguity::First);
        assert!(!d.ignore_modifiers);
    }

    #[test]
    fn pragmatic_relaxes_member_names_only() {
        let p = ConformanceConfig::pragmatic();
        assert_eq!(p.member_names, NameMatcher::TokenSubsequence);
        assert_eq!(p.type_names, NameMatcher::Exact);
    }

    #[test]
    fn strict_profile() {
        let s = ConformanceConfig::strict();
        assert_eq!(s.variance, Variance::Strict);
        assert_eq!(s.ambiguity, Ambiguity::Error);
        assert_eq!(s.unresolved, Unresolved::Fail);
    }

    #[test]
    fn builder_overrides() {
        let c = ConformanceConfig::paper()
            .with_member_names(NameMatcher::Levenshtein(2))
            .with_variance(Variance::Strict)
            .with_ambiguity(Ambiguity::BestName)
            .with_type_names(NameMatcher::Wildcard);
        assert_eq!(c.member_names, NameMatcher::Levenshtein(2));
        assert_eq!(c.variance, Variance::Strict);
        assert_eq!(c.ambiguity, Ambiguity::BestName);
        assert_eq!(c.type_names, NameMatcher::Wildcard);
    }
}
