//! # pti-conformance — implicit structural type conformance
//!
//! The core contribution of *Pragmatic Type Interoperability* (ICDCS
//! 2003): a rule system deciding whether a type `T'` received from a
//! remote peer can be used wherever a locally expected type `T` is
//! required, even though the two were written by different programmers
//! with different names, members or hierarchies.
//!
//! The paper's Figure 2 defines `T' ≼IS T` as the conjunction of five
//! aspects — **name**, **fields**, **supertypes**, **methods** (with
//! argument permutations) and **constructors** — with *equivalence* and
//! *explicit* (nominal) conformance as alternative routes. This crate
//! implements those rules verbatim ([`ConformanceConfig::paper`]), plus
//! the generalizations the paper gestures at (wildcards, relaxed
//! Levenshtein thresholds, token matching) and two configuration axes the
//! paper leaves open (argument variance, ambiguity resolution).
//!
//! A successful check yields a [`ConformanceBinding`] — the translation
//! table dynamic proxies use to invoke the received object.
//!
//! ## Example
//!
//! ```
//! use pti_conformance::{ConformanceChecker, ConformanceConfig, Conformance};
//! use pti_metamodel::{TypeDef, TypeDescription, TypeRegistry, ParamDef, primitives};
//!
//! // Two vendors implement the same "Person" module (paper Section 3.1).
//! let vendor_a = TypeDef::class("Person", "vendor-a")
//!     .field("name", primitives::STRING)
//!     .method("getName", vec![], primitives::STRING)
//!     .build();
//! let vendor_b = TypeDef::class("Person", "vendor-b")
//!     .field("name", primitives::STRING)
//!     .method("getPersonName", vec![], primitives::STRING)
//!     .build();
//!
//! let registry = TypeRegistry::with_builtins();
//! let checker = ConformanceChecker::new(ConformanceConfig::pragmatic());
//! let result = checker.check(
//!     &TypeDescription::from_def(&vendor_b),
//!     &TypeDescription::from_def(&vendor_a),
//!     &registry,
//!     &registry,
//! ).expect("vendor-b's Person conforms");
//! let binding = result.binding(&TypeDescription::from_def(&vendor_a));
//! assert_eq!(binding.method("getName", 0).unwrap().actual_name, "getPersonName");
//! ```

#![warn(missing_docs)]

mod behavioral;
mod binding;
mod checker;
mod config;
mod levenshtein;
mod matcher;
mod report;

pub use behavioral::{BehavioralReport, BehavioralTester, MethodVerdict};
pub use binding::{ConformanceBinding, CtorBinding, FieldBinding, MethodBinding};
pub use checker::{CacheStats, Conformance, ConformanceChecker};
pub use config::{Ambiguity, ConformanceConfig, Unresolved, Variance};
pub use levenshtein::{levenshtein, levenshtein_ci};
pub use matcher::{NameMatcher, SynonymTable};
pub use report::{Aspect, NonConformance, Reason};
