//! Name matching strategies (design decision D1 in DESIGN.md).
//!
//! The paper's formal rule requires case-insensitive equality (Levenshtein
//! distance 0) but explicitly notes "in order to be more general,
//! wildcards could be allowed". Its motivating example (`setName` vs
//! `setPersonName`) needs *some* relaxation, so the matcher is pluggable:
//! the paper-default [`NameMatcher::Exact`], plus the generalizations the
//! paper gestures at.

use std::collections::HashMap;

use pti_metamodel::split_ident_tokens;

use crate::levenshtein::levenshtein_ci;

/// Strategy for deciding whether two identifiers "have the same name".
///
/// Matching is always case-insensitive, per the paper. `target` is the
/// name from the *type of interest* (the local expectation); `source` is
/// the name from the received type.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum NameMatcher {
    /// Case-insensitive equality — Levenshtein distance 0. The paper's
    /// stated rule and the default.
    #[default]
    Exact,
    /// Case-insensitive Levenshtein distance at most the given threshold.
    Levenshtein(usize),
    /// The target name is interpreted as a glob pattern over the source
    /// name: `*` matches any run, `?` matches one character. The paper's
    /// "wildcards could be allowed" extension.
    Wildcard,
    /// Names match when one's camel-case/snake-case token sequence is an
    /// ordered subsequence of the other's: `setName` matches
    /// `setPersonName`. What the paper's Section 3.1 example requires.
    TokenSubsequence,
    /// Names match when their canonical forms (after synonym folding,
    /// case-insensitive) are equal. Lets deployments declare that
    /// `Person` and `Human`, or `get` and `fetch`, are the same word.
    Synonyms(SynonymTable),
}

/// A fold-to-canonical synonym dictionary used by
/// [`NameMatcher::Synonyms`]. Whole identifiers and individual camel-case
/// tokens are both folded.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SynonymTable {
    canon: HashMap<String, String>,
}

impl SynonymTable {
    /// Creates an empty table (behaves like [`NameMatcher::Exact`]).
    pub fn new() -> SynonymTable {
        SynonymTable::default()
    }

    /// Declares `alias` to mean `canonical` (case-insensitive).
    pub fn alias(&mut self, alias: &str, canonical: &str) -> &mut Self {
        self.canon
            .insert(alias.to_ascii_lowercase(), canonical.to_ascii_lowercase());
        self
    }

    /// Builder-style [`alias`](Self::alias).
    #[must_use]
    pub fn with(mut self, alias: &str, canonical: &str) -> Self {
        self.alias(alias, canonical);
        self
    }

    fn fold_token(&self, token: &str) -> String {
        let t = token.to_ascii_lowercase();
        self.canon.get(&t).cloned().unwrap_or(t)
    }

    /// Canonical form of a whole identifier: tokenized, each token folded,
    /// re-joined.
    pub fn fold(&self, ident: &str) -> String {
        split_ident_tokens(ident)
            .iter()
            .map(|t| self.fold_token(t))
            .collect::<Vec<_>>()
            .join("-")
    }
}

impl NameMatcher {
    /// Whether `source` satisfies the name `target` expects.
    pub fn matches(&self, target: &str, source: &str) -> bool {
        match self {
            NameMatcher::Exact => target.eq_ignore_ascii_case(source),
            NameMatcher::Levenshtein(k) => levenshtein_ci(target, source) <= *k,
            NameMatcher::Wildcard => glob_match_ci(target, source),
            NameMatcher::TokenSubsequence => {
                target.eq_ignore_ascii_case(source)
                    || token_subsequence(target, source)
                    || token_subsequence(source, target)
            }
            NameMatcher::Synonyms(table) => table.fold(target) == table.fold(source),
        }
    }

    /// A distance used to rank multiple matching candidates (smaller is
    /// better); the paper leaves the choice "up to the programmer", and
    /// `Ambiguity::BestName` resolves by this score.
    pub fn distance(&self, target: &str, source: &str) -> usize {
        levenshtein_ci(target, source)
    }
}

/// Ordered containment of `needle`'s identifier tokens in `hay`'s.
fn token_subsequence(needle: &str, hay: &str) -> bool {
    let n = split_ident_tokens(needle);
    let h = split_ident_tokens(hay);
    if n.is_empty() {
        return false;
    }
    let mut it = h.iter();
    n.iter().all(|t| it.any(|x| x == t))
}

/// Case-insensitive glob matching with `*` and `?`.
fn glob_match_ci(pattern: &str, text: &str) -> bool {
    let p: Vec<char> = pattern.to_lowercase().chars().collect();
    let t: Vec<char> = text.to_lowercase().chars().collect();
    // Classic two-pointer with backtracking to the last `*`.
    let (mut pi, mut ti) = (0usize, 0usize);
    let mut star: Option<(usize, usize)> = None;
    while ti < t.len() {
        if pi < p.len() && (p[pi] == '?' || p[pi] == t[ti]) {
            pi += 1;
            ti += 1;
        } else if pi < p.len() && p[pi] == '*' {
            star = Some((pi, ti));
            pi += 1;
        } else if let Some((sp, st)) = star {
            pi = sp + 1;
            ti = st + 1;
            star = Some((sp, st + 1));
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '*' {
        pi += 1;
    }
    pi == p.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_is_case_insensitive_equality() {
        let m = NameMatcher::Exact;
        assert!(m.matches("Person", "person"));
        assert!(m.matches("getName", "GETNAME"));
        assert!(!m.matches("getName", "getPersonName"));
    }

    #[test]
    fn levenshtein_threshold() {
        let m = NameMatcher::Levenshtein(2);
        assert!(m.matches("color", "colour"));
        assert!(m.matches("getNam", "getName"));
        assert!(!m.matches("getName", "getPersonName"), "distance 6 > 2");
    }

    #[test]
    fn levenshtein_zero_equals_exact() {
        let m = NameMatcher::Levenshtein(0);
        assert!(m.matches("Person", "PERSON"));
        assert!(!m.matches("Person", "Persons"));
    }

    #[test]
    fn wildcard_patterns() {
        let m = NameMatcher::Wildcard;
        assert!(m.matches("get*Name", "getPersonName"));
        assert!(m.matches("get*", "getAnything"));
        assert!(m.matches("*Name", "personName"));
        assert!(m.matches("get?ame", "getName"));
        assert!(!m.matches("get*Name", "setPersonName"));
        assert!(
            m.matches("exact", "EXACT"),
            "no wildcards degrades to exact"
        );
        assert!(!m.matches("exact", "exactly"));
    }

    #[test]
    fn wildcard_star_edge_cases() {
        let m = NameMatcher::Wildcard;
        assert!(m.matches("*", "anything"));
        assert!(m.matches("*", ""));
        assert!(m.matches("a*b*c", "aXXbYYc"));
        assert!(!m.matches("a*b*c", "aXXbYY"));
        assert!(m.matches("**", "x"));
    }

    #[test]
    fn token_subsequence_motivating_example() {
        // The paper's Section 3.1 example: two programmers' Person types.
        let m = NameMatcher::TokenSubsequence;
        assert!(m.matches("setName", "setPersonName"));
        assert!(m.matches("getName", "getPersonName"));
        assert!(m.matches("setPersonName", "setName"), "symmetric");
        assert!(!m.matches("setName", "getPersonName"), "set vs get");
        assert!(!m.matches("setAge", "setPersonName"));
    }

    #[test]
    fn token_subsequence_requires_order() {
        let m = NameMatcher::TokenSubsequence;
        assert!(!m.matches("nameSet", "setPersonName"), "order matters");
    }

    #[test]
    fn synonyms_fold_tokens() {
        let table = SynonymTable::new().with("fetch", "get").with("nom", "name");
        let m = NameMatcher::Synonyms(table);
        assert!(m.matches("getName", "fetchNom"));
        assert!(m.matches("getName", "GetName"));
        assert!(!m.matches("getName", "setName"));
    }

    #[test]
    fn distance_ranks_candidates() {
        let m = NameMatcher::TokenSubsequence;
        assert!(m.distance("setName", "setName") < m.distance("setName", "setPersonName"));
    }

    #[test]
    fn default_is_exact() {
        assert_eq!(NameMatcher::default(), NameMatcher::Exact);
    }
}
