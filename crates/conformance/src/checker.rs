//! The implicit structural conformance checker (Figure 2 of the paper).
//!
//! A [`ConformanceChecker`] decides `T' ≼IS T` — whether a received type
//! `T'` can be used wherever `T` is expected — by the paper's rule (vi):
//! either `T'` conforms in **all** aspects (name, fields, supertypes,
//! methods, constructors), or `T'` and `T` are *equivalent*, or `T'`
//! conforms *explicitly* (nominal subtyping). A successful check yields a
//! [`ConformanceBinding`] that dynamic proxies use to translate calls.
//!
//! Two structural features go beyond a naive transcription of the rules:
//!
//! * **Member flattening.** .NET reflection reports inherited public
//!   members; descriptions here declare only their own, so the checker
//!   flattens members over the supertype chain through each side's
//!   [`DescriptionProvider`] (constructors are not inherited).
//! * **Coinductive recursion.** Field/argument types recurse; for
//!   recursive types (`Person` with a `Person` field) the pair under test
//!   is assumed conformant when re-encountered — the standard treatment
//!   for structural subtyping — with a hard depth bound as a backstop.

use std::collections::HashMap;

use pti_metamodel::{DescriptionProvider, Guid, MethodDesc, TypeDescription, TypeKind, TypeName};
use std::sync::Mutex;

use crate::binding::{ConformanceBinding, CtorBinding, FieldBinding, MethodBinding};
use crate::config::{Ambiguity, ConformanceConfig, Unresolved, Variance};
use crate::report::{Aspect, NonConformance, Reason};

/// Maximum recursion depth through referenced types.
const MAX_DEPTH: usize = 64;
/// Maximum supertype-chain length honoured while flattening members.
const MAX_CHAIN: usize = 32;

/// How a successful check was established.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Conformance {
    /// Same GUID — the very same type (`T' == T`).
    Identical,
    /// `T'` is an explicit (nominal) subtype of `T`.
    Explicit,
    /// `T'` and `T` are structurally identical types from different
    /// publishers (the paper's *equivalence*).
    Equivalent,
    /// `T'` implicitly structurally conforms to `T`; the binding carries
    /// the member translation a proxy needs.
    Structural(ConformanceBinding),
    /// Assumed conformant by the coinductive hypothesis: this pair was
    /// already *being* checked further up the recursion (cyclic type
    /// references). Never returned from a top-level [`check`] call.
    ///
    /// [`check`]: ConformanceChecker::check
    Assumed,
}

impl Conformance {
    /// The member translation table for this conformance, given the
    /// expected type. Identity for all non-structural cases.
    pub fn binding(&self, expected: &TypeDescription) -> ConformanceBinding {
        match self {
            Conformance::Structural(b) => b.clone(),
            _ => ConformanceBinding::identity(expected),
        }
    }
}

/// Cache hit/miss counters (ablation A3 reads these).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Checks answered from the cache.
    pub hits: u64,
    /// Checks computed from scratch.
    pub misses: u64,
}

/// The conformance checker: rules + per-instance verdict cache.
///
/// Create one checker per peer (its cache assumes a stable description
/// environment); [`clear_cache`](Self::clear_cache) resets it if the
/// environment changes.
pub struct ConformanceChecker {
    config: ConformanceConfig,
    cache: Mutex<HashMap<(Guid, Guid), Result<Conformance, NonConformance>>>,
    stats: Mutex<CacheStats>,
    caching: bool,
}

struct State<'a> {
    in_progress: Vec<(Guid, Guid)>,
    depth: usize,
    depth_exceeded: bool,
    src: &'a dyn DescriptionProvider,
    tgt: &'a dyn DescriptionProvider,
}

impl std::fmt::Debug for ConformanceChecker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConformanceChecker")
            .field("config", &self.config)
            .field(
                "cached_pairs",
                &self
                    .cache
                    .lock()
                    .expect("conformance cache lock poisoned")
                    .len(),
            )
            .field(
                "stats",
                &*self.stats.lock().expect("conformance cache lock poisoned"),
            )
            .finish()
    }
}

impl Default for ConformanceChecker {
    fn default() -> Self {
        Self::new(ConformanceConfig::default())
    }
}

impl ConformanceChecker {
    /// Creates a checker with the given rule configuration.
    pub fn new(config: ConformanceConfig) -> ConformanceChecker {
        ConformanceChecker {
            config,
            cache: Mutex::new(HashMap::new()),
            stats: Mutex::new(CacheStats::default()),
            caching: true,
        }
    }

    /// Creates a checker with GUID-pair caching disabled — every check
    /// recomputes from scratch (ablation A3 baseline).
    pub fn uncached(config: ConformanceConfig) -> ConformanceChecker {
        ConformanceChecker {
            caching: false,
            ..Self::new(config)
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &ConformanceConfig {
        &self.config
    }

    /// Cache hit/miss counters so far.
    pub fn stats(&self) -> CacheStats {
        *self.stats.lock().expect("conformance cache lock poisoned")
    }

    /// Empties the verdict cache (use when the description environment
    /// changes, e.g. a new description for a previously unresolved name).
    pub fn clear_cache(&self) {
        self.cache
            .lock()
            .expect("conformance cache lock poisoned")
            .clear();
    }

    /// Decides whether `source` (`T'`, the received type) implicitly
    /// structurally conforms to `target` (`T`, the type of interest).
    ///
    /// `src_provider` resolves type names referenced by `source`
    /// (sender-side descriptions); `tgt_provider` resolves names
    /// referenced by `target` (receiver-side types).
    ///
    /// # Errors
    /// [`NonConformance`] lists every violated aspect.
    pub fn check(
        &self,
        source: &TypeDescription,
        target: &TypeDescription,
        src_provider: &dyn DescriptionProvider,
        tgt_provider: &dyn DescriptionProvider,
    ) -> Result<Conformance, NonConformance> {
        let mut state = State {
            in_progress: Vec::new(),
            depth: 0,
            depth_exceeded: false,
            src: src_provider,
            tgt: tgt_provider,
        };
        self.check_descs(source, target, &mut state)
    }

    /// Boolean convenience over [`check`](Self::check).
    pub fn conforms(
        &self,
        source: &TypeDescription,
        target: &TypeDescription,
        src_provider: &dyn DescriptionProvider,
        tgt_provider: &dyn DescriptionProvider,
    ) -> bool {
        self.check(source, target, src_provider, tgt_provider)
            .is_ok()
    }

    fn check_descs(
        &self,
        source: &TypeDescription,
        target: &TypeDescription,
        state: &mut State<'_>,
    ) -> Result<Conformance, NonConformance> {
        // Rule: T' == T (identity short-circuits everything).
        if source.guid == target.guid && !source.guid.is_nil() {
            return Ok(Conformance::Identical);
        }
        let key = (source.guid, target.guid);
        if self.caching {
            if let Some(hit) = self
                .cache
                .lock()
                .expect("conformance cache lock poisoned")
                .get(&key)
            {
                self.stats
                    .lock()
                    .expect("conformance cache lock poisoned")
                    .hits += 1;
                return hit.clone();
            }
        }
        // Coinductive hypothesis for cyclic references.
        if state.in_progress.contains(&key) {
            return Ok(Conformance::Assumed);
        }
        if state.depth >= MAX_DEPTH {
            state.depth_exceeded = true;
            return Err(NonConformance {
                expected: target.name.clone(),
                found: source.name.clone(),
                reasons: vec![Reason::DepthExceeded],
            });
        }
        state.in_progress.push(key);
        state.depth += 1;
        let result = self.check_uncached(source, target, state);
        state.depth -= 1;
        state.in_progress.pop();
        self.stats
            .lock()
            .expect("conformance cache lock poisoned")
            .misses += 1;
        // Results derived under a coinductive assumption deeper in the
        // stack are still sound to cache: the assumption is discharged by
        // the time the outermost frame for the pair completes, and inner
        // frames only ran within that computation.
        if self.caching && !state.depth_exceeded {
            self.cache
                .lock()
                .expect("conformance cache lock poisoned")
                .insert(key, result.clone());
        }
        result
    }

    fn check_uncached(
        &self,
        source: &TypeDescription,
        target: &TypeDescription,
        state: &mut State<'_>,
    ) -> Result<Conformance, NonConformance> {
        // Rule: explicit conformance (T' ≤E T).
        if self.is_explicit_subtype(source, target, state) {
            return Ok(Conformance::Explicit);
        }
        // Rule: equivalence (T' ≅ T).
        if self.is_equivalent(source, target, state) {
            return Ok(Conformance::Equivalent);
        }

        let mut reasons = Vec::new();

        // Kind compatibility (implicit in the paper's class-based setting).
        self.check_kind(source, target, &mut reasons);

        // Aspect (i): type name.
        if !self
            .config
            .type_names
            .matches(target.name.simple(), source.name.simple())
        {
            reasons.push(Reason::NameMismatch {
                expected: target.name.clone(),
                found: source.name.clone(),
            });
        }

        // Aspect (iii): supertypes.
        self.check_supertypes(source, target, state, &mut reasons);

        // Flatten inherited members on both sides (ctors not inherited).
        let (src_fields, src_methods) = self.flatten_members(source, state, Side::Src);
        let (tgt_fields, tgt_methods) = self.flatten_members(target, state, Side::Tgt);

        // Aspect (ii): fields.
        let fields = self.bind_fields(&src_fields, &tgt_fields, state, &mut reasons);

        // Aspect (iv): methods.
        let methods = self.bind_methods(&src_methods, &tgt_methods, state, &mut reasons);

        // Aspect (v): constructors.
        let constructors = self.bind_ctors(source, target, state, &mut reasons);

        if reasons.is_empty() {
            Ok(Conformance::Structural(ConformanceBinding {
                methods,
                fields,
                constructors,
            }))
        } else {
            Err(NonConformance {
                expected: target.name.clone(),
                found: source.name.clone(),
                reasons,
            })
        }
    }

    fn check_kind(
        &self,
        source: &TypeDescription,
        target: &TypeDescription,
        reasons: &mut Vec<Reason>,
    ) {
        let ok = match target.kind {
            // A class may stand in for an expected interface (it offers
            // the methods); an interface cannot stand in for a class.
            TypeKind::Interface => {
                matches!(source.kind, TypeKind::Interface | TypeKind::Class)
            }
            TypeKind::Class => source.kind == TypeKind::Class,
            TypeKind::Primitive => source.kind == TypeKind::Primitive,
        };
        if !ok {
            reasons.push(Reason::KindMismatch {
                expected: target.kind.to_string(),
                found: source.kind.to_string(),
            });
        }
    }

    fn check_supertypes(
        &self,
        source: &TypeDescription,
        target: &TypeDescription,
        state: &mut State<'_>,
        reasons: &mut Vec<Reason>,
    ) {
        // Superclass: T'.super must conform to T.super (when T has one).
        if let Some(tsup) = &target.superclass {
            if tsup.full() != pti_metamodel::primitives::OBJECT {
                match &source.superclass {
                    Some(ssup) => {
                        if !self.name_pair(ssup, Side::Src, tsup, Side::Tgt, state) {
                            reasons.push(Reason::SupertypeMismatch {
                                expected: tsup.clone(),
                                found: Some(ssup.clone()),
                            });
                        }
                    }
                    None => reasons.push(Reason::SupertypeMismatch {
                        expected: tsup.clone(),
                        found: None,
                    }),
                }
            }
        }
        // Interfaces: each interface of T needs a conforming interface of
        // T' (searching T's full declared list against T's).
        for ti in &target.interfaces {
            let found = source
                .interfaces
                .iter()
                .any(|si| self.name_pair(si, Side::Src, ti, Side::Tgt, state));
            if !found {
                reasons.push(Reason::SupertypeMismatch {
                    expected: ti.clone(),
                    found: None,
                });
            }
        }
    }

    fn bind_fields(
        &self,
        src_fields: &[pti_metamodel::FieldDesc],
        tgt_fields: &[pti_metamodel::FieldDesc],
        state: &mut State<'_>,
        reasons: &mut Vec<Reason>,
    ) -> Vec<FieldBinding> {
        let mut out = Vec::new();
        for tf in tgt_fields {
            let candidates: Vec<&pti_metamodel::FieldDesc> = src_fields
                .iter()
                .filter(|sf| {
                    self.config.member_names.matches(&tf.name, &sf.name)
                        && self.name_pair(&sf.ty, Side::Src, &tf.ty, Side::Tgt, state)
                })
                .collect();
            match self.pick(&tf.name, &candidates, |c| c.name.clone()) {
                Pick::One(sf) => out.push(FieldBinding {
                    expected_name: tf.name.clone(),
                    actual_name: sf.name.clone(),
                }),
                Pick::None => reasons.push(Reason::MissingMember {
                    aspect: Aspect::Fields,
                    member: format!("{}: {}", tf.name, tf.ty),
                }),
                Pick::Ambiguous(names) => reasons.push(Reason::AmbiguousMember {
                    aspect: Aspect::Fields,
                    member: tf.name.clone(),
                    candidates: names,
                }),
            }
        }
        out
    }

    fn bind_methods(
        &self,
        src_methods: &[MethodDesc],
        tgt_methods: &[MethodDesc],
        state: &mut State<'_>,
        reasons: &mut Vec<Reason>,
    ) -> Vec<MethodBinding> {
        let mut out = Vec::new();
        for tm in tgt_methods {
            // A candidate is a source method plus a working permutation.
            let mut candidates: Vec<(&MethodDesc, Vec<usize>)> = Vec::new();
            for sm in src_methods {
                if !self.config.ignore_modifiers && sm.modifiers != tm.modifiers {
                    continue;
                }
                if sm.arity() != tm.arity() {
                    continue;
                }
                if !self.config.member_names.matches(&tm.name, &sm.name) {
                    continue;
                }
                // Return types: T'.ret ≼IS T.ret (the "real" caller
                // consumes the return value).
                if !self.name_pair(
                    &sm.return_type,
                    Side::Src,
                    &tm.return_type,
                    Side::Tgt,
                    state,
                ) {
                    continue;
                }
                if let Some(perm) = self.find_perm(&sm.params, &tm.params, state) {
                    candidates.push((sm, perm));
                }
            }
            match self.pick(&tm.name, &candidates, |(m, _)| m.name.clone()) {
                Pick::One((sm, perm)) => out.push(MethodBinding {
                    expected_name: tm.name.clone(),
                    actual_name: sm.name.clone(),
                    perm: perm.clone(),
                }),
                Pick::None => reasons.push(Reason::MissingMember {
                    aspect: Aspect::Methods,
                    member: brief(tm),
                }),
                Pick::Ambiguous(names) => reasons.push(Reason::AmbiguousMember {
                    aspect: Aspect::Methods,
                    member: brief(tm),
                    candidates: names,
                }),
            }
        }
        out
    }

    fn bind_ctors(
        &self,
        source: &TypeDescription,
        target: &TypeDescription,
        state: &mut State<'_>,
        reasons: &mut Vec<Reason>,
    ) -> Vec<CtorBinding> {
        let mut out = Vec::new();
        for tc in &target.constructors {
            let mut candidates: Vec<(usize, Vec<usize>)> = Vec::new();
            for (i, sc) in source.constructors.iter().enumerate() {
                if !self.config.ignore_modifiers && sc.modifiers != tc.modifiers {
                    continue;
                }
                if sc.arity() != tc.arity() {
                    continue;
                }
                if let Some(perm) = self.find_perm(&sc.params, &tc.params, state) {
                    candidates.push((i, perm));
                }
            }
            let member = format!("<ctor>/{}", tc.arity());
            match self.pick(&member, &candidates, |(i, _)| format!("ctor#{i}")) {
                Pick::One((i, perm)) => out.push(CtorBinding {
                    arity: tc.arity(),
                    actual_index: *i,
                    perm: perm.clone(),
                }),
                Pick::None => reasons.push(Reason::MissingMember {
                    aspect: Aspect::Constructors,
                    member,
                }),
                Pick::Ambiguous(names) => reasons.push(Reason::AmbiguousMember {
                    aspect: Aspect::Constructors,
                    member,
                    candidates: names,
                }),
            }
        }
        out
    }

    /// Searches for a permutation assigning each expected (target)
    /// parameter position `i` an actual (source) position `perm[i]` such
    /// that the variance-directed conformance holds pairwise. Prefers the
    /// identity permutation; otherwise backtracking bipartite matching.
    fn find_perm(
        &self,
        src_params: &[TypeName],
        tgt_params: &[TypeName],
        state: &mut State<'_>,
    ) -> Option<Vec<usize>> {
        let n = tgt_params.len();
        if src_params.len() != n {
            return None;
        }
        if n == 0 {
            return Some(Vec::new());
        }
        let mut compat = vec![vec![false; n]; n];
        for i in 0..n {
            for j in 0..n {
                compat[i][j] = match self.config.variance {
                    // Paper rule: arg'_{σ(i)} ≼IS arg_i (covariant).
                    Variance::PaperCovariant => {
                        self.name_pair(&src_params[j], Side::Src, &tgt_params[i], Side::Tgt, state)
                    }
                    // Sound rule: arg_i ≼IS arg'_{σ(i)} (contravariant).
                    Variance::Strict => {
                        self.name_pair(&tgt_params[i], Side::Tgt, &src_params[j], Side::Src, state)
                    }
                };
            }
        }
        if (0..n).all(|i| compat[i][i]) {
            return Some((0..n).collect());
        }
        let mut assigned: Vec<Option<usize>> = vec![None; n]; // source slot -> target index
        let mut perm = vec![0usize; n];
        if Self::assign(0, n, &compat, &mut assigned, &mut perm) {
            Some(perm)
        } else {
            None
        }
    }

    fn assign(
        i: usize,
        n: usize,
        compat: &[Vec<bool>],
        assigned: &mut Vec<Option<usize>>,
        perm: &mut Vec<usize>,
    ) -> bool {
        if i == n {
            return true;
        }
        for j in 0..n {
            if compat[i][j] && assigned[j].is_none() {
                assigned[j] = Some(i);
                perm[i] = j;
                if Self::assign(i + 1, n, compat, assigned, perm) {
                    return true;
                }
                assigned[j] = None;
            }
        }
        false
    }

    /// `a ≼IS b` on *referenced type names*, resolving each through its
    /// side's provider.
    fn name_pair(
        &self,
        a: &TypeName,
        a_side: Side,
        b: &TypeName,
        b_side: Side,
        state: &mut State<'_>,
    ) -> bool {
        use pti_metamodel::primitives as prim;
        // Arrays conform element-wise.
        if a.is_array() || b.is_array() {
            return match (a.element(), b.element()) {
                (Some(ae), Some(be)) => self.name_pair(&ae, a_side, &be, b_side, state),
                _ => false,
            };
        }
        // Primitives (and Void) conform only to themselves.
        if prim::is_primitive(a) || prim::is_primitive(b) {
            return a.eq_ignore_case(b);
        }
        // Everything conforms to the root Object.
        if b.full() == prim::OBJECT {
            return true;
        }
        if a.full() == prim::OBJECT {
            return false;
        }
        let ad = self.provider(a_side, state).describe(a);
        let bd = self.provider(b_side, state).describe(b);
        match (ad, bd) {
            (Some(ad), Some(bd)) => {
                let (src, tgt) = (a_side, b_side);
                self.check_pair_sided(&ad, src, &bd, tgt, state)
            }
            _ => match self.config.unresolved {
                Unresolved::NameFallback => self.config.type_names.matches(b.simple(), a.simple()),
                Unresolved::Fail => false,
            },
        }
    }

    /// Runs a nested description-level check with explicit provider sides
    /// (needed because contravariant checks swap the sides).
    fn check_pair_sided(
        &self,
        a: &TypeDescription,
        a_side: Side,
        b: &TypeDescription,
        b_side: Side,
        state: &mut State<'_>,
    ) -> bool {
        if a_side == Side::Src && b_side == Side::Tgt {
            return self.check_descs(a, b, state).is_ok();
        }
        // Swap the provider roles for the duration of the nested check.
        let swapped_src = self.provider(a_side, state);
        let swapped_tgt = self.provider(b_side, state);
        let mut nested = State {
            in_progress: std::mem::take(&mut state.in_progress),
            depth: state.depth,
            depth_exceeded: false,
            src: swapped_src,
            tgt: swapped_tgt,
        };
        let ok = self.check_descs(a, b, &mut nested).is_ok();
        state.in_progress = nested.in_progress;
        state.depth_exceeded |= nested.depth_exceeded;
        ok
    }

    fn provider<'s>(&self, side: Side, state: &State<'s>) -> &'s dyn DescriptionProvider {
        match side {
            Side::Src => state.src,
            Side::Tgt => state.tgt,
        }
    }

    /// The paper's *equivalence*: structurally identical descriptions.
    /// Because descriptions are non-recursive (types referenced by name),
    /// a name-level match alone could equate types whose same-named
    /// component types differ; equivalence therefore additionally
    /// requires every referenced non-builtin name to resolve to the *same
    /// identity* on both sides. When neither side can resolve a name, the
    /// [`Unresolved`] policy decides (optimistically equal under
    /// `NameFallback`). Anything weaker falls through to the structural
    /// aspects, which recurse properly.
    fn is_equivalent(
        &self,
        source: &TypeDescription,
        target: &TypeDescription,
        state: &mut State<'_>,
    ) -> bool {
        use pti_metamodel::primitives as prim;
        if !source.equivalent(target) {
            return false;
        }
        for name in source.referenced_types() {
            // Strip array suffixes down to the element type.
            let mut base = name;
            while let Some(e) = base.element() {
                base = e;
            }
            if prim::is_builtin(&base) {
                continue;
            }
            match (state.src.describe(&base), state.tgt.describe(&base)) {
                (Some(a), Some(b)) if a.guid == b.guid => {}
                (None, None) => {
                    if self.config.unresolved == Unresolved::Fail {
                        return false;
                    }
                }
                _ => return false,
            }
        }
        true
    }

    /// Explicit (nominal) subtyping: walk `source`'s declared supertype
    /// names through the source-side provider looking for `target`'s GUID.
    fn is_explicit_subtype(
        &self,
        source: &TypeDescription,
        target: &TypeDescription,
        state: &mut State<'_>,
    ) -> bool {
        let mut frontier: Vec<TypeName> = Vec::new();
        if let Some(s) = &source.superclass {
            frontier.push(s.clone());
        }
        frontier.extend(source.interfaces.iter().cloned());
        let mut seen: Vec<Guid> = vec![source.guid];
        let mut hops = 0;
        while let Some(name) = frontier.pop() {
            hops += 1;
            if hops > MAX_CHAIN * 4 {
                break;
            }
            let Some(desc) = state.src.describe(&name) else {
                continue;
            };
            if desc.guid == target.guid {
                return true;
            }
            if seen.contains(&desc.guid) {
                continue;
            }
            seen.push(desc.guid);
            if let Some(s) = &desc.superclass {
                frontier.push(s.clone());
            }
            frontier.extend(desc.interfaces.iter().cloned());
        }
        false
    }

    /// Flattens fields and methods over the supertype chain (like .NET
    /// `Type.GetMethods()` reporting inherited public members). Subtype
    /// declarations shadow supertype ones with the same key.
    fn flatten_members(
        &self,
        desc: &TypeDescription,
        state: &mut State<'_>,
        side: Side,
    ) -> (Vec<pti_metamodel::FieldDesc>, Vec<MethodDesc>) {
        let mut fields: Vec<pti_metamodel::FieldDesc> = desc.fields.clone();
        let mut methods: Vec<MethodDesc> = desc.methods.clone();
        let mut cur = desc.superclass.clone();
        let mut interfaces: Vec<TypeName> = desc.interfaces.clone();
        let mut seen: Vec<Guid> = vec![desc.guid];
        let mut hops = 0;
        while hops < MAX_CHAIN {
            hops += 1;
            let Some(name) = cur.take().or_else(|| interfaces.pop()) else {
                break;
            };
            if name.full() == pti_metamodel::primitives::OBJECT {
                continue;
            }
            let Some(sup) = self.provider(side, state).describe(&name) else {
                continue;
            };
            if seen.contains(&sup.guid) {
                continue;
            }
            seen.push(sup.guid);
            for f in &sup.fields {
                if !fields.iter().any(|x| x.name == f.name) {
                    fields.push(f.clone());
                }
            }
            for m in &sup.methods {
                if !methods
                    .iter()
                    .any(|x| x.name == m.name && x.arity() == m.arity())
                {
                    methods.push(m.clone());
                }
            }
            cur = sup.superclass.clone();
            interfaces.extend(sup.interfaces.iter().cloned());
        }
        (fields, methods)
    }

    fn pick<'c, C>(
        &self,
        expected_name: &str,
        candidates: &'c [C],
        name_of: impl Fn(&C) -> String,
    ) -> Pick<'c, C> {
        match candidates.len() {
            0 => Pick::None,
            1 => Pick::One(&candidates[0]),
            _ => match self.config.ambiguity {
                Ambiguity::First => Pick::One(&candidates[0]),
                Ambiguity::Error => Pick::Ambiguous(candidates.iter().map(&name_of).collect()),
                Ambiguity::BestName => {
                    let best = candidates
                        .iter()
                        .min_by_key(|c| {
                            self.config
                                .member_names
                                .distance(expected_name, &name_of(c))
                        })
                        .expect("non-empty");
                    Pick::One(best)
                }
            },
        }
    }
}

enum Pick<'c, C> {
    One(&'c C),
    None,
    Ambiguous(Vec<String>),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Side {
    Src,
    Tgt,
}

fn brief(m: &MethodDesc) -> String {
    let params: Vec<&str> = m.params.iter().map(|p| p.full()).collect();
    format!("{}({}) -> {}", m.name, params.join(", "), m.return_type)
}
