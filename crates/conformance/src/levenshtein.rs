//! Levenshtein edit distance.
//!
//! The paper's name-conformance aspect is phrased in terms of Levenshtein
//! distance [Levenshtein 1965]: two names conform when their
//! (case-insensitive) distance is 0, and the rule generalizes by relaxing
//! the threshold. This is the classic O(m·n) dynamic program with a
//! single-row working set.

/// Computes the Levenshtein (insert/delete/substitute) distance between
/// two strings, by Unicode scalar values.
///
/// # Examples
///
/// ```
/// use pti_conformance::levenshtein;
/// assert_eq!(levenshtein("kitten", "sitting"), 3);
/// assert_eq!(levenshtein("", "abc"), 3);
/// assert_eq!(levenshtein("same", "same"), 0);
/// ```
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            cur[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Case-insensitive Levenshtein distance (ASCII folding plus Unicode
/// simple lowercasing) — the form the paper's rule uses.
pub fn levenshtein_ci(a: &str, b: &str) -> usize {
    let fold = |s: &str| s.chars().flat_map(char::to_lowercase).collect::<String>();
    levenshtein(&fold(a), &fold(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_distances() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
        assert_eq!(levenshtein("gumbo", "gambol"), 2);
        assert_eq!(levenshtein("setName", "setPersonName"), 6);
    }

    #[test]
    fn identity_and_empty() {
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("x", ""), 1);
        assert_eq!(levenshtein("", "xyz"), 3);
        assert_eq!(levenshtein("abc", "abc"), 0);
    }

    #[test]
    fn single_edits() {
        assert_eq!(levenshtein("abc", "abd"), 1, "substitution");
        assert_eq!(levenshtein("abc", "abcd"), 1, "insertion");
        assert_eq!(levenshtein("abc", "ab"), 1, "deletion");
    }

    #[test]
    fn case_insensitive_variant() {
        assert_eq!(levenshtein_ci("Person", "PERSON"), 0);
        assert_eq!(levenshtein_ci("Person", "person"), 0);
        assert_ne!(levenshtein("Person", "PERSON"), 0);
        assert_eq!(levenshtein_ci("getName", "GetNom"), 2);
    }

    #[test]
    fn unicode_counts_scalars() {
        assert_eq!(levenshtein("héllo", "hello"), 1);
        assert_eq!(levenshtein("日本", "日本語"), 1);
    }

    #[test]
    fn symmetric() {
        for (a, b) in [("abc", "xbc"), ("", "q"), ("setName", "setPersonName")] {
            assert_eq!(levenshtein(a, b), levenshtein(b, a));
        }
    }
}
