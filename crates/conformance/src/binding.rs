//! Conformance bindings: the witness a successful check produces.
//!
//! When `T'` implicitly structurally conforms to `T`, a dynamic proxy must
//! translate every invocation phrased against `T` into one against `T'`:
//! possibly under a different method name and with permuted arguments.
//! A [`ConformanceBinding`] records exactly that translation — it is the
//! contract between the checker and `pti-proxy`.

use pti_metamodel::TypeDescription;

/// How one expected method maps onto a received type's method.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MethodBinding {
    /// Method name as declared on the *expected* type `T`.
    pub expected_name: String,
    /// Method name to actually invoke on the received object of `T'`.
    pub actual_name: String,
    /// Argument permutation: `perm[i]` is the position in the *actual*
    /// call of the caller's `i`-th argument. Identity when no reordering
    /// is needed.
    pub perm: Vec<usize>,
}

impl MethodBinding {
    /// Reorders caller arguments into the actual call order.
    ///
    /// # Panics
    /// If `args.len() != self.perm.len()` — callers are validated against
    /// the expected signature before dispatch.
    pub fn reorder<V: Clone>(&self, args: &[V]) -> Vec<V> {
        assert_eq!(args.len(), self.perm.len(), "arity mismatch in binding");
        let mut out: Vec<Option<V>> = vec![None; args.len()];
        for (caller_pos, &actual_pos) in self.perm.iter().enumerate() {
            out[actual_pos] = Some(args[caller_pos].clone());
        }
        out.into_iter()
            .map(|v| v.expect("perm is a permutation"))
            .collect()
    }

    /// Whether this binding is an identity mapping (same name, no
    /// reordering).
    pub fn is_identity(&self) -> bool {
        self.expected_name == self.actual_name && self.perm.iter().enumerate().all(|(i, &p)| i == p)
    }
}

/// How one expected field maps onto a received type's field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldBinding {
    /// Field name on the expected type.
    pub expected_name: String,
    /// Field name on the received type.
    pub actual_name: String,
}

/// How one expected constructor maps onto a received type's constructor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CtorBinding {
    /// Arity of the constructor (constructors are identified by arity).
    pub arity: usize,
    /// Index of the bound constructor on the received type.
    pub actual_index: usize,
    /// Argument permutation, as in [`MethodBinding::perm`].
    pub perm: Vec<usize>,
}

/// The full translation table from an expected type `T` to a conformant
/// received type `T'`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ConformanceBinding {
    /// Per-method translations, in `T`'s declaration order.
    pub methods: Vec<MethodBinding>,
    /// Per-field translations, in `T`'s declaration order.
    pub fields: Vec<FieldBinding>,
    /// Per-constructor translations, in `T`'s declaration order.
    pub constructors: Vec<CtorBinding>,
}

impl ConformanceBinding {
    /// The identity binding: every member maps to itself. Produced when
    /// conformance holds by identity, explicit subtyping or equivalence —
    /// cases where names line up by construction.
    pub fn identity(expected: &TypeDescription) -> ConformanceBinding {
        ConformanceBinding {
            methods: expected
                .methods
                .iter()
                .map(|m| MethodBinding {
                    expected_name: m.name.clone(),
                    actual_name: m.name.clone(),
                    perm: (0..m.params.len()).collect(),
                })
                .collect(),
            fields: expected
                .fields
                .iter()
                .map(|f| FieldBinding {
                    expected_name: f.name.clone(),
                    actual_name: f.name.clone(),
                })
                .collect(),
            constructors: expected
                .constructors
                .iter()
                .enumerate()
                .map(|(i, c)| CtorBinding {
                    arity: c.params.len(),
                    actual_index: i,
                    perm: (0..c.params.len()).collect(),
                })
                .collect(),
        }
    }

    /// Finds the translation for an expected method by name and arity.
    pub fn method(&self, expected_name: &str, arity: usize) -> Option<&MethodBinding> {
        self.methods
            .iter()
            .find(|m| m.expected_name == expected_name && m.perm.len() == arity)
    }

    /// Finds the translation for an expected field by name.
    pub fn field(&self, expected_name: &str) -> Option<&FieldBinding> {
        self.fields
            .iter()
            .find(|f| f.expected_name == expected_name)
    }

    /// Whether every member binding is an identity mapping.
    pub fn is_identity(&self) -> bool {
        self.methods.iter().all(MethodBinding::is_identity)
            && self.fields.iter().all(|f| f.expected_name == f.actual_name)
            && self
                .constructors
                .iter()
                .all(|c| c.perm.iter().enumerate().all(|(i, &p)| i == p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pti_metamodel::{primitives, ParamDef, TypeDef};

    fn desc() -> TypeDescription {
        TypeDescription::from_def(
            &TypeDef::class("Person", "v")
                .field("name", primitives::STRING)
                .method(
                    "setBoth",
                    vec![
                        ParamDef::new("a", primitives::STRING),
                        ParamDef::new("b", primitives::INT32),
                    ],
                    primitives::VOID,
                )
                .ctor(vec![ParamDef::new("n", primitives::STRING)])
                .build(),
        )
    }

    #[test]
    fn identity_binding_maps_every_member() {
        let d = desc();
        let b = ConformanceBinding::identity(&d);
        assert!(b.is_identity());
        assert_eq!(b.methods.len(), 1);
        assert_eq!(b.fields.len(), 1);
        assert_eq!(b.constructors.len(), 1);
        assert!(b.method("setBoth", 2).is_some());
        assert!(b.method("setBoth", 1).is_none(), "arity is part of the key");
        assert!(b.field("name").is_some());
    }

    #[test]
    fn reorder_applies_permutation() {
        let m = MethodBinding {
            expected_name: "f".into(),
            actual_name: "g".into(),
            perm: vec![1, 0],
        };
        assert_eq!(m.reorder(&["x", "y"]), vec!["y", "x"]);
        assert!(!m.is_identity());
    }

    #[test]
    fn reorder_identity() {
        let m = MethodBinding {
            expected_name: "f".into(),
            actual_name: "f".into(),
            perm: vec![0, 1, 2],
        };
        assert_eq!(m.reorder(&[1, 2, 3]), vec![1, 2, 3]);
        assert!(m.is_identity());
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn reorder_panics_on_arity_mismatch() {
        let m = MethodBinding {
            expected_name: "f".into(),
            actual_name: "f".into(),
            perm: vec![0, 1],
        };
        let _ = m.reorder(&[1]);
    }

    #[test]
    fn non_identity_detected() {
        let d = desc();
        let mut b = ConformanceBinding::identity(&d);
        b.methods[0].actual_name = "assignBoth".into();
        assert!(!b.is_identity());
    }
}
