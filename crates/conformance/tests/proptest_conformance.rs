//! Property tests over the conformance rules: metric axioms for
//! Levenshtein, reflexivity of conformance, explicit-subtype implication,
//! cache agreement, and permutation soundness on generated types.

// Gated: requires the external `proptest` crate, which is not
// available in this build environment. Enable the feature after
// adding the dependency to this crate.
#![cfg(feature = "proptest-tests")]

use proptest::prelude::*;
use pti_conformance::{
    levenshtein, Conformance, ConformanceChecker, ConformanceConfig, NameMatcher,
};
use pti_metamodel::{primitives, ParamDef, TypeDef, TypeDescription, TypeRegistry};

// ---------------------------------------------------------------------
// Levenshtein metric axioms
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn levenshtein_identity(s in "\\PC{0,20}") {
        prop_assert_eq!(levenshtein(&s, &s), 0);
    }

    #[test]
    fn levenshtein_symmetry(a in "\\PC{0,15}", b in "\\PC{0,15}") {
        prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
    }

    #[test]
    fn levenshtein_triangle(a in "[a-c]{0,8}", b in "[a-c]{0,8}", c in "[a-c]{0,8}") {
        prop_assert!(levenshtein(&a, &c) <= levenshtein(&a, &b) + levenshtein(&b, &c));
    }

    #[test]
    fn levenshtein_bounded_by_longer(a in "\\PC{0,15}", b in "\\PC{0,15}") {
        let d = levenshtein(&a, &b);
        let (la, lb) = (a.chars().count(), b.chars().count());
        prop_assert!(d <= la.max(lb));
        prop_assert!(d >= la.abs_diff(lb));
    }

    #[test]
    fn wildcard_star_matches_everything(s in "[a-zA-Z0-9]{0,20}") {
        prop_assert!(NameMatcher::Wildcard.matches("*", &s));
    }

    #[test]
    fn exact_match_is_reflexive(s in "[a-zA-Z][a-zA-Z0-9]{0,12}") {
        prop_assert!(NameMatcher::Exact.matches(&s, &s));
        prop_assert!(NameMatcher::TokenSubsequence.matches(&s, &s));
        prop_assert!(NameMatcher::Levenshtein(0).matches(&s, &s));
    }
}

// ---------------------------------------------------------------------
// Generated type populations
// ---------------------------------------------------------------------

const PRIMS: [&str; 4] = ["Int32", "Int64", "Float64", "String"];

#[derive(Debug, Clone)]
struct GenType {
    name: String,
    fields: Vec<(String, &'static str)>,
    methods: Vec<(String, Vec<&'static str>, &'static str)>,
}

fn arb_gentype() -> impl Strategy<Value = GenType> {
    (
        "[A-Z][a-z]{2,6}",
        proptest::collection::vec(("[a-z]{2,6}", proptest::sample::select(&PRIMS[..])), 0..4),
        proptest::collection::vec(
            (
                "[a-z]{2,6}",
                proptest::collection::vec(proptest::sample::select(&PRIMS[..]), 0..3),
                proptest::sample::select(&PRIMS[..]),
            ),
            0..4,
        ),
    )
        .prop_map(|(name, mut fields, mut methods)| {
            fields.dedup_by(|a, b| a.0 == b.0);
            methods.dedup_by(|a, b| a.0 == b.0 && a.1.len() == b.1.len());
            GenType {
                name,
                fields,
                methods,
            }
        })
}

fn build(g: &GenType, salt: &str) -> TypeDef {
    let mut b = TypeDef::class(g.name.clone(), salt);
    for (n, t) in &g.fields {
        b = b.field(n.clone(), *t);
    }
    for (n, params, ret) in &g.methods {
        let ps: Vec<ParamDef> = params
            .iter()
            .enumerate()
            .map(|(i, t)| ParamDef::new(format!("p{i}"), *t))
            .collect();
        b = b.method(n.clone(), ps, *ret);
    }
    b.ctor(vec![]).build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any generated type conforms to a fresh same-structure copy from a
    /// different publisher (structural reflexivity across identities).
    #[test]
    fn cross_publisher_reflexivity(g in arb_gentype()) {
        let a = build(&g, "salt-a");
        let b = build(&g, "salt-b");
        let mut r = TypeRegistry::with_builtins();
        r.register(a.clone()).unwrap();
        r.register(b.clone()).unwrap();
        let checker = ConformanceChecker::new(ConformanceConfig::paper());
        prop_assert!(checker.conforms(
            &TypeDescription::from_def(&b),
            &TypeDescription::from_def(&a),
            &r,
            &r
        ));
    }

    /// A nominal subtype always conforms (explicit route), whatever its
    /// extra structure.
    #[test]
    fn explicit_subtype_always_conforms(g in arb_gentype(), extra in "[a-z]{2,6}") {
        let base = build(&g, "v");
        let sub = TypeDef::class(format!("{}Sub", g.name), "v")
            .extends(base.name.clone())
            .field(extra, primitives::INT32)
            .build();
        let mut r = TypeRegistry::with_builtins();
        r.register(base.clone()).unwrap();
        r.register(sub.clone()).unwrap();
        let checker = ConformanceChecker::new(ConformanceConfig::paper());
        let got = checker.check(
            &TypeDescription::from_def(&sub),
            &TypeDescription::from_def(&base),
            &r,
            &r,
        );
        prop_assert_eq!(got.unwrap(), Conformance::Explicit);
    }

    /// Cached and uncached checkers agree on every verdict.
    #[test]
    fn cache_agrees_with_uncached(g1 in arb_gentype(), g2 in arb_gentype()) {
        let a = build(&g1, "a");
        let b = build(&g2, "b");
        let mut r = TypeRegistry::with_builtins();
        r.register(a.clone()).unwrap();
        r.register(b.clone()).unwrap();
        let da = TypeDescription::from_def(&a);
        let db = TypeDescription::from_def(&b);
        let cached = ConformanceChecker::new(ConformanceConfig::pragmatic());
        let uncached = ConformanceChecker::uncached(ConformanceConfig::pragmatic());
        // Run twice to exercise the cache-hit path.
        let c1 = cached.conforms(&db, &da, &r, &r);
        let c2 = cached.conforms(&db, &da, &r, &r);
        let u = uncached.conforms(&db, &da, &r, &r);
        prop_assert_eq!(c1, u);
        prop_assert_eq!(c2, u);
    }

    /// Whenever a check succeeds structurally, the produced permutations
    /// really are permutations and the bound methods exist on the source.
    #[test]
    fn bindings_are_well_formed(g in arb_gentype()) {
        let a = build(&g, "a");
        let b = build(&g, "b");
        let mut r = TypeRegistry::with_builtins();
        r.register(a.clone()).unwrap();
        r.register(b.clone()).unwrap();
        let da = TypeDescription::from_def(&a);
        let db = TypeDescription::from_def(&b);
        let checker = ConformanceChecker::uncached(ConformanceConfig::paper());
        if let Ok(conf) = checker.check(&db, &da, &r, &r) {
            let binding = conf.binding(&da);
            for m in &binding.methods {
                // perm is a permutation of 0..n
                let mut sorted = m.perm.clone();
                sorted.sort_unstable();
                prop_assert_eq!(sorted, (0..m.perm.len()).collect::<Vec<_>>());
                // the actual method exists on the source with this arity
                prop_assert!(
                    db.methods.iter().any(|sm| sm.name == m.actual_name
                        && sm.params.len() == m.perm.len()),
                    "bound method {} missing on source", m.actual_name
                );
            }
            for f in &binding.fields {
                prop_assert!(db.fields.iter().any(|sf| sf.name == f.actual_name));
            }
        }
    }

    /// Conformance never panics on arbitrary pairs (robustness).
    #[test]
    fn checker_total_on_generated_pairs(g1 in arb_gentype(), g2 in arb_gentype()) {
        let a = build(&g1, "a");
        let b = build(&g2, "b");
        let mut r = TypeRegistry::with_builtins();
        r.register(a.clone()).unwrap();
        r.register(b.clone()).unwrap();
        for cfg in [
            ConformanceConfig::paper(),
            ConformanceConfig::pragmatic(),
            ConformanceConfig::strict(),
        ] {
            let checker = ConformanceChecker::new(cfg);
            let _ = checker.check(
                &TypeDescription::from_def(&b),
                &TypeDescription::from_def(&a),
                &r,
                &r,
            );
        }
    }
}
