//! Rule-by-rule tests of the implicit structural conformance checker
//! against the aspects of Figure 2 in the paper.

use pti_conformance::{
    Ambiguity, Aspect, Conformance, ConformanceChecker, ConformanceConfig, NameMatcher, Reason,
    Unresolved, Variance,
};
use pti_metamodel::{
    primitives, DescriptionProvider, ParamDef, TypeDef, TypeDescription, TypeRegistry,
};

fn desc(def: &TypeDef) -> TypeDescription {
    TypeDescription::from_def(def)
}

fn reg(defs: &[&TypeDef]) -> TypeRegistry {
    let mut r = TypeRegistry::with_builtins();
    for d in defs {
        r.register((*d).clone()).unwrap();
    }
    r
}

fn paper() -> ConformanceChecker {
    ConformanceChecker::new(ConformanceConfig::paper())
}

// ---------------------------------------------------------------------
// Identity, equivalence, explicit routes (rule vi alternatives)
// ---------------------------------------------------------------------

#[test]
fn identical_types_conform_trivially() {
    let t = TypeDef::class("Person", "v")
        .field("name", primitives::STRING)
        .build();
    let r = reg(&[&t]);
    let c = paper().check(&desc(&t), &desc(&t), &r, &r).unwrap();
    assert_eq!(c, Conformance::Identical);
}

#[test]
fn equivalent_types_conform() {
    // Same structure, different publishers (different GUIDs).
    let mk = |salt: &str| {
        TypeDef::class("Person", salt)
            .field("name", primitives::STRING)
            .method("getName", vec![], primitives::STRING)
            .build()
    };
    let a = mk("vendor-a");
    let b = mk("vendor-b");
    assert_ne!(a.guid, b.guid);
    let r = reg(&[&a, &b]);
    let c = paper().check(&desc(&b), &desc(&a), &r, &r).unwrap();
    assert_eq!(c, Conformance::Equivalent);
}

#[test]
fn explicit_subtype_conforms_regardless_of_structure() {
    // Employee extends Person nominally; its extra/renamed members are
    // irrelevant for the explicit route.
    let person = TypeDef::class("Person", "v")
        .field("name", primitives::STRING)
        .method("getName", vec![], primitives::STRING)
        .build();
    let employee = TypeDef::class("Employee", "v")
        .extends("Person")
        .field("salary", primitives::INT64)
        .method(
            "raise",
            vec![ParamDef::new("by", primitives::INT64)],
            primitives::VOID,
        )
        .build();
    let r = reg(&[&person, &employee]);
    let c = paper()
        .check(&desc(&employee), &desc(&person), &r, &r)
        .unwrap();
    assert_eq!(c, Conformance::Explicit);
}

#[test]
fn explicit_subtype_via_interface_chain() {
    let inamed = TypeDef::interface("INamed", "v")
        .method("getName", vec![], primitives::STRING)
        .build();
    let iworker = TypeDef::interface("IWorker", "v")
        .implements("INamed")
        .build();
    let clerk = TypeDef::class("Clerk", "v").implements("IWorker").build();
    let r = reg(&[&inamed, &iworker, &clerk]);
    let c = paper()
        .check(&desc(&clerk), &desc(&inamed), &r, &r)
        .unwrap();
    assert_eq!(c, Conformance::Explicit, "transitively via IWorker");
}

// ---------------------------------------------------------------------
// Aspect (i): name conformance
// ---------------------------------------------------------------------

#[test]
fn name_matching_is_case_insensitive() {
    let a = TypeDef::class("PERSON", "a")
        .field("name", primitives::STRING)
        .build();
    let b = TypeDef::class("person", "b")
        .field("name", primitives::STRING)
        .build();
    let r = reg(&[&a, &b]);
    assert!(paper().conforms(&desc(&b), &desc(&a), &r, &r));
}

#[test]
fn different_names_fail_under_paper_rules() {
    let a = TypeDef::class("Person", "a").build();
    let b = TypeDef::class("Human", "b").build();
    let r = reg(&[&a, &b]);
    let err = paper().check(&desc(&b), &desc(&a), &r, &r).unwrap_err();
    assert!(err
        .reasons
        .iter()
        .any(|x| matches!(x, Reason::NameMismatch { .. })));
}

#[test]
fn namespaces_do_not_block_simple_name_match() {
    let a = TypeDef::class("Acme.Person", "a")
        .field("name", primitives::STRING)
        .build();
    let b = TypeDef::class("Globex.Person", "b")
        .field("name", primitives::STRING)
        .build();
    let r = reg(&[&a, &b]);
    assert!(paper().conforms(&desc(&b), &desc(&a), &r, &r));
}

#[test]
fn wildcard_type_names() {
    let cfg = ConformanceConfig::paper().with_type_names(NameMatcher::Wildcard);
    let a = TypeDef::class("Person*", "a").build(); // pattern as type of interest
    let b = TypeDef::class("PersonV2", "b").build();
    let r = reg(&[&b]);
    assert!(ConformanceChecker::new(cfg).conforms(&desc(&b), &desc(&a), &r, &r));
}

#[test]
fn levenshtein_type_names() {
    let cfg = ConformanceConfig::paper().with_type_names(NameMatcher::Levenshtein(1));
    let a = TypeDef::class("Color", "a").build();
    let b = TypeDef::class("Colour", "b").build();
    let r = reg(&[&a, &b]);
    assert!(ConformanceChecker::new(cfg).conforms(&desc(&b), &desc(&a), &r, &r));
    assert!(
        !paper().conforms(&desc(&b), &desc(&a), &r, &r),
        "paper rule: LD must be 0"
    );
}

// ---------------------------------------------------------------------
// Aspect (ii): fields
// ---------------------------------------------------------------------

#[test]
fn missing_field_fails() {
    let a = TypeDef::class("P", "a")
        .field("name", primitives::STRING)
        .field("age", primitives::INT32)
        .build();
    let b = TypeDef::class("P", "b")
        .field("name", primitives::STRING)
        .build();
    let r = reg(&[&a, &b]);
    let err = paper().check(&desc(&b), &desc(&a), &r, &r).unwrap_err();
    assert!(err.reasons.iter().any(
        |x| matches!(x, Reason::MissingMember { aspect: Aspect::Fields, member } if member.contains("age"))
    ));
}

#[test]
fn extra_source_fields_are_fine() {
    let a = TypeDef::class("P", "a")
        .field("name", primitives::STRING)
        .build();
    let b = TypeDef::class("P", "b")
        .field("name", primitives::STRING)
        .field("age", primitives::INT32)
        .build();
    let r = reg(&[&a, &b]);
    assert!(paper().conforms(&desc(&b), &desc(&a), &r, &r));
}

#[test]
fn field_type_must_conform_not_just_name() {
    let a = TypeDef::class("P", "a")
        .field("age", primitives::INT32)
        .build();
    let b = TypeDef::class("P", "b")
        .field("age", primitives::STRING)
        .build();
    let r = reg(&[&a, &b]);
    assert!(!paper().conforms(&desc(&b), &desc(&a), &r, &r));
}

#[test]
fn field_of_user_type_recurses_structurally() {
    // P has a field of type Address; the two Address types conform
    // structurally, so the P types do too.
    let addr_a = TypeDef::class("Address", "a")
        .field("street", primitives::STRING)
        .build();
    let addr_b = TypeDef::class("Address", "b")
        .field("street", primitives::STRING)
        .build();
    let pa = TypeDef::class("P", "a").field("home", "Address").build();
    let pb = TypeDef::class("P", "b").field("home", "Address").build();
    let ra = reg(&[&addr_a, &pa]);
    let rb = reg(&[&addr_b, &pb]);
    assert!(paper().conforms(&desc(&pb), &desc(&pa), &rb, &ra));
}

#[test]
fn field_of_nonconforming_user_type_fails() {
    let addr_a = TypeDef::class("Address", "a")
        .field("street", primitives::STRING)
        .field("zip", primitives::INT32)
        .build();
    let addr_b = TypeDef::class("Address", "b")
        .field("street", primitives::STRING)
        .build();
    let pa = TypeDef::class("P", "a").field("home", "Address").build();
    let pb = TypeDef::class("P", "b").field("home", "Address").build();
    let ra = reg(&[&addr_a, &pa]);
    let rb = reg(&[&addr_b, &pb]);
    assert!(
        !paper().conforms(&desc(&pb), &desc(&pa), &rb, &ra),
        "vendor-b Address lacks zip, so P fields cannot conform"
    );
}

#[test]
fn array_fields_conform_elementwise() {
    let a = TypeDef::class("P", "a").field("tags", "String[]").build();
    let b = TypeDef::class("P", "b").field("tags", "String[]").build();
    let c = TypeDef::class("P", "c").field("tags", "Int32[]").build();
    let r = reg(&[&a, &b, &c]);
    assert!(paper().conforms(&desc(&b), &desc(&a), &r, &r));
    assert!(!paper().conforms(&desc(&c), &desc(&a), &r, &r));
}

// ---------------------------------------------------------------------
// Aspect (iii): supertypes
// ---------------------------------------------------------------------

#[test]
fn supertype_must_conform() {
    let base_a = TypeDef::class("Base", "a")
        .field("x", primitives::INT32)
        .build();
    let base_b = TypeDef::class("Base", "b")
        .field("x", primitives::INT32)
        .build();
    let da = TypeDef::class("D", "a").extends("Base").build();
    let db = TypeDef::class("D", "b").extends("Base").build();
    let ra = reg(&[&base_a, &da]);
    let rb = reg(&[&base_b, &db]);
    assert!(paper().conforms(&desc(&db), &desc(&da), &rb, &ra));
}

#[test]
fn nonconforming_supertype_fails() {
    let base_a = TypeDef::class("Base", "a")
        .field("x", primitives::INT32)
        .build();
    let base_b = TypeDef::class("Basis", "b")
        .field("x", primitives::INT32)
        .build();
    let da = TypeDef::class("D", "a").extends("Base").build();
    let db = TypeDef::class("D", "b").extends("Basis").build();
    let ra = reg(&[&base_a, &da]);
    let rb = reg(&[&base_b, &db]);
    let err = paper().check(&desc(&db), &desc(&da), &rb, &ra).unwrap_err();
    assert!(err
        .reasons
        .iter()
        .any(|x| matches!(x, Reason::SupertypeMismatch { .. })));
}

#[test]
fn object_superclass_is_trivially_satisfied() {
    // Both default to extending Object; no supertype reason appears.
    let a = TypeDef::class("P", "a").build();
    let b = TypeDef::class("P", "b").build();
    let r = reg(&[&a, &b]);
    assert!(paper().conforms(&desc(&b), &desc(&a), &r, &r));
}

#[test]
fn required_interface_must_be_offered() {
    let iser_a = TypeDef::interface("ISerial", "a")
        .method("serialize", vec![], primitives::STRING)
        .build();
    let iser_b = TypeDef::interface("ISerial", "b")
        .method("serialize", vec![], primitives::STRING)
        .build();
    let pa = TypeDef::class("P", "a").implements("ISerial").build();
    let pb_with = TypeDef::class("P", "b").implements("ISerial").build();
    let pb_without = TypeDef::class("P", "b2").build();
    let ra = reg(&[&iser_a, &pa]);
    let rb = reg(&[&iser_b, &pb_with, &pb_without]);
    assert!(paper().conforms(&desc(&pb_with), &desc(&pa), &rb, &ra));
    let err = paper()
        .check(&desc(&pb_without), &desc(&pa), &rb, &ra)
        .unwrap_err();
    assert!(err
        .reasons
        .iter()
        .any(|x| matches!(x, Reason::SupertypeMismatch { .. })));
}

// ---------------------------------------------------------------------
// Aspect (iv): methods
// ---------------------------------------------------------------------

fn person_pair() -> (TypeDef, TypeDef) {
    let a = TypeDef::class("Person", "a")
        .field("name", primitives::STRING)
        .method("getName", vec![], primitives::STRING)
        .method(
            "setName",
            vec![ParamDef::new("n", primitives::STRING)],
            primitives::VOID,
        )
        .build();
    let b = TypeDef::class("Person", "b")
        .field("name", primitives::STRING)
        .method("getPersonName", vec![], primitives::STRING)
        .method(
            "setPersonName",
            vec![ParamDef::new("n", primitives::STRING)],
            primitives::VOID,
        )
        .build();
    (a, b)
}

#[test]
fn paper_exact_names_reject_renamed_methods() {
    let (a, b) = person_pair();
    let r = reg(&[&a, &b]);
    assert!(
        !paper().conforms(&desc(&b), &desc(&a), &r, &r),
        "the strict printed rule requires LD=0 on method names"
    );
}

#[test]
fn pragmatic_profile_accepts_the_motivating_example() {
    // Paper Section 3.1: setName/getName vs setPersonName/getPersonName.
    let (a, b) = person_pair();
    let r = reg(&[&a, &b]);
    let checker = ConformanceChecker::new(ConformanceConfig::pragmatic());
    let c = checker.check(&desc(&b), &desc(&a), &r, &r).unwrap();
    let binding = c.binding(&desc(&a));
    assert_eq!(
        binding.method("getName", 0).unwrap().actual_name,
        "getPersonName"
    );
    assert_eq!(
        binding.method("setName", 1).unwrap().actual_name,
        "setPersonName"
    );
}

#[test]
fn return_type_must_conform() {
    let a = TypeDef::class("P", "a")
        .method("get", vec![], primitives::STRING)
        .build();
    let b = TypeDef::class("P", "b")
        .method("get", vec![], primitives::INT32)
        .build();
    let r = reg(&[&a, &b]);
    let err = paper().check(&desc(&b), &desc(&a), &r, &r).unwrap_err();
    assert!(err.reasons.iter().any(|x| matches!(
        x,
        Reason::MissingMember {
            aspect: Aspect::Methods,
            ..
        }
    )));
}

#[test]
fn arity_must_match() {
    let a = TypeDef::class("P", "a")
        .method(
            "f",
            vec![ParamDef::new("x", primitives::INT32)],
            primitives::VOID,
        )
        .build();
    let b = TypeDef::class("P", "b")
        .method(
            "f",
            vec![
                ParamDef::new("x", primitives::INT32),
                ParamDef::new("y", primitives::INT32),
            ],
            primitives::VOID,
        )
        .build();
    let r = reg(&[&a, &b]);
    assert!(!paper().conforms(&desc(&b), &desc(&a), &r, &r));
}

#[test]
fn argument_permutations_are_found() {
    // f(String, Int32) matched by f(Int32, String) under permutation.
    let a = TypeDef::class("P", "a")
        .method(
            "f",
            vec![
                ParamDef::new("s", primitives::STRING),
                ParamDef::new("i", primitives::INT32),
            ],
            primitives::VOID,
        )
        .build();
    let b = TypeDef::class("P", "b")
        .method(
            "f",
            vec![
                ParamDef::new("i", primitives::INT32),
                ParamDef::new("s", primitives::STRING),
            ],
            primitives::VOID,
        )
        .build();
    let r = reg(&[&a, &b]);
    let c = paper().check(&desc(&b), &desc(&a), &r, &r).unwrap();
    let binding = c.binding(&desc(&a));
    let m = binding.method("f", 2).unwrap();
    assert_eq!(m.perm, vec![1, 0], "caller's String goes to actual slot 1");
    assert_eq!(m.reorder(&["hello", "42"]), vec!["42", "hello"]);
}

#[test]
fn identity_permutation_preferred_when_types_repeat() {
    let a = TypeDef::class("P", "a")
        .method(
            "f",
            vec![
                ParamDef::new("x", primitives::INT32),
                ParamDef::new("y", primitives::INT32),
            ],
            primitives::VOID,
        )
        .build();
    let b = TypeDef::class("P", "b")
        .method(
            "f",
            vec![
                ParamDef::new("y", primitives::INT32),
                ParamDef::new("x", primitives::INT32),
            ],
            primitives::VOID,
        )
        .build();
    let r = reg(&[&a, &b]);
    let c = paper().check(&desc(&b), &desc(&a), &r, &r).unwrap();
    let m = c.binding(&desc(&a)).method("f", 2).unwrap().clone();
    assert_eq!(m.perm, vec![0, 1]);
}

#[test]
fn modifiers_must_match_by_default() {
    use pti_metamodel::{MethodSig, Modifiers};
    let mut sig_static = MethodSig::new("f", vec![], primitives::VOID);
    sig_static.modifiers = Modifiers::PUBLIC | Modifiers::STATIC;
    let a = TypeDef::class("P", "a")
        .method("f", vec![], primitives::VOID)
        .build();
    let b = TypeDef::class("P", "b").method_with(sig_static).build();
    let r = reg(&[&a, &b]);
    assert!(!paper().conforms(&desc(&b), &desc(&a), &r, &r));
    let lax = ConformanceConfig {
        ignore_modifiers: true,
        ..ConformanceConfig::paper()
    };
    assert!(ConformanceChecker::new(lax).conforms(&desc(&b), &desc(&a), &r, &r));
}

#[test]
fn extra_source_methods_are_fine() {
    let a = TypeDef::class("P", "a")
        .method("f", vec![], primitives::VOID)
        .build();
    let b = TypeDef::class("P", "b")
        .method("f", vec![], primitives::VOID)
        .method("g", vec![], primitives::VOID)
        .build();
    let r = reg(&[&a, &b]);
    assert!(paper().conforms(&desc(&b), &desc(&a), &r, &r));
}

#[test]
fn inherited_members_satisfy_requirements() {
    // Source declares getName on its superclass; flattening finds it.
    let base = TypeDef::class("NamedBase", "b")
        .field("name", primitives::STRING)
        .method("getName", vec![], primitives::STRING)
        .build();
    let sub = TypeDef::class("Person", "b").extends("NamedBase").build();
    let want = TypeDef::class("Person", "a")
        .field("name", primitives::STRING)
        .method("getName", vec![], primitives::STRING)
        .build();
    let rb = reg(&[&base, &sub]);
    let ra = reg(&[&want]);
    assert!(paper().conforms(&desc(&sub), &desc(&want), &rb, &ra));
}

// ---------------------------------------------------------------------
// Aspect (v): constructors
// ---------------------------------------------------------------------

#[test]
fn constructor_arity_and_types_checked() {
    let a = TypeDef::class("P", "a")
        .ctor(vec![ParamDef::new("n", primitives::STRING)])
        .build();
    let b_ok = TypeDef::class("P", "b")
        .ctor(vec![ParamDef::new("nom", primitives::STRING)])
        .build();
    let b_bad = TypeDef::class("P", "b2")
        .ctor(vec![ParamDef::new("n", primitives::INT32)])
        .build();
    let r = reg(&[&a, &b_ok, &b_bad]);
    assert!(paper().conforms(&desc(&b_ok), &desc(&a), &r, &r));
    let err = paper().check(&desc(&b_bad), &desc(&a), &r, &r).unwrap_err();
    assert!(err.reasons.iter().any(|x| matches!(
        x,
        Reason::MissingMember {
            aspect: Aspect::Constructors,
            ..
        }
    )));
}

#[test]
fn constructor_permutation_recorded() {
    let a = TypeDef::class("P", "a")
        .ctor(vec![
            ParamDef::new("s", primitives::STRING),
            ParamDef::new("i", primitives::INT32),
        ])
        .build();
    let b = TypeDef::class("P", "b")
        .ctor(vec![
            ParamDef::new("i", primitives::INT32),
            ParamDef::new("s", primitives::STRING),
        ])
        .build();
    let r = reg(&[&a, &b]);
    let c = paper().check(&desc(&b), &desc(&a), &r, &r).unwrap();
    let binding = c.binding(&desc(&a));
    assert_eq!(binding.constructors[0].perm, vec![1, 0]);
}

// ---------------------------------------------------------------------
// Variance (D2) and ambiguity (D3)
// ---------------------------------------------------------------------

#[test]
fn covariant_vs_strict_argument_variance() {
    // Expected: f(Animal). Source offers f(Cat) where Cat ≼IS Animal.
    // Paper (covariant) accepts; strict (contravariant) rejects.
    let animal_t = TypeDef::class("Animal", "t")
        .field("legs", primitives::INT32)
        .build();
    let animal_s = TypeDef::class("Animal", "s")
        .field("legs", primitives::INT32)
        .build();
    let cat_s = TypeDef::class("Cat", "s")
        .field("legs", primitives::INT32)
        .field("lives", primitives::INT32)
        .build();
    let want = TypeDef::class("Shelter", "t")
        .method(
            "admit",
            vec![ParamDef::new("a", "Animal")],
            primitives::VOID,
        )
        .build();
    let have = TypeDef::class("Shelter", "s")
        .method("admit", vec![ParamDef::new("c", "Cat")], primitives::VOID)
        .build();
    let rt = reg(&[&animal_t, &want]);
    let rs = reg(&[&animal_s, &cat_s, &have]);

    // Covariant: Cat ≼ Animal must hold → but Cat's *name* differs from
    // Animal, so under paper rules name conformance fails; use a name-
    // relaxed config to isolate the variance axis.
    let cov = ConformanceConfig::paper().with_type_names(NameMatcher::Levenshtein(6));
    assert!(ConformanceChecker::new(cov.clone()).conforms(&desc(&have), &desc(&want), &rs, &rt));
    let strict = cov.with_variance(Variance::Strict);
    assert!(
        !ConformanceChecker::new(strict).conforms(&desc(&have), &desc(&want), &rs, &rt),
        "strict needs Animal ≼ Cat, which fails (Cat has an extra field)"
    );
}

#[test]
fn ambiguity_error_mode_reports_candidates() {
    let cfg = ConformanceConfig::pragmatic().with_ambiguity(Ambiguity::Error);
    let a = TypeDef::class("P", "a")
        .method("getName", vec![], primitives::STRING)
        .build();
    let b = TypeDef::class("P", "b")
        .method("getName", vec![], primitives::STRING)
        .method("getPersonName", vec![], primitives::STRING)
        .build();
    let r = reg(&[&a, &b]);
    let err = ConformanceChecker::new(cfg)
        .check(&desc(&b), &desc(&a), &r, &r)
        .unwrap_err();
    assert!(err
        .reasons
        .iter()
        .any(|x| matches!(x, Reason::AmbiguousMember { candidates, .. } if candidates.len() == 2)));
}

#[test]
fn ambiguity_best_name_picks_closest() {
    let cfg = ConformanceConfig::pragmatic().with_ambiguity(Ambiguity::BestName);
    let a = TypeDef::class("P", "a")
        .method("getName", vec![], primitives::STRING)
        .build();
    let b = TypeDef::class("P", "b")
        .method("getPersonName", vec![], primitives::STRING)
        .method("getName", vec![], primitives::STRING)
        .build();
    let r = reg(&[&a, &b]);
    let c = ConformanceChecker::new(cfg)
        .check(&desc(&b), &desc(&a), &r, &r)
        .unwrap();
    assert_eq!(
        c.binding(&desc(&a))
            .method("getName", 0)
            .unwrap()
            .actual_name,
        "getName",
        "exact name outranks the longer token match"
    );
}

#[test]
fn ambiguity_first_takes_declaration_order() {
    let cfg = ConformanceConfig::pragmatic(); // Ambiguity::First
    let a = TypeDef::class("P", "a")
        .method("getName", vec![], primitives::STRING)
        .build();
    let b = TypeDef::class("P", "b")
        .method("getPersonName", vec![], primitives::STRING)
        .method("getName", vec![], primitives::STRING)
        .build();
    let r = reg(&[&a, &b]);
    let c = ConformanceChecker::new(cfg)
        .check(&desc(&b), &desc(&a), &r, &r)
        .unwrap();
    assert_eq!(
        c.binding(&desc(&a))
            .method("getName", 0)
            .unwrap()
            .actual_name,
        "getPersonName"
    );
}

// ---------------------------------------------------------------------
// Recursion, caching, unresolved references
// ---------------------------------------------------------------------

#[test]
fn recursive_types_conform_coinductively() {
    // Person has a field of type Person (e.g. spouse) on both sides.
    let pa = TypeDef::class("Person", "a")
        .field("spouse", "Person")
        .build();
    let pb = TypeDef::class("Person", "b")
        .field("spouse", "Person")
        .build();
    let ra = reg(&[&pa]);
    let rb = reg(&[&pb]);
    assert!(paper().conforms(&desc(&pb), &desc(&pa), &rb, &ra));
}

#[test]
fn mutually_recursive_types_conform() {
    let na = TypeDef::class("Node", "a").field("edge", "Edge").build();
    let ea = TypeDef::class("Edge", "a").field("node", "Node").build();
    let nb = TypeDef::class("Node", "b").field("edge", "Edge").build();
    let eb = TypeDef::class("Edge", "b").field("node", "Node").build();
    let ra = reg(&[&na, &ea]);
    let rb = reg(&[&nb, &eb]);
    assert!(paper().conforms(&desc(&nb), &desc(&na), &rb, &ra));
}

#[test]
fn recursive_nonconformance_detected() {
    // vendor-b's Node points at an Edge that lacks a field.
    let na = TypeDef::class("Node", "a").field("edge", "Edge").build();
    let ea = TypeDef::class("Edge", "a")
        .field("node", "Node")
        .field("weight", primitives::FLOAT64)
        .build();
    let nb = TypeDef::class("Node", "b").field("edge", "Edge").build();
    let eb = TypeDef::class("Edge", "b").field("node", "Node").build();
    let ra = reg(&[&na, &ea]);
    let rb = reg(&[&nb, &eb]);
    assert!(!paper().conforms(&desc(&nb), &desc(&na), &rb, &ra));
}

#[test]
fn cache_hits_on_repeat_checks() {
    let (a, b) = person_pair();
    let r = reg(&[&a, &b]);
    let checker = ConformanceChecker::new(ConformanceConfig::pragmatic());
    assert!(checker.conforms(&desc(&b), &desc(&a), &r, &r));
    let before = checker.stats();
    assert!(checker.conforms(&desc(&b), &desc(&a), &r, &r));
    let after = checker.stats();
    assert_eq!(after.hits, before.hits + 1);
    assert_eq!(after.misses, before.misses);
}

#[test]
fn uncached_checker_never_hits() {
    let (a, b) = person_pair();
    let r = reg(&[&a, &b]);
    let checker = ConformanceChecker::uncached(ConformanceConfig::pragmatic());
    assert!(checker.conforms(&desc(&b), &desc(&a), &r, &r));
    assert!(checker.conforms(&desc(&b), &desc(&a), &r, &r));
    assert_eq!(checker.stats().hits, 0);
}

#[test]
fn clear_cache_resets_verdicts() {
    let (a, b) = person_pair();
    let r = reg(&[&a, &b]);
    let checker = ConformanceChecker::new(ConformanceConfig::pragmatic());
    assert!(checker.conforms(&desc(&b), &desc(&a), &r, &r));
    checker.clear_cache();
    assert!(checker.conforms(&desc(&b), &desc(&a), &r, &r));
    assert_eq!(checker.stats().hits, 0);
}

#[test]
fn unresolved_reference_name_fallback_vs_fail() {
    // Field type "Widget" has no description anywhere.
    let a = TypeDef::class("P", "a").field("w", "Widget").build();
    let b = TypeDef::class("P", "b").field("w", "Widget").build();
    let r = TypeRegistry::with_builtins();
    assert!(
        paper().conforms(&desc(&b), &desc(&a), &r, &r),
        "NameFallback: same name is enough"
    );
    let strictcfg = ConformanceConfig {
        unresolved: Unresolved::Fail,
        ..ConformanceConfig::paper()
    };
    assert!(!ConformanceChecker::new(strictcfg).conforms(&desc(&b), &desc(&a), &r, &r));
}

#[test]
fn primitive_types_conform_only_to_themselves() {
    let r = TypeRegistry::with_builtins();
    let int32 = r.describe(&"Int32".into()).unwrap();
    let int64 = r.describe(&"Int64".into()).unwrap();
    let int32b = r.describe(&"Int32".into()).unwrap();
    assert!(paper().conforms(&int32, &int32b, &r, &r));
    assert!(!paper().conforms(&int64, &int32, &r, &r));
}

#[test]
fn class_satisfies_interface_expectation() {
    let iface = TypeDef::interface("Greeter", "a")
        .method("greet", vec![], primitives::STRING)
        .build();
    let class = TypeDef::class("Greeter", "b")
        .method("greet", vec![], primitives::STRING)
        .build();
    let r = reg(&[&iface, &class]);
    assert!(paper().conforms(&desc(&class), &desc(&iface), &r, &r));
    assert!(
        !paper().conforms(&desc(&iface), &desc(&class), &r, &r),
        "an interface cannot stand in for a class"
    );
}

#[test]
fn nonconformance_report_is_comprehensive() {
    let a = TypeDef::class("P", "a")
        .field("name", primitives::STRING)
        .method("f", vec![], primitives::VOID)
        .ctor(vec![ParamDef::new("n", primitives::STRING)])
        .build();
    let b = TypeDef::class("Q", "b").build();
    let r = reg(&[&a, &b]);
    let err = paper().check(&desc(&b), &desc(&a), &r, &r).unwrap_err();
    // Name, field, method and ctor aspects all fail and all get reported.
    assert!(err.reasons.len() >= 4, "got: {:?}", err.reasons);
    let display = err.to_string();
    assert!(display.contains("does not implicitly structurally conform"));
}
