//! Property tests for the serializers: arbitrary object graphs (including
//! shared references and cycles) must round-trip through SOAP and binary,
//! and the two formats must agree on the reconstructed state.

// Gated: requires the external `proptest` crate, which is not
// available in this build environment. Enable the feature after
// adding the dependency to this crate.
#![cfg(feature = "proptest-tests")]

use proptest::prelude::*;
use pti_metamodel::{primitives, Runtime, TypeDef, Value};
use pti_serialize::{from_binary, from_soap_string, to_binary, to_soap_string};

/// The universe type for generated objects: every field is a generic
/// slot so any generated shape fits.
fn blob_def() -> TypeDef {
    TypeDef::class("Blob", "proptest")
        .field("a", primitives::STRING)
        .field("b", primitives::INT64)
        .field("next", "Blob")
        .field("items", "Blob[]")
        .ctor(vec![])
        .build()
}

fn runtime() -> Runtime {
    let mut rt = Runtime::new();
    rt.register_type(blob_def()).unwrap();
    rt
}

/// A recipe for building a value graph inside a runtime.
#[derive(Debug, Clone)]
enum Recipe {
    Null,
    Bool(bool),
    I32(i32),
    I64(i64),
    F64(f64),
    Str(String),
    Array(Vec<Recipe>),
    Object {
        a: String,
        b: i64,
        next: Box<Recipe>,
        /// Link `next` back to an ancestor (cycle) instead of building
        /// the recipe, when an ancestor exists.
        cyclic: bool,
    },
}

fn arb_recipe() -> impl Strategy<Value = Recipe> {
    let leaf = prop_oneof![
        Just(Recipe::Null),
        any::<bool>().prop_map(Recipe::Bool),
        any::<i32>().prop_map(Recipe::I32),
        any::<i64>().prop_map(Recipe::I64),
        // Finite floats only: NaN breaks Value equality (covered by
        // dedicated unit tests instead).
        (-1e300f64..1e300).prop_map(Recipe::F64),
        "[a-zA-Z0-9<>&\"' ]{0,12}".prop_map(Recipe::Str),
    ];
    leaf.prop_recursive(4, 24, 4, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..4).prop_map(Recipe::Array),
            ("[a-z]{0,8}", any::<i64>(), inner, any::<bool>(),).prop_map(|(a, b, next, cyclic)| {
                Recipe::Object {
                    a,
                    b,
                    next: Box::new(next),
                    cyclic,
                }
            }),
        ]
    })
}

fn build(
    rt: &mut Runtime,
    recipe: &Recipe,
    ancestors: &mut Vec<pti_metamodel::ObjHandle>,
) -> Value {
    match recipe {
        Recipe::Null => Value::Null,
        Recipe::Bool(v) => Value::Bool(*v),
        Recipe::I32(v) => Value::I32(*v),
        Recipe::I64(v) => Value::I64(*v),
        Recipe::F64(v) => Value::F64(*v),
        Recipe::Str(s) => Value::Str(s.clone()),
        Recipe::Array(items) => {
            Value::Array(items.iter().map(|r| build(rt, r, ancestors)).collect())
        }
        Recipe::Object { a, b, next, cyclic } => {
            let h = rt.instantiate(&"Blob".into(), &[]).unwrap();
            rt.set_field(h, "a", Value::from(a.clone())).unwrap();
            rt.set_field(h, "b", Value::I64(*b)).unwrap();
            ancestors.push(h);
            let next_value = if *cyclic && ancestors.len() > 1 {
                Value::Obj(ancestors[0]) // close a cycle to the root
            } else {
                build(rt, next, ancestors)
            };
            rt.set_field(h, "next", next_value).unwrap();
            ancestors.pop();
            Value::Obj(h)
        }
    }
}

/// Structural equality of two values across (possibly different) heap
/// handles, cycle-safe.
fn deep_eq(
    rt: &Runtime,
    a: &Value,
    b: &Value,
    seen: &mut Vec<(pti_metamodel::ObjHandle, pti_metamodel::ObjHandle)>,
) -> bool {
    match (a, b) {
        (Value::Obj(x), Value::Obj(y)) => {
            if seen.iter().any(|(sx, sy)| sx == x && sy == y) {
                return true; // already being compared (cycle)
            }
            seen.push((*x, *y));
            let (ox, oy) = (rt.heap.get(*x).unwrap(), rt.heap.get(*y).unwrap());
            if ox.type_guid != oy.type_guid || ox.fields.len() != oy.fields.len() {
                return false;
            }
            let fields: Vec<String> = ox.fields.keys().cloned().collect();
            fields.iter().all(|k| {
                let (va, vb) = (
                    rt.heap.get(*x).unwrap().get(k).cloned().unwrap(),
                    rt.heap.get(*y).unwrap().get(k).cloned(),
                );
                match vb {
                    Some(vb) => deep_eq(rt, &va, &vb, seen),
                    None => false,
                }
            })
        }
        (Value::Array(xs), Value::Array(ys)) => {
            xs.len() == ys.len()
                && xs
                    .iter()
                    .zip(ys.iter())
                    .all(|(x, y)| deep_eq(rt, x, y, seen))
        }
        (x, y) => x == y,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn soap_roundtrip_preserves_graphs(recipe in arb_recipe()) {
        let mut rt = runtime();
        let v = build(&mut rt, &recipe, &mut Vec::new());
        let xml = to_soap_string(&rt, &v).unwrap();
        let back = from_soap_string(&mut rt, &xml).unwrap();
        prop_assert!(deep_eq(&rt, &v, &back, &mut Vec::new()), "xml: {xml}");
    }

    #[test]
    fn binary_roundtrip_preserves_graphs(recipe in arb_recipe()) {
        let mut rt = runtime();
        let v = build(&mut rt, &recipe, &mut Vec::new());
        let bytes = to_binary(&rt, &v).unwrap();
        let back = from_binary(&mut rt, &bytes).unwrap();
        prop_assert!(deep_eq(&rt, &v, &back, &mut Vec::new()));
    }

    #[test]
    fn formats_agree_on_reconstructed_state(recipe in arb_recipe()) {
        let mut rt = runtime();
        let v = build(&mut rt, &recipe, &mut Vec::new());
        let xml = to_soap_string(&rt, &v).unwrap();
        let bytes = to_binary(&rt, &v).unwrap();
        let via_soap = from_soap_string(&mut rt, &xml).unwrap();
        let via_bin = from_binary(&mut rt, &bytes).unwrap();
        prop_assert!(deep_eq(&rt, &via_soap, &via_bin, &mut Vec::new()));
    }

    #[test]
    fn binary_never_larger_than_soap_for_objects(
        a in "[a-z]{0,16}", b in any::<i64>()
    ) {
        let mut rt = runtime();
        let h = rt.instantiate(&"Blob".into(), &[]).unwrap();
        rt.set_field(h, "a", Value::from(a)).unwrap();
        rt.set_field(h, "b", Value::I64(b)).unwrap();
        let soap = to_soap_string(&rt, &Value::Obj(h)).unwrap();
        let bin = to_binary(&rt, &Value::Obj(h)).unwrap();
        prop_assert!(bin.len() < soap.len());
    }

    #[test]
    fn binary_decoder_survives_arbitrary_bytes(data in proptest::collection::vec(any::<u8>(), 0..200)) {
        let mut rt = runtime();
        let _ = from_binary(&mut rt, &data); // must not panic
    }

    #[test]
    fn soap_decoder_survives_arbitrary_text(s in "\\PC{0,120}") {
        let mut rt = runtime();
        let _ = from_soap_string(&mut rt, &s); // must not panic
    }
}
