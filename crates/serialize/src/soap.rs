//! SOAP-style XML object serialization (the paper's "SOAP serialization").
//!
//! Objects are encoded as a SOAP-1.1-style `<Envelope><Body>…` document
//! using section-5-encoding conventions: every object gets an `id`,
//! repeated occurrences (including cycles) become `<ref href="…"/>`
//! back-references. The paper measures exactly this path in Section 7.3
//! (serializing an instance is far more expensive than deserializing it —
//! "creating a SOAP structure from an object is more complex than the
//! opposite", a shape our implementation reproduces since serialization
//! walks the heap and builds/escapes the whole XML tree).

use std::collections::HashMap;

use pti_metamodel::{Guid, ObjHandle, Runtime, TypeName, Value};
use pti_xml::Element;

use crate::error::{Result, SerializeError};

/// Serializes a value (usually an object reference) into a SOAP envelope
/// element.
///
/// # Errors
/// Dangling handles, or objects whose type is no longer registered.
pub fn to_soap(rt: &Runtime, value: &Value) -> Result<Element> {
    let mut enc = Encoder {
        rt,
        ids: HashMap::new(),
        next_id: 1,
    };
    let body = enc.encode(value)?;
    // SOAP-1.1 envelope with the section-5 encoding namespaces, as the
    // .NET formatter emits.
    Ok(Element::new("Envelope")
        .attr(
            "xmlns:SOAP-ENV",
            "http://schemas.xmlsoap.org/soap/envelope/",
        )
        .attr("xmlns:xsi", "http://www.w3.org/2001/XMLSchema-instance")
        .attr("xmlns:xsd", "http://www.w3.org/2001/XMLSchema")
        .child(Element::new("Body").child(body)))
}

/// Serializes straight to the compact XML string.
pub fn to_soap_string(rt: &Runtime, value: &Value) -> Result<String> {
    Ok(to_soap(rt, value)?.to_compact())
}

struct Encoder<'r> {
    rt: &'r Runtime,
    ids: HashMap<ObjHandle, u64>,
    next_id: u64,
}

impl Encoder<'_> {
    fn encode(&mut self, value: &Value) -> Result<Element> {
        Ok(match value {
            Value::Null => Element::new("null").attr("xsi:nil", "true"),
            Value::Bool(b) => Element::new("boolean")
                .attr("xsi:type", "xsd:boolean")
                .text(b.to_string()),
            Value::I32(v) => Element::new("int")
                .attr("xsi:type", "xsd:int")
                .text(v.to_string()),
            Value::I64(v) => Element::new("long")
                .attr("xsi:type", "xsd:long")
                .text(v.to_string()),
            Value::F64(v) => Element::new("double")
                .attr("xsi:type", "xsd:double")
                .text(format_f64(*v)),
            Value::Str(s) => Element::new("string")
                .attr("xsi:type", "xsd:string")
                .text(s.clone()),
            Value::Array(items) => {
                let mut arr = Element::new("array");
                for item in items {
                    arr.push_child(self.encode(item)?);
                }
                arr
            }
            Value::Obj(handle) => self.encode_object(*handle)?,
        })
    }

    fn encode_object(&mut self, handle: ObjHandle) -> Result<Element> {
        if let Some(&id) = self.ids.get(&handle) {
            return Ok(Element::new("ref").attr("href", format!("#{id}")));
        }
        let id = self.next_id;
        self.next_id += 1;
        self.ids.insert(handle, id);
        let obj = self.rt.heap.get(handle)?;
        let def = self.rt.registry.require(obj.type_guid)?;
        let mut el = Element::new("object")
            .attr("id", id.to_string())
            .attr("type", def.name.full())
            .attr("guid", def.guid.to_string());
        // BTreeMap iteration gives a stable field order on the wire.
        for (name, value) in &obj.fields {
            el.push_child(
                Element::new("field")
                    .attr("name", name)
                    .child(self.encode(value)?),
            );
        }
        Ok(el)
    }
}

/// Deserializes a SOAP envelope back into a value, materializing objects
/// into the runtime's heap.
///
/// Object elements carry the type GUID; the type (and its assembly) must
/// already be installed — exactly the precondition the paper's transport
/// protocol establishes before deserializing.
///
/// # Errors
/// Unknown types, malformed envelopes, dangling `href`s.
pub fn from_soap(rt: &mut Runtime, envelope: &Element) -> Result<Value> {
    if envelope.name != "Envelope" {
        return Err(SerializeError::Malformed(format!(
            "expected <Envelope>, got <{}>",
            envelope.name
        )));
    }
    let body = envelope
        .find("Body")
        .ok_or_else(|| SerializeError::Malformed("missing <Body>".into()))?;
    let root = body
        .elements()
        .next()
        .ok_or_else(|| SerializeError::Malformed("empty <Body>".into()))?;
    let mut dec = Decoder {
        rt,
        by_id: HashMap::new(),
    };
    dec.decode(root)
}

/// Parses and deserializes from the XML string form in a single
/// streaming pass — no intermediate DOM is built, mirroring how
/// XmlReader-style deserializers consume SOAP (and why deserialization
/// is the cheap direction in the paper's Section 7.3).
///
/// # Errors
/// Same conditions as [`from_soap`]; error positions are not reported
/// (use the DOM path when debugging malformed payloads).
pub fn from_soap_string(rt: &mut Runtime, xml: &str) -> Result<Value> {
    stream::decode(rt, xml)
}

struct Decoder<'r> {
    rt: &'r mut Runtime,
    by_id: HashMap<u64, ObjHandle>,
}

impl Decoder<'_> {
    fn decode(&mut self, el: &Element) -> Result<Value> {
        match el.name.as_str() {
            "null" => Ok(Value::Null),
            "boolean" => match el.text_content().as_str() {
                "true" => Ok(Value::Bool(true)),
                "false" => Ok(Value::Bool(false)),
                other => Err(SerializeError::Malformed(format!("bad boolean `{other}`"))),
            },
            "int" => el
                .text_content()
                .parse()
                .map(Value::I32)
                .map_err(|_| SerializeError::Malformed("bad int".into())),
            "long" => el
                .text_content()
                .parse()
                .map(Value::I64)
                .map_err(|_| SerializeError::Malformed("bad long".into())),
            "double" => parse_f64(&el.text_content())
                .map(Value::F64)
                .ok_or_else(|| SerializeError::Malformed("bad double".into())),
            "string" => Ok(Value::Str(el.text_content())),
            "array" => {
                let mut items = Vec::new();
                for c in el.elements() {
                    items.push(self.decode(c)?);
                }
                Ok(Value::Array(items))
            }
            "ref" => {
                let href = el
                    .get_attr("href")
                    .and_then(|h| h.strip_prefix('#'))
                    .ok_or_else(|| SerializeError::Malformed("bad href".into()))?;
                let id: u64 = href
                    .parse()
                    .map_err(|_| SerializeError::Malformed("bad href id".into()))?;
                let handle = self
                    .by_id
                    .get(&id)
                    .copied()
                    .ok_or(SerializeError::DanglingReference(id))?;
                Ok(Value::Obj(handle))
            }
            "object" => self.decode_object(el),
            other => Err(SerializeError::Malformed(format!(
                "unknown value element <{other}>"
            ))),
        }
    }

    fn decode_object(&mut self, el: &Element) -> Result<Value> {
        let id: u64 = el
            .get_attr("id")
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| SerializeError::Malformed("object missing id".into()))?;
        let name = TypeName::new(
            el.get_attr("type")
                .ok_or_else(|| SerializeError::Malformed("object missing type".into()))?,
        );
        let guid: Guid = el
            .get_attr("guid")
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| SerializeError::Malformed("object missing guid".into()))?;
        let def = self
            .rt
            .registry
            .get(guid)
            .ok_or(SerializeError::UnknownType { name, guid })?;
        // Allocate before decoding fields so cyclic references resolve.
        let handle = self.rt.allocate_raw(&def)?;
        self.by_id.insert(id, handle);
        for f in el.find_all("field") {
            let fname = f
                .get_attr("name")
                .ok_or_else(|| SerializeError::Malformed("field missing name".into()))?
                .to_string();
            let inner = f
                .elements()
                .next()
                .ok_or_else(|| SerializeError::Malformed("field missing value".into()))?;
            let value = self.decode(inner)?;
            // Deserialization restores raw state, including fields the
            // local definition may not declare (shadowed ones) — write
            // directly to the object rather than through the checker.
            self.rt.heap.get_mut(handle)?.set(fname, value);
        }
        Ok(Value::Obj(handle))
    }
}

/// Streaming SOAP decoder: scans the XML text once, materializing values
/// directly — the deserialization fast path.
mod stream {
    use super::*;

    pub(super) fn decode(rt: &mut Runtime, xml: &str) -> Result<Value> {
        let mut d = Decoder {
            rt,
            by_id: HashMap::new(),
            input: xml,
            bytes: xml.as_bytes(),
            pos: 0,
        };
        let open = d.open_tag()?;
        if open.name != "Envelope" || open.self_closing {
            return Err(malformed("expected <Envelope>"));
        }
        let body = d.open_tag()?;
        if body.name != "Body" || body.self_closing {
            return Err(malformed("expected <Body>"));
        }
        let value = d.value()?;
        d.close_tag("Body")?;
        d.close_tag("Envelope")?;
        Ok(value)
    }

    fn malformed(msg: &str) -> SerializeError {
        SerializeError::Malformed(msg.to_string())
    }

    struct Tag<'a> {
        name: &'a str,
        self_closing: bool,
        // Only the attributes the schema uses are retained; values that
        // can contain entities (field names) are unescaped, the rest are
        // parsed in place.
        id: Option<u64>,
        guid: Option<Guid>,
        ty: Option<&'a str>,
        href: Option<&'a str>,
        field_name: Option<String>,
    }

    struct Decoder<'r, 'a> {
        rt: &'r mut Runtime,
        by_id: HashMap<u64, ObjHandle>,
        input: &'a str,
        bytes: &'a [u8],
        pos: usize,
    }

    impl<'a> Decoder<'_, 'a> {
        fn skip_ws(&mut self) {
            while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\r' | b'\n')) {
                self.pos += 1;
            }
        }

        fn peek(&self) -> Option<u8> {
            self.bytes.get(self.pos).copied()
        }

        fn name(&mut self) -> Result<&'a str> {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.' | b':') || b >= 0x80
                {
                    self.pos += 1;
                } else {
                    break;
                }
            }
            if self.pos == start {
                return Err(malformed("expected a name"));
            }
            Ok(&self.input[start..self.pos])
        }

        /// Parses `<name attrs…>` or `<name attrs…/>`.
        fn open_tag(&mut self) -> Result<Tag<'a>> {
            self.skip_ws();
            if self.peek() != Some(b'<') {
                return Err(malformed("expected a start tag"));
            }
            self.pos += 1;
            let name = self.name()?;
            let mut tag = Tag {
                name,
                self_closing: false,
                id: None,
                guid: None,
                ty: None,
                href: None,
                field_name: None,
            };
            loop {
                self.skip_ws();
                match self.peek() {
                    Some(b'/') => {
                        self.pos += 1;
                        if self.peek() != Some(b'>') {
                            return Err(malformed("malformed self-closing tag"));
                        }
                        self.pos += 1;
                        tag.self_closing = true;
                        return Ok(tag);
                    }
                    Some(b'>') => {
                        self.pos += 1;
                        return Ok(tag);
                    }
                    Some(_) => {
                        let key = self.name()?;
                        self.skip_ws();
                        if self.peek() != Some(b'=') {
                            return Err(malformed("expected `=` in attribute"));
                        }
                        self.pos += 1;
                        self.skip_ws();
                        match key {
                            // Machine-generated values: never contain
                            // entities, parse in place.
                            "id" => tag.id = self.raw_attr_value()?.parse().ok(),
                            "guid" => tag.guid = self.raw_attr_value()?.parse().ok(),
                            "type" => tag.ty = Some(self.raw_attr_value()?),
                            "href" => tag.href = Some(self.raw_attr_value()?),
                            // Field names may need unescaping.
                            "name" => tag.field_name = Some(self.attr_value()?),
                            // xsi:type etc. — informational; skip.
                            _ => self.skip_attr_value()?,
                        }
                    }
                    None => return Err(malformed("unterminated start tag")),
                }
            }
        }

        /// An attribute value returned as a slice of the input; rejects
        /// entity references (callers use it for machine-generated values
        /// like ids and GUIDs that never contain them).
        fn raw_attr_value(&mut self) -> Result<&'a str> {
            let quote = match self.peek() {
                Some(q @ (b'"' | b'\'')) => {
                    self.pos += 1;
                    q
                }
                _ => return Err(malformed("expected quoted attribute value")),
            };
            let start = self.pos;
            loop {
                match self.peek() {
                    None => return Err(malformed("unterminated attribute value")),
                    Some(b) if b == quote => {
                        let v = &self.input[start..self.pos];
                        self.pos += 1;
                        return Ok(v);
                    }
                    Some(b'&') => return Err(malformed("unexpected entity in value")),
                    Some(_) => self.pos += 1,
                }
            }
        }

        fn skip_attr_value(&mut self) -> Result<()> {
            let quote = match self.peek() {
                Some(q @ (b'"' | b'\'')) => {
                    self.pos += 1;
                    q
                }
                _ => return Err(malformed("expected quoted attribute value")),
            };
            loop {
                match self.peek() {
                    None => return Err(malformed("unterminated attribute value")),
                    Some(b) if b == quote => {
                        self.pos += 1;
                        return Ok(());
                    }
                    Some(_) => self.pos += 1,
                }
            }
        }

        fn attr_value(&mut self) -> Result<String> {
            let quote = match self.peek() {
                Some(q @ (b'"' | b'\'')) => {
                    self.pos += 1;
                    q
                }
                _ => return Err(malformed("expected quoted attribute value")),
            };
            let mut out = String::new();
            let mut run = self.pos;
            loop {
                match self.peek() {
                    None => return Err(malformed("unterminated attribute value")),
                    Some(b) if b == quote => {
                        out.push_str(&self.input[run..self.pos]);
                        self.pos += 1;
                        return Ok(out);
                    }
                    Some(b'&') => {
                        out.push_str(&self.input[run..self.pos]);
                        out.push(self.entity()?);
                        run = self.pos;
                    }
                    Some(_) => self.pos += 1,
                }
            }
        }

        fn entity(&mut self) -> Result<char> {
            debug_assert_eq!(self.peek(), Some(b'&'));
            self.pos += 1;
            let start = self.pos;
            loop {
                match self.peek() {
                    Some(b';') => break,
                    Some(_) if self.pos - start < 10 => self.pos += 1,
                    _ => return Err(malformed("malformed entity reference")),
                }
            }
            let name = &self.input[start..self.pos];
            self.pos += 1;
            pti_xml::resolve_entity(name).ok_or_else(|| malformed("unknown entity"))
        }

        fn text(&mut self) -> Result<String> {
            let mut out = String::new();
            let mut run = self.pos;
            while let Some(b) = self.peek() {
                match b {
                    b'<' => break,
                    b'&' => {
                        out.push_str(&self.input[run..self.pos]);
                        out.push(self.entity()?);
                        run = self.pos;
                    }
                    _ => self.pos += 1,
                }
            }
            out.push_str(&self.input[run..self.pos]);
            Ok(out)
        }

        fn close_tag(&mut self, name: &str) -> Result<()> {
            self.skip_ws();
            if !self.bytes[self.pos.min(self.bytes.len())..].starts_with(b"</") {
                return Err(malformed("expected an end tag"));
            }
            self.pos += 2;
            let got = self.name()?;
            if got != name {
                return Err(malformed("mismatched end tag"));
            }
            self.skip_ws();
            if self.peek() != Some(b'>') {
                return Err(malformed("malformed end tag"));
            }
            self.pos += 1;
            Ok(())
        }

        /// True if the next non-ws token is `</`.
        fn at_close(&mut self) -> bool {
            self.skip_ws();
            self.bytes[self.pos.min(self.bytes.len())..].starts_with(b"</")
        }

        fn value(&mut self) -> Result<Value> {
            let tag = self.open_tag()?;
            match tag.name {
                "null" => {
                    if !tag.self_closing {
                        self.close_tag("null")?;
                    }
                    Ok(Value::Null)
                }
                "boolean" => match self.scalar_text(&tag)?.as_str() {
                    "true" => Ok(Value::Bool(true)),
                    "false" => Ok(Value::Bool(false)),
                    _ => Err(malformed("bad boolean")),
                },
                "int" => self
                    .scalar_text(&tag)?
                    .parse()
                    .map(Value::I32)
                    .map_err(|_| malformed("bad int")),
                "long" => self
                    .scalar_text(&tag)?
                    .parse()
                    .map(Value::I64)
                    .map_err(|_| malformed("bad long")),
                "double" => parse_f64(&self.scalar_text(&tag)?)
                    .map(Value::F64)
                    .ok_or_else(|| malformed("bad double")),
                "string" => Ok(Value::Str(self.scalar_text(&tag)?)),
                "array" => {
                    let mut items = Vec::new();
                    if !tag.self_closing {
                        while !self.at_close() {
                            items.push(self.value()?);
                        }
                        self.close_tag("array")?;
                    }
                    Ok(Value::Array(items))
                }
                "ref" => {
                    if !tag.self_closing {
                        self.close_tag("ref")?;
                    }
                    let id: u64 = tag
                        .href
                        .and_then(|h| h.strip_prefix('#'))
                        .and_then(|h| h.parse().ok())
                        .ok_or_else(|| malformed("bad href"))?;
                    let handle = self
                        .by_id
                        .get(&id)
                        .copied()
                        .ok_or(SerializeError::DanglingReference(id))?;
                    Ok(Value::Obj(handle))
                }
                "object" => self.object(tag),
                _ => Err(malformed("unknown value element")),
            }
        }

        fn scalar_text(&mut self, tag: &Tag<'_>) -> Result<String> {
            if tag.self_closing {
                return Ok(String::new());
            }
            let text = self.text()?;
            self.close_tag(tag.name)?;
            Ok(text)
        }

        fn object(&mut self, tag: Tag<'_>) -> Result<Value> {
            let id = tag.id.ok_or_else(|| malformed("object missing id"))?;
            let guid = tag.guid.ok_or_else(|| malformed("object missing guid"))?;
            let name = TypeName::new(tag.ty.unwrap_or_default().to_string());
            let def = self
                .rt
                .registry
                .get(guid)
                .ok_or(SerializeError::UnknownType { name, guid })?;
            let handle = self.rt.allocate_raw(&def)?;
            self.by_id.insert(id, handle);
            if tag.self_closing {
                return Ok(Value::Obj(handle));
            }
            while !self.at_close() {
                let ft = self.open_tag()?;
                if ft.name != "field" {
                    return Err(malformed("expected <field>"));
                }
                let fname = ft
                    .field_name
                    .ok_or_else(|| malformed("field missing name"))?;
                if ft.self_closing {
                    return Err(malformed("field missing value"));
                }
                let value = self.value()?;
                self.close_tag("field")?;
                self.rt.heap.get_mut(handle)?.set(fname, value);
            }
            self.close_tag("object")?;
            Ok(Value::Obj(handle))
        }
    }
}

/// f64 formatting that survives a text roundtrip exactly.
fn format_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 {
            "INF".to_string()
        } else {
            "-INF".to_string()
        }
    } else {
        // {:?} prints the shortest string that parses back to the same f64.
        format!("{v:?}")
    }
}

fn parse_f64(s: &str) -> Option<f64> {
    match s {
        "NaN" => Some(f64::NAN),
        "INF" => Some(f64::INFINITY),
        "-INF" => Some(f64::NEG_INFINITY),
        _ => s.parse().ok(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pti_metamodel::{bodies, primitives, Assembly, ParamDef, TypeDef, CTOR_NAME};

    fn person_runtime() -> (Runtime, TypeDef) {
        let def = TypeDef::class("Person", "vendor-a")
            .field("name", primitives::STRING)
            .field("age", primitives::INT32)
            .field("friend", "Person")
            .method("getName", vec![], primitives::STRING)
            .ctor(vec![ParamDef::new("n", primitives::STRING)])
            .build();
        let g = def.guid;
        let asm = Assembly::builder("p")
            .ty(def.clone())
            .body(g, "getName", 0, bodies::getter("name"))
            .body(g, CTOR_NAME, 1, bodies::ctor_assign(&["name"]))
            .build();
        let mut rt = Runtime::new();
        asm.install(&mut rt).unwrap();
        (rt, def)
    }

    #[test]
    fn primitive_values_roundtrip() {
        let (mut rt, _) = person_runtime();
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::I32(-42),
            Value::I64(1 << 40),
            Value::F64(3.25),
            Value::Str("héllo <xml> & stuff".into()),
            Value::Array(vec![Value::I32(1), Value::Str("two".into()), Value::Null]),
        ] {
            let xml = to_soap_string(&rt, &v).unwrap();
            let back = from_soap_string(&mut rt, &xml).unwrap();
            assert_eq!(back, v, "value {v} through {xml}");
        }
    }

    #[test]
    fn float_specials_roundtrip() {
        let (mut rt, _) = person_runtime();
        for v in [
            f64::INFINITY,
            f64::NEG_INFINITY,
            0.1,
            -0.0,
            f64::MIN,
            f64::MAX,
        ] {
            let xml = to_soap_string(&rt, &Value::F64(v)).unwrap();
            let back = from_soap_string(&mut rt, &xml).unwrap();
            assert_eq!(back.as_f64().unwrap().to_bits(), v.to_bits());
        }
        let xml = to_soap_string(&rt, &Value::F64(f64::NAN)).unwrap();
        assert!(from_soap_string(&mut rt, &xml)
            .unwrap()
            .as_f64()
            .unwrap()
            .is_nan());
    }

    #[test]
    fn object_roundtrips_with_fields() {
        let (mut rt, _) = person_runtime();
        let h = rt
            .instantiate(&"Person".into(), &[Value::from("ada")])
            .unwrap();
        rt.set_field(h, "age", Value::I32(36)).unwrap();
        let xml = to_soap_string(&rt, &Value::Obj(h)).unwrap();
        assert!(xml.contains("Envelope"));
        assert!(xml.contains("ada"));
        let back = from_soap_string(&mut rt, &xml).unwrap();
        let h2 = back.as_obj().unwrap();
        assert_ne!(h, h2, "a fresh object is materialized");
        assert_eq!(rt.get_field(h2, "name").unwrap().as_str().unwrap(), "ada");
        assert_eq!(rt.get_field(h2, "age").unwrap().as_i32().unwrap(), 36);
        assert_eq!(
            rt.invoke(h2, "getName", &[]).unwrap().as_str().unwrap(),
            "ada"
        );
    }

    #[test]
    fn nested_objects_roundtrip() {
        let (mut rt, _) = person_runtime();
        let alice = rt
            .instantiate(&"Person".into(), &[Value::from("alice")])
            .unwrap();
        let bob = rt
            .instantiate(&"Person".into(), &[Value::from("bob")])
            .unwrap();
        rt.set_field(alice, "friend", Value::Obj(bob)).unwrap();
        let xml = to_soap_string(&rt, &Value::Obj(alice)).unwrap();
        let back = from_soap_string(&mut rt, &xml).unwrap().as_obj().unwrap();
        let friend = rt.get_field(back, "friend").unwrap().as_obj().unwrap();
        assert_eq!(
            rt.get_field(friend, "name").unwrap().as_str().unwrap(),
            "bob"
        );
    }

    #[test]
    fn shared_references_are_preserved() {
        let (mut rt, _) = person_runtime();
        let shared = rt
            .instantiate(&"Person".into(), &[Value::from("shared")])
            .unwrap();
        let arr = Value::Array(vec![Value::Obj(shared), Value::Obj(shared)]);
        let xml = to_soap_string(&rt, &arr).unwrap();
        assert!(
            xml.contains("href"),
            "second occurrence must be a ref: {xml}"
        );
        let back = from_soap_string(&mut rt, &xml).unwrap();
        let items = back.as_array().unwrap().to_vec();
        assert_eq!(
            items[0].as_obj().unwrap(),
            items[1].as_obj().unwrap(),
            "aliasing preserved"
        );
    }

    #[test]
    fn cycles_roundtrip() {
        let (mut rt, _) = person_runtime();
        let a = rt
            .instantiate(&"Person".into(), &[Value::from("a")])
            .unwrap();
        let b = rt
            .instantiate(&"Person".into(), &[Value::from("b")])
            .unwrap();
        rt.set_field(a, "friend", Value::Obj(b)).unwrap();
        rt.set_field(b, "friend", Value::Obj(a)).unwrap();
        let xml = to_soap_string(&rt, &Value::Obj(a)).unwrap();
        let a2 = from_soap_string(&mut rt, &xml).unwrap().as_obj().unwrap();
        let b2 = rt.get_field(a2, "friend").unwrap().as_obj().unwrap();
        let a2_again = rt.get_field(b2, "friend").unwrap().as_obj().unwrap();
        assert_eq!(a2, a2_again, "cycle closed");
    }

    #[test]
    fn unknown_type_rejected() {
        let (rt, _) = person_runtime();
        let mut h = rt;
        let alien = TypeDef::class("Alien", "elsewhere").build();
        let xml = format!(
            r#"<Envelope><Body><object id="1" type="Alien" guid="{}"/></Body></Envelope>"#,
            alien.guid
        );
        assert!(matches!(
            from_soap_string(&mut h, &xml),
            Err(SerializeError::UnknownType { .. })
        ));
    }

    #[test]
    fn dangling_href_rejected() {
        let (mut rt, _) = person_runtime();
        let xml = r##"<Envelope><Body><ref href="#9"/></Body></Envelope>"##;
        assert!(matches!(
            from_soap_string(&mut rt, xml),
            Err(SerializeError::DanglingReference(9))
        ));
    }

    #[test]
    fn malformed_envelopes_rejected() {
        let (mut rt, _) = person_runtime();
        assert!(from_soap_string(&mut rt, "<NotAnEnvelope/>").is_err());
        assert!(from_soap_string(&mut rt, "<Envelope/>").is_err());
        assert!(from_soap_string(&mut rt, "<Envelope><Body/></Envelope>").is_err());
        assert!(from_soap_string(&mut rt, "<Envelope><Body><mystery/></Body></Envelope>").is_err());
    }
}
