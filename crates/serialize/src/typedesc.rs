//! XML codec for [`TypeDescription`]s — the paper's Section 5.2.
//!
//! "Types in our system are represented as XML structures": this module
//! writes a description to a (deliberately flat, human-readable) XML
//! element and reads it back. Creation + serialization and
//! deserialization times of exactly this representation are the paper's
//! Section 7.2 measurements.

use pti_metamodel::{
    CtorDesc, FieldDesc, Guid, MethodDesc, Modifiers, TypeDescription, TypeKind, TypeName,
};
use pti_xml::Element;

use crate::error::{Result, SerializeError};

fn kind_str(kind: TypeKind) -> &'static str {
    match kind {
        TypeKind::Class => "class",
        TypeKind::Interface => "interface",
        TypeKind::Primitive => "primitive",
    }
}

fn kind_from(s: &str) -> Result<TypeKind> {
    match s {
        "class" => Ok(TypeKind::Class),
        "interface" => Ok(TypeKind::Interface),
        "primitive" => Ok(TypeKind::Primitive),
        other => Err(SerializeError::Malformed(format!(
            "unknown type kind `{other}`"
        ))),
    }
}

/// Renders a type description as its XML wire form.
///
/// The layout mirrors what the paper's `TypeDescription` carries: type
/// identity (GUID), name, kind, modifiers, supertype names, and flat
/// member signatures with types referenced by name only (no recursion).
pub fn description_to_xml(desc: &TypeDescription) -> Element {
    let mut root = Element::new("typeDescription")
        .attr("name", desc.name.full())
        .attr("guid", desc.guid.to_string())
        .attr("kind", kind_str(desc.kind))
        .attr("modifiers", desc.modifiers.bits().to_string());
    if let Some(s) = &desc.superclass {
        root.push_child(Element::new("superclass").attr("name", s.full()));
    }
    for i in &desc.interfaces {
        root.push_child(Element::new("interface").attr("name", i.full()));
    }
    for f in &desc.fields {
        root.push_child(
            Element::new("field")
                .attr("name", &f.name)
                .attr("type", f.ty.full())
                .attr("modifiers", f.modifiers.bits().to_string()),
        );
    }
    for m in &desc.methods {
        let mut me = Element::new("method")
            .attr("name", &m.name)
            .attr("returns", m.return_type.full())
            .attr("modifiers", m.modifiers.bits().to_string());
        for p in &m.params {
            me.push_child(Element::new("param").attr("type", p.full()));
        }
        root.push_child(me);
    }
    for c in &desc.constructors {
        let mut ce = Element::new("constructor").attr("modifiers", c.modifiers.bits().to_string());
        for p in &c.params {
            ce.push_child(Element::new("param").attr("type", p.full()));
        }
        root.push_child(ce);
    }
    root
}

/// Serializes a description to its compact XML string.
pub fn description_to_string(desc: &TypeDescription) -> String {
    description_to_xml(desc).to_compact()
}

fn require_attr<'e>(el: &'e Element, name: &str) -> Result<&'e str> {
    el.get_attr(name).ok_or_else(|| {
        SerializeError::Malformed(format!("<{}> missing `{name}` attribute", el.name))
    })
}

fn parse_modifiers(el: &Element) -> Result<Modifiers> {
    let bits: u8 = require_attr(el, "modifiers")?
        .parse()
        .map_err(|_| SerializeError::Malformed("bad modifiers".into()))?;
    Ok(Modifiers::from_bits(bits))
}

fn parse_params(el: &Element) -> Result<Vec<TypeName>> {
    el.find_all("param")
        .map(|p| Ok(TypeName::new(require_attr(p, "type")?)))
        .collect()
}

/// Reconstructs a type description from its XML element.
///
/// # Errors
/// [`SerializeError::Malformed`] on schema violations.
pub fn description_from_xml(el: &Element) -> Result<TypeDescription> {
    if el.name != "typeDescription" {
        return Err(SerializeError::Malformed(format!(
            "expected <typeDescription>, got <{}>",
            el.name
        )));
    }
    let guid: Guid = require_attr(el, "guid")?
        .parse()
        .map_err(|_| SerializeError::Malformed("bad guid".into()))?;
    let desc = TypeDescription {
        name: TypeName::new(require_attr(el, "name")?),
        guid,
        kind: kind_from(require_attr(el, "kind")?)?,
        modifiers: parse_modifiers(el)?,
        superclass: el
            .find("superclass")
            .map(|s| Ok::<_, SerializeError>(TypeName::new(require_attr(s, "name")?)))
            .transpose()?,
        interfaces: el
            .find_all("interface")
            .map(|i| Ok(TypeName::new(require_attr(i, "name")?)))
            .collect::<Result<_>>()?,
        fields: el
            .find_all("field")
            .map(|f| {
                Ok(FieldDesc {
                    name: require_attr(f, "name")?.to_string(),
                    ty: TypeName::new(require_attr(f, "type")?),
                    modifiers: parse_modifiers(f)?,
                })
            })
            .collect::<Result<_>>()?,
        methods: el
            .find_all("method")
            .map(|m| {
                Ok(MethodDesc {
                    name: require_attr(m, "name")?.to_string(),
                    params: parse_params(m)?,
                    return_type: TypeName::new(require_attr(m, "returns")?),
                    modifiers: parse_modifiers(m)?,
                })
            })
            .collect::<Result<_>>()?,
        constructors: el
            .find_all("constructor")
            .map(|c| {
                Ok(CtorDesc {
                    params: parse_params(c)?,
                    modifiers: parse_modifiers(c)?,
                })
            })
            .collect::<Result<_>>()?,
    };
    Ok(desc)
}

/// Parses a description from its XML string form.
///
/// Takes the owned route: strings move out of the freshly parsed tree
/// instead of being copied — the hot path for description downloads.
pub fn description_from_string(xml: &str) -> Result<TypeDescription> {
    description_from_xml_owned(pti_xml::parse(xml)?)
}

fn take_attr(el: &mut Element, name: &str) -> Option<String> {
    let idx = el.attributes.iter().position(|(k, _)| k == name)?;
    Some(el.attributes.swap_remove(idx).1)
}

fn require_attr_owned(el: &mut Element, name: &str) -> Result<String> {
    take_attr(el, name).ok_or_else(|| {
        SerializeError::Malformed(format!("<{}> missing `{name}` attribute", el.name))
    })
}

fn parse_modifiers_owned(el: &mut Element) -> Result<Modifiers> {
    let bits: u8 = require_attr_owned(el, "modifiers")?
        .parse()
        .map_err(|_| SerializeError::Malformed("bad modifiers".into()))?;
    Ok(Modifiers::from_bits(bits))
}

fn parse_params_owned(el: &mut Element) -> Result<Vec<TypeName>> {
    let mut out = Vec::new();
    for c in &mut el.children {
        if let pti_xml::Node::Element(p) = c {
            if p.name == "param" {
                out.push(TypeName::new(require_attr_owned(p, "type")?));
            }
        }
    }
    Ok(out)
}

/// Reconstructs a type description, consuming the element (moves strings
/// instead of cloning them).
///
/// # Errors
/// [`SerializeError::Malformed`] on schema violations.
pub fn description_from_xml_owned(mut el: Element) -> Result<TypeDescription> {
    if el.name != "typeDescription" {
        return Err(SerializeError::Malformed(format!(
            "expected <typeDescription>, got <{}>",
            el.name
        )));
    }
    let guid: Guid = require_attr_owned(&mut el, "guid")?
        .parse()
        .map_err(|_| SerializeError::Malformed("bad guid".into()))?;
    let name = TypeName::new(require_attr_owned(&mut el, "name")?);
    let kind = kind_from(&require_attr_owned(&mut el, "kind")?)?;
    let modifiers = parse_modifiers_owned(&mut el)?;

    let mut superclass = None;
    let mut interfaces = Vec::new();
    let mut fields = Vec::new();
    let mut methods = Vec::new();
    let mut constructors = Vec::new();
    for node in &mut el.children {
        let pti_xml::Node::Element(c) = node else {
            continue;
        };
        match c.name.as_str() {
            "superclass" => superclass = Some(TypeName::new(require_attr_owned(c, "name")?)),
            "interface" => interfaces.push(TypeName::new(require_attr_owned(c, "name")?)),
            "field" => fields.push(FieldDesc {
                name: require_attr_owned(c, "name")?,
                ty: TypeName::new(require_attr_owned(c, "type")?),
                modifiers: parse_modifiers_owned(c)?,
            }),
            "method" => methods.push(MethodDesc {
                name: require_attr_owned(c, "name")?,
                params: parse_params_owned(c)?,
                return_type: TypeName::new(require_attr_owned(c, "returns")?),
                modifiers: parse_modifiers_owned(c)?,
            }),
            "constructor" => constructors.push(CtorDesc {
                params: parse_params_owned(c)?,
                modifiers: parse_modifiers_owned(c)?,
            }),
            other => {
                return Err(SerializeError::Malformed(format!(
                    "unexpected <{other}> in type description"
                )))
            }
        }
    }
    Ok(TypeDescription {
        name,
        guid,
        kind,
        modifiers,
        superclass,
        interfaces,
        fields,
        methods,
        constructors,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pti_metamodel::{primitives, ParamDef, TypeDef};

    fn person() -> TypeDescription {
        TypeDescription::from_def(
            &TypeDef::class("Acme.Person", "vendor-a")
                .implements("INamed")
                .field("name", primitives::STRING)
                .field("age", primitives::INT32)
                .method("getName", vec![], primitives::STRING)
                .method(
                    "rename",
                    vec![
                        ParamDef::new("first", primitives::STRING),
                        ParamDef::new("last", primitives::STRING),
                    ],
                    primitives::VOID,
                )
                .ctor(vec![ParamDef::new("n", primitives::STRING)])
                .build(),
        )
    }

    #[test]
    fn roundtrip_preserves_description() {
        let d = person();
        let xml = description_to_string(&d);
        let back = description_from_string(&xml).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn xml_is_flat_and_nonrecursive() {
        let d = person();
        let el = description_to_xml(&d);
        // Field/param types appear as name attributes only — no nested
        // <typeDescription> (Section 5.2's "no recursion").
        fn no_nested(el: &Element) -> bool {
            el.elements()
                .all(|c| c.name != "typeDescription" && no_nested(c))
        }
        assert!(no_nested(&el));
        assert_eq!(el.find_all("field").count(), 2);
        assert_eq!(el.find_all("method").count(), 2);
        assert_eq!(el.find_all("constructor").count(), 1);
        assert_eq!(
            el.find("superclass").unwrap().get_attr("name"),
            Some("Object")
        );
    }

    #[test]
    fn roundtrip_interface_without_superclass() {
        let d = TypeDescription::from_def(
            &TypeDef::interface("INamed", "v")
                .method("getName", vec![], primitives::STRING)
                .build(),
        );
        let back = description_from_string(&description_to_string(&d)).unwrap();
        assert_eq!(back, d);
        assert!(back.superclass.is_none());
    }

    #[test]
    fn guid_survives_the_wire() {
        let d = person();
        let back = description_from_string(&description_to_string(&d)).unwrap();
        assert_eq!(back.guid, d.guid);
        assert!(back.equals(&d));
    }

    #[test]
    fn rejects_wrong_root() {
        assert!(matches!(
            description_from_string("<notATypeDescription/>"),
            Err(SerializeError::Malformed(_))
        ));
    }

    #[test]
    fn rejects_missing_attributes() {
        assert!(description_from_string("<typeDescription name=\"X\"/>").is_err());
        assert!(description_from_string(
            "<typeDescription name=\"X\" guid=\"bogus\" kind=\"class\" modifiers=\"1\"/>"
        )
        .is_err());
    }

    #[test]
    fn rejects_unknown_kind() {
        let d = person();
        let xml = description_to_string(&d).replace("kind=\"class\"", "kind=\"struct\"");
        assert!(description_from_string(&xml).is_err());
    }

    #[test]
    fn method_param_order_preserved() {
        let d = person();
        let back = description_from_string(&description_to_string(&d)).unwrap();
        assert_eq!(back.methods[1].params.len(), 2);
        assert_eq!(back.methods[1].params[0].full(), "String");
    }
}
