//! # pti-serialize — type-description and object serialization
//!
//! The paper's Sections 5 and 6: types travel as flat XML
//! *descriptions* ([`description_to_xml`]), objects travel inside a
//! hybrid XML *envelope* ([`ObjectEnvelope`], Figure 3) whose payload is
//! either SOAP-style XML ([`to_soap`]) or a compact binary form
//! ([`to_binary`]) — our stand-ins for the .NET XML, SOAP and binary
//! formatters the paper "indirectly evaluates".
//!
//! All serializers understand shared references and cycles (`id`/`href`
//! in SOAP, back-references in binary), and deserialization materializes
//! objects into a [`Runtime`](pti_metamodel::Runtime) whose types must
//! already be installed — the precondition the optimistic transport
//! protocol establishes.
//!
//! ## Example
//!
//! ```
//! use pti_metamodel::{Runtime, TypeDef, Value, primitives};
//! use pti_serialize::{to_soap_string, from_soap_string, to_binary, from_binary};
//!
//! let def = TypeDef::class("Point", "v")
//!     .field("x", primitives::INT32)
//!     .field("y", primitives::INT32)
//!     .ctor(vec![])
//!     .build();
//! let mut rt = Runtime::new();
//! rt.register_type(def)?;
//! let p = rt.instantiate(&"Point".into(), &[])?;
//! rt.set_field(p, "x", pti_metamodel::Value::I32(3))?;
//!
//! let soap = to_soap_string(&rt, &Value::Obj(p))?;
//! let bin = to_binary(&rt, &Value::Obj(p))?;
//! assert!(bin.len() < soap.len(), "binary is the compact format");
//!
//! let p2 = from_soap_string(&mut rt, &soap)?.as_obj()?;
//! assert_eq!(rt.get_field(p2, "x")?.as_i32()?, 3);
//! let p3 = from_binary(&mut rt, &bin)?.as_obj()?;
//! assert_eq!(rt.get_field(p3, "x")?.as_i32()?, 3);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod base64;
mod binary;
mod cursor;
mod envelope;
mod error;
mod soap;
mod typedesc;

pub use binary::{from_binary, to_binary};
pub use envelope::{
    AssemblyRef, EnvelopeWireFormat, ObjectEnvelope, Payload, PayloadFormat, PTIB_ENVELOPE_MAGIC,
};
pub use error::{Result, SerializeError};
pub use soap::{from_soap, from_soap_string, to_soap, to_soap_string};
pub use typedesc::{
    description_from_string, description_from_xml, description_from_xml_owned,
    description_to_string, description_to_xml,
};
