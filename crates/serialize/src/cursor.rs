//! Minimal byte-buffer helpers for the binary format.
//!
//! A growable write buffer and a borrowing read cursor — the only two
//! shapes the binary codec needs, kept dependency-free.

/// Append-only byte buffer.
pub(crate) struct PutBuf {
    bytes: Vec<u8>,
}

impl PutBuf {
    pub(crate) fn with_capacity(cap: usize) -> PutBuf {
        PutBuf {
            bytes: Vec::with_capacity(cap),
        }
    }

    pub(crate) fn put_u8(&mut self, b: u8) {
        self.bytes.push(b);
    }

    pub(crate) fn put_slice(&mut self, s: &[u8]) {
        self.bytes.extend_from_slice(s);
    }

    pub(crate) fn put_f64_le(&mut self, v: f64) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn into_vec(self) -> Vec<u8> {
        self.bytes
    }
}

/// Forward-only cursor over a byte slice.
///
/// All `get_*`/`take` calls assume the caller checked
/// [`remaining`](Self::remaining) first (the codec always does, so a
/// violation is a codec bug, reported by panic).
pub(crate) struct GetBuf<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> GetBuf<'a> {
    pub(crate) fn new(data: &'a [u8]) -> GetBuf<'a> {
        GetBuf { data, pos: 0 }
    }

    pub(crate) fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    pub(crate) fn has_remaining(&self) -> bool {
        self.pos < self.data.len()
    }

    pub(crate) fn get_u8(&mut self) -> u8 {
        let b = self.data[self.pos];
        self.pos += 1;
        b
    }

    pub(crate) fn get_f64_le(&mut self) -> f64 {
        let mut raw = [0u8; 8];
        self.copy_to_slice(&mut raw);
        f64::from_le_bytes(raw)
    }

    pub(crate) fn copy_to_slice(&mut self, out: &mut [u8]) {
        out.copy_from_slice(self.take(out.len()));
    }

    pub(crate) fn take(&mut self, len: usize) -> &'a [u8] {
        let s = &self.data[self.pos..self.pos + len];
        self.pos += len;
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_back() {
        let mut w = PutBuf::with_capacity(4);
        w.put_u8(7);
        w.put_slice(b"ab");
        w.put_f64_le(1.5);
        let v = w.into_vec();
        let mut r = GetBuf::new(&v);
        assert_eq!(r.remaining(), 11);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.take(2), b"ab");
        assert_eq!(r.get_f64_le(), 1.5);
        assert!(!r.has_remaining());
    }
}
