//! Compact binary object serialization (the paper's ".NET binary
//! formatter" stand-in).
//!
//! A tagged, varint-compressed pre-order encoding of the value graph with
//! back-references for shared/cyclic objects. Much denser and faster than
//! the SOAP form — the comparison between the two is part of the paper's
//! "indirect evaluation of the .NET serialization mechanisms".
//!
//! ## Format
//!
//! ```text
//! magic "PTIB", version u8
//! value := tag u8, payload
//!   0 null | 1 false | 2 true
//!   3 i32 (zigzag varint) | 4 i64 (zigzag varint) | 5 f64 (8B LE)
//!   6 str (len varint, utf8 bytes)
//!   7 array (len varint, values…)
//!   8 objdef (id varint, guid 16B, field-count varint,
//!             (name-str, value)…)
//!   9 objref (id varint)
//! ```

use std::collections::HashMap;

use crate::cursor::{GetBuf, PutBuf};
use pti_metamodel::{Guid, ObjHandle, Runtime, TypeName, Value};

use crate::error::{Result, SerializeError};

const MAGIC: &[u8; 4] = b"PTIB";
const VERSION: u8 = 1;

mod tag {
    pub(super) const NULL: u8 = 0;
    pub(super) const FALSE: u8 = 1;
    pub(super) const TRUE: u8 = 2;
    pub(super) const I32: u8 = 3;
    pub(super) const I64: u8 = 4;
    pub(super) const F64: u8 = 5;
    pub(super) const STR: u8 = 6;
    pub(super) const ARRAY: u8 = 7;
    pub(super) const OBJDEF: u8 = 8;
    pub(super) const OBJREF: u8 = 9;
}

pub(crate) fn put_varint(buf: &mut PutBuf, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

pub(crate) fn get_varint(buf: &mut GetBuf<'_>) -> Result<u64> {
    let mut v: u64 = 0;
    for shift in (0..64).step_by(7) {
        if !buf.has_remaining() {
            return Err(SerializeError::Malformed("truncated varint".into()));
        }
        let byte = buf.get_u8();
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
    }
    Err(SerializeError::Malformed("varint too long".into()))
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

pub(crate) fn put_str(buf: &mut PutBuf, s: &str) {
    put_varint(buf, s.len() as u64);
    buf.put_slice(s.as_bytes());
}

pub(crate) fn get_str(buf: &mut GetBuf<'_>) -> Result<String> {
    let len = get_varint(buf)? as usize;
    if buf.remaining() < len {
        return Err(SerializeError::Malformed("truncated string".into()));
    }
    String::from_utf8(buf.take(len).to_vec())
        .map_err(|_| SerializeError::Malformed("invalid utf8".into()))
}

/// Serializes a value graph to the compact binary form.
///
/// # Errors
/// Dangling handles or unregistered object types.
pub fn to_binary(rt: &Runtime, value: &Value) -> Result<Vec<u8>> {
    let mut buf = PutBuf::with_capacity(128);
    buf.put_slice(MAGIC);
    buf.put_u8(VERSION);
    let mut enc = Encoder {
        rt,
        ids: HashMap::new(),
        next_id: 1,
    };
    enc.encode(value, &mut buf)?;
    Ok(buf.into_vec())
}

struct Encoder<'r> {
    rt: &'r Runtime,
    ids: HashMap<ObjHandle, u64>,
    next_id: u64,
}

impl Encoder<'_> {
    fn encode(&mut self, value: &Value, buf: &mut PutBuf) -> Result<()> {
        match value {
            Value::Null => buf.put_u8(tag::NULL),
            Value::Bool(false) => buf.put_u8(tag::FALSE),
            Value::Bool(true) => buf.put_u8(tag::TRUE),
            Value::I32(v) => {
                buf.put_u8(tag::I32);
                put_varint(buf, zigzag(i64::from(*v)));
            }
            Value::I64(v) => {
                buf.put_u8(tag::I64);
                put_varint(buf, zigzag(*v));
            }
            Value::F64(v) => {
                buf.put_u8(tag::F64);
                buf.put_f64_le(*v);
            }
            Value::Str(s) => {
                buf.put_u8(tag::STR);
                put_str(buf, s);
            }
            Value::Array(items) => {
                buf.put_u8(tag::ARRAY);
                put_varint(buf, items.len() as u64);
                for item in items {
                    self.encode(item, buf)?;
                }
            }
            Value::Obj(handle) => self.encode_object(*handle, buf)?,
        }
        Ok(())
    }

    fn encode_object(&mut self, handle: ObjHandle, buf: &mut PutBuf) -> Result<()> {
        if let Some(&id) = self.ids.get(&handle) {
            buf.put_u8(tag::OBJREF);
            put_varint(buf, id);
            return Ok(());
        }
        let id = self.next_id;
        self.next_id += 1;
        self.ids.insert(handle, id);
        let obj = self.rt.heap.get(handle)?;
        buf.put_u8(tag::OBJDEF);
        put_varint(buf, id);
        buf.put_slice(&obj.type_guid.to_bytes());
        put_varint(buf, obj.fields.len() as u64);
        // Clone field values first: encoding nested objects re-borrows
        // the heap.
        let fields: Vec<(String, Value)> = obj
            .fields
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        for (name, value) in &fields {
            put_str(buf, name);
            self.encode(value, buf)?;
        }
        Ok(())
    }
}

/// Deserializes a binary payload, materializing objects into the runtime.
///
/// # Errors
/// Bad magic/version, truncation, unknown types, dangling references.
pub fn from_binary(rt: &mut Runtime, data: &[u8]) -> Result<Value> {
    let mut buf = GetBuf::new(data);
    if buf.remaining() < 5 {
        return Err(SerializeError::UnsupportedFormat("too short".into()));
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(SerializeError::UnsupportedFormat("bad magic".into()));
    }
    let version = buf.get_u8();
    if version != VERSION {
        return Err(SerializeError::UnsupportedFormat(format!(
            "version {version}"
        )));
    }
    let mut dec = Decoder {
        rt,
        by_id: HashMap::new(),
    };
    let v = dec.decode(&mut buf)?;
    if buf.has_remaining() {
        return Err(SerializeError::Malformed("trailing bytes".into()));
    }
    Ok(v)
}

struct Decoder<'r> {
    rt: &'r mut Runtime,
    by_id: HashMap<u64, ObjHandle>,
}

impl Decoder<'_> {
    fn decode(&mut self, buf: &mut GetBuf<'_>) -> Result<Value> {
        if !buf.has_remaining() {
            return Err(SerializeError::Malformed("truncated value".into()));
        }
        let t = buf.get_u8();
        Ok(match t {
            tag::NULL => Value::Null,
            tag::FALSE => Value::Bool(false),
            tag::TRUE => Value::Bool(true),
            tag::I32 => {
                let v = unzigzag(get_varint(buf)?);
                Value::I32(
                    i32::try_from(v)
                        .map_err(|_| SerializeError::Malformed("i32 out of range".into()))?,
                )
            }
            tag::I64 => Value::I64(unzigzag(get_varint(buf)?)),
            tag::F64 => {
                if buf.remaining() < 8 {
                    return Err(SerializeError::Malformed("truncated f64".into()));
                }
                Value::F64(buf.get_f64_le())
            }
            tag::STR => Value::Str(get_str(buf)?),
            tag::ARRAY => {
                let len = get_varint(buf)? as usize;
                if len > buf.remaining() {
                    // Each element takes at least one byte; cheap sanity
                    // bound against hostile length prefixes.
                    return Err(SerializeError::Malformed("array length too large".into()));
                }
                let mut items = Vec::with_capacity(len);
                for _ in 0..len {
                    items.push(self.decode(buf)?);
                }
                Value::Array(items)
            }
            tag::OBJDEF => self.decode_object(buf)?,
            tag::OBJREF => {
                let id = get_varint(buf)?;
                let handle = self
                    .by_id
                    .get(&id)
                    .copied()
                    .ok_or(SerializeError::DanglingReference(id))?;
                Value::Obj(handle)
            }
            other => return Err(SerializeError::Malformed(format!("unknown tag {other}"))),
        })
    }

    fn decode_object(&mut self, buf: &mut GetBuf<'_>) -> Result<Value> {
        let id = get_varint(buf)?;
        if buf.remaining() < 16 {
            return Err(SerializeError::Malformed("truncated guid".into()));
        }
        let mut gb = [0u8; 16];
        buf.copy_to_slice(&mut gb);
        let guid = Guid::from_bytes(gb);
        let def = self
            .rt
            .registry
            .get(guid)
            .ok_or_else(|| SerializeError::UnknownType {
                name: TypeName::new("<binary>"),
                guid,
            })?;
        let handle = self.rt.allocate_raw(&def)?;
        self.by_id.insert(id, handle);
        let nfields = get_varint(buf)? as usize;
        if nfields > buf.remaining() {
            return Err(SerializeError::Malformed("field count too large".into()));
        }
        for _ in 0..nfields {
            let name = get_str(buf)?;
            let value = self.decode(buf)?;
            self.rt.heap.get_mut(handle)?.set(name, value);
        }
        Ok(Value::Obj(handle))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pti_metamodel::{primitives, ParamDef, TypeDef};

    fn runtime() -> Runtime {
        let def = TypeDef::class("Person", "v")
            .field("name", primitives::STRING)
            .field("age", primitives::INT32)
            .field("friend", "Person")
            .ctor(vec![ParamDef::new("n", primitives::STRING)])
            .build();
        let mut rt = Runtime::new();
        rt.register_type(def).unwrap();
        rt
    }

    fn roundtrip(rt: &mut Runtime, v: &Value) -> Value {
        let bytes = to_binary(rt, v).unwrap();
        from_binary(rt, &bytes).unwrap()
    }

    #[test]
    fn scalars_roundtrip() {
        let mut rt = runtime();
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::I32(0),
            Value::I32(i32::MIN),
            Value::I32(i32::MAX),
            Value::I64(i64::MIN),
            Value::I64(i64::MAX),
            Value::F64(-1234.5),
            Value::Str(String::new()),
            Value::Str("unicode 世界 😀".into()),
        ] {
            assert_eq!(roundtrip(&mut rt, &v), v);
        }
    }

    #[test]
    fn nan_bits_preserved() {
        let mut rt = runtime();
        let bytes = to_binary(&rt, &Value::F64(f64::NAN)).unwrap();
        let back = from_binary(&mut rt, &bytes).unwrap();
        assert!(back.as_f64().unwrap().is_nan());
    }

    #[test]
    fn arrays_roundtrip() {
        let mut rt = runtime();
        let v = Value::Array(vec![
            Value::I32(1),
            Value::Array(vec![Value::Str("nested".into())]),
            Value::Null,
        ]);
        assert_eq!(roundtrip(&mut rt, &v), v);
    }

    #[test]
    fn objects_and_cycles_roundtrip() {
        let mut rt = runtime();
        let a = rt
            .allocate_raw(&rt.registry.resolve(&"Person".into()).unwrap().clone())
            .unwrap();
        let b = rt
            .allocate_raw(&rt.registry.resolve(&"Person".into()).unwrap().clone())
            .unwrap();
        rt.heap.get_mut(a).unwrap().set("name", Value::from("a"));
        rt.heap.get_mut(b).unwrap().set("name", Value::from("b"));
        rt.set_field(a, "friend", Value::Obj(b)).unwrap();
        rt.set_field(b, "friend", Value::Obj(a)).unwrap();
        let a2 = roundtrip(&mut rt, &Value::Obj(a)).as_obj().unwrap();
        let b2 = rt.get_field(a2, "friend").unwrap().as_obj().unwrap();
        assert_eq!(rt.get_field(b2, "name").unwrap().as_str().unwrap(), "b");
        assert_eq!(rt.get_field(b2, "friend").unwrap().as_obj().unwrap(), a2);
    }

    #[test]
    fn binary_is_denser_than_soap() {
        let mut rt = runtime();
        let h = rt
            .allocate_raw(&rt.registry.resolve(&"Person".into()).unwrap().clone())
            .unwrap();
        rt.heap
            .get_mut(h)
            .unwrap()
            .set("name", Value::from("a reasonably long name"));
        rt.set_field(h, "age", Value::I32(123)).unwrap();
        let bin = to_binary(&rt, &Value::Obj(h)).unwrap();
        let soap = crate::soap::to_soap_string(&rt, &Value::Obj(h)).unwrap();
        assert!(
            bin.len() < soap.len(),
            "binary {} bytes vs soap {} bytes",
            bin.len(),
            soap.len()
        );
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        let mut rt = runtime();
        assert!(matches!(
            from_binary(&mut rt, b"JUNK\x01\x00"),
            Err(SerializeError::UnsupportedFormat(_))
        ));
        assert!(matches!(
            from_binary(&mut rt, b"PTIB\x63\x00"),
            Err(SerializeError::UnsupportedFormat(_))
        ));
        assert!(from_binary(&mut rt, b"PT").is_err());
    }

    #[test]
    fn rejects_truncation_everywhere() {
        let mut rt = runtime();
        let full = to_binary(&rt, &Value::Str("hello".into())).unwrap();
        for cut in 5..full.len() {
            assert!(from_binary(&mut rt, &full[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut rt = runtime();
        let mut bytes = to_binary(&rt, &Value::Null).unwrap();
        bytes.push(0);
        assert!(matches!(
            from_binary(&mut rt, &bytes),
            Err(SerializeError::Malformed(_))
        ));
    }

    #[test]
    fn rejects_hostile_lengths() {
        let mut rt = runtime();
        // array claiming u64::MAX elements
        let mut bytes = b"PTIB\x01\x07".to_vec();
        bytes.extend([0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01]);
        assert!(from_binary(&mut rt, &bytes).is_err());
    }

    #[test]
    fn varint_boundaries() {
        let mut rt = runtime();
        for v in [
            0i64,
            1,
            -1,
            127,
            128,
            -128,
            1 << 20,
            -(1 << 42),
            i64::MAX,
            i64::MIN,
        ] {
            assert_eq!(roundtrip(&mut rt, &Value::I64(v)), Value::I64(v));
        }
    }
}
