//! Error type for the serialization subsystem.

use std::fmt;

use pti_metamodel::{Guid, MetamodelError, TypeName};
use pti_xml::ParseError;

/// Errors raised while serializing or deserializing type descriptions,
/// objects or envelopes.
#[derive(Debug, Clone, PartialEq)]
pub enum SerializeError {
    /// The XML layer rejected the input.
    Xml(ParseError),
    /// The runtime rejected an operation (allocation, field write, ...).
    Metamodel(MetamodelError),
    /// Structurally invalid input for the expected schema.
    Malformed(String),
    /// The payload references a type the receiving runtime does not know.
    UnknownType {
        /// Type name as carried in the payload.
        name: TypeName,
        /// Type identity as carried in the payload.
        guid: Guid,
    },
    /// A back-reference (`href`/ref id) points at an object id that was
    /// never defined.
    DanglingReference(u64),
    /// Unsupported format version or magic number.
    UnsupportedFormat(String),
}

impl fmt::Display for SerializeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Xml(e) => write!(f, "xml: {e}"),
            Self::Metamodel(e) => write!(f, "runtime: {e}"),
            Self::Malformed(m) => write!(f, "malformed payload: {m}"),
            Self::UnknownType { name, guid } => {
                write!(f, "unknown type `{name}` ({guid}) — assembly not installed")
            }
            Self::DanglingReference(id) => write!(f, "dangling object reference #{id}"),
            Self::UnsupportedFormat(m) => write!(f, "unsupported format: {m}"),
        }
    }
}

impl std::error::Error for SerializeError {}

impl From<ParseError> for SerializeError {
    fn from(e: ParseError) -> Self {
        SerializeError::Xml(e)
    }
}

impl From<MetamodelError> for SerializeError {
    fn from(e: MetamodelError) -> Self {
        SerializeError::Metamodel(e)
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, SerializeError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_wrap_inner_errors() {
        let e: SerializeError = MetamodelError::DanglingHandle.into();
        assert!(e.to_string().contains("dangling object handle"));
        let m = SerializeError::Malformed("missing attribute".into());
        assert!(m.to_string().contains("missing attribute"));
    }

    #[test]
    fn unknown_type_display() {
        let e = SerializeError::UnknownType {
            name: TypeName::new("Person"),
            guid: Guid::derive("Person", "x"),
        };
        assert!(e.to_string().contains("Person"));
        assert!(e.to_string().contains("assembly not installed"));
    }
}
