//! Minimal standard-alphabet base64, used to embed binary payloads in the
//! hybrid XML envelope (the paper embeds .NET binary-formatter output in
//! its XML messages the same way).

const ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Encodes bytes as padded base64.
pub fn encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let b = [
            chunk[0],
            *chunk.get(1).unwrap_or(&0),
            *chunk.get(2).unwrap_or(&0),
        ];
        let n = (u32::from(b[0]) << 16) | (u32::from(b[1]) << 8) | u32::from(b[2]);
        out.push(ALPHABET[(n >> 18) as usize & 63] as char);
        out.push(ALPHABET[(n >> 12) as usize & 63] as char);
        out.push(if chunk.len() > 1 {
            ALPHABET[(n >> 6) as usize & 63] as char
        } else {
            '='
        });
        out.push(if chunk.len() > 2 {
            ALPHABET[n as usize & 63] as char
        } else {
            '='
        });
    }
    out
}

/// Decodes padded base64 (whitespace tolerated), or `None` on malformed
/// input.
pub fn decode(text: &str) -> Option<Vec<u8>> {
    fn val(c: u8) -> Option<u32> {
        match c {
            b'A'..=b'Z' => Some(u32::from(c - b'A')),
            b'a'..=b'z' => Some(u32::from(c - b'a') + 26),
            b'0'..=b'9' => Some(u32::from(c - b'0') + 52),
            b'+' => Some(62),
            b'/' => Some(63),
            _ => None,
        }
    }
    let clean: Vec<u8> = text.bytes().filter(|b| !b.is_ascii_whitespace()).collect();
    if !clean.len().is_multiple_of(4) {
        return None;
    }
    let mut out = Vec::with_capacity(clean.len() / 4 * 3);
    for chunk in clean.chunks(4) {
        let pad = chunk.iter().rev().take_while(|&&c| c == b'=').count();
        if pad > 2 || chunk[..4 - pad].iter().any(|&c| val(c).is_none()) {
            return None;
        }
        // '=' may only appear at the very end of the input.
        if pad > 0 && chunk.as_ptr() != clean[clean.len() - 4..].as_ptr() {
            return None;
        }
        let n = chunk
            .iter()
            .map(|&c| if c == b'=' { 0 } else { val(c).unwrap() })
            .fold(0u32, |acc, v| (acc << 6) | v);
        out.push((n >> 16) as u8);
        if pad < 2 {
            out.push((n >> 8) as u8);
        }
        if pad < 1 {
            out.push(n as u8);
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc4648_vectors() {
        assert_eq!(encode(b""), "");
        assert_eq!(encode(b"f"), "Zg==");
        assert_eq!(encode(b"fo"), "Zm8=");
        assert_eq!(encode(b"foo"), "Zm9v");
        assert_eq!(encode(b"foob"), "Zm9vYg==");
        assert_eq!(encode(b"fooba"), "Zm9vYmE=");
        assert_eq!(encode(b"foobar"), "Zm9vYmFy");
    }

    #[test]
    fn decode_inverts_encode() {
        for data in [
            &b""[..],
            b"f",
            b"fo",
            b"foo",
            b"\x00\xff\x7f\x80",
            b"hello world!",
        ] {
            assert_eq!(decode(&encode(data)).unwrap(), data);
        }
    }

    #[test]
    fn decode_tolerates_whitespace() {
        assert_eq!(decode("Zm9v\nYmFy").unwrap(), b"foobar");
        assert_eq!(decode("  Zg==  ").unwrap(), b"f");
    }

    #[test]
    fn decode_rejects_malformed() {
        assert!(decode("Zg=").is_none(), "bad length");
        assert!(decode("Z$==").is_none(), "bad alphabet");
        assert!(decode("====").is_none(), "too much padding");
        assert!(decode("Zg==Zg==").is_none(), "padding mid-stream");
    }

    #[test]
    fn all_byte_values_roundtrip() {
        let data: Vec<u8> = (0..=255u8).collect();
        assert_eq!(decode(&encode(&data)).unwrap(), data);
    }
}
