//! The hybrid XML message wrapping every transferred object — Figure 3 of
//! the paper.
//!
//! "An XML message encompassing the object is sent instead of only the
//! object itself. This XML message consists of information about the
//! types of the object (type names and download paths of their
//! implementations) and includes the SOAP or binary serialized object."
//!
//! An [`ObjectEnvelope`] therefore carries: the root type's name + GUID,
//! the download paths for its type description and its assembly (code),
//! the same information for every *referenced* assembly (Figure 3's
//! "Assembly B information"), and the serialized payload in either
//! format.

use pti_metamodel::{Guid, TypeName};
use pti_xml::Element;

use crate::base64;
use crate::error::{Result, SerializeError};

/// Which serializer produced the embedded payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PayloadFormat {
    /// SOAP-style XML (human readable, verbose).
    #[default]
    Soap,
    /// Compact binary (base64-embedded in the XML message).
    Binary,
}

impl PayloadFormat {
    /// Wire token for the `format` attribute.
    pub fn as_str(self) -> &'static str {
        match self {
            PayloadFormat::Soap => "soap",
            PayloadFormat::Binary => "binary",
        }
    }
}

/// The serialized object body inside an envelope.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// An inline SOAP `<Envelope>` element.
    Soap(Element),
    /// Binary-formatter output.
    Binary(Vec<u8>),
}

impl Payload {
    /// The format tag of this payload.
    pub fn format(&self) -> PayloadFormat {
        match self {
            Payload::Soap(_) => PayloadFormat::Soap,
            Payload::Binary(_) => PayloadFormat::Binary,
        }
    }

    /// Approximate wire size of the payload alone, in bytes.
    pub fn wire_size(&self) -> usize {
        match self {
            Payload::Soap(e) => e.wire_size(),
            Payload::Binary(b) => base64::encode(b).len(),
        }
    }
}

/// Identification of one assembly a transferred object depends on: where
/// to fetch its type description and its code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AssemblyRef {
    /// Assembly (bundle) name.
    pub name: String,
    /// Download path for the type description(s).
    pub description_path: String,
    /// Download path for the code.
    pub assembly_path: String,
    /// Content identity of the assembly (hex), so receivers recognize
    /// code they already installed from a different path.
    pub content_hash: String,
}

/// The hybrid message of Figure 3.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectEnvelope {
    /// Full name of the root object's type.
    pub type_name: TypeName,
    /// Identity of the root object's type.
    pub type_guid: Guid,
    /// Download information for the root type's assembly plus every
    /// assembly of types reachable from the object (Figure 3 lists
    /// "Assembly A information" and "Assembly B information").
    pub assemblies: Vec<AssemblyRef>,
    /// The serialized object.
    pub payload: Payload,
}

impl ObjectEnvelope {
    /// Renders the envelope to its XML wire element.
    pub fn to_xml(&self) -> Element {
        let mut root = Element::new("ptiMessage")
            .attr("version", "1")
            .attr("type", self.type_name.full())
            .attr("guid", self.type_guid.to_string());
        for a in &self.assemblies {
            root.push_child(
                Element::new("assembly")
                    .attr("name", &a.name)
                    .attr("description", &a.description_path)
                    .attr("code", &a.assembly_path)
                    .attr("hash", &a.content_hash),
            );
        }
        let payload = match &self.payload {
            Payload::Soap(e) => Element::new("payload")
                .attr("format", "soap")
                .child(e.clone()),
            Payload::Binary(b) => Element::new("payload")
                .attr("format", "binary")
                .text(base64::encode(b)),
        };
        root.push_child(payload);
        root
    }

    /// Renders to the compact XML string.
    pub fn to_string_compact(&self) -> String {
        self.to_xml().to_compact()
    }

    /// Total wire size of the message in bytes.
    pub fn wire_size(&self) -> usize {
        self.to_xml().wire_size()
    }

    /// Parses an envelope from its XML element.
    ///
    /// # Errors
    /// Schema violations, unknown versions or formats, bad base64.
    pub fn from_xml(el: &Element) -> Result<ObjectEnvelope> {
        if el.name != "ptiMessage" {
            return Err(SerializeError::Malformed(format!(
                "expected <ptiMessage>, got <{}>",
                el.name
            )));
        }
        match el.get_attr("version") {
            Some("1") => {}
            Some(v) => {
                return Err(SerializeError::UnsupportedFormat(format!(
                    "message version {v}"
                )))
            }
            None => return Err(SerializeError::Malformed("missing version".into())),
        }
        let type_name = TypeName::new(
            el.get_attr("type")
                .ok_or_else(|| SerializeError::Malformed("missing type".into()))?,
        );
        let type_guid: Guid = el
            .get_attr("guid")
            .and_then(|g| g.parse().ok())
            .ok_or_else(|| SerializeError::Malformed("missing or bad guid".into()))?;
        let assemblies = el
            .find_all("assembly")
            .map(|a| {
                Ok(AssemblyRef {
                    name: a
                        .get_attr("name")
                        .ok_or_else(|| SerializeError::Malformed("assembly missing name".into()))?
                        .to_string(),
                    description_path: a
                        .get_attr("description")
                        .ok_or_else(|| {
                            SerializeError::Malformed("assembly missing description path".into())
                        })?
                        .to_string(),
                    assembly_path: a
                        .get_attr("code")
                        .ok_or_else(|| {
                            SerializeError::Malformed("assembly missing code path".into())
                        })?
                        .to_string(),
                    content_hash: a.get_attr("hash").unwrap_or_default().to_string(),
                })
            })
            .collect::<Result<Vec<_>>>()?;
        let pe = el
            .find("payload")
            .ok_or_else(|| SerializeError::Malformed("missing payload".into()))?;
        let payload = match pe.get_attr("format") {
            Some("soap") => Payload::Soap(
                pe.elements()
                    .next()
                    .cloned()
                    .ok_or_else(|| SerializeError::Malformed("empty soap payload".into()))?,
            ),
            Some("binary") => Payload::Binary(
                base64::decode(&pe.text_content())
                    .ok_or_else(|| SerializeError::Malformed("bad base64 payload".into()))?,
            ),
            other => {
                return Err(SerializeError::UnsupportedFormat(format!(
                    "payload format {other:?}"
                )))
            }
        };
        Ok(ObjectEnvelope {
            type_name,
            type_guid,
            assemblies,
            payload,
        })
    }

    /// Parses from the XML string form.
    pub fn from_string(xml: &str) -> Result<ObjectEnvelope> {
        Self::from_xml(&pti_xml::parse(xml)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(payload: Payload) -> ObjectEnvelope {
        ObjectEnvelope {
            type_name: TypeName::new("Acme.Person"),
            type_guid: Guid::derive("Acme.Person", "vendor-a"),
            assemblies: vec![
                AssemblyRef {
                    name: "acme-person".into(),
                    description_path: "pti://peer-1/desc/acme-person".into(),
                    assembly_path: "pti://peer-1/asm/acme-person".into(),
                    content_hash: "deadbeef".into(),
                },
                AssemblyRef {
                    name: "acme-address".into(),
                    description_path: "pti://peer-1/desc/acme-address".into(),
                    assembly_path: "pti://peer-1/asm/acme-address".into(),
                    content_hash: "cafebabe".into(),
                },
            ],
            payload,
        }
    }

    #[test]
    fn soap_envelope_roundtrips() {
        let env = sample(Payload::Soap(
            Element::new("Envelope").child(Element::new("Body").child(Element::new("null"))),
        ));
        let xml = env.to_string_compact();
        let back = ObjectEnvelope::from_string(&xml).unwrap();
        assert_eq!(back, env);
        assert_eq!(back.payload.format(), PayloadFormat::Soap);
    }

    #[test]
    fn binary_envelope_roundtrips() {
        let env = sample(Payload::Binary(vec![0, 1, 2, 250, 251, 252]));
        let xml = env.to_string_compact();
        assert!(!xml.contains('\u{0}'), "binary is base64-embedded");
        let back = ObjectEnvelope::from_string(&xml).unwrap();
        assert_eq!(back, env);
        assert_eq!(back.payload.format(), PayloadFormat::Binary);
    }

    #[test]
    fn envelope_lists_all_assemblies() {
        // Figure 3: the message carries assembly info for A and for the
        // nested B.
        let env = sample(Payload::Binary(vec![]));
        let back = ObjectEnvelope::from_string(&env.to_string_compact()).unwrap();
        assert_eq!(back.assemblies.len(), 2);
        assert_eq!(back.assemblies[1].name, "acme-address");
    }

    #[test]
    fn wire_size_positive_and_stable() {
        let env = sample(Payload::Binary(vec![1, 2, 3]));
        assert!(env.wire_size() > 100);
        assert_eq!(env.wire_size(), env.wire_size());
    }

    #[test]
    fn rejects_malformed() {
        assert!(ObjectEnvelope::from_string("<wrong/>").is_err());
        assert!(ObjectEnvelope::from_string("<ptiMessage version=\"9\"/>").is_err());
        assert!(
            ObjectEnvelope::from_string(
                "<ptiMessage version=\"1\" type=\"T\" guid=\"00000000000000000000000000000000\"/>"
            )
            .is_err(),
            "missing payload"
        );
        let bad_b64 = r#"<ptiMessage version="1" type="T" guid="00000000000000000000000000000001"><payload format="binary">!!!</payload></ptiMessage>"#;
        assert!(ObjectEnvelope::from_string(bad_b64).is_err());
        let bad_fmt = r#"<ptiMessage version="1" type="T" guid="00000000000000000000000000000001"><payload format="yaml"/></ptiMessage>"#;
        assert!(matches!(
            ObjectEnvelope::from_string(bad_fmt),
            Err(SerializeError::UnsupportedFormat(_))
        ));
    }
}
