//! The hybrid XML message wrapping every transferred object — Figure 3 of
//! the paper.
//!
//! "An XML message encompassing the object is sent instead of only the
//! object itself. This XML message consists of information about the
//! types of the object (type names and download paths of their
//! implementations) and includes the SOAP or binary serialized object."
//!
//! An [`ObjectEnvelope`] therefore carries: the root type's name + GUID,
//! the download paths for its type description and its assembly (code),
//! the same information for every *referenced* assembly (Figure 3's
//! "Assembly B information"), and the serialized payload in either
//! format.

use pti_metamodel::{Guid, TypeName};
use pti_xml::Element;

use crate::base64;
use crate::binary::{get_str, get_varint, put_str, put_varint};
use crate::cursor::{GetBuf, PutBuf};
use crate::error::{Result, SerializeError};

/// Magic prefix of the compact binary (`PTIB`-family) envelope encoding.
pub const PTIB_ENVELOPE_MAGIC: &[u8; 4] = b"PTIE";
/// Version 2 prefix-compresses the assembly download table; decoders
/// still accept version-1 bytes (full paths per entry).
const PTIB_ENVELOPE_VERSION: u8 = 2;

/// Longest common prefix of a set of strings, shrunk to a UTF-8 char
/// boundary so the suffixes stay valid `&str` slices. Download paths in
/// one envelope repeat the publisher's `pti://peer-N/` stem, so this is
/// typically the whole stem.
fn common_prefix_len<'a>(paths: impl Iterator<Item = &'a str>) -> usize {
    let mut paths = paths.peekable();
    let Some(first) = paths.next() else { return 0 };
    let mut len = first.len();
    for p in paths {
        len = len.min(
            first
                .bytes()
                .zip(p.bytes())
                .take_while(|(a, b)| a == b)
                .count(),
        );
    }
    while !first.is_char_boundary(len) {
        len -= 1;
    }
    len
}

/// Which encoding an envelope travels with on the wire.
///
/// The binary form is the default object wire format (the paper's
/// "indirect evaluation of the .NET serialization mechanisms" already
/// argues the binary formatter beats the SOAP/XML form); the XML form
/// remains both a *decode fallback* (receivers sniff the magic and
/// accept either) and the cross-language interchange representation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EnvelopeWireFormat {
    /// Compact length-prefixed binary with the [`PTIB_ENVELOPE_MAGIC`]
    /// prefix; binary payloads ride raw (no base64 expansion).
    #[default]
    Ptib,
    /// The human-readable `<ptiMessage>` XML form of Figure 3.
    Xml,
}

/// Which serializer produced the embedded payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PayloadFormat {
    /// SOAP-style XML (human readable, verbose).
    #[default]
    Soap,
    /// Compact binary (base64-embedded in the XML message).
    Binary,
}

impl PayloadFormat {
    /// Wire token for the `format` attribute.
    pub fn as_str(self) -> &'static str {
        match self {
            PayloadFormat::Soap => "soap",
            PayloadFormat::Binary => "binary",
        }
    }
}

/// The serialized object body inside an envelope.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// An inline SOAP `<Envelope>` element.
    Soap(Element),
    /// Binary-formatter output.
    Binary(Vec<u8>),
}

impl Payload {
    /// The format tag of this payload.
    pub fn format(&self) -> PayloadFormat {
        match self {
            Payload::Soap(_) => PayloadFormat::Soap,
            Payload::Binary(_) => PayloadFormat::Binary,
        }
    }

    /// Approximate wire size of the payload alone, in bytes.
    pub fn wire_size(&self) -> usize {
        match self {
            Payload::Soap(e) => e.wire_size(),
            Payload::Binary(b) => base64::encode(b).len(),
        }
    }
}

/// Identification of one assembly a transferred object depends on: where
/// to fetch its type description and its code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AssemblyRef {
    /// Assembly (bundle) name.
    pub name: String,
    /// Download path for the type description(s).
    pub description_path: String,
    /// Download path for the code.
    pub assembly_path: String,
    /// Content identity of the assembly (hex), so receivers recognize
    /// code they already installed from a different path.
    pub content_hash: String,
}

/// The hybrid message of Figure 3.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectEnvelope {
    /// Full name of the root object's type.
    pub type_name: TypeName,
    /// Identity of the root object's type.
    pub type_guid: Guid,
    /// Download information for the root type's assembly plus every
    /// assembly of types reachable from the object (Figure 3 lists
    /// "Assembly A information" and "Assembly B information").
    pub assemblies: Vec<AssemblyRef>,
    /// The serialized object.
    pub payload: Payload,
}

impl ObjectEnvelope {
    /// Renders the envelope to its XML wire element.
    pub fn to_xml(&self) -> Element {
        let mut root = Element::new("ptiMessage")
            .attr("version", "1")
            .attr("type", self.type_name.full())
            .attr("guid", self.type_guid.to_string());
        for a in &self.assemblies {
            root.push_child(
                Element::new("assembly")
                    .attr("name", &a.name)
                    .attr("description", &a.description_path)
                    .attr("code", &a.assembly_path)
                    .attr("hash", &a.content_hash),
            );
        }
        let payload = match &self.payload {
            Payload::Soap(e) => Element::new("payload")
                .attr("format", "soap")
                .child(e.clone()),
            Payload::Binary(b) => Element::new("payload")
                .attr("format", "binary")
                .text(base64::encode(b)),
        };
        root.push_child(payload);
        root
    }

    /// Renders to the compact XML string.
    pub fn to_string_compact(&self) -> String {
        self.to_xml().to_compact()
    }

    /// Total wire size of the message in bytes.
    pub fn wire_size(&self) -> usize {
        self.to_xml().wire_size()
    }

    /// Parses an envelope from its XML element.
    ///
    /// # Errors
    /// Schema violations, unknown versions or formats, bad base64.
    pub fn from_xml(el: &Element) -> Result<ObjectEnvelope> {
        if el.name != "ptiMessage" {
            return Err(SerializeError::Malformed(format!(
                "expected <ptiMessage>, got <{}>",
                el.name
            )));
        }
        match el.get_attr("version") {
            Some("1") => {}
            Some(v) => {
                return Err(SerializeError::UnsupportedFormat(format!(
                    "message version {v}"
                )))
            }
            None => return Err(SerializeError::Malformed("missing version".into())),
        }
        let type_name = TypeName::new(
            el.get_attr("type")
                .ok_or_else(|| SerializeError::Malformed("missing type".into()))?,
        );
        let type_guid: Guid = el
            .get_attr("guid")
            .and_then(|g| g.parse().ok())
            .ok_or_else(|| SerializeError::Malformed("missing or bad guid".into()))?;
        let assemblies = el
            .find_all("assembly")
            .map(|a| {
                Ok(AssemblyRef {
                    name: a
                        .get_attr("name")
                        .ok_or_else(|| SerializeError::Malformed("assembly missing name".into()))?
                        .to_string(),
                    description_path: a
                        .get_attr("description")
                        .ok_or_else(|| {
                            SerializeError::Malformed("assembly missing description path".into())
                        })?
                        .to_string(),
                    assembly_path: a
                        .get_attr("code")
                        .ok_or_else(|| {
                            SerializeError::Malformed("assembly missing code path".into())
                        })?
                        .to_string(),
                    content_hash: a.get_attr("hash").unwrap_or_default().to_string(),
                })
            })
            .collect::<Result<Vec<_>>>()?;
        let pe = el
            .find("payload")
            .ok_or_else(|| SerializeError::Malformed("missing payload".into()))?;
        let payload = match pe.get_attr("format") {
            Some("soap") => Payload::Soap(
                pe.elements()
                    .next()
                    .cloned()
                    .ok_or_else(|| SerializeError::Malformed("empty soap payload".into()))?,
            ),
            Some("binary") => Payload::Binary(
                base64::decode(&pe.text_content())
                    .ok_or_else(|| SerializeError::Malformed("bad base64 payload".into()))?,
            ),
            other => {
                return Err(SerializeError::UnsupportedFormat(format!(
                    "payload format {other:?}"
                )))
            }
        };
        Ok(ObjectEnvelope {
            type_name,
            type_guid,
            assemblies,
            payload,
        })
    }

    /// Parses from the XML string form.
    pub fn from_string(xml: &str) -> Result<ObjectEnvelope> {
        Self::from_xml(&pti_xml::parse(xml)?)
    }

    /// Whether wire bytes carry the binary envelope encoding (sniffed by
    /// magic — the dispatch receivers use to accept both forms).
    pub fn is_ptib(bytes: &[u8]) -> bool {
        bytes.starts_with(PTIB_ENVELOPE_MAGIC)
    }

    /// Encodes to the requested wire form: compact binary or XML text.
    pub fn encode_wire(&self, wire: EnvelopeWireFormat) -> Vec<u8> {
        match wire {
            EnvelopeWireFormat::Ptib => self.to_ptib(),
            EnvelopeWireFormat::Xml => self.to_string_compact().into_bytes(),
        }
    }

    /// Decodes either wire form, sniffing the binary magic first and
    /// falling back to XML text (the cross-language form).
    ///
    /// # Errors
    /// Malformed input in whichever encoding the bytes claim to be.
    pub fn decode_wire(bytes: &[u8]) -> Result<ObjectEnvelope> {
        if Self::is_ptib(bytes) {
            return Self::from_ptib(bytes);
        }
        let text = std::str::from_utf8(bytes)
            .map_err(|_| SerializeError::Malformed("envelope neither binary nor utf8".into()))?;
        Self::from_string(text)
    }

    /// Encodes to the compact binary wire form: magic + version, the
    /// root type's name and GUID, the assembly download table, then the
    /// payload — SOAP payloads as inline XML text, binary payloads as
    /// raw `PTIB` bytes (no base64 expansion, the big win over the XML
    /// envelope). All lengths are varints.
    ///
    /// The download table is prefix-compressed (version 2): the longest
    /// common prefix of every description/assembly path is written once
    /// and each entry carries only its suffixes — the `pti://peer-N/`
    /// stem every path repeats is thus paid for once per envelope, not
    /// once per path.
    pub fn to_ptib(&self) -> Vec<u8> {
        let mut buf = PutBuf::with_capacity(64 + self.payload.wire_size());
        buf.put_slice(PTIB_ENVELOPE_MAGIC);
        buf.put_u8(PTIB_ENVELOPE_VERSION);
        put_str(&mut buf, self.type_name.full());
        buf.put_slice(&self.type_guid.to_bytes());
        put_varint(&mut buf, self.assemblies.len() as u64);
        if !self.assemblies.is_empty() {
            let plen = common_prefix_len(
                self.assemblies
                    .iter()
                    .flat_map(|a| [a.description_path.as_str(), a.assembly_path.as_str()]),
            );
            let prefix = &self.assemblies[0].description_path[..plen];
            put_str(&mut buf, prefix);
            for a in &self.assemblies {
                put_str(&mut buf, &a.name);
                put_str(&mut buf, &a.description_path[plen..]);
                put_str(&mut buf, &a.assembly_path[plen..]);
                put_str(&mut buf, &a.content_hash);
            }
        }
        match &self.payload {
            Payload::Soap(el) => {
                buf.put_u8(0);
                put_str(&mut buf, &el.to_compact());
            }
            Payload::Binary(b) => {
                buf.put_u8(1);
                put_varint(&mut buf, b.len() as u64);
                buf.put_slice(b);
            }
        }
        buf.into_vec()
    }

    /// Decodes the compact binary wire form produced by
    /// [`to_ptib`](Self::to_ptib).
    ///
    /// # Errors
    /// Wrong magic/version, truncation, hostile length prefixes.
    pub fn from_ptib(bytes: &[u8]) -> Result<ObjectEnvelope> {
        let mut buf = GetBuf::new(bytes);
        if buf.remaining() < PTIB_ENVELOPE_MAGIC.len() + 1 {
            return Err(SerializeError::UnsupportedFormat(
                "envelope too short".into(),
            ));
        }
        let mut magic = [0u8; 4];
        buf.copy_to_slice(&mut magic);
        if &magic != PTIB_ENVELOPE_MAGIC {
            return Err(SerializeError::UnsupportedFormat(
                "bad envelope magic".into(),
            ));
        }
        let version = buf.get_u8();
        if version != 1 && version != PTIB_ENVELOPE_VERSION {
            return Err(SerializeError::UnsupportedFormat(format!(
                "envelope version {version}"
            )));
        }
        let type_name = TypeName::new(get_str(&mut buf)?);
        if buf.remaining() < 16 {
            return Err(SerializeError::Malformed("truncated guid".into()));
        }
        let mut gb = [0u8; 16];
        buf.copy_to_slice(&mut gb);
        let type_guid = Guid::from_bytes(gb);
        let count = get_varint(&mut buf)? as usize;
        // Each assembly entry is at least 4 length bytes; a hostile count
        // cannot force a huge pre-allocation.
        if count > buf.remaining() / 4 + 1 {
            return Err(SerializeError::Malformed("assembly count too large".into()));
        }
        let mut assemblies = Vec::with_capacity(count);
        // Version 2 hoists the paths' longest common prefix before the
        // table; version 1 entries carry full paths (empty prefix).
        let prefix = if version >= 2 && count > 0 {
            get_str(&mut buf)?
        } else {
            String::new()
        };
        for _ in 0..count {
            assemblies.push(AssemblyRef {
                name: get_str(&mut buf)?,
                description_path: format!("{prefix}{}", get_str(&mut buf)?),
                assembly_path: format!("{prefix}{}", get_str(&mut buf)?),
                content_hash: get_str(&mut buf)?,
            });
        }
        if !buf.has_remaining() {
            return Err(SerializeError::Malformed("missing payload".into()));
        }
        let payload = match buf.get_u8() {
            0 => Payload::Soap(pti_xml::parse(&get_str(&mut buf)?)?),
            1 => {
                let len = get_varint(&mut buf)? as usize;
                if len > buf.remaining() {
                    return Err(SerializeError::Malformed("truncated payload".into()));
                }
                Payload::Binary(buf.take(len).to_vec())
            }
            other => {
                return Err(SerializeError::UnsupportedFormat(format!(
                    "payload tag {other}"
                )))
            }
        };
        if buf.has_remaining() {
            return Err(SerializeError::Malformed("trailing bytes".into()));
        }
        Ok(ObjectEnvelope {
            type_name,
            type_guid,
            assemblies,
            payload,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(payload: Payload) -> ObjectEnvelope {
        ObjectEnvelope {
            type_name: TypeName::new("Acme.Person"),
            type_guid: Guid::derive("Acme.Person", "vendor-a"),
            assemblies: vec![
                AssemblyRef {
                    name: "acme-person".into(),
                    description_path: "pti://peer-1/desc/acme-person".into(),
                    assembly_path: "pti://peer-1/asm/acme-person".into(),
                    content_hash: "deadbeef".into(),
                },
                AssemblyRef {
                    name: "acme-address".into(),
                    description_path: "pti://peer-1/desc/acme-address".into(),
                    assembly_path: "pti://peer-1/asm/acme-address".into(),
                    content_hash: "cafebabe".into(),
                },
            ],
            payload,
        }
    }

    #[test]
    fn soap_envelope_roundtrips() {
        let env = sample(Payload::Soap(
            Element::new("Envelope").child(Element::new("Body").child(Element::new("null"))),
        ));
        let xml = env.to_string_compact();
        let back = ObjectEnvelope::from_string(&xml).unwrap();
        assert_eq!(back, env);
        assert_eq!(back.payload.format(), PayloadFormat::Soap);
    }

    #[test]
    fn binary_envelope_roundtrips() {
        let env = sample(Payload::Binary(vec![0, 1, 2, 250, 251, 252]));
        let xml = env.to_string_compact();
        assert!(!xml.contains('\u{0}'), "binary is base64-embedded");
        let back = ObjectEnvelope::from_string(&xml).unwrap();
        assert_eq!(back, env);
        assert_eq!(back.payload.format(), PayloadFormat::Binary);
    }

    #[test]
    fn envelope_lists_all_assemblies() {
        // Figure 3: the message carries assembly info for A and for the
        // nested B.
        let env = sample(Payload::Binary(vec![]));
        let back = ObjectEnvelope::from_string(&env.to_string_compact()).unwrap();
        assert_eq!(back.assemblies.len(), 2);
        assert_eq!(back.assemblies[1].name, "acme-address");
    }

    #[test]
    fn wire_size_positive_and_stable() {
        let env = sample(Payload::Binary(vec![1, 2, 3]));
        assert!(env.wire_size() > 100);
        assert_eq!(env.wire_size(), env.wire_size());
    }

    #[test]
    fn ptib_envelope_roundtrips_both_payload_kinds() {
        for env in [
            sample(Payload::Binary(vec![0, 1, 2, 250, 251, 252])),
            sample(Payload::Soap(
                Element::new("Envelope").child(Element::new("Body").child(Element::new("null"))),
            )),
        ] {
            let bytes = env.to_ptib();
            assert!(ObjectEnvelope::is_ptib(&bytes));
            let back = ObjectEnvelope::from_ptib(&bytes).unwrap();
            assert_eq!(back, env);
            // decode_wire sniffs the magic...
            assert_eq!(ObjectEnvelope::decode_wire(&bytes).unwrap(), env);
            // ...and still accepts the XML fallback form.
            let xml = env.encode_wire(EnvelopeWireFormat::Xml);
            assert!(!ObjectEnvelope::is_ptib(&xml));
            assert_eq!(ObjectEnvelope::decode_wire(&xml).unwrap(), env);
        }
    }

    #[test]
    fn ptib_envelope_is_much_smaller_than_xml() {
        // A realistic routed event: a small binary payload under a
        // metadata-heavy envelope (type ids, download paths). XML framing
        // plus base64 costs the XML form at least 1.5x here; the R3
        // experiment gates the full-workload reduction at 2x.
        let env = sample(Payload::Binary(vec![0xAB; 48]));
        let bin = env.to_ptib();
        let xml = env.encode_wire(EnvelopeWireFormat::Xml);
        assert!(
            3 * bin.len() <= 2 * xml.len(),
            "binary {} B vs xml {} B",
            bin.len(),
            xml.len()
        );
    }

    #[test]
    fn ptib_envelope_rejects_wrong_magic_and_short_buffers() {
        let env = sample(Payload::Binary(vec![1, 2, 3]));
        let bytes = env.to_ptib();
        // Wrong magic.
        let mut wrong = bytes.clone();
        wrong[0] = b'X';
        assert!(matches!(
            ObjectEnvelope::from_ptib(&wrong),
            Err(SerializeError::UnsupportedFormat(_))
        ));
        // Wrong version.
        let mut wrong = bytes.clone();
        wrong[4] = 99;
        assert!(ObjectEnvelope::from_ptib(&wrong).is_err());
        // Every truncation errors, never panics.
        for cut in 0..bytes.len() {
            assert!(ObjectEnvelope::from_ptib(&bytes[..cut]).is_err(), "{cut}");
        }
        // Trailing garbage rejected.
        let mut extra = bytes.clone();
        extra.push(0);
        assert!(ObjectEnvelope::from_ptib(&extra).is_err());
        // A hostile assembly count cannot force a huge pre-allocation:
        // magic + version + empty name + guid + count u64::MAX.
        let mut evil = PTIB_ENVELOPE_MAGIC.to_vec();
        evil.push(PTIB_ENVELOPE_VERSION);
        evil.push(0); // empty type name
        evil.extend_from_slice(&[0u8; 16]);
        evil.extend([0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01]);
        assert!(ObjectEnvelope::from_ptib(&evil).is_err());
    }

    #[test]
    fn ptib_prefix_compression_shares_the_download_stem() {
        // The sample's four paths all repeat `pti://peer-1/`; version 2
        // writes that stem once. Compare against a hand-built version-1
        // encoding of the same envelope (full paths per entry).
        let env = sample(Payload::Binary(vec![7; 16]));
        let v2 = env.to_ptib();

        let mut v1 = PutBuf::with_capacity(256);
        v1.put_slice(PTIB_ENVELOPE_MAGIC);
        v1.put_u8(1);
        put_str(&mut v1, env.type_name.full());
        v1.put_slice(&env.type_guid.to_bytes());
        put_varint(&mut v1, env.assemblies.len() as u64);
        for a in &env.assemblies {
            put_str(&mut v1, &a.name);
            put_str(&mut v1, &a.description_path);
            put_str(&mut v1, &a.assembly_path);
            put_str(&mut v1, &a.content_hash);
        }
        let Payload::Binary(b) = &env.payload else {
            unreachable!()
        };
        v1.put_u8(1);
        put_varint(&mut v1, b.len() as u64);
        v1.put_slice(b);
        let v1 = v1.into_vec();

        // Old bytes still decode to the same envelope (wire compat)...
        assert_eq!(ObjectEnvelope::from_ptib(&v1).unwrap(), env);
        // ...and the new encoding strictly beats them: 4 paths share a
        // 13-byte stem written once instead of 4 times.
        let stem = "pti://peer-1/".len();
        assert!(
            v1.len() - v2.len() >= (3 * stem) - 2,
            "v1 {} B vs v2 {} B",
            v1.len(),
            v2.len()
        );
    }

    #[test]
    fn ptib_prefix_compression_handles_disjoint_and_multibyte_paths() {
        // No shared stem: the prefix degenerates to empty and everything
        // round-trips.
        let mut env = sample(Payload::Binary(vec![1]));
        env.assemblies[0].description_path = "alpha/desc".into();
        env.assemblies[0].assembly_path = "beta/asm".into();
        env.assemblies[1].description_path = "gamma/desc".into();
        env.assemblies[1].assembly_path = "delta/asm".into();
        assert_eq!(ObjectEnvelope::from_ptib(&env.to_ptib()).unwrap(), env);

        // A multi-byte char straddling the common run: the prefix must
        // retreat to a char boundary, not split the codepoint.
        let mut env = sample(Payload::Binary(vec![1]));
        env.assemblies[0].description_path = "päth/a".into();
        env.assemblies[0].assembly_path = "päth/b".into();
        env.assemblies[1].description_path = "pâth/c".into();
        env.assemblies[1].assembly_path = "pâth/d".into();
        assert_eq!(ObjectEnvelope::from_ptib(&env.to_ptib()).unwrap(), env);

        // An envelope with no assemblies at all writes no prefix.
        let mut env = sample(Payload::Binary(vec![1]));
        env.assemblies.clear();
        assert_eq!(ObjectEnvelope::from_ptib(&env.to_ptib()).unwrap(), env);
    }

    #[test]
    fn rejects_malformed() {
        assert!(ObjectEnvelope::from_string("<wrong/>").is_err());
        assert!(ObjectEnvelope::from_string("<ptiMessage version=\"9\"/>").is_err());
        assert!(
            ObjectEnvelope::from_string(
                "<ptiMessage version=\"1\" type=\"T\" guid=\"00000000000000000000000000000000\"/>"
            )
            .is_err(),
            "missing payload"
        );
        let bad_b64 = r#"<ptiMessage version="1" type="T" guid="00000000000000000000000000000001"><payload format="binary">!!!</payload></ptiMessage>"#;
        assert!(ObjectEnvelope::from_string(bad_b64).is_err());
        let bad_fmt = r#"<ptiMessage version="1" type="T" guid="00000000000000000000000000000001"><payload format="yaml"/></ptiMessage>"#;
        assert!(matches!(
            ObjectEnvelope::from_string(bad_fmt),
            Err(SerializeError::UnsupportedFormat(_))
        ));
    }
}
