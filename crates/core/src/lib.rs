//! # pti — Pragmatic Type Interoperability
//!
//! A from-scratch Rust reproduction of *Pragmatic Type Interoperability*
//! (Baehni, Eugster, Guerraoui, Altherr; ICDCS 2003): making types that
//! "aim at representing the same software module" — written by different
//! programmers, with different member names, on different platforms —
//! usable as one type in a dynamic distributed system.
//!
//! This umbrella crate re-exports the whole stack:
//!
//! | layer | crate | paper section |
//! |---|---|---|
//! | runtime type system + introspection | [`metamodel`] | §5 (substrate) |
//! | XML substrate | [`xml`] | §5.2 |
//! | implicit structural conformance | [`conformance`] | §4, Figure 2 |
//! | type-description + object serializers | [`serialize`] | §5–6, Figure 3 |
//! | dynamic proxies | [`proxy`] | §6, §7.1 |
//! | simulated peers/network | [`net`] | testbed substitute |
//! | optimistic transport protocol | [`transport`] | §3, Figure 1 |
//! | pass-by-reference remoting | [`remoting`] | §6.2 |
//! | type-based publish/subscribe | [`tps`] | §8 |
//! | borrow/lend resources | [`borrowlend`] | §8 |
//!
//! The [`samples`] module carries the paper's `Person` types and the
//! seeded workload generators the experiment harness sweeps over;
//! [`prelude`] pulls in the names almost every program needs.
//!
//! ## Quickstart
//!
//! ```
//! use pti_core::prelude::*;
//! use pti_core::samples;
//!
//! // Two peers, two vendors, one logical Person module.
//! let mut swarm = Swarm::new(NetConfig::default());
//! let alice = swarm.add_peer(ConformanceConfig::pragmatic());
//! let bob = swarm.add_peer(ConformanceConfig::pragmatic());
//!
//! let a_def = samples::person_vendor_a();
//! swarm.publish(alice, samples::person_assembly(&a_def))?;
//! let b_def = samples::person_vendor_b();
//! swarm.peer_mut(bob).subscribe(TypeDescription::from_def(&b_def));
//!
//! let v = samples::make_person(&mut swarm.peer_mut(alice).runtime, "ada");
//! swarm.send_object(alice, bob, &v, PayloadFormat::Binary)?;
//! swarm.run()?;
//!
//! let ds = swarm.peer_mut(bob).take_deliveries();
//! let Delivery::Accepted { proxy: Some(p), .. } = &ds[0] else { panic!() };
//! assert_eq!(
//!     p.invoke(&mut swarm.peer_mut(bob).runtime, "getPersonName", &[])?.as_str()?,
//!     "ada"
//! );
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub use pti_borrowlend as borrowlend;
pub use pti_conformance as conformance;
pub use pti_metamodel as metamodel;
pub use pti_net as net;
pub use pti_proxy as proxy;
pub use pti_remoting as remoting;
pub use pti_serialize as serialize;
pub use pti_tps as tps;
pub use pti_transport as transport;
pub use pti_xml as xml;

pub mod samples;

/// The names almost every PTI program needs.
pub mod prelude {
    pub use pti_borrowlend::{Borrowed, Market};
    pub use pti_conformance::{
        Ambiguity, BehavioralReport, BehavioralTester, Conformance, ConformanceBinding,
        ConformanceChecker, ConformanceConfig, NameMatcher, NonConformance, Variance,
    };
    pub use pti_metamodel::{
        bodies, primitives, Assembly, Guid, MetamodelError, ObjHandle, ParamDef, Runtime,
        TypeDef, TypeDescription, TypeName, TypeRegistry, Value,
    };
    pub use pti_net::{NetConfig, PeerId, SimNet};
    pub use pti_proxy::{invoke_direct, DynamicProxy, ProxyError};
    pub use pti_remoting::{RemoteProxy, RemoteRef, RemotingFabric};
    pub use pti_serialize::{
        description_from_string, description_to_string, from_binary, from_soap_string,
        to_binary, to_soap_string, ObjectEnvelope, PayloadFormat,
    };
    pub use pti_tps::{EventNotification, TypedPubSub};
    pub use pti_transport::{Delivery, Peer, Swarm, TransportError};
}
