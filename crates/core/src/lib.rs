//! # pti — Pragmatic Type Interoperability
//!
//! A from-scratch Rust reproduction of *Pragmatic Type Interoperability*
//! (Baehni, Eugster, Guerraoui, Altherr; ICDCS 2003): making types that
//! "aim at representing the same software module" — written by different
//! programmers, with different member names, on different platforms —
//! usable as one type in a dynamic distributed system.
//!
//! This umbrella crate re-exports the whole stack:
//!
//! | layer | crate | paper section |
//! |---|---|---|
//! | runtime type system + introspection | [`metamodel`] | §5 (substrate) |
//! | XML substrate | [`xml`] | §5.2 |
//! | implicit structural conformance | [`conformance`] | §4, Figure 2 |
//! | type-description + object serializers | [`serialize`] | §5–6, Figure 3 |
//! | dynamic proxies | [`proxy`] | §6, §7.1 |
//! | transport fabrics (SimNet, LiveBus, ReactorNet) | [`net`] | testbed substitute |
//! | optimistic transport protocol | [`transport`] | §3, Figure 1 |
//! | pass-by-reference remoting | [`remoting`] | §6.2 |
//! | type-based publish/subscribe | [`tps`] | §8 |
//! | borrow/lend resources | [`borrowlend`] | §8 |
//!
//! The protocol engine ([`Swarm`](transport::Swarm)) is generic over the
//! [`Transport`](net::Transport) trait: the *same* optimistic-exchange
//! state machine runs deterministically on the virtual-time
//! [`SimNet`](net::SimNet) (experiments) and concurrently on the
//! threaded [`LiveBus`](net::LiveBus) (load). Applications sit on the
//! typed session layer of [`tps`]: members, publishers and
//! subscriptions, never raw envelopes.
//!
//! The [`samples`] module carries the paper's `Person` types and the
//! seeded workload generators the experiment harness sweeps over;
//! [`prelude`] pulls in the names almost every program needs.
//!
//! ## Quickstart
//!
//! ```
//! use pti_core::prelude::*;
//! use pti_core::samples;
//!
//! // Two members, two vendors, one logical Person module.
//! let tps = TypedPubSub::builder()
//!     .default_conformance(ConformanceConfig::pragmatic())
//!     .build();
//! let alice = tps.add_member();
//! let bob = tps.add_member();
//!
//! // Alice publishes vendor A's implementation and gets a typed
//! // publisher for it; Bob subscribes with vendor B's view.
//! let a_def = samples::person_vendor_a();
//! let people = alice.publisher_for(samples::person_assembly(&a_def))?;
//! let b_def = samples::person_vendor_b();
//! let sub = bob.subscribe(TypeDescription::from_def(&b_def));
//!
//! // One publish; the optimistic protocol fetches description + code.
//! people.publish_with(|p| {
//!     p.set("name", "ada")?;
//!     Ok(())
//! })?;
//! tps.run()?;
//!
//! // Bob reads the event through *his* contract.
//! let events = sub.drain();
//! assert_eq!(sub.invoke(&events[0], "getPersonName", &[])?.as_str()?, "ada");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub use pti_borrowlend as borrowlend;
pub use pti_conformance as conformance;
pub use pti_metamodel as metamodel;
pub use pti_net as net;
pub use pti_proxy as proxy;
pub use pti_remoting as remoting;
pub use pti_serialize as serialize;
pub use pti_tps as tps;
pub use pti_transport as transport;
pub use pti_xml as xml;

pub mod samples;

/// The names almost every PTI program needs.
pub mod prelude {
    pub use pti_borrowlend::{Borrowed, Market};
    pub use pti_conformance::{
        Ambiguity, BehavioralReport, BehavioralTester, Conformance, ConformanceBinding,
        ConformanceChecker, ConformanceConfig, NameMatcher, NonConformance, Variance,
    };
    pub use pti_metamodel::{
        bodies, primitives, Assembly, Guid, MetamodelError, ObjHandle, ParamDef, Runtime, TypeDef,
        TypeDescription, TypeName, TypeRegistry, Value,
    };
    pub use pti_net::{
        BridgeLink, BridgeRx, BridgeStats, BridgeTx, BusMessage, Endpoint, FaultDecision,
        FaultPlan, LiveBus, NetConfig, NetMetrics, Partition, Payload, PeerId, ReactorNet,
        ReactorStats, SessionId, SharedSimNet, SimNet, Transport,
    };
    pub use pti_proxy::{invoke_direct, DynamicProxy, ProxyError};
    pub use pti_remoting::{RemoteProxy, RemoteRef, RemotingFabric};
    pub use pti_serialize::{
        description_from_string, description_to_string, from_binary, from_soap_string, to_binary,
        to_soap_string, EnvelopeWireFormat, ObjectEnvelope, PayloadFormat,
    };
    pub use pti_tps::{
        DeliveryMode, EventBuilder, EventNotification, Member, Publisher, ShardedGroup,
        Subscription, TypedPubSub,
    };
    pub use pti_transport::{
        CodeRegistry, Delivery, DeliveryConfig, DeliveryStats, LiveSwarm, MembershipView,
        MountedSwarm, Peer, ProtocolStats, QoS, ReactorHost, ReactorSwarm, RoutingTable,
        ShardedHost, Signature, SimSwarm, Swarm, TransportError, ViewDelta,
    };
}
