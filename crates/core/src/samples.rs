//! Sample types and workload generators shared by examples, integration
//! tests and the experiment harness.
//!
//! The paper's measurements all run on "simple types" — notably the
//! `Person` type of Section 3.1 with its two vendor implementations
//! (`setName`/`getName` vs `setPersonName`/`getPersonName`). This module
//! reconstructs those exact types, plus seeded generators for the larger
//! type populations the ablation experiments sweep over.

use pti_metamodel::{bodies, primitives, Assembly, ParamDef, TypeDef, TypeDescription, Value};

/// A seeded SplitMix64 generator — all the randomness the workload
/// generators need, with zero dependencies and stable streams across
/// platforms (population determinism is part of the experiment contract).
struct SplitMix64(u64);

impl SplitMix64 {
    fn new(seed: u64) -> SplitMix64 {
        SplitMix64(seed)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// `true` with probability `p` (clamped to [0, 1]).
    fn random_bool(&mut self, p: f64) -> bool {
        // 53 uniform mantissa bits, the standard unit-interval draw.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p.clamp(0.0, 1.0)
    }

    /// A uniform draw from `0..bound`.
    fn random_below(&mut self, bound: u8) -> u8 {
        (self.next_u64() % u64::from(bound.max(1))) as u8
    }
}

/// The paper's `Person` type as vendor A writes it: `getName`/`setName`.
pub fn person_vendor_a() -> TypeDef {
    TypeDef::class("Person", "vendor-a")
        .field("name", primitives::STRING)
        .method("getName", vec![], primitives::STRING)
        .method(
            "setName",
            vec![ParamDef::new("n", primitives::STRING)],
            primitives::VOID,
        )
        .ctor(vec![])
        .ctor(vec![ParamDef::new("n", primitives::STRING)])
        .build()
}

/// The paper's `Person` type as vendor B writes it:
/// `getPersonName`/`setPersonName` — same module, different names.
pub fn person_vendor_b() -> TypeDef {
    TypeDef::class("Person", "vendor-b")
        .field("name", primitives::STRING)
        .method("getPersonName", vec![], primitives::STRING)
        .method(
            "setPersonName",
            vec![ParamDef::new("n", primitives::STRING)],
            primitives::VOID,
        )
        .ctor(vec![])
        .ctor(vec![ParamDef::new("n", primitives::STRING)])
        .build()
}

/// An installable assembly for a `Person` definition (works for either
/// vendor: bodies are wired to whatever getter/setter names the
/// definition declares).
pub fn person_assembly(def: &TypeDef) -> Assembly {
    let g = def.guid;
    let mut b = Assembly::builder(format!("{}-person", def.guid))
        .ty(def.clone())
        .ctor_body(g, 0, bodies::ctor_assign(&[]))
        .ctor_body(g, 1, bodies::ctor_assign(&["name"]));
    for m in &def.methods {
        if m.arity() == 0 {
            b = b.body(g, m.name.clone(), 0, bodies::getter("name"));
        } else {
            b = b.body(g, m.name.clone(), 1, bodies::setter("name"));
        }
    }
    b.build()
}

/// A `Person` with a nested `Address` — the Figure 3 scenario (an object
/// of type A containing an object of type B). Returns (address def,
/// person def, combined assembly).
pub fn person_with_address(salt: &str) -> (TypeDef, TypeDef, Assembly) {
    let address = TypeDef::class("Address", salt)
        .field("street", primitives::STRING)
        .field("zip", primitives::INT32)
        .method("getStreet", vec![], primitives::STRING)
        .ctor(vec![])
        .build();
    let person = TypeDef::class("Person", salt)
        .field("name", primitives::STRING)
        .field("home", "Address")
        .method("getName", vec![], primitives::STRING)
        .ctor(vec![])
        .build();
    let (ag, pg) = (address.guid, person.guid);
    let asm = Assembly::builder(format!("person-address-{salt}"))
        .ty(address.clone())
        .ty(person.clone())
        .body(ag, "getStreet", 0, bodies::getter("street"))
        .ctor_body(ag, 0, bodies::ctor_assign(&[]))
        .body(pg, "getName", 0, bodies::getter("name"))
        .ctor_body(pg, 0, bodies::ctor_assign(&[]))
        .build();
    (address, person, asm)
}

/// Instantiates a `Person` (any vendor) with the given name in a runtime
/// where its assembly is installed, returning the handle as a value.
///
/// # Panics
/// If the Person type is not installed.
pub fn make_person(rt: &mut pti_metamodel::Runtime, name: &str) -> Value {
    let h = rt
        .instantiate(&"Person".into(), &[])
        .expect("Person installed");
    rt.set_field(h, "name", Value::from(name))
        .expect("field exists");
    Value::Obj(h)
}

/// How a generated variant relates to the base interest type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VariantKind {
    /// Member names renamed with a vendor prefix token; still conformant
    /// under token matching.
    RenamedConformant,
    /// Identical structure (conformant even under exact names).
    ExactConformant,
    /// Arguments permuted (conformant with permutation search).
    PermutedConformant,
    /// A required method is missing (never conformant).
    MissingMethod,
    /// A field type changed (never conformant).
    WrongFieldType,
    /// A completely unrelated type (never conformant, different name).
    Unrelated,
}

impl VariantKind {
    /// Whether this variant should pass under the *pragmatic* profile
    /// (token-subsequence member names).
    pub fn conformant_pragmatic(self) -> bool {
        matches!(
            self,
            VariantKind::RenamedConformant
                | VariantKind::ExactConformant
                | VariantKind::PermutedConformant
        )
    }

    /// Whether this variant should pass under the *paper* profile (exact
    /// case-insensitive names).
    pub fn conformant_paper(self) -> bool {
        matches!(
            self,
            VariantKind::ExactConformant | VariantKind::PermutedConformant
        )
    }
}

/// A generated variant of the base type, with its ground truth.
#[derive(Debug, Clone)]
pub struct Variant {
    /// The variant's definition.
    pub def: TypeDef,
    /// An installable assembly for it.
    pub assembly: Assembly,
    /// Ground truth of the generator.
    pub kind: VariantKind,
}

/// The base "SensorReading" interest type used by generated populations.
pub fn sensor_interest(salt: &str) -> TypeDef {
    TypeDef::class("SensorReading", salt)
        .field("value", primitives::FLOAT64)
        .field("unit", primitives::STRING)
        .method("getValue", vec![], primitives::FLOAT64)
        .method(
            "calibrate",
            vec![
                ParamDef::new("offset", primitives::FLOAT64),
                ParamDef::new("label", primitives::STRING),
            ],
            primitives::VOID,
        )
        .ctor(vec![])
        .build()
}

/// Deterministically generates a population of `count` variants of
/// [`sensor_interest`] with roughly `conforming_ratio` of them conformant
/// under the pragmatic profile. Used by the protocol (F1) and ablation
/// (A1/A2) experiments.
pub fn generate_population(seed: u64, count: usize, conforming_ratio: f64) -> Vec<Variant> {
    let mut rng = SplitMix64::new(seed);
    (0..count)
        .map(|i| {
            let conform = rng.random_bool(conforming_ratio);
            let kind = if conform {
                match rng.random_below(3) {
                    0 => VariantKind::RenamedConformant,
                    1 => VariantKind::ExactConformant,
                    _ => VariantKind::PermutedConformant,
                }
            } else {
                match rng.random_below(3) {
                    0 => VariantKind::MissingMethod,
                    1 => VariantKind::WrongFieldType,
                    _ => VariantKind::Unrelated,
                }
            };
            build_variant(i, kind)
        })
        .collect()
}

fn build_variant(i: usize, kind: VariantKind) -> Variant {
    let salt = format!("gen-{i}");
    let def = match kind {
        VariantKind::ExactConformant => sensor_interest(&salt),
        VariantKind::RenamedConformant => TypeDef::class("SensorReading", salt.as_str())
            .field("value", primitives::FLOAT64)
            .field("unit", primitives::STRING)
            .method("getSensorValue", vec![], primitives::FLOAT64)
            .method(
                "calibrateSensor",
                vec![
                    ParamDef::new("offset", primitives::FLOAT64),
                    ParamDef::new("label", primitives::STRING),
                ],
                primitives::VOID,
            )
            .ctor(vec![])
            .build(),
        VariantKind::PermutedConformant => TypeDef::class("SensorReading", salt.as_str())
            .field("value", primitives::FLOAT64)
            .field("unit", primitives::STRING)
            .method("getValue", vec![], primitives::FLOAT64)
            .method(
                "calibrate",
                vec![
                    ParamDef::new("label", primitives::STRING),
                    ParamDef::new("offset", primitives::FLOAT64),
                ],
                primitives::VOID,
            )
            .ctor(vec![])
            .build(),
        VariantKind::MissingMethod => TypeDef::class("SensorReading", salt.as_str())
            .field("value", primitives::FLOAT64)
            .field("unit", primitives::STRING)
            .method("getValue", vec![], primitives::FLOAT64)
            .ctor(vec![])
            .build(),
        VariantKind::WrongFieldType => TypeDef::class("SensorReading", salt.as_str())
            .field("value", primitives::STRING)
            .field("unit", primitives::STRING)
            .method("getValue", vec![], primitives::FLOAT64)
            .method(
                "calibrate",
                vec![
                    ParamDef::new("offset", primitives::FLOAT64),
                    ParamDef::new("label", primitives::STRING),
                ],
                primitives::VOID,
            )
            .ctor(vec![])
            .build(),
        VariantKind::Unrelated => TypeDef::class(format!("Blob{i}"), salt.as_str())
            .field("data", primitives::STRING)
            .ctor(vec![])
            .build(),
    };
    let g = def.guid;
    let mut b = Assembly::builder(format!("gen-asm-{i}")).ty(def.clone());
    for m in &def.methods {
        let body = if m.arity() == 0 {
            bodies::getter("value")
        } else {
            bodies::constant(Value::Null)
        };
        b = b.body(g, m.name.clone(), m.arity(), body);
    }
    b = b.ctor_body(g, 0, bodies::ctor_assign(&[]));
    Variant {
        def,
        assembly: b.build(),
        kind,
    }
}

/// The `Topic{t}Event` type of one routing topic — the fixture family
/// the routing experiments (tests/routing_scale.rs, bench R1) share.
/// Topic indices yield distinct type-name token signatures, so the
/// interest router keeps the topics apart.
pub fn topic_event_def(topic: usize, salt: &str) -> TypeDef {
    TypeDef::class(format!("Topic{topic}Event"), salt)
        .field("value", primitives::FLOAT64)
        .ctor(vec![])
        .build()
}

/// An installable publisher-side assembly for [`topic_event_def`].
pub fn topic_event_assembly(topic: usize) -> Assembly {
    let def = topic_event_def(topic, "pub");
    let g = def.guid;
    Assembly::builder(format!("topic-{topic}"))
        .ty(def)
        .ctor_body(g, 0, bodies::ctor_assign(&[]))
        .build()
}

/// Descriptions for the two vendor Persons, handy in tests.
pub fn person_descriptions() -> (TypeDescription, TypeDescription) {
    (
        TypeDescription::from_def(&person_vendor_a()),
        TypeDescription::from_def(&person_vendor_b()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pti_conformance::{ConformanceChecker, ConformanceConfig};
    use pti_metamodel::{Runtime, TypeRegistry};

    #[test]
    fn vendor_persons_differ_in_identity_and_methods() {
        let a = person_vendor_a();
        let b = person_vendor_b();
        assert_ne!(a.guid, b.guid);
        assert!(a.find_method("getName", 0).is_some());
        assert!(b.find_method("getPersonName", 0).is_some());
        assert!(b.find_method("getName", 0).is_none());
    }

    #[test]
    fn person_assembly_runs_for_both_vendors() {
        for def in [person_vendor_a(), person_vendor_b()] {
            let mut rt = Runtime::new();
            person_assembly(&def).install(&mut rt).unwrap();
            let v = make_person(&mut rt, "t");
            let h = v.as_obj().unwrap();
            let getter = &def.methods[0].name;
            assert_eq!(rt.invoke(h, getter, &[]).unwrap().as_str().unwrap(), "t");
        }
    }

    #[test]
    fn population_is_deterministic() {
        let a = generate_population(7, 20, 0.5);
        let b = generate_population(7, 20, 0.5);
        assert_eq!(a.len(), 20);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.kind, y.kind);
            assert_eq!(x.def.guid, y.def.guid);
        }
        let c = generate_population(8, 20, 0.5);
        assert!(
            a.iter().zip(c.iter()).any(|(x, y)| x.kind != y.kind),
            "different seeds differ"
        );
    }

    #[test]
    fn population_ground_truth_matches_checker() {
        let interest = TypeDescription::from_def(&sensor_interest("interest"));
        let mut reg = TypeRegistry::with_builtins();
        reg.register(sensor_interest("interest")).unwrap();
        let pragmatic = ConformanceChecker::new(ConformanceConfig::pragmatic());
        let paper = ConformanceChecker::new(ConformanceConfig::paper());
        for v in generate_population(42, 60, 0.5) {
            let desc = TypeDescription::from_def(&v.def);
            assert_eq!(
                pragmatic.conforms(&desc, &interest, &reg, &reg),
                v.kind.conformant_pragmatic(),
                "pragmatic profile vs ground truth for {:?}",
                v.kind
            );
            assert_eq!(
                paper.conforms(&desc, &interest, &reg, &reg),
                v.kind.conformant_paper(),
                "paper profile vs ground truth for {:?}",
                v.kind
            );
        }
    }

    #[test]
    fn ratio_extremes() {
        assert!(generate_population(1, 30, 1.0)
            .iter()
            .all(|v| v.kind.conformant_pragmatic()));
        assert!(generate_population(1, 30, 0.0)
            .iter()
            .all(|v| !v.kind.conformant_pragmatic()));
    }

    #[test]
    fn nested_person_address_assembly_works() {
        let (_, _, asm) = person_with_address("s");
        let mut rt = Runtime::new();
        asm.install(&mut rt).unwrap();
        let ah = rt.instantiate(&"Address".into(), &[]).unwrap();
        rt.set_field(ah, "street", Value::from("Main")).unwrap();
        let ph = rt.instantiate(&"Person".into(), &[]).unwrap();
        rt.set_field(ph, "home", Value::Obj(ah)).unwrap();
        let home = rt.get_field(ph, "home").unwrap().as_obj().unwrap();
        assert_eq!(
            rt.invoke(home, "getStreet", &[]).unwrap().as_str().unwrap(),
            "Main"
        );
    }
}
