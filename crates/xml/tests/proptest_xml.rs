//! Property tests: any tree the writer can emit, the parser reads back.

// Gated: requires the external `proptest` crate, which is not
// available in this build environment. Enable the feature after
// adding the dependency to this crate.
#![cfg(feature = "proptest-tests")]

use proptest::prelude::*;
use pti_xml::{parse, Element, Node};

fn arb_name() -> impl Strategy<Value = String> {
    "[a-zA-Z][a-zA-Z0-9_.-]{0,8}"
}

fn arb_text() -> impl Strategy<Value = String> {
    // Arbitrary printable text including XML specials and unicode.
    proptest::collection::vec(
        prop_oneof![
            Just('&'),
            Just('<'),
            Just('>'),
            Just('"'),
            Just('\''),
            Just(' '),
            proptest::char::range('a', 'z'),
            proptest::char::range('α', 'ω'),
        ],
        1..20,
    )
    .prop_map(|cs| cs.into_iter().collect())
}

fn arb_element() -> impl Strategy<Value = Element> {
    let leaf = (
        arb_name(),
        proptest::collection::vec((arb_name(), arb_text()), 0..3),
    )
        .prop_map(|(name, attrs)| {
            let mut e = Element::new(name);
            for (k, v) in attrs {
                // Attribute keys must be unique for a faithful roundtrip.
                if e.get_attr(&k).is_none() {
                    e = e.attr(k, v);
                }
            }
            e
        });
    leaf.prop_recursive(4, 32, 4, |inner| {
        (
            arb_name(),
            proptest::collection::vec((arb_name(), arb_text()), 0..3),
            proptest::collection::vec(
                prop_oneof![
                    inner.prop_map(Node::Element),
                    arb_text().prop_map(Node::Text),
                ],
                0..4,
            ),
        )
            .prop_map(|(name, attrs, children)| {
                let mut e = Element::new(name);
                for (k, v) in attrs {
                    if e.get_attr(&k).is_none() {
                        e = e.attr(k, v);
                    }
                }
                // Merge adjacent text nodes so the roundtrip comparison is
                // canonical (the parser always merges).
                for c in children {
                    match c {
                        Node::Text(t) => {
                            if let Some(Node::Text(last)) = e.children.last_mut() {
                                last.push_str(&t);
                            } else {
                                e.children.push(Node::Text(t));
                            }
                        }
                        n => e.children.push(n),
                    }
                }
                e
            })
    })
}

proptest! {
    #[test]
    fn compact_roundtrip(e in arb_element()) {
        let wire = e.to_compact();
        let back = parse(&wire).expect("writer output must parse");
        prop_assert_eq!(back, e);
    }

    #[test]
    fn wire_size_matches_compact_len(e in arb_element()) {
        prop_assert_eq!(e.wire_size(), e.to_compact().len());
    }

    #[test]
    fn parser_never_panics_on_garbage(s in "\\PC{0,60}") {
        let _ = parse(&s);
    }
}
