//! A recursive-descent parser for the XML subset PTI emits.
//!
//! Supported: elements, attributes (single- or double-quoted), character
//! data, the five predefined entities plus numeric character references,
//! CDATA sections, comments, processing instructions and the XML
//! declaration (both skipped). Not supported (never emitted by PTI):
//! DOCTYPE internal subsets, namespaces-as-semantics (prefixes pass
//! through verbatim).
//!
//! The parser scans the input bytes in place (no intermediate character
//! buffer): every delimiter it dispatches on is ASCII, so positions can
//! only ever land on UTF-8 sequence boundaries and slicing the original
//! `&str` is safe. Type descriptions are parsed on every description
//! download and object payloads on every SOAP delivery, so this path is
//! performance-sensitive (experiments E2/E3).

use std::fmt;

use crate::escape::resolve_entity;
use crate::tree::{Element, Node};

/// A parse error with 1-based line/column position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// 1-based line of the offending character.
    pub line: usize,
    /// 1-based column of the offending character.
    pub column: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "XML parse error at {}:{}: {}",
            self.line, self.column, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete document, returning its root element.
///
/// # Errors
/// Any malformed input: unbalanced tags, bad entities, missing quotes,
/// trailing content after the root element.
///
/// # Examples
///
/// ```
/// let root = pti_xml::parse(r#"<a x="1"><b>hi</b></a>"#)?;
/// assert_eq!(root.name, "a");
/// assert_eq!(root.child_text("b").unwrap(), "hi");
/// # Ok::<(), pti_xml::ParseError>(())
/// ```
pub fn parse(input: &str) -> Result<Element, ParseError> {
    let mut p = Parser {
        input,
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_prolog()?;
    let root = p.parse_element()?;
    p.skip_misc();
    if !p.at_end() {
        return Err(p.err("content after document root"));
    }
    Ok(root)
}

struct Parser<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        let mut line = 1;
        let mut column = 1;
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                column = 1;
            } else if (b & 0xC0) != 0x80 {
                // Count characters, not continuation bytes.
                column += 1;
            }
        }
        ParseError {
            message: message.into(),
            line,
            column,
        }
    }

    #[inline]
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    #[inline]
    fn at_end(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    #[inline]
    fn starts_with(&self, s: &str) -> bool {
        self.bytes[self.pos.min(self.bytes.len())..].starts_with(s.as_bytes())
    }

    #[inline]
    fn eat(&mut self, s: &str) -> bool {
        if self.starts_with(s) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, s: &str) -> Result<(), ParseError> {
        if self.eat(s) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{s}`")))
        }
    }

    #[inline]
    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    /// Skips the XML declaration, comments, PIs and whitespace before the
    /// root element.
    fn skip_prolog(&mut self) -> Result<(), ParseError> {
        loop {
            self.skip_ws();
            if self.starts_with("<?") {
                self.skip_pi()?;
            } else if self.starts_with("<!--") {
                self.skip_comment()?;
            } else if self.starts_with("<!DOCTYPE") {
                return Err(self.err("DOCTYPE is not supported"));
            } else {
                return Ok(());
            }
        }
    }

    /// Skips comments, PIs and whitespace after the root element.
    fn skip_misc(&mut self) {
        loop {
            self.skip_ws();
            if self.starts_with("<!--") {
                if self.skip_comment().is_err() {
                    return;
                }
            } else if self.starts_with("<?") {
                if self.skip_pi().is_err() {
                    return;
                }
            } else {
                return;
            }
        }
    }

    fn skip_until(&mut self, terminator: &str, what: &str) -> Result<(), ParseError> {
        let t = terminator.as_bytes();
        while self.pos < self.bytes.len() {
            if self.bytes[self.pos..].starts_with(t) {
                self.pos += t.len();
                return Ok(());
            }
            self.pos += 1;
        }
        Err(self.err(format!("unterminated {what}")))
    }

    fn skip_pi(&mut self) -> Result<(), ParseError> {
        self.expect("<?")?;
        self.skip_until("?>", "processing instruction")
    }

    fn skip_comment(&mut self) -> Result<(), ParseError> {
        self.expect("<!--")?;
        self.skip_until("-->", "comment")
    }

    fn parse_name(&mut self) -> Result<String, ParseError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if is_name_byte(b) {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("expected a name"));
        }
        Ok(self.input[start..self.pos].to_string())
    }

    fn parse_element(&mut self) -> Result<Element, ParseError> {
        self.expect("<")?;
        let name = self.parse_name()?;
        let mut element = Element::new(name.clone());

        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'/') => {
                    self.expect("/>")?;
                    return Ok(element);
                }
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(b) if is_name_byte(b) => {
                    let key = self.parse_name()?;
                    self.skip_ws();
                    self.expect("=")?;
                    self.skip_ws();
                    let value = self.parse_attr_value()?;
                    element.attributes.push((key, value));
                }
                _ => return Err(self.err("malformed start tag")),
            }
        }

        // Children until the matching end tag.
        loop {
            match self.peek() {
                None => return Err(self.err(format!("unexpected end of input inside `<{name}>`"))),
                Some(b'<') => {
                    if self.starts_with("</") {
                        self.pos += 2;
                        let end = self.parse_name()?;
                        if end != name {
                            return Err(
                                self.err(format!("mismatched end tag `</{end}>` for `<{name}>`"))
                            );
                        }
                        self.skip_ws();
                        self.expect(">")?;
                        return Ok(element);
                    } else if self.starts_with("<!--") {
                        self.skip_comment()?;
                    } else if self.starts_with("<![CDATA[") {
                        let text = self.parse_cdata()?;
                        push_text(&mut element, text);
                    } else if self.starts_with("<?") {
                        self.skip_pi()?;
                    } else {
                        let child = self.parse_element()?;
                        element.children.push(Node::Element(child));
                    }
                }
                Some(_) => {
                    let text = self.parse_text()?;
                    push_text(&mut element, text);
                }
            }
        }
    }

    fn parse_attr_value(&mut self) -> Result<String, ParseError> {
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => {
                self.pos += 1;
                q
            }
            _ => return Err(self.err("expected quoted attribute value")),
        };
        let mut out = String::new();
        let mut run_start = self.pos;
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated attribute value")),
                Some(b) if b == quote => {
                    out.push_str(&self.input[run_start..self.pos]);
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'&') => {
                    out.push_str(&self.input[run_start..self.pos]);
                    self.pos += 1;
                    out.push(self.parse_entity()?);
                    run_start = self.pos;
                }
                Some(b'<') => return Err(self.err("`<` in attribute value")),
                Some(_) => self.pos += 1,
            }
        }
    }

    fn parse_text(&mut self) -> Result<String, ParseError> {
        let mut out = String::new();
        let mut run_start = self.pos;
        while let Some(b) = self.peek() {
            match b {
                b'<' => break,
                b'&' => {
                    out.push_str(&self.input[run_start..self.pos]);
                    self.pos += 1;
                    out.push(self.parse_entity()?);
                    run_start = self.pos;
                }
                _ => self.pos += 1,
            }
        }
        out.push_str(&self.input[run_start..self.pos]);
        Ok(out)
    }

    fn parse_cdata(&mut self) -> Result<String, ParseError> {
        self.expect("<![CDATA[")?;
        let start = self.pos;
        self.skip_until("]]>", "CDATA section")?;
        Ok(self.input[start..self.pos - 3].to_string())
    }

    fn parse_entity(&mut self) -> Result<char, ParseError> {
        let start = self.pos;
        loop {
            match self.peek() {
                Some(b';') => break,
                Some(_) if self.pos - start < 10 => self.pos += 1,
                _ => return Err(self.err("malformed entity reference")),
            }
        }
        let name = &self.input[start..self.pos];
        self.pos += 1; // consume ';'
        resolve_entity(name).ok_or_else(|| self.err(format!("unknown entity `&{name};`")))
    }
}

fn push_text(element: &mut Element, text: String) {
    if text.is_empty() {
        return;
    }
    if let Some(Node::Text(last)) = element.children.last_mut() {
        last.push_str(&text);
    } else {
        element.children.push(Node::Text(text));
    }
}

/// Name characters: XML-ish, ASCII dispatch only. Any non-ASCII byte
/// (0x80+) is part of a multibyte character and allowed in names, which
/// keeps slicing on ASCII delimiters UTF-8-safe.
#[inline]
fn is_name_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.' | b':') || b >= 0x80
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_document() {
        let e = parse("<a/>").unwrap();
        assert_eq!(e.name, "a");
        assert!(e.children.is_empty());
    }

    #[test]
    fn parses_attributes_both_quote_styles() {
        let e = parse(r#"<a x="1" y='2'/>"#).unwrap();
        assert_eq!(e.get_attr("x"), Some("1"));
        assert_eq!(e.get_attr("y"), Some("2"));
    }

    #[test]
    fn parses_nested_elements_and_text() {
        let e = parse("<a><b>hello</b><c><d/></c></a>").unwrap();
        assert_eq!(e.child_text("b").unwrap(), "hello");
        assert!(e.find("c").unwrap().find("d").is_some());
    }

    #[test]
    fn resolves_entities() {
        let e = parse("<a>&lt;tag&gt; &amp; &#65;&#x42;</a>").unwrap();
        assert_eq!(e.text_content(), "<tag> & AB");
        let e2 = parse(r#"<a v="&quot;q&apos;"/>"#).unwrap();
        assert_eq!(e2.get_attr("v"), Some("\"q'"));
    }

    #[test]
    fn skips_declaration_comments_and_pis() {
        let e = parse("<?xml version=\"1.0\"?>\n<!-- top --><a><!-- in --><b/></a><!-- after -->")
            .unwrap();
        assert!(e.find("b").is_some());
        assert_eq!(e.elements().count(), 1);
    }

    #[test]
    fn parses_cdata_verbatim() {
        let e = parse("<a><![CDATA[<raw> & stuff]]></a>").unwrap();
        assert_eq!(e.text_content(), "<raw> & stuff");
    }

    #[test]
    fn adjacent_text_merges() {
        let e = parse("<a>x<![CDATA[y]]>z</a>").unwrap();
        assert_eq!(e.children.len(), 1);
        assert_eq!(e.text_content(), "xyz");
    }

    #[test]
    fn rejects_mismatched_tags() {
        let err = parse("<a><b></a></b>").unwrap_err();
        assert!(err.message.contains("mismatched"), "{err}");
    }

    #[test]
    fn rejects_trailing_content() {
        assert!(parse("<a/><b/>").is_err());
        assert!(parse("<a/>junk").is_err());
    }

    #[test]
    fn rejects_unterminated_everything() {
        assert!(parse("<a>").is_err());
        assert!(parse("<a x=\"1>").is_err());
        assert!(parse("<a><!-- nope</a>").is_err());
        assert!(parse("<a><![CDATA[x</a>").is_err());
        assert!(parse("<").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn rejects_unknown_entity() {
        assert!(parse("<a>&nope;</a>").is_err());
        assert!(parse("<a>&unterminated").is_err());
    }

    #[test]
    fn rejects_doctype() {
        assert!(parse("<!DOCTYPE html><a/>").is_err());
    }

    #[test]
    fn error_positions_are_tracked() {
        let err = parse("<a>\n  <b></c>\n</a>").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.column > 1);
        assert!(err.to_string().contains("2:"));
    }

    #[test]
    fn error_columns_count_chars_not_bytes() {
        // Multibyte text before the error must not inflate the column.
        let err = parse("<a>éé<b></c></a>").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.column < 14, "column {} counts chars", err.column);
    }

    #[test]
    fn whitespace_in_end_tag_ok() {
        let e = parse("<a></a >").unwrap();
        assert_eq!(e.name, "a");
    }

    #[test]
    fn unicode_content() {
        let e = parse("<a>héllo 世界 😀</a>").unwrap();
        assert_eq!(e.text_content(), "héllo 世界 😀");
    }

    #[test]
    fn unicode_names_and_attrs() {
        let e = parse("<día läge=\"süd\">x</día>").unwrap();
        assert_eq!(e.name, "día");
        assert_eq!(e.get_attr("läge"), Some("süd"));
    }

    #[test]
    fn entity_at_text_run_boundaries() {
        let e = parse("<a>&amp;start middle&amp; end&amp;</a>").unwrap();
        assert_eq!(e.text_content(), "&start middle& end&");
    }
}
