//! # pti-xml — minimal XML substrate
//!
//! The paper represents type descriptions "as XML structures" (Section 5.2)
//! and wraps every transferred object in an XML envelope (Section 6.2,
//! Figure 3). Its prototype uses the .NET XML stack; this crate is the
//! from-scratch replacement: an element tree ([`Element`]), a writer
//! (compact and pretty forms), and a strict recursive-descent [`parse`]r
//! for the subset PTI emits.
//!
//! ## Example
//!
//! ```
//! use pti_xml::{Element, parse};
//!
//! let msg = Element::new("typeDescription")
//!     .attr("name", "Person")
//!     .child(Element::new("field").attr("name", "name").attr("type", "String"));
//! let wire = msg.to_compact();
//! let back = parse(&wire)?;
//! assert_eq!(back, msg);
//! # Ok::<(), pti_xml::ParseError>(())
//! ```

#![warn(missing_docs)]

mod escape;
mod parser;
mod tree;

pub use escape::{escape_attr, escape_text, resolve_entity};
pub use parser::{parse, ParseError};
pub use tree::{Element, Node};

#[cfg(test)]
mod roundtrip_tests {
    use super::*;

    fn assert_roundtrip(e: &Element) {
        let compact = parse(&e.to_compact()).unwrap();
        assert_eq!(&compact, e, "compact roundtrip");
        let pretty = parse(&e.to_pretty()).unwrap();
        // Pretty-printing inserts whitespace between element children, so
        // compare structure modulo whitespace-only text nodes.
        assert_eq!(strip_ws(&pretty), strip_ws(e), "pretty roundtrip");
    }

    fn strip_ws(e: &Element) -> Element {
        let mut out = Element::new(e.name.clone());
        out.attributes = e.attributes.clone();
        for c in &e.children {
            match c {
                Node::Element(el) => out.children.push(Node::Element(strip_ws(el))),
                Node::Text(t) if t.trim().is_empty() => {}
                Node::Text(t) => out.children.push(Node::Text(t.clone())),
            }
        }
        out
    }

    #[test]
    fn roundtrips_nested_structures() {
        let e = Element::new("root")
            .attr("a", "x & y")
            .child(
                Element::new("mid")
                    .attr("quote", "he said \"hi\"")
                    .child(Element::new("leaf").text("text<with>specials&")),
            )
            .child(Element::new("empty"));
        assert_roundtrip(&e);
    }

    #[test]
    fn roundtrips_deep_nesting() {
        let mut e = Element::new("l0").text("deep");
        for i in 1..=50 {
            e = Element::new(format!("l{i}")).child(e);
        }
        assert_roundtrip(&e);
    }
}
