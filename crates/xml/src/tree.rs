//! The XML element tree and its writer.

use std::fmt;

use crate::escape::{escape_attr, escape_text};

/// A node in an element's child list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// A child element.
    Element(Element),
    /// A run of character data.
    Text(String),
}

/// An XML element: name, attributes and children.
///
/// The fluent constructors make building documents terse:
///
/// ```
/// use pti_xml::Element;
/// let doc = Element::new("person")
///     .attr("id", "7")
///     .child(Element::new("name").text("Ada"));
/// assert_eq!(doc.to_compact(), r#"<person id="7"><name>Ada</name></person>"#);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Element {
    /// Element (tag) name.
    pub name: String,
    /// Attributes in document order.
    pub attributes: Vec<(String, String)>,
    /// Child nodes in document order.
    pub children: Vec<Node>,
}

impl Element {
    /// Creates an empty element with the given tag name.
    pub fn new(name: impl Into<String>) -> Element {
        Element {
            name: name.into(),
            attributes: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Adds an attribute (builder style).
    #[must_use]
    pub fn attr(mut self, key: impl Into<String>, value: impl Into<String>) -> Element {
        self.attributes.push((key.into(), value.into()));
        self
    }

    /// Adds a child element (builder style).
    #[must_use]
    pub fn child(mut self, child: Element) -> Element {
        self.children.push(Node::Element(child));
        self
    }

    /// Adds a text node (builder style).
    #[must_use]
    pub fn text(mut self, text: impl Into<String>) -> Element {
        self.children.push(Node::Text(text.into()));
        self
    }

    /// Adds a child element in place.
    pub fn push_child(&mut self, child: Element) {
        self.children.push(Node::Element(child));
    }

    /// Looks up an attribute value.
    pub fn get_attr(&self, key: &str) -> Option<&str> {
        self.attributes
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// First child element with the given name.
    pub fn find(&self, name: &str) -> Option<&Element> {
        self.elements().find(|e| e.name == name)
    }

    /// All child elements with the given name.
    pub fn find_all<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Element> + 'a {
        self.elements().filter(move |e| e.name == name)
    }

    /// All child elements.
    pub fn elements(&self) -> impl Iterator<Item = &Element> {
        self.children.iter().filter_map(|n| match n {
            Node::Element(e) => Some(e),
            Node::Text(_) => None,
        })
    }

    /// Concatenated text content of this element's direct text children.
    pub fn text_content(&self) -> String {
        let mut out = String::new();
        for n in &self.children {
            if let Node::Text(t) = n {
                out.push_str(t);
            }
        }
        out
    }

    /// Convenience: the text content of the first child element named
    /// `name`, if that child exists.
    pub fn child_text(&self, name: &str) -> Option<String> {
        self.find(name).map(|e| e.text_content())
    }

    /// Serializes without any insignificant whitespace — the wire form.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        out.push('<');
        out.push_str(&self.name);
        for (k, v) in &self.attributes {
            out.push(' ');
            out.push_str(k);
            out.push_str("=\"");
            out.push_str(&escape_attr(v));
            out.push('"');
        }
        if self.children.is_empty() {
            out.push_str("/>");
            return;
        }
        out.push('>');
        for c in &self.children {
            match c {
                Node::Element(e) => e.write_compact(out),
                Node::Text(t) => out.push_str(&escape_text(t)),
            }
        }
        out.push_str("</");
        out.push_str(&self.name);
        out.push('>');
    }

    /// Serializes with two-space indentation — the human-readable form the
    /// paper emphasizes ("a human readable type description").
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth);
        out.push_str(&pad);
        out.push('<');
        out.push_str(&self.name);
        for (k, v) in &self.attributes {
            out.push(' ');
            out.push_str(k);
            out.push_str("=\"");
            out.push_str(&escape_attr(v));
            out.push('"');
        }
        if self.children.is_empty() {
            out.push_str("/>");
            return;
        }
        // Elements with only text children stay on one line.
        let only_text = self.children.iter().all(|c| matches!(c, Node::Text(_)));
        if only_text {
            out.push('>');
            for c in &self.children {
                if let Node::Text(t) = c {
                    out.push_str(&escape_text(t));
                }
            }
            out.push_str("</");
            out.push_str(&self.name);
            out.push('>');
            return;
        }
        out.push('>');
        for c in &self.children {
            out.push('\n');
            match c {
                Node::Element(e) => e.write_pretty(out, depth + 1),
                Node::Text(t) => {
                    out.push_str(&"  ".repeat(depth + 1));
                    out.push_str(&escape_text(t));
                }
            }
        }
        out.push('\n');
        out.push_str(&pad);
        out.push_str("</");
        out.push_str(&self.name);
        out.push('>');
    }

    /// Serialized byte length of the compact form (wire-size accounting
    /// for the protocol experiments).
    pub fn wire_size(&self) -> usize {
        self.to_compact().len()
    }
}

impl fmt::Display for Element {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_compact())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_roundtrip_structure() {
        let e = Element::new("a")
            .attr("x", "1")
            .child(Element::new("b").text("hi"))
            .child(Element::new("c"));
        assert_eq!(e.to_compact(), r#"<a x="1"><b>hi</b><c/></a>"#);
    }

    #[test]
    fn escaping_in_output() {
        let e = Element::new("t").attr("q", "a\"b").text("x<y&z");
        assert_eq!(e.to_compact(), r#"<t q="a&quot;b">x&lt;y&amp;z</t>"#);
    }

    #[test]
    fn navigation() {
        let e = Element::new("root")
            .child(Element::new("kid").attr("n", "1"))
            .child(Element::new("kid").attr("n", "2"))
            .child(Element::new("other"));
        assert_eq!(e.find("kid").unwrap().get_attr("n"), Some("1"));
        assert_eq!(e.find_all("kid").count(), 2);
        assert_eq!(e.elements().count(), 3);
        assert!(e.find("missing").is_none());
    }

    #[test]
    fn text_content_and_child_text() {
        let e = Element::new("m")
            .text("a")
            .child(Element::new("x").text("inner"))
            .text("b");
        assert_eq!(e.text_content(), "ab");
        assert_eq!(e.child_text("x").unwrap(), "inner");
        assert!(e.child_text("y").is_none());
    }

    #[test]
    fn pretty_printing() {
        let e = Element::new("root").child(Element::new("leaf").text("v"));
        let p = e.to_pretty();
        assert!(p.contains("<root>\n  <leaf>v</leaf>\n</root>"), "{p}");
    }

    #[test]
    fn pretty_empty_element_self_closes() {
        assert_eq!(Element::new("e").to_pretty(), "<e/>\n");
    }

    #[test]
    fn wire_size_is_compact_length() {
        let e = Element::new("abc");
        assert_eq!(e.wire_size(), "<abc/>".len());
    }

    #[test]
    fn display_is_compact() {
        let e = Element::new("d").text("t");
        assert_eq!(format!("{e}"), "<d>t</d>");
    }
}
