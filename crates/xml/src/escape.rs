//! XML text and attribute escaping.

/// Escapes text content: `&`, `<`, `>` plus control characters as numeric
/// character references.
pub fn escape_text(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            c if (c as u32) < 0x20 && c != '\t' && c != '\n' && c != '\r' => {
                out.push_str(&format!("&#x{:X};", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Escapes attribute values: like text, plus quotes.
pub fn escape_attr(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            c if (c as u32) < 0x20 => out.push_str(&format!("&#x{:X};", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Resolves a single entity name (the text between `&` and `;`) to its
/// character, handling the five predefined entities and numeric references.
pub fn resolve_entity(name: &str) -> Option<char> {
    match name {
        "amp" => Some('&'),
        "lt" => Some('<'),
        "gt" => Some('>'),
        "quot" => Some('"'),
        "apos" => Some('\''),
        _ => {
            let v = if let Some(hex) = name.strip_prefix("#x").or_else(|| name.strip_prefix("#X")) {
                u32::from_str_radix(hex, 16).ok()?
            } else if let Some(dec) = name.strip_prefix('#') {
                dec.parse::<u32>().ok()?
            } else {
                return None;
            };
            char::from_u32(v)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_escaping() {
        assert_eq!(escape_text("a<b>&c"), "a&lt;b&gt;&amp;c");
        assert_eq!(escape_text("plain"), "plain");
        assert_eq!(escape_text("\u{1}"), "&#x1;");
        assert_eq!(escape_text("tab\tok"), "tab\tok");
    }

    #[test]
    fn attr_escaping() {
        assert_eq!(escape_attr(r#"a"b'c"#), "a&quot;b&apos;c");
        assert_eq!(escape_attr("<&>"), "&lt;&amp;&gt;");
    }

    #[test]
    fn entity_resolution() {
        assert_eq!(resolve_entity("amp"), Some('&'));
        assert_eq!(resolve_entity("lt"), Some('<'));
        assert_eq!(resolve_entity("gt"), Some('>'));
        assert_eq!(resolve_entity("quot"), Some('"'));
        assert_eq!(resolve_entity("apos"), Some('\''));
        assert_eq!(resolve_entity("#65"), Some('A'));
        assert_eq!(resolve_entity("#x41"), Some('A'));
        assert_eq!(resolve_entity("#x1F600"), Some('😀'));
        assert_eq!(resolve_entity("bogus"), None);
        assert_eq!(resolve_entity("#xZZ"), None);
        assert_eq!(resolve_entity("#x110000"), None, "out of Unicode range");
    }
}
