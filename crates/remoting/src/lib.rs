//! # pti-remoting — pass-by-reference semantics (paper Section 6.2)
//!
//! The pass-by-value protocol ships an object's *state*; pass-by-reference
//! ships a **remote reference** and routes invocations back to the owner.
//! The paper's key observation is that plain remoting proxies are not
//! enough when the client's expected type `T` only *implicitly* matches
//! the server's type `T'`: "the interposing of a dynamic proxy as a
//! wrapper is necessary since `T` and `T'` are not explicitly
//! compatible". A [`RemoteProxy`] here is exactly that wrapper — a
//! remoting stub whose method table is a [`ConformanceBinding`], so the
//! client invokes under its own contract and the wire carries the
//! server's actual method names.
//!
//! The fabric layers three message kinds over the transport swarm:
//! `remote-ref` (reference transfer, triggering description download and
//! the conformance check), `invoke-request` and `invoke-response`
//! (arguments and results pass by value, SOAP-encoded).
//!
//! Only the type *description* crosses the wire for pass-by-reference —
//! never the code; that is the complementary saving to Figure 1's.

#![warn(missing_docs)]

use std::collections::HashMap;
use std::time::{Duration, Instant};

use pti_conformance::ConformanceBinding;
use pti_metamodel::{Guid, ObjHandle, TypeDescription, TypeName, Value};
use pti_net::{BusMessage, PeerId, Transport};
use pti_serialize::{from_soap, to_soap};
use pti_transport::{Swarm, TransportError};
use pti_xml::Element;

/// How long a synchronous invocation tolerates wire silence on a
/// concurrent fabric before reporting the call unanswered (ignored by
/// virtual-time transports, whose quiet is definitive).
const RPC_IDLE: Duration = Duration::from_secs(5);

/// Message kinds added by the remoting layer.
pub mod kinds {
    /// A remote reference being offered to a peer.
    pub const REMOTE_REF: &str = "remote-ref";
    /// An invocation request (client → owner).
    pub const INVOKE_REQUEST: &str = "invoke-request";
    /// An invocation response (owner → client).
    pub const INVOKE_RESPONSE: &str = "invoke-response";
}

/// Result alias reusing the transport error type.
pub type Result<T> = std::result::Result<T, TransportError>;

/// A network-wide reference to an object living on another peer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemoteRef {
    /// The peer owning the object.
    pub owner: PeerId,
    /// The export id on the owner.
    pub object_id: u64,
    /// Identity of the object's type.
    pub type_guid: Guid,
    /// Name of the object's type.
    pub type_name: TypeName,
    /// Where the type's description can be downloaded.
    pub desc_path: String,
}

impl RemoteRef {
    fn to_xml(&self) -> Element {
        Element::new("remoteRef")
            .attr("owner", self.owner.0.to_string())
            .attr("object", self.object_id.to_string())
            .attr("guid", self.type_guid.to_string())
            .attr("type", self.type_name.full())
            .attr("desc", &self.desc_path)
    }

    fn from_xml(el: &Element) -> Result<RemoteRef> {
        let attr = |k: &str| {
            el.get_attr(k)
                .map(str::to_string)
                .ok_or_else(|| TransportError::Protocol(format!("remoteRef missing `{k}`")))
        };
        Ok(RemoteRef {
            owner: PeerId(
                attr("owner")?
                    .parse()
                    .map_err(|_| TransportError::Protocol("bad owner".into()))?,
            ),
            object_id: attr("object")?
                .parse()
                .map_err(|_| TransportError::Protocol("bad object id".into()))?,
            type_guid: attr("guid")?
                .parse()
                .map_err(|_| TransportError::Protocol("bad guid".into()))?,
            type_name: TypeName::new(attr("type")?),
            desc_path: attr("desc")?,
        })
    }
}

/// A client-side stub for a remote object, exposing the *client's*
/// expected contract and translating to the owner's actual type through
/// the conformance binding.
#[derive(Debug, Clone, PartialEq)]
pub struct RemoteProxy {
    /// The wire reference.
    pub remote: RemoteRef,
    /// The expected (client-side) type the proxy exposes.
    pub expected: TypeDescription,
    binding: ConformanceBinding,
}

impl RemoteProxy {
    /// The binding translating expected members to actual ones.
    pub fn binding(&self) -> &ConformanceBinding {
        &self.binding
    }
}

#[derive(Debug, Default)]
struct Exports {
    next_id: u64,
    by_id: HashMap<u64, ObjHandle>,
}

/// The remoting fabric: export tables, in-flight requests and received
/// references, layered over a [`Swarm`].
#[derive(Debug, Default)]
pub struct RemotingFabric {
    exports: HashMap<PeerId, Exports>,
    next_request: u64,
    responses: HashMap<u64, std::result::Result<Vec<u8>, String>>,
    /// References waiting for their type description, per receiving peer.
    pending_refs: Vec<(PeerId, RemoteRef)>,
    requested_descs: HashMap<PeerId, Vec<String>>,
    arrived: HashMap<PeerId, Vec<RemoteProxy>>,
    rejected: HashMap<PeerId, Vec<RemoteRef>>,
}

impl RemotingFabric {
    /// Creates an empty fabric.
    pub fn new() -> RemotingFabric {
        RemotingFabric::default()
    }

    /// Exports an object at its owner, returning the wire reference.
    ///
    /// The object's type must have been *published* on the owner (the
    /// reference carries the description download path).
    ///
    /// # Errors
    /// Dangling handles or unpublished types.
    pub fn export<T: Transport>(
        &mut self,
        swarm: &Swarm<T>,
        owner: PeerId,
        handle: ObjHandle,
    ) -> Result<RemoteRef> {
        let peer = swarm.peer(owner);
        let def = peer.runtime.type_of(handle)?;
        // Find the publication exposing this type's description.
        let env = peer.make_envelope(&Value::Obj(handle), pti_serialize::PayloadFormat::Binary)?;
        let root_asm = env
            .assemblies
            .first()
            .ok_or_else(|| TransportError::NoProvenance(def.name.clone()))?;
        let exports = self.exports.entry(owner).or_default();
        exports.next_id += 1;
        let object_id = exports.next_id;
        exports.by_id.insert(object_id, handle);
        Ok(RemoteRef {
            owner,
            object_id,
            type_guid: def.guid,
            type_name: def.name.clone(),
            desc_path: root_asm.description_path.clone(),
        })
    }

    /// Sends a remote reference to another peer (the "lend" direction).
    ///
    /// # Errors
    /// Unknown destination.
    pub fn offer<T: Transport>(
        &mut self,
        swarm: &mut Swarm<T>,
        from: PeerId,
        to: PeerId,
        rref: &RemoteRef,
    ) -> Result<()> {
        swarm.send_raw(
            from,
            to,
            kinds::REMOTE_REF,
            rref.to_xml().to_compact().into_bytes(),
        )
    }

    /// Drives transport + remoting until the network is quiet.
    ///
    /// # Errors
    /// Protocol violations in either layer.
    pub fn run<T: Transport>(&mut self, swarm: &mut Swarm<T>) -> Result<()> {
        loop {
            // Ship anything the routed publish path queued on the wire;
            // this pump replaces Swarm::run, so it must flush like it.
            swarm.flush_wire();
            let Some((at, msg)) = swarm.poll_message()? else {
                return Ok(());
            };
            if pti_transport::kinds::is_protocol(msg.kind) {
                swarm.dispatch(at, msg)?;
            } else {
                self.handle(swarm, at, msg)?;
            }
            self.settle_refs(swarm)?;
        }
    }

    /// Drives transport + remoting until no message arrives for `idle` —
    /// the concurrent-fabric counterpart of [`run`](Self::run).
    ///
    /// # Errors
    /// Protocol violations in either layer.
    pub fn run_for<T: Transport>(&mut self, swarm: &mut Swarm<T>, idle: Duration) -> Result<()> {
        loop {
            swarm.flush_wire();
            let Some((at, msg)) = swarm.poll_deadline(Instant::now() + idle)? else {
                return Ok(());
            };
            if pti_transport::kinds::is_protocol(msg.kind) {
                swarm.dispatch(at, msg)?;
            } else {
                self.handle(swarm, at, msg)?;
            }
            self.settle_refs(swarm)?;
        }
    }

    /// Remote proxies that finished their conformance handshake at `peer`.
    pub fn take_proxies(&mut self, peer: PeerId) -> Vec<RemoteProxy> {
        self.arrived.remove(&peer).unwrap_or_default()
    }

    /// References rejected by the conformance check at `peer`.
    pub fn take_rejected(&mut self, peer: PeerId) -> Vec<RemoteRef> {
        self.rejected.remove(&peer).unwrap_or_default()
    }

    /// Invokes a method on a remote object through its proxy: a
    /// synchronous RPC over the virtual network. Arguments and the result
    /// pass by value.
    ///
    /// # Errors
    /// Out-of-contract methods, transport failures, or server-side
    /// dispatch errors (reported as [`TransportError::Protocol`]).
    pub fn invoke<T: Transport>(
        &mut self,
        swarm: &mut Swarm<T>,
        caller: PeerId,
        proxy: &RemoteProxy,
        method: &str,
        args: &[Value],
    ) -> Result<Value> {
        let mb = proxy.binding.method(method, args.len()).ok_or_else(|| {
            TransportError::Protocol(format!(
                "method `{method}/{}` is not in the expected contract",
                args.len()
            ))
        })?;
        let actual_args = mb.reorder(args);
        self.next_request += 1;
        let request_id = self.next_request;
        let args_xml = to_soap(&swarm.peer(caller).runtime, &Value::Array(actual_args))?;
        let req = Element::new("invokeRequest")
            .attr("id", request_id.to_string())
            .attr("object", proxy.remote.object_id.to_string())
            .attr("method", &mb.actual_name)
            .child(args_xml);
        swarm.send_raw(
            caller,
            proxy.remote.owner,
            kinds::INVOKE_REQUEST,
            req.to_compact().into_bytes(),
        )?;
        // Synchronously pump the network until our response arrives. The
        // deadline only matters on concurrent fabrics (the owner may be
        // served by another thread); a virtual-time transport answers in
        // a single pass or is definitively quiet.
        loop {
            if let Some(outcome) = self.responses.remove(&request_id) {
                let xml = outcome.map_err(TransportError::Protocol)?;
                let text = String::from_utf8(xml)
                    .map_err(|_| TransportError::Protocol("response not utf8".into()))?;
                let el = pti_xml::parse(&text).map_err(pti_serialize::SerializeError::from)?;
                return Ok(from_soap(&mut swarm.peer_mut(caller).runtime, &el)?);
            }
            swarm.flush_wire();
            match swarm.poll_deadline(Instant::now() + RPC_IDLE)? {
                Some((at, msg)) => {
                    if pti_transport::kinds::is_protocol(msg.kind) {
                        swarm.dispatch(at, msg)?;
                    } else {
                        self.handle(swarm, at, msg)?;
                    }
                    self.settle_refs(swarm)?;
                }
                None => {
                    return Err(TransportError::Protocol(
                        "network quiet but invocation unanswered".into(),
                    ))
                }
            }
        }
    }

    fn handle<T: Transport>(
        &mut self,
        swarm: &mut Swarm<T>,
        at: PeerId,
        msg: BusMessage,
    ) -> Result<()> {
        match msg.kind {
            kinds::REMOTE_REF => {
                let text = std::str::from_utf8(&msg.payload)
                    .map_err(|_| TransportError::Protocol("ref not utf8".into()))?;
                let el = pti_xml::parse(text).map_err(pti_serialize::SerializeError::from)?;
                let rref = RemoteRef::from_xml(&el)?;
                // Fetch the description if unknown, then settle.
                if !swarm.peer(at).knows_description(rref.type_guid) {
                    let requested = self.requested_descs.entry(at).or_default();
                    if !requested.contains(&rref.desc_path) {
                        requested.push(rref.desc_path.clone());
                        swarm.send_raw(
                            at,
                            rref.owner,
                            pti_transport::kinds::DESC_REQUEST,
                            rref.desc_path.clone().into_bytes(),
                        )?;
                    }
                }
                self.pending_refs.push((at, rref));
                Ok(())
            }
            kinds::INVOKE_REQUEST => {
                let text = std::str::from_utf8(&msg.payload)
                    .map_err(|_| TransportError::Protocol("request not utf8".into()))?;
                let el = pti_xml::parse(text).map_err(pti_serialize::SerializeError::from)?;
                let id: u64 = el
                    .get_attr("id")
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| TransportError::Protocol("request missing id".into()))?;
                let outcome = self.serve(swarm, at, &el);
                let resp = match outcome {
                    Ok(value_xml) => Element::new("invokeResponse")
                        .attr("id", id.to_string())
                        .child(value_xml),
                    Err(e) => Element::new("invokeResponse")
                        .attr("id", id.to_string())
                        .child(Element::new("error").text(e.to_string())),
                };
                swarm.send_raw(
                    at,
                    msg.from,
                    kinds::INVOKE_RESPONSE,
                    resp.to_compact().into_bytes(),
                )?;
                Ok(())
            }
            kinds::INVOKE_RESPONSE => {
                let text = std::str::from_utf8(&msg.payload)
                    .map_err(|_| TransportError::Protocol("response not utf8".into()))?;
                let el = pti_xml::parse(text).map_err(pti_serialize::SerializeError::from)?;
                let id: u64 = el
                    .get_attr("id")
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| TransportError::Protocol("response missing id".into()))?;
                let outcome = match el.find("error") {
                    Some(err) => Err(err.text_content()),
                    None => {
                        let inner = el.elements().next().ok_or_else(|| {
                            TransportError::Protocol("empty invoke response".into())
                        })?;
                        Ok(inner.to_compact().into_bytes())
                    }
                };
                self.responses.insert(id, outcome);
                Ok(())
            }
            other => Err(TransportError::Protocol(format!(
                "unknown message kind `{other}`"
            ))),
        }
    }

    /// Server-side dispatch of one invocation request.
    fn serve<T: Transport>(
        &mut self,
        swarm: &mut Swarm<T>,
        owner: PeerId,
        el: &Element,
    ) -> Result<Element> {
        let object_id: u64 = el
            .get_attr("object")
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| TransportError::Protocol("request missing object".into()))?;
        let method = el
            .get_attr("method")
            .ok_or_else(|| TransportError::Protocol("request missing method".into()))?
            .to_string();
        let handle = self
            .exports
            .get(&owner)
            .and_then(|e| e.by_id.get(&object_id))
            .copied()
            .ok_or_else(|| TransportError::Protocol(format!("no export #{object_id}")))?;
        let args_env = el
            .find("Envelope")
            .ok_or_else(|| TransportError::Protocol("request missing args".into()))?;
        let peer = swarm.peer_mut(owner);
        let args_value = from_soap(&mut peer.runtime, args_env)?;
        let args = args_value
            .as_array()
            .map_err(TransportError::Metamodel)?
            .to_vec();
        let result = peer
            .runtime
            .invoke(handle, &method, &args)
            .map_err(TransportError::Metamodel)?;
        Ok(to_soap(&peer.runtime, &result)?)
    }

    /// Completes pending references whose descriptions have arrived:
    /// conformance check against the receiving peer's interests, then a
    /// proxy (accepted) or a rejection record.
    fn settle_refs<T: Transport>(&mut self, swarm: &mut Swarm<T>) -> Result<()> {
        let mut still_pending = Vec::new();
        for (at, rref) in std::mem::take(&mut self.pending_refs) {
            let peer = swarm.peer_mut(at);
            let Some(desc) = peer.description_of(rref.type_guid) else {
                still_pending.push((at, rref));
                continue;
            };
            match peer.match_interest(&desc) {
                Some((interest, conf)) => {
                    let binding = conf.binding(&interest);
                    self.arrived.entry(at).or_default().push(RemoteProxy {
                        remote: rref,
                        expected: interest,
                        binding,
                    });
                }
                None => {
                    self.rejected.entry(at).or_default().push(rref);
                }
            }
        }
        self.pending_refs = still_pending;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pti_conformance::ConformanceConfig;
    use pti_metamodel::{bodies, primitives, Assembly, ParamDef, TypeDef};
    use pti_net::NetConfig;

    fn person_assembly(salt: &str, get: &str, set: &str) -> (Assembly, TypeDef) {
        let def = TypeDef::class("Person", salt)
            .field("name", primitives::STRING)
            .method(get, vec![], primitives::STRING)
            .method(
                set,
                vec![ParamDef::new("n", primitives::STRING)],
                primitives::VOID,
            )
            .ctor(vec![])
            .build();
        let g = def.guid;
        let asm = Assembly::builder(format!("person-{salt}"))
            .ty(def.clone())
            .body(g, get, 0, bodies::getter("name"))
            .body(g, set, 1, bodies::setter("name"))
            .ctor_body(g, 0, bodies::ctor_assign(&[]))
            .build();
        (asm, def)
    }

    fn setup() -> (Swarm, RemotingFabric, PeerId, PeerId, RemoteProxy) {
        let mut swarm = Swarm::new(NetConfig::default());
        let server = swarm.add_peer(ConformanceConfig::pragmatic());
        let client = swarm.add_peer(ConformanceConfig::pragmatic());
        let (asm_s, _) = person_assembly("server", "getPersonName", "setPersonName");
        swarm.publish(server, asm_s).unwrap();
        // The client's local view of Person uses different method names.
        let (_, def_c) = person_assembly("client", "getName", "setName");
        swarm
            .peer_mut(client)
            .subscribe(TypeDescription::from_def(&def_c));

        let h = swarm
            .peer_mut(server)
            .runtime
            .instantiate(&"Person".into(), &[])
            .unwrap();
        swarm
            .peer_mut(server)
            .runtime
            .set_field(h, "name", Value::from("remote-ada"))
            .unwrap();

        let mut fabric = RemotingFabric::new();
        let rref = fabric.export(&swarm, server, h).unwrap();
        fabric.offer(&mut swarm, server, client, &rref).unwrap();
        fabric.run(&mut swarm).unwrap();
        let mut proxies = fabric.take_proxies(client);
        assert_eq!(proxies.len(), 1, "reference accepted");
        let proxy = proxies.remove(0);
        (swarm, fabric, server, client, proxy)
    }

    #[test]
    fn remote_invocation_translates_names() {
        let (mut swarm, mut fabric, _server, client, proxy) = setup();
        // The client calls `getName` (its contract); the wire carries
        // `getPersonName` (the server's).
        let got = fabric
            .invoke(&mut swarm, client, &proxy, "getName", &[])
            .unwrap();
        assert_eq!(got.as_str().unwrap(), "remote-ada");
    }

    #[test]
    fn remote_mutation_visible_on_owner() {
        let (mut swarm, mut fabric, server, client, proxy) = setup();
        fabric
            .invoke(
                &mut swarm,
                client,
                &proxy,
                "setName",
                &[Value::from("updated")],
            )
            .unwrap();
        // The owner's object changed — pass-by-reference semantics.
        let exports = &fabric.exports[&server];
        let handle = exports.by_id[&proxy.remote.object_id];
        assert_eq!(
            swarm
                .peer_mut(server)
                .runtime
                .get_field(handle, "name")
                .unwrap()
                .as_str()
                .unwrap(),
            "updated"
        );
    }

    #[test]
    fn no_code_crosses_the_wire_for_references() {
        let (swarm, _fabric, _s, _c, _p) = setup();
        let m = swarm.net().metrics();
        assert_eq!(m.kind(pti_transport::kinds::ASM_REQUEST).messages, 0);
        assert_eq!(m.kind(pti_transport::kinds::DESC_REQUEST).messages, 1);
    }

    #[test]
    fn out_of_contract_method_rejected_client_side() {
        let (mut swarm, mut fabric, _s, client, proxy) = setup();
        let before = swarm.net().metrics().messages;
        let err = fabric
            .invoke(&mut swarm, client, &proxy, "getPersonName", &[])
            .unwrap_err();
        assert!(err.to_string().contains("not in the expected contract"));
        assert_eq!(swarm.net().metrics().messages, before, "nothing was sent");
    }

    #[test]
    fn nonconformant_reference_rejected() {
        let mut swarm = Swarm::new(NetConfig::default());
        let server = swarm.add_peer(ConformanceConfig::pragmatic());
        let client = swarm.add_peer(ConformanceConfig::pragmatic());
        let (asm_s, _) = person_assembly("server", "getPersonName", "setPersonName");
        swarm.publish(server, asm_s).unwrap();
        // Client subscribes to something structurally different.
        let other = TypeDef::class("Rocket", "client")
            .field("thrust", primitives::INT64)
            .method("launch", vec![], primitives::VOID)
            .build();
        swarm
            .peer_mut(client)
            .subscribe(TypeDescription::from_def(&other));
        let h = swarm
            .peer_mut(server)
            .runtime
            .instantiate(&"Person".into(), &[])
            .unwrap();
        let mut fabric = RemotingFabric::new();
        let rref = fabric.export(&swarm, server, h).unwrap();
        fabric.offer(&mut swarm, server, client, &rref).unwrap();
        fabric.run(&mut swarm).unwrap();
        assert!(fabric.take_proxies(client).is_empty());
        assert_eq!(fabric.take_rejected(client).len(), 1);
    }

    #[test]
    fn server_side_error_propagates() {
        let (mut swarm, mut fabric, server, client, proxy) = setup();
        // Sabotage: free the exported object on the server.
        let handle = fabric.exports[&server].by_id[&proxy.remote.object_id];
        swarm.peer_mut(server).runtime.heap.free(handle).unwrap();
        let err = fabric
            .invoke(&mut swarm, client, &proxy, "getName", &[])
            .unwrap_err();
        assert!(err.to_string().contains("dangling"), "{err}");
    }

    #[test]
    fn export_requires_published_type() {
        let mut swarm = Swarm::new(NetConfig::default());
        let server = swarm.add_peer(ConformanceConfig::paper());
        let def = TypeDef::class("Loose", "x").ctor(vec![]).build();
        swarm.peer_mut(server).runtime.register_type(def).unwrap();
        let h = swarm
            .peer_mut(server)
            .runtime
            .instantiate(&"Loose".into(), &[])
            .unwrap();
        let mut fabric = RemotingFabric::new();
        assert!(matches!(
            fabric.export(&swarm, server, h),
            Err(TransportError::NoProvenance(_))
        ));
    }
}
