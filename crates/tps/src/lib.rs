//! # pti-tps — type-based publish/subscribe over type interoperability
//!
//! The paper names TPS as the "obvious application" of type
//! interoperability (Section 8): with plain TPS, "subscribers and
//! publishers must agree a priori on the types they want to
//! transfer/receive"; with type interoperability, a subscriber's interest
//! type matches any *implicitly structurally conformant* event type —
//! publishers and subscribers never have to share a type hierarchy or
//! even a vendor.
//!
//! [`TypedPubSub`] is an *interest-routed* layer over the optimistic
//! transport: publishing resolves the subscriber set through the
//! swarm's routing table (interests indexed by type-name token
//! signature, Gryphon/SIENA-style) and ships one coalesced wire message
//! per `(publisher, subscriber)` link per pump — O(subscribers) instead
//! of O(members) per event. Each receiver's own conformance check still
//! decides final delivery, and rejected events never cost an assembly
//! download (Figure 1's saving, amortized over the whole group). The
//! pre-routing broadcast behaviour survives as an explicit escape hatch
//! ([`DeliveryMode::Flood`]) for interest-less sniffing and as the
//! baseline the routing experiment measures against.
//!
//! The session API is **typed handles**, not raw peers: [`Member`]s are
//! obtained from the group, a [`Publisher`] builds-and-broadcasts events
//! of one published type, and a [`Subscription`] yields the matched
//! events — callers never touch a runtime or an envelope. The group is
//! generic over the transport, so the same code runs deterministically
//! on a [`SimNet`] and concurrently on a
//! [`LiveBus`](pti_net::LiveBus).
//!
//! ## Example
//!
//! ```
//! use pti_conformance::ConformanceConfig;
//! use pti_metamodel::{Assembly, TypeDef, TypeDescription, bodies, primitives};
//! use pti_tps::TypedPubSub;
//!
//! let tps = TypedPubSub::builder()
//!     .default_conformance(ConformanceConfig::pragmatic())
//!     .build();
//! let exchange = tps.add_member();
//! let trader = tps.add_member();
//!
//! // The exchange's event type, published as an assembly.
//! let quote = TypeDef::class("StockQuote", "pub")
//!     .field("symbol", primitives::STRING)
//!     .field("price", primitives::FLOAT64)
//!     .ctor(vec![])
//!     .build();
//! let g = quote.guid;
//! let quotes = exchange.publisher_for(Assembly::builder("quotes")
//!     .ty(quote)
//!     .ctor_body(g, 0, bodies::ctor_assign(&[]))
//!     .build())?;
//!
//! // The trader's independently written view of the same module.
//! let my_quote = TypeDef::class("StockQuote", "sub")
//!     .field("symbol", primitives::STRING)
//!     .field("price", primitives::FLOAT64)
//!     .build();
//! let sub = trader.subscribe(TypeDescription::from_def(&my_quote));
//!
//! quotes.publish_with(|e| {
//!     e.set("symbol", "ACME")?.set("price", 42.5)?;
//!     Ok(())
//! })?;
//! tps.run()?;
//!
//! let events = sub.drain();
//! assert_eq!(events.len(), 1);
//! assert_eq!(events[0].interest.full(), "StockQuote");
//! # Ok::<(), pti_transport::TransportError>(())
//! ```

#![warn(missing_docs)]

use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

use pti_conformance::ConformanceConfig;
use pti_metamodel::{Assembly, Guid, ObjHandle, TypeDef, TypeDescription, TypeName, Value};
use pti_net::{NetConfig, NetMetrics, PeerId, ReactorNet, SimNet, Transport};
use pti_proxy::DynamicProxy;
use pti_serialize::PayloadFormat;
use pti_transport::{
    CodeRegistry, Delivery, DeliveryConfig, DeliveryStats, MountedSwarm, ProtocolStats,
    ReactorHost, Result, ShardedHost, Swarm, TransportError,
};

pub use pti_transport::QoS;

/// How published events reach the other members.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DeliveryMode {
    /// Route through the interest index: an event goes only to members
    /// whose subscription signatures match its type, one coalesced wire
    /// message per link per pump. The default.
    #[default]
    Routed,
    /// Broadcast to every other member regardless of interest — the
    /// pre-routing behaviour, kept as an explicit escape hatch (e.g. for
    /// measuring what routing saves, or for members that inspect
    /// everything without subscribing).
    Flood,
}

/// A matched event delivered to a subscriber.
#[derive(Debug, Clone)]
pub struct EventNotification {
    /// The publishing peer.
    pub from: PeerId,
    /// The materialized event value (object handle in the subscriber's
    /// runtime).
    pub value: Value,
    /// The subscription (type of interest) the event matched.
    pub interest: TypeName,
    /// Identity of the matched interest (distinguishes same-named
    /// interests from different vendors).
    pub interest_guid: Guid,
    /// Proxy exposing the subscription's contract over the event.
    pub proxy: Option<DynamicProxy>,
}

/// The group state behind the handles.
struct Group<T: Transport> {
    swarm: Swarm<T>,
    members: Vec<PeerId>,
    default_conformance: ConformanceConfig,
    format: PayloadFormat,
    mode: DeliveryMode,
    /// A seed peer to `join` through once the first member exists (a
    /// JOIN needs a speaker) — set by [`Builder::join`], consumed on the
    /// first `add_member*`.
    join_seed: Option<PeerId>,
    /// Matched events collected from peers but not yet claimed by a
    /// subscription's `drain`.
    mailbox: HashMap<PeerId, Vec<EventNotification>>,
}

impl<T: Transport> Group<T> {
    /// Ships one event according to the group's delivery mode.
    fn publish(&mut self, from: PeerId, event: &Value, format: PayloadFormat) -> Result<()> {
        match self.mode {
            DeliveryMode::Routed => {
                // Frames queue per link and flush at the next pump.
                self.swarm.route_object(from, event, format)?;
                Ok(())
            }
            DeliveryMode::Flood => self.flood(from, event, format),
        }
    }

    /// Broadcast to every other member (the group's members are exactly
    /// the swarm's owned peers). A member whose fabric registration is
    /// gone (departed endpoint) is pruned from future broadcasts instead
    /// of failing the publish.
    fn flood(&mut self, from: PeerId, event: &Value, format: PayloadFormat) -> Result<()> {
        let outcome = self.swarm.flood_object(from, event, format)?;
        for p in outcome.departed {
            self.prune_member(p);
        }
        Ok(())
    }

    /// Forgets a departed member: no more broadcast or routing traffic
    /// targets it. Its local protocol state is kept so outstanding
    /// `Member`/`Publisher`/`Subscription` handles stay valid (already
    /// collected events remain drainable; operations simply find an
    /// unreachable peer, not a panic).
    fn prune_member(&mut self, peer: PeerId) {
        self.members.retain(|m| *m != peer);
        self.swarm.forget_peer(peer);
    }

    /// Moves a member's finished matched deliveries into the mailbox.
    /// A no-op for departed members (detached via migration): their
    /// handles stay safe to drain, yielding whatever was collected
    /// before departure.
    fn collect(&mut self, member: PeerId) {
        if !self.swarm.has_peer(member) {
            return;
        }
        let fresh = self
            .swarm
            .peer_mut(member)
            .take_deliveries()
            .into_iter()
            .filter_map(|d| match d {
                Delivery::Accepted {
                    from,
                    value,
                    interest: Some(interest),
                    interest_guid: Some(interest_guid),
                    proxy,
                } => Some(EventNotification {
                    from,
                    value,
                    interest,
                    interest_guid,
                    proxy,
                }),
                _ => None,
            });
        self.mailbox.entry(member).or_default().extend(fresh);
    }
}

/// A publish/subscribe group where subscriptions are *types* and matching
/// is implicit structural conformance.
///
/// This is a cheaply-cloneable session handle; [`Member`], [`Publisher`]
/// and [`Subscription`] all point back into the same group.
pub struct TypedPubSub<T: Transport = SimNet> {
    inner: Arc<Mutex<Group<T>>>,
}

impl<T: Transport> Clone for TypedPubSub<T> {
    fn clone(&self) -> Self {
        TypedPubSub {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T: Transport> std::fmt::Debug for TypedPubSub<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let g = self.lock();
        f.debug_struct("TypedPubSub")
            .field("members", &g.members.len())
            .finish()
    }
}

/// Configures and creates a [`TypedPubSub`] group.
#[derive(Debug, Clone)]
pub struct Builder {
    net: NetConfig,
    conformance: ConformanceConfig,
    format: PayloadFormat,
    mode: DeliveryMode,
    join_seed: Option<PeerId>,
    code: Option<CodeRegistry>,
    delivery: DeliveryConfig,
}

impl Default for Builder {
    fn default() -> Builder {
        Builder {
            net: NetConfig::default(),
            conformance: ConformanceConfig::pragmatic(),
            format: PayloadFormat::Binary,
            mode: DeliveryMode::Routed,
            join_seed: None,
            code: None,
            delivery: DeliveryConfig::default(),
        }
    }
}

impl Builder {
    /// Link parameters for the simulated network (ignored by
    /// [`over`](Self::over)).
    pub fn net(mut self, config: NetConfig) -> Builder {
        self.net = config;
        self
    }

    /// Conformance profile given to members added without an explicit
    /// one. Defaults to the pragmatic profile.
    pub fn default_conformance(mut self, config: ConformanceConfig) -> Builder {
        self.conformance = config;
        self
    }

    /// Wire format events are serialized with. Defaults to binary.
    pub fn payload_format(mut self, format: PayloadFormat) -> Builder {
        self.format = format;
        self
    }

    /// How events reach the other members. Defaults to
    /// [`DeliveryMode::Routed`] (interest-indexed);
    /// [`DeliveryMode::Flood`] restores the broadcast behaviour.
    pub fn delivery_mode(mut self, mode: DeliveryMode) -> Builder {
        self.mode = mode;
        self
    }

    /// Joins an existing group on the shared fabric through `seed` (any
    /// member of an established group) instead of wiring contacts by
    /// hand. The JOIN handshake fires when the first member is added (a
    /// swarm needs a peer to speak with), so the seed's group must be up
    /// by then; pump both groups afterwards and the late joiner
    /// converges to the same membership view and routing table as the
    /// founders. Meaningful with [`over`](Self::over) — a fresh
    /// [`build`](Self::build) fabric has nobody to join.
    ///
    /// The deferred handshake **panics** in `add_member*` if the seed is
    /// not registered by then (a misconfigured topology, reported like a
    /// peer-id collision). When the seed's arrival is genuinely racy,
    /// skip the builder option and call the fallible
    /// [`TypedPubSub::join`] once the seed is known to be up.
    pub fn join(mut self, seed: PeerId) -> Builder {
        self.join_seed = Some(seed);
        self
    }

    /// Delivery guarantee for routed events. The default,
    /// [`QoS::FireAndForget`], ships each event once and trusts the
    /// fabric; [`QoS::AtLeastOnce`] adds per-link sequencing, cumulative
    /// acknowledgements, bounded retransmission and duplicate
    /// suppression — pair it with `Swarm::run_durable` (via
    /// [`TypedPubSub::run_durable`]) on virtual-time fabrics so the
    /// clock reaches the retransmit deadlines.
    pub fn qos(mut self, qos: QoS) -> Builder {
        self.delivery.qos = qos;
        self
    }

    /// At-least-once flow control: how many unacknowledged reliable
    /// frames one `(publisher, subscriber)` link may hold before further
    /// events buffer at the sender. Defaults to 32; clamped to ≥ 1.
    pub fn credit_window(mut self, window: usize) -> Builder {
        self.delivery.credit_window = window.max(1);
        self
    }

    /// How many recent events per topic the group retains for replay to
    /// late or resumed subscribers. Defaults to 0 (no replay).
    pub fn replay_depth(mut self, depth: usize) -> Builder {
        self.delivery.replay_depth = depth;
        self
    }

    /// At-least-once retransmit schedule: the base backoff in virtual
    /// microseconds (doubles each round) and the retry budget after
    /// which a link is declared unreachable.
    pub fn retransmit(mut self, base_us: u64, max_retries: u32) -> Builder {
        self.delivery.retransmit_base_us = base_us.max(1);
        self.delivery.max_retries = max_retries;
        self
    }

    /// Shares a code registry with sibling groups on the same fabric —
    /// how members of different shards resolve each other's published
    /// assemblies (the session-level counterpart of
    /// `Swarm::with_code_registry`). Defaults to a fresh registry.
    pub fn code_registry(mut self, code: CodeRegistry) -> Builder {
        self.code = Some(code);
        self
    }

    /// Builds the group over a fresh deterministic [`SimNet`].
    pub fn build(self) -> TypedPubSub<SimNet> {
        let net = SimNet::new(self.net);
        self.over(net)
    }

    /// Builds the group over a fresh session of `host`'s shared reactor
    /// fabric and mounts it, so the host's event loop pumps the group's
    /// swarm whenever traffic makes it ready. The returned handle is the
    /// usual cheaply-cloneable session handle — `add_member_as`,
    /// `publisher_for`, `subscribe` and `drain` all work unchanged; only
    /// the *driving* moves to [`ReactorHost::run_until_quiescent`] /
    /// [`ReactorHost::run_for`]. Use [`code_registry`](Self::code_registry)
    /// and explicit peer ids to coexist with sibling groups, exactly as
    /// on a shared `LiveBus`.
    pub fn mount_on(self, host: &mut ReactorHost) -> TypedPubSub<ReactorNet> {
        let mut handle = None;
        host.mount(|net| {
            let tps = self.over(net);
            handle = Some(tps.clone());
            tps
        });
        handle.expect("mount invokes its builder")
    }

    /// Builds the group on the shard of `host` that `primary`
    /// hash-pins to — the sharded counterpart of
    /// [`mount_on`](Self::mount_on). The group's swarm lives on that
    /// shard's worker thread and never leaves it; the returned
    /// [`ShardedGroup`] token accesses it through
    /// [`ShardedGroup::with`] closures. Share a
    /// [`code_registry`](Self::code_registry) across groups so members
    /// of different shards resolve each other's assemblies.
    pub fn mount_sharded(self, host: &mut ShardedHost, primary: PeerId) -> ShardedGroup {
        let shard = host.shard_for(primary);
        self.mount_sharded_pinned(host, shard)
    }

    /// Like [`mount_sharded`](Self::mount_sharded) with an explicit
    /// shard — the placement override for experiments that pin a
    /// publisher and its subscribers to different shards on purpose.
    pub fn mount_sharded_pinned(self, host: &mut ShardedHost, shard: usize) -> ShardedGroup {
        let slot = host.mount_pinned(shard, move |net| self.over(net));
        ShardedGroup { slot }
    }

    /// Builds the group over an existing transport — e.g. a
    /// [`LiveBus`](pti_net::LiveBus) handle for concurrent members.
    pub fn over<T: Transport>(self, transport: T) -> TypedPubSub<T> {
        let code = self.code.unwrap_or_default();
        let mut swarm = Swarm::with_code_registry(transport, code);
        swarm.set_qos(self.delivery.qos);
        swarm.set_credit_window(self.delivery.credit_window);
        swarm.set_replay_depth(self.delivery.replay_depth);
        swarm.set_retransmit(self.delivery.retransmit_base_us, self.delivery.max_retries);
        TypedPubSub {
            inner: Arc::new(Mutex::new(Group {
                swarm,
                members: Vec::new(),
                default_conformance: self.conformance,
                format: self.format,
                mode: self.mode,
                join_seed: self.join_seed,
                mailbox: HashMap::new(),
            })),
        }
    }
}

impl TypedPubSub<SimNet> {
    /// Starts configuring a group.
    pub fn builder() -> Builder {
        Builder::default()
    }

    /// Shorthand: a group over a simulated network with the given link
    /// parameters and the default profile.
    pub fn new(config: NetConfig) -> TypedPubSub<SimNet> {
        Builder::default().net(config).build()
    }
}

impl<T: Transport> TypedPubSub<T> {
    fn lock(&self) -> MutexGuard<'_, Group<T>> {
        self.inner.lock().expect("pub/sub group lock poisoned")
    }

    /// Adds a member with the group's default conformance profile.
    pub fn add_member(&self) -> Member<T> {
        let config = self.lock().default_conformance.clone();
        self.add_member_with(config)
    }

    /// Adds a member with an explicit conformance profile.
    pub fn add_member_with(&self, config: ConformanceConfig) -> Member<T> {
        let mut g = self.lock();
        let id = g.swarm.add_peer(config);
        self.finish_add(g, id)
    }

    /// Adds a member under an explicit peer id — required on a shared
    /// fabric where several groups must pick non-colliding ids (the
    /// session-level counterpart of `Swarm::add_peer_as`). Uses the
    /// group's default conformance profile.
    pub fn add_member_as(&self, id: PeerId) -> Member<T> {
        let mut g = self.lock();
        let config = g.default_conformance.clone();
        g.swarm.add_peer_as(id, config);
        self.finish_add(g, id)
    }

    /// Shared tail of the `add_member*` family: membership bookkeeping
    /// plus the deferred [`Builder::join`] handshake, fired exactly once
    /// now that the group has a speaker.
    ///
    /// # Panics
    /// If a deferred [`Builder::join`] seed is not registered on the
    /// fabric (see that method's docs for the fallible alternative).
    fn finish_add(&self, mut g: MutexGuard<'_, Group<T>>, id: PeerId) -> Member<T> {
        g.members.push(id);
        if let Some(seed) = g.join_seed.take() {
            g.swarm
                .join(seed)
                .expect("builder join: seed must be registered on the shared fabric");
        }
        Member {
            group: self.clone(),
            id,
        }
    }

    /// A fresh handle for an existing live member, `None` once it
    /// departed. This is how sharded callers re-acquire a handle inside
    /// each [`ShardedGroup::with`] closure — reactor-backed handles are
    /// not `Send` and cannot leave their shard's thread between calls.
    pub fn member(&self, id: PeerId) -> Option<Member<T>> {
        let g = self.lock();
        if !g.members.contains(&id) {
            return None;
        }
        drop(g);
        Some(Member {
            group: self.clone(),
            id,
        })
    }

    /// Joins an established group through `seed` right now (the explicit
    /// counterpart of [`Builder::join`]). Requires at least one member.
    ///
    /// # Errors
    /// No member to speak with, or an unreachable seed.
    pub fn join(&self, seed: PeerId) -> Result<()> {
        self.lock().swarm.join(seed)
    }

    /// Leaves the group: announces every member's departure and drops
    /// everything learned from it. Members and their collected events
    /// survive locally; the group can [`join`](Self::join) again.
    pub fn leave(&self) {
        self.lock().swarm.leave()
    }

    /// Detaches one member for migration to another shard: its departure
    /// is announced to the group (receivers retire its routes with it)
    /// and its interests are returned so the caller can re-subscribe
    /// them at the member's new home — see [`Member::migrate_to`].
    pub fn detach_member(&self, member: PeerId) -> Vec<TypeDescription> {
        let mut g = self.lock();
        if !g.swarm.has_peer(member) {
            // Already departed (a stale cloned handle): nothing to move.
            return Vec::new();
        }
        let interests = g.swarm.peer(member).interests().to_vec();
        // Finished deliveries move to the mailbox *before* the peer's
        // protocol state is dropped, so subscriptions left at the old
        // home still drain what arrived before the move.
        g.collect(member);
        g.swarm.depart_peer(member);
        g.members.retain(|m| *m != member);
        interests
    }

    /// Ids of all member peers.
    pub fn member_ids(&self) -> Vec<PeerId> {
        self.lock().members.clone()
    }

    /// Drives the network until quiet (deterministic fabrics).
    ///
    /// # Errors
    /// Protocol violations.
    pub fn run(&self) -> Result<()> {
        self.lock().swarm.run()
    }

    /// Drives the network until no message arrives for `idle`
    /// (concurrent fabrics).
    ///
    /// # Errors
    /// Protocol violations.
    pub fn run_for(&self, idle: Duration) -> Result<()> {
        self.lock().swarm.run_for(idle)
    }

    /// Like [`run`](Self::run), but additionally advances a
    /// virtual-time fabric through at-least-once retransmit deadlines
    /// until every reliable link is settled (all events acknowledged) or
    /// shed (retry budget exhausted — surfaced via
    /// [`take_dispatch_errors`](Self::take_dispatch_errors)). The right
    /// pump for groups built with [`Builder::qos`]`(QoS::AtLeastOnce)`
    /// on a `SimNet`.
    ///
    /// # Errors
    /// Pump-budget exhaustion; per-message protocol errors are isolated,
    /// not returned.
    pub fn run_durable(&self) -> Result<()> {
        self.lock().swarm.run_durable()
    }

    /// At-least-once delivery counters: frames sent and retransmitted,
    /// acknowledgements, duplicates suppressed, replay activity, and the
    /// high-water queue depths.
    pub fn delivery_stats(&self) -> DeliveryStats {
        self.lock().swarm.delivery_stats()
    }

    /// Drains the per-message errors the pumps isolated instead of
    /// aborting on — malformed frames, unknown artifacts, unreachable
    /// at-least-once peers — each tagged with the owned peer that
    /// reported it.
    pub fn take_dispatch_errors(&self) -> Vec<(PeerId, TransportError)> {
        self.lock().swarm.take_dispatch_errors()
    }

    /// Network traffic counters.
    pub fn metrics(&self) -> NetMetrics {
        self.lock().swarm.metrics()
    }

    /// Protocol counters of one member (zeroes once it departed).
    pub fn stats(&self, member: PeerId) -> ProtocolStats {
        let g = self.lock();
        if !g.swarm.has_peer(member) {
            return ProtocolStats::default();
        }
        g.swarm.peer(member).stats
    }

    /// Full access to the underlying swarm for protocol-level work the
    /// handles don't cover (experiments, failure injection). Scoped to a
    /// closure so no lock guard escapes.
    pub fn with_swarm<R>(&self, f: impl FnOnce(&mut Swarm<T>) -> R) -> R {
        f(&mut self.lock().swarm)
    }

    /// All matched events buffered for a member, regardless of which
    /// subscription they belong to — the low-level counterpart of
    /// [`Subscription::drain`].
    pub fn notifications(&self, member: PeerId) -> Vec<EventNotification> {
        let mut g = self.lock();
        g.collect(member);
        g.mailbox
            .get_mut(&member)
            .map(std::mem::take)
            .unwrap_or_default()
    }
}

/// Lets a [`ReactorHost`] pump a mounted group's swarm directly; events
/// surface on the next [`Subscription::drain`] (collection is lazy at
/// read time), so no extra notification plumbing is needed.
impl MountedSwarm for TypedPubSub<ReactorNet> {
    fn with_swarm_mut(&mut self, f: &mut dyn FnMut(&mut Swarm<ReactorNet>)) {
        f(&mut self.lock().swarm);
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// A typed group mounted on a [`ShardedHost`] — a `Send` token, not a
/// handle: the group itself (and every `Member`/`Publisher`/
/// `Subscription` obtained from it) is reactor-backed and must stay on
/// its owning shard's thread, so all access goes through
/// [`with`](Self::with) closures executed over there.
#[derive(Debug, Clone, Copy)]
pub struct ShardedGroup {
    slot: usize,
}

impl ShardedGroup {
    /// The group's global slot on the sharded host.
    pub fn slot(&self) -> usize {
        self.slot
    }

    /// The shard that owns the group.
    pub fn shard(&self, host: &ShardedHost) -> usize {
        host.shard_of(self.slot)
    }

    /// Runs `f` with the group on its owning shard's worker thread and
    /// returns the result. Handles created inside (`Member`s,
    /// `Subscription`s) must not escape the closure — they are not
    /// `Send`; return plain data (ids, drained events, counters)
    /// instead. Membership changes propagate to every other shard's
    /// proxy table before this returns.
    pub fn with<R: Send + 'static>(
        &self,
        host: &mut ShardedHost,
        f: impl FnOnce(&TypedPubSub<ReactorNet>) -> R + Send + 'static,
    ) -> R {
        host.with_mounted::<TypedPubSub<ReactorNet>, R>(self.slot, move |tps| f(tps))
    }

    /// Migrates `member` to `target` (possibly on another shard) under
    /// the fresh id `new_id` — the sharded counterpart of
    /// [`Member::migrate_to`], split into a detach on the source shard
    /// and a re-subscribe on the target's, each on its owning thread.
    /// Returns how many interests moved. Drive the host to quiescence
    /// afterwards so the departure gossip and re-announcements converge.
    pub fn migrate_member(
        &self,
        host: &mut ShardedHost,
        member: PeerId,
        target: &ShardedGroup,
        new_id: PeerId,
    ) -> usize {
        let interests = host.with_mounted::<TypedPubSub<ReactorNet>, Vec<TypeDescription>>(
            self.slot,
            move |tps| {
                let interests = tps.detach_member(member);
                // Unlike a same-fabric `migrate_to`, the sharded
                // path also drops the departed id's fabric ring:
                // the directory then revokes its proxies on every
                // shard, and stray in-flight traffic is dropped
                // instead of piling into a ring nobody reads.
                tps.with_swarm(|s| {
                    s.net_mut().unregister(member);
                });
                interests
            },
        );
        let moved = interests.len();
        host.with_mounted::<TypedPubSub<ReactorNet>, ()>(target.slot, move |tps| {
            let m = tps.add_member_as(new_id);
            for interest in interests {
                m.subscribe(interest);
            }
        });
        moved
    }
}

/// One member of the group, able to publish event types and subscribe
/// types of interest.
pub struct Member<T: Transport> {
    group: TypedPubSub<T>,
    id: PeerId,
}

impl<T: Transport> Clone for Member<T> {
    fn clone(&self) -> Self {
        Member {
            group: self.group.clone(),
            id: self.id,
        }
    }
}

impl<T: Transport> std::fmt::Debug for Member<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Member").field("id", &self.id).finish()
    }
}

impl<T: Transport> Member<T> {
    /// This member's peer id.
    pub fn id(&self) -> PeerId {
        self.id
    }

    /// This member's protocol counters.
    pub fn stats(&self) -> ProtocolStats {
        self.group.stats(self.id)
    }

    /// Publishes the event types in `assembly` and returns a
    /// [`Publisher`] for the assembly's *first* type — the conventional
    /// one-event-type-per-assembly case. Publish a multi-type assembly
    /// once and create further publishers with
    /// [`publisher_for_type`](Self::publisher_for_type).
    ///
    /// # Errors
    /// Empty assemblies or installation conflicts.
    pub fn publisher_for(&self, assembly: Assembly) -> Result<Publisher<T>> {
        let event = assembly
            .types()
            .first()
            .cloned()
            .ok_or_else(|| TransportError::Protocol("assembly declares no types".into()))?;
        self.group.lock().swarm.publish(self.id, assembly)?;
        Ok(Publisher {
            group: self.group.clone(),
            member: self.id,
            event,
        })
    }

    /// A [`Publisher`] for one type of an already-published assembly.
    pub fn publisher_for_type(&self, event: TypeDef) -> Publisher<T> {
        Publisher {
            group: self.group.clone(),
            member: self.id,
            event,
        }
    }

    /// Registers a type of interest and returns its [`Subscription`]:
    /// the interest joins the routing index (so routed publishes start
    /// targeting this member) and inbound events are matched against it
    /// by implicit structural conformance.
    ///
    /// On a stale handle whose member already departed (a clone kept
    /// across [`migrate_to`](Self::migrate_to)) the subscription is
    /// returned inert: nothing is registered and it never yields events.
    pub fn subscribe(&self, interest: TypeDescription) -> Subscription<T> {
        let mut g = self.group.lock();
        if g.swarm.has_peer(self.id) {
            g.swarm.subscribe(self.id, interest.clone());
        }
        drop(g);
        Subscription {
            group: self.group.clone(),
            member: self.id,
            interest,
        }
    }

    /// Migrates this member to another shard (group) of the same fabric
    /// group: the old shard announces its departure — every other
    /// engine's membership view and routing table retire it together —
    /// and its interests are re-subscribed under `new_id` at the target,
    /// whose gossip re-routes them across the group. Returns the new
    /// member plus one subscription per migrated interest, in the
    /// original subscription order.
    ///
    /// `new_id` must not collide with any id live on the shared fabric:
    /// the old registration survives until the old shard's fabric handle
    /// is dropped, so even a same-shard migration needs a fresh id.
    ///
    /// This handle is consumed. Handles left over at the old home stay
    /// *safe* but inert: an old `Subscription` drains what it collected
    /// before the move and then stays empty (`cancel` returns `false`,
    /// `invoke`/`get_field` error), an old `Publisher` errors on
    /// publish. Pump both shards afterwards to converge the group's
    /// routing tables.
    pub fn migrate_to(
        self,
        target: &TypedPubSub<T>,
        new_id: PeerId,
    ) -> (Member<T>, Vec<Subscription<T>>) {
        // Lock discipline: detach under the source lock, re-attach under
        // the target's — never both at once (they may be the same group).
        let interests = self.group.detach_member(self.id);
        let member = target.add_member_as(new_id);
        let subscriptions = interests.into_iter().map(|i| member.subscribe(i)).collect();
        (member, subscriptions)
    }
}

/// Builds the fields of one event object before it is broadcast.
///
/// The builder locks the group per operation rather than for the whole
/// construction, so the closure given to [`Publisher::publish_with`] may
/// freely call back into the group (other publishers, `run`, drains)
/// without deadlocking.
pub struct EventBuilder<T: Transport> {
    group: TypedPubSub<T>,
    member: PeerId,
    handle: ObjHandle,
}

impl<T: Transport> EventBuilder<T> {
    /// Sets a field of the event under construction.
    ///
    /// # Errors
    /// Unknown fields or type mismatches.
    pub fn set(&mut self, field: &str, value: impl Into<Value>) -> Result<&mut Self> {
        let mut g = self.group.lock();
        if !g.swarm.has_peer(self.member) {
            return Err(TransportError::UnknownPeer(self.member));
        }
        g.swarm
            .peer_mut(self.member)
            .runtime
            .set_field(self.handle, field, value.into())?;
        drop(g);
        Ok(self)
    }

    /// The handle of the event under construction (for nested
    /// structures).
    pub fn handle(&self) -> ObjHandle {
        self.handle
    }
}

/// Publishes events of one type to the whole group.
pub struct Publisher<T: Transport> {
    group: TypedPubSub<T>,
    member: PeerId,
    event: TypeDef,
}

impl<T: Transport> Clone for Publisher<T> {
    fn clone(&self) -> Self {
        Publisher {
            group: self.group.clone(),
            member: self.member,
            event: self.event.clone(),
        }
    }
}

impl<T: Transport> std::fmt::Debug for Publisher<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Publisher")
            .field("member", &self.member)
            .field("event", &self.event.name)
            .finish()
    }
}

impl<T: Transport> Publisher<T> {
    /// The event type this publisher produces.
    pub fn event_type(&self) -> &TypeDef {
        &self.event
    }

    /// The publishing member's peer id.
    pub fn member_id(&self) -> PeerId {
        self.member
    }

    /// Instantiates one event, hands it to `build` for field assignment,
    /// and broadcasts it to every other member.
    ///
    /// The group lock is *not* held across `build` (each
    /// [`EventBuilder`] operation takes it briefly), so the closure may
    /// call back into the group — publish on another [`Publisher`],
    /// drain a subscription — without deadlocking.
    ///
    /// # Errors
    /// Construction failures from `build`, or serialization/provenance
    /// failures while broadcasting.
    pub fn publish_with(
        &self,
        build: impl FnOnce(&mut EventBuilder<T>) -> Result<()>,
    ) -> Result<()> {
        let handle = {
            let mut g = self.group.lock();
            if !g.swarm.has_peer(self.member) {
                return Err(TransportError::UnknownPeer(self.member));
            }
            g.swarm
                .peer_mut(self.member)
                .runtime
                .instantiate_def(&self.event, &[])?
        };
        build(&mut EventBuilder {
            group: self.group.clone(),
            member: self.member,
            handle,
        })?;
        let mut g = self.group.lock();
        let format = g.format;
        g.publish(self.member, &Value::Obj(handle), format)
    }

    /// Broadcasts a pre-built value (it must live in the publishing
    /// member's runtime and have published provenance).
    ///
    /// # Errors
    /// Serialization or provenance failures.
    pub fn publish_value(&self, event: &Value) -> Result<()> {
        let mut g = self.group.lock();
        let format = g.format;
        g.publish(self.member, event, format)
    }
}

/// A registered type of interest, yielding the events that matched it.
pub struct Subscription<T: Transport> {
    group: TypedPubSub<T>,
    member: PeerId,
    interest: TypeDescription,
}

impl<T: Transport> std::fmt::Debug for Subscription<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Subscription")
            .field("member", &self.member)
            .field("interest", &self.interest.name)
            .finish()
    }
}

impl<T: Transport> Subscription<T> {
    /// The type of interest this subscription matches.
    pub fn interest(&self) -> &TypeDescription {
        &self.interest
    }

    /// The subscribing member's peer id.
    pub fn member_id(&self) -> PeerId {
        self.member
    }

    /// Takes the events delivered to this subscription since the last
    /// call. Events that matched *other* subscriptions of the same
    /// member stay queued for them (matching is by interest identity,
    /// so same-named interests from different vendors stay separate).
    pub fn drain(&self) -> Vec<EventNotification> {
        let mut g = self.group.lock();
        g.collect(self.member);
        let Some(inbox) = g.mailbox.get_mut(&self.member) else {
            return Vec::new();
        };
        let mut mine = Vec::new();
        inbox.retain(|ev| {
            if ev.interest_guid == self.interest.guid {
                mine.push(ev.clone());
                false
            } else {
                true
            }
        });
        mine
    }

    /// Drains and visits every pending event of this subscription.
    pub fn for_each(&self, mut f: impl FnMut(&EventNotification)) {
        for ev in self.drain() {
            f(&ev);
        }
    }

    /// Invokes a method of the subscription's contract on a delivered
    /// event, through its conformance-translating proxy.
    ///
    /// # Errors
    /// Events without a proxy, out-of-contract methods, or runtime
    /// failures.
    pub fn invoke(&self, event: &EventNotification, method: &str, args: &[Value]) -> Result<Value> {
        let proxy = event.proxy.as_ref().ok_or_else(|| {
            TransportError::Protocol("event has no proxy (primitive payload?)".into())
        })?;
        let mut g = self.group.lock();
        if !g.swarm.has_peer(self.member) {
            return Err(TransportError::UnknownPeer(self.member));
        }
        let rt = &mut g.swarm.peer_mut(self.member).runtime;
        proxy
            .invoke(rt, method, args)
            .map_err(|e| TransportError::Protocol(format!("event invocation failed: {e}")))
    }

    /// Reads a field of a delivered event through its proxy binding.
    ///
    /// # Errors
    /// Events without a proxy or unknown fields.
    pub fn get_field(&self, event: &EventNotification, field: &str) -> Result<Value> {
        let proxy = event.proxy.as_ref().ok_or_else(|| {
            TransportError::Protocol("event has no proxy (primitive payload?)".into())
        })?;
        let mut g = self.group.lock();
        if !g.swarm.has_peer(self.member) {
            return Err(TransportError::UnknownPeer(self.member));
        }
        let rt = &mut g.swarm.peer_mut(self.member).runtime;
        proxy
            .get_field(rt, field)
            .map_err(|e| TransportError::Protocol(format!("event field read failed: {e}")))
    }

    /// Withdraws the interest: it leaves the routing index (routed
    /// publishes stop targeting this member for it) and future events
    /// are no longer matched against it. Returns whether the interest
    /// was still registered — `false` too once the member departed (a
    /// migration already retracted everything).
    pub fn cancel(&self) -> bool {
        let mut g = self.group.lock();
        if !g.swarm.has_peer(self.member) {
            return false;
        }
        g.swarm.unsubscribe(self.member, self.interest.guid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pti_metamodel::{bodies, primitives, TypeDef};

    fn quote_assembly(salt: &str) -> (Assembly, TypeDef) {
        let def = TypeDef::class("StockQuote", salt)
            .field("symbol", primitives::STRING)
            .field("price", primitives::FLOAT64)
            .method("getSymbol", vec![], primitives::STRING)
            .ctor(vec![])
            .build();
        let g = def.guid;
        let asm = Assembly::builder(format!("quotes-{salt}"))
            .ty(def.clone())
            .body(g, "getSymbol", 0, bodies::getter("symbol"))
            .ctor_body(g, 0, bodies::ctor_assign(&[]))
            .build();
        (asm, def)
    }

    fn news_assembly(salt: &str) -> (Assembly, TypeDef) {
        let def = TypeDef::class("NewsFlash", salt)
            .field("headline", primitives::STRING)
            .ctor(vec![])
            .build();
        let g = def.guid;
        let asm = Assembly::builder(format!("news-{salt}"))
            .ty(def.clone())
            .ctor_body(g, 0, bodies::ctor_assign(&[]))
            .build();
        (asm, def)
    }

    fn group() -> TypedPubSub {
        TypedPubSub::builder().build()
    }

    #[test]
    fn matching_subscriber_gets_event_others_do_not() {
        let tps = group();
        let publisher = tps.add_member();
        let quote_fan = tps.add_member();
        let news_fan = tps.add_member();

        let (asm, _) = quote_assembly("pub");
        let quotes = publisher.publisher_for(asm).unwrap();
        let (_, sub_quote) = quote_assembly("quote-fan");
        let quote_sub = quote_fan.subscribe(TypeDescription::from_def(&sub_quote));
        let (_, sub_news) = news_assembly("news-fan");
        let news_sub = news_fan.subscribe(TypeDescription::from_def(&sub_news));

        quotes
            .publish_with(|e| {
                e.set("symbol", "ACME")?;
                Ok(())
            })
            .unwrap();
        tps.run().unwrap();

        let got = quote_sub.drain();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].from, publisher.id());
        assert!(news_sub.drain().is_empty());
        // Interest-indexed routing: the news fan's signature does not
        // match, so the event never even crossed its link.
        assert_eq!(news_fan.stats().objects_received, 0);
        assert_eq!(news_fan.stats().rejected, 0);
        assert_eq!(news_fan.stats().asm_requests, 0, "no code for non-matches");
        assert_eq!(tps.metrics().kind("object").messages, 1, "one link used");
    }

    #[test]
    fn flood_mode_still_reaches_non_matching_members() {
        // The broadcast escape hatch: everyone receives, conformance
        // rejects locally — the pre-routing behaviour.
        let tps = TypedPubSub::builder()
            .delivery_mode(DeliveryMode::Flood)
            .build();
        let publisher = tps.add_member();
        let quote_fan = tps.add_member();
        let news_fan = tps.add_member();

        let (asm, _) = quote_assembly("pub");
        let quotes = publisher.publisher_for(asm).unwrap();
        let (_, sub_quote) = quote_assembly("quote-fan");
        let quote_sub = quote_fan.subscribe(TypeDescription::from_def(&sub_quote));
        let (_, sub_news) = news_assembly("news-fan");
        let news_sub = news_fan.subscribe(TypeDescription::from_def(&sub_news));

        quotes
            .publish_with(|e| {
                e.set("symbol", "ACME")?;
                Ok(())
            })
            .unwrap();
        tps.run().unwrap();

        assert_eq!(quote_sub.drain().len(), 1);
        assert!(news_sub.drain().is_empty());
        assert_eq!(news_fan.stats().objects_received, 1);
        assert_eq!(news_fan.stats().rejected, 1);
        assert_eq!(news_fan.stats().asm_requests, 0, "no code for non-matches");
        assert_eq!(tps.metrics().kind("object").messages, 2, "every link used");
    }

    #[test]
    fn loose_type_name_matchers_keep_flood_semantics_under_routing() {
        // A wildcard type-name profile cannot be modelled by the token
        // prefilter; its subscriber must still receive routed events
        // (catch-all route) and match them through its own checker.
        use pti_conformance::NameMatcher;
        let tps = group();
        let publisher = tps.add_member();
        let wild = tps
            .add_member_with(ConformanceConfig::pragmatic().with_type_names(NameMatcher::Wildcard));
        let (asm, _) = quote_assembly("pub");
        let quotes = publisher.publisher_for(asm).unwrap();
        // Interest named `Stock*` — token-signature routing alone would
        // never match it against `StockQuote`.
        let pattern = TypeDef::class("Stock*", "wild")
            .field("symbol", primitives::STRING)
            .field("price", primitives::FLOAT64)
            .build();
        let sub = wild.subscribe(TypeDescription::from_def(&pattern));
        quotes
            .publish_with(|e| {
                e.set("symbol", "WILD")?;
                Ok(())
            })
            .unwrap();
        tps.run().unwrap();
        assert_eq!(sub.drain().len(), 1, "catch-all route delivered");
    }

    #[test]
    fn routed_publishes_coalesce_per_link() {
        let tps = group();
        let publisher = tps.add_member();
        let subscriber = tps.add_member();
        let spectator = tps.add_member();
        let (asm, _) = quote_assembly("pub");
        let quotes = publisher.publisher_for(asm).unwrap();
        let (_, sub_def) = quote_assembly("sub");
        let sub = subscriber.subscribe(TypeDescription::from_def(&sub_def));

        for i in 0..10 {
            let symbol = format!("B{i}");
            quotes
                .publish_with(|e| {
                    e.set("symbol", symbol.as_str())?;
                    Ok(())
                })
                .unwrap();
        }
        tps.run().unwrap();
        assert_eq!(sub.drain().len(), 10);

        let m = tps.metrics();
        // All ten envelopes crossed the publisher→subscriber link as one
        // coalesced batch message...
        assert_eq!(m.kind("object").messages, 0);
        let link = m.link(publisher.id(), subscriber.id());
        assert_eq!(link.batches, 1);
        assert_eq!(link.frames, 10);
        // ...and the interest-less spectator saw no traffic at all.
        assert_eq!(tps.stats(spectator.id()).objects_received, 0);
        assert_eq!(m.link(publisher.id(), spectator.id()).batches, 0);
    }

    #[test]
    fn subscriber_invokes_event_through_its_own_contract() {
        let tps = group();
        let publisher = tps.add_member();
        let subscriber = tps.add_member();
        let (asm, _) = quote_assembly("pub");
        let quotes = publisher.publisher_for(asm).unwrap();
        // Subscriber's view names the getter differently but conformantly.
        let sub_def = TypeDef::class("StockQuote", "sub")
            .field("symbol", primitives::STRING)
            .field("price", primitives::FLOAT64)
            .method("getSymbol", vec![], primitives::STRING)
            .build();
        let sub = subscriber.subscribe(TypeDescription::from_def(&sub_def));
        quotes
            .publish_with(|e| {
                e.set("symbol", "GLOBEX")?;
                Ok(())
            })
            .unwrap();
        tps.run().unwrap();
        let mut got = sub.drain();
        let ev = got.remove(0);
        let sym = sub.invoke(&ev, "getSymbol", &[]).unwrap();
        assert_eq!(sym.as_str().unwrap(), "GLOBEX");
    }

    #[test]
    fn many_events_amortize_protocol_cost() {
        let tps = group();
        let publisher = tps.add_member();
        let subscriber = tps.add_member();
        let (asm, _) = quote_assembly("pub");
        let quotes = publisher.publisher_for(asm).unwrap();
        let (_, sub_def) = quote_assembly("sub");
        let sub = subscriber.subscribe(TypeDescription::from_def(&sub_def));

        for i in 0..10 {
            let symbol = format!("S{i}");
            quotes
                .publish_with(|e| {
                    e.set("symbol", symbol.as_str())?;
                    Ok(())
                })
                .unwrap();
        }
        tps.run().unwrap();
        assert_eq!(sub.drain().len(), 10);
        // Description and code each crossed the wire exactly once.
        assert_eq!(subscriber.stats().desc_requests, 1);
        assert_eq!(subscriber.stats().asm_requests, 1);
    }

    #[test]
    fn multiple_subscriptions_first_match_wins() {
        let tps = group();
        let publisher = tps.add_member();
        let subscriber = tps.add_member();
        let (asm, pub_def) = quote_assembly("pub");
        let quotes = publisher.publisher_for(asm).unwrap();
        let (_, news) = news_assembly("sub");
        let news_sub = subscriber.subscribe(TypeDescription::from_def(&news));
        let quote_sub = subscriber.subscribe(TypeDescription::from_def(&pub_def));
        quotes
            .publish_with(|e| {
                e.set("symbol", "X")?;
                Ok(())
            })
            .unwrap();
        tps.run().unwrap();
        let got = quote_sub.drain();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].interest.full(), "StockQuote");
        assert!(news_sub.drain().is_empty());
    }

    #[test]
    fn unsubscribe_stops_future_deliveries() {
        let tps = group();
        let publisher = tps.add_member();
        let subscriber = tps.add_member();
        let (asm, _) = quote_assembly("pub");
        let quotes = publisher.publisher_for(asm).unwrap();
        let (_, sub_def) = quote_assembly("sub");
        let sub = subscriber.subscribe(TypeDescription::from_def(&sub_def));

        quotes
            .publish_with(|e| {
                e.set("symbol", "BEFORE")?;
                Ok(())
            })
            .unwrap();
        tps.run().unwrap();
        assert_eq!(sub.drain().len(), 1);

        assert!(sub.cancel());
        assert!(!sub.cancel(), "idempotent");
        let before = tps.metrics().messages;
        quotes
            .publish_with(|e| {
                e.set("symbol", "AFTER")?;
                Ok(())
            })
            .unwrap();
        tps.run().unwrap();
        assert!(sub.drain().is_empty());
        // The retraction reached the router: the second publish found no
        // matching interest and nothing crossed the wire.
        assert_eq!(tps.metrics().messages, before);
    }

    #[test]
    fn publisher_does_not_receive_its_own_events() {
        let tps = group();
        let publisher = tps.add_member();
        let _other = tps.add_member();
        let (asm, def) = quote_assembly("pub");
        let quotes = publisher.publisher_for(asm).unwrap();
        let self_sub = publisher.subscribe(TypeDescription::from_def(&def));
        quotes
            .publish_with(|e| {
                e.set("symbol", "SELF")?;
                Ok(())
            })
            .unwrap();
        tps.run().unwrap();
        assert!(self_sub.drain().is_empty());
    }

    #[test]
    fn empty_assembly_cannot_back_a_publisher() {
        let tps = group();
        let member = tps.add_member();
        let err = member
            .publisher_for(Assembly::builder("empty").build())
            .unwrap_err();
        assert!(err.to_string().contains("no types"), "{err}");
    }

    #[test]
    fn drain_routes_by_subscription_not_arrival_order() {
        // Two interests on one member; events of both types interleaved.
        let tps = group();
        let publisher = tps.add_member();
        let subscriber = tps.add_member();
        let (quote_asm, _) = quote_assembly("pub");
        let quotes = publisher.publisher_for(quote_asm).unwrap();
        let (news_asm, _) = news_assembly("pub");
        let news = publisher.publisher_for(news_asm).unwrap();
        let (_, q_def) = quote_assembly("sub");
        let (_, n_def) = news_assembly("sub");
        let q_sub = subscriber.subscribe(TypeDescription::from_def(&q_def));
        let n_sub = subscriber.subscribe(TypeDescription::from_def(&n_def));

        for i in 0..3 {
            let s = format!("Q{i}");
            quotes
                .publish_with(|e| {
                    e.set("symbol", s.as_str())?;
                    Ok(())
                })
                .unwrap();
            let h = format!("N{i}");
            news.publish_with(|e| {
                e.set("headline", h.as_str())?;
                Ok(())
            })
            .unwrap();
        }
        tps.run().unwrap();
        assert_eq!(q_sub.drain().len(), 3);
        assert_eq!(n_sub.drain().len(), 3);
        assert!(q_sub.drain().is_empty(), "drained once");
    }

    #[test]
    fn publish_with_closure_may_reenter_the_group() {
        // The build closure publishes on a *second* publisher of the same
        // group — this must not deadlock on the group lock.
        let tps = group();
        let publisher = tps.add_member();
        let subscriber = tps.add_member();
        let (quote_asm, _) = quote_assembly("pub");
        let quotes = publisher.publisher_for(quote_asm).unwrap();
        let (news_asm, _) = news_assembly("pub");
        let news = publisher.publisher_for(news_asm).unwrap();
        let (_, q_def) = quote_assembly("sub");
        let (_, n_def) = news_assembly("sub");
        let q_sub = subscriber.subscribe(TypeDescription::from_def(&q_def));
        let n_sub = subscriber.subscribe(TypeDescription::from_def(&n_def));

        quotes
            .publish_with(|e| {
                e.set("symbol", "NESTED")?;
                news.publish_with(|n| {
                    n.set("headline", "from inside another publish")?;
                    Ok(())
                })
            })
            .unwrap();
        tps.run().unwrap();
        assert_eq!(q_sub.drain().len(), 1);
        assert_eq!(n_sub.drain().len(), 1);
    }

    #[test]
    fn same_named_interests_from_different_vendors_stay_separate() {
        // Two subscriptions on one member, both named StockQuote but with
        // different identities; drain must route by identity, not name.
        let tps = group();
        let publisher = tps.add_member();
        let subscriber = tps.add_member();
        let (asm, _) = quote_assembly("pub");
        let quotes = publisher.publisher_for(asm).unwrap();
        let (_, vendor_x) = quote_assembly("vendor-x");
        let (_, vendor_y) = quote_assembly("vendor-y");
        // Subscription order decides the match: vendor-x wins every event.
        let x_sub = subscriber.subscribe(TypeDescription::from_def(&vendor_x));
        let y_sub = subscriber.subscribe(TypeDescription::from_def(&vendor_y));
        quotes
            .publish_with(|e| {
                e.set("symbol", "IDENT")?;
                Ok(())
            })
            .unwrap();
        tps.run().unwrap();
        // The event matched vendor-x's interest; draining vendor-y first
        // must not steal it.
        assert!(y_sub.drain().is_empty(), "same name, different identity");
        let got = x_sub.drain();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].interest_guid, vendor_x.guid);
    }

    #[test]
    fn at_least_once_group_survives_seeded_loss() {
        use pti_net::FaultPlan;
        let tps = TypedPubSub::builder()
            .qos(QoS::AtLeastOnce)
            .credit_window(8)
            .retransmit(2_000, 8)
            .build();
        let publisher = tps.add_member();
        let subscriber = tps.add_member();
        let (asm, _) = quote_assembly("pub");
        let quotes = publisher.publisher_for(asm).unwrap();
        let (_, sub_def) = quote_assembly("sub");
        let sub = subscriber.subscribe(TypeDescription::from_def(&sub_def));

        // Warm up the desc/asm exchange losslessly, then turn on loss:
        // only the reliable OBJECT path is repaired by retransmission.
        quotes
            .publish_with(|e| {
                e.set("symbol", "WARM")?;
                Ok(())
            })
            .unwrap();
        tps.run_durable().unwrap();
        assert_eq!(sub.drain().len(), 1);

        tps.with_swarm(|s| {
            s.net_mut()
                .install_fault_plan(FaultPlan::new(11).with_loss(100))
        });
        for i in 0..20 {
            let symbol = format!("L{i}");
            quotes
                .publish_with(|e| {
                    e.set("symbol", symbol.as_str())?;
                    Ok(())
                })
                .unwrap();
            tps.run().unwrap();
        }
        tps.run_durable().unwrap();

        assert_eq!(sub.drain().len(), 20, "100% delivery despite loss");
        assert!(tps.take_dispatch_errors().is_empty());
        let st = tps.delivery_stats();
        assert_eq!(st.delivered, 21, "each event surfaced exactly once");
        assert!(st.max_inflight <= 8, "credit window bounds queue depth");
        assert!(tps.metrics().faults_dropped > 0, "the plan did drop frames");
    }

    #[test]
    fn for_each_and_get_field() {
        let tps = TypedPubSub::builder()
            .payload_format(PayloadFormat::Soap)
            .build();
        let publisher = tps.add_member();
        let subscriber = tps.add_member();
        let (asm, _) = quote_assembly("pub");
        let quotes = publisher.publisher_for(asm).unwrap();
        let (_, sub_def) = quote_assembly("sub");
        let sub = subscriber.subscribe(TypeDescription::from_def(&sub_def));
        quotes
            .publish_with(|e| {
                e.set("symbol", "FLD")?.set("price", 9.5)?;
                Ok(())
            })
            .unwrap();
        tps.run().unwrap();
        let mut seen = 0;
        sub.for_each(|ev| {
            seen += 1;
            assert_eq!(sub.get_field(ev, "price").unwrap().as_f64().unwrap(), 9.5);
        });
        assert_eq!(seen, 1);
    }
}
