//! # pti-tps — type-based publish/subscribe over type interoperability
//!
//! The paper names TPS as the "obvious application" of type
//! interoperability (Section 8): with plain TPS, "subscribers and
//! publishers must agree a priori on the types they want to
//! transfer/receive"; with type interoperability, a subscriber's interest
//! type matches any *implicitly structurally conformant* event type —
//! publishers and subscribers never have to share a type hierarchy or
//! even a vendor.
//!
//! [`TypedPubSub`] is a thin broadcast layer over the optimistic
//! transport: publishing sends the event object to every other member;
//! each member's own conformance check decides delivery, and rejected
//! events never cost an assembly download (Figure 1's saving, amortized
//! over the whole group).
//!
//! ## Example
//!
//! ```
//! use pti_conformance::ConformanceConfig;
//! use pti_metamodel::{Assembly, TypeDef, TypeDescription, Value, bodies, primitives};
//! use pti_net::NetConfig;
//! use pti_serialize::PayloadFormat;
//! use pti_tps::TypedPubSub;
//!
//! let mut tps = TypedPubSub::new(NetConfig::default());
//! let publisher = tps.add_member(ConformanceConfig::pragmatic());
//! let subscriber = tps.add_member(ConformanceConfig::pragmatic());
//!
//! // Publisher's event type.
//! let quote = TypeDef::class("StockQuote", "pub")
//!     .field("symbol", primitives::STRING)
//!     .field("price", primitives::FLOAT64)
//!     .ctor(vec![])
//!     .build();
//! let g = quote.guid;
//! tps.publish_types(publisher, Assembly::builder("quotes")
//!     .ty(quote)
//!     .ctor_body(g, 0, bodies::ctor_assign(&[]))
//!     .build())?;
//!
//! // Subscriber's independently written view of the same module.
//! let my_quote = TypeDef::class("StockQuote", "sub")
//!     .field("symbol", primitives::STRING)
//!     .field("price", primitives::FLOAT64)
//!     .build();
//! tps.subscribe(subscriber, TypeDescription::from_def(&my_quote));
//!
//! let rt = &mut tps.member_mut(publisher).runtime;
//! let e = rt.instantiate(&"StockQuote".into(), &[])?;
//! rt.set_field(e, "symbol", Value::from("ACME"))?;
//! rt.set_field(e, "price", Value::F64(42.5))?;
//! tps.publish(publisher, &Value::Obj(e), PayloadFormat::Binary)?;
//! tps.run()?;
//!
//! let events = tps.notifications(subscriber);
//! assert_eq!(events.len(), 1);
//! assert_eq!(events[0].interest.full(), "StockQuote");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

use pti_conformance::ConformanceConfig;
use pti_metamodel::{Assembly, TypeDescription, TypeName, Value};
use pti_net::{NetConfig, PeerId, SimNet};
use pti_proxy::DynamicProxy;
use pti_serialize::PayloadFormat;
use pti_transport::{Delivery, Peer, Result, Swarm};

/// A matched event delivered to a subscriber.
#[derive(Debug, Clone)]
pub struct EventNotification {
    /// The publishing peer.
    pub from: PeerId,
    /// The materialized event value (object handle in the subscriber's
    /// runtime).
    pub value: Value,
    /// The subscription (type of interest) the event matched.
    pub interest: TypeName,
    /// Proxy exposing the subscription's contract over the event.
    pub proxy: Option<DynamicProxy>,
}

/// A publish/subscribe group where subscriptions are *types* and matching
/// is implicit structural conformance.
#[derive(Debug)]
pub struct TypedPubSub {
    swarm: Swarm,
    members: Vec<PeerId>,
}

impl TypedPubSub {
    /// Creates an empty group over a network with the given parameters.
    pub fn new(config: NetConfig) -> TypedPubSub {
        TypedPubSub { swarm: Swarm::new(config), members: Vec::new() }
    }

    /// Adds a member peer.
    pub fn add_member(&mut self, config: ConformanceConfig) -> PeerId {
        let id = self.swarm.add_peer(config);
        self.members.push(id);
        id
    }

    /// All member peers.
    pub fn members(&self) -> &[PeerId] {
        &self.members
    }

    /// Mutable access to a member (its runtime, stats, ...).
    pub fn member_mut(&mut self, id: PeerId) -> &mut Peer {
        self.swarm.peer_mut(id)
    }

    /// Immutable access to a member.
    pub fn member(&self, id: PeerId) -> &Peer {
        self.swarm.peer(id)
    }

    /// The underlying swarm (network metrics, manual driving).
    pub fn swarm(&self) -> &Swarm {
        &self.swarm
    }

    /// Mutable access to the underlying swarm.
    pub fn swarm_mut(&mut self) -> &mut Swarm {
        &mut self.swarm
    }

    /// Publishes the event *types* a member will produce (its assembly).
    ///
    /// # Errors
    /// Installation conflicts.
    pub fn publish_types(&mut self, member: PeerId, assembly: Assembly) -> Result<()> {
        self.swarm.publish(member, assembly)
    }

    /// Registers a subscription: a type of interest events are matched
    /// against by implicit structural conformance.
    pub fn subscribe(&mut self, member: PeerId, interest: TypeDescription) {
        self.swarm.peer_mut(member).subscribe(interest);
    }

    /// Cancels a subscription by the interest type's identity. Returns
    /// whether a subscription was removed.
    pub fn unsubscribe(&mut self, member: PeerId, interest: pti_metamodel::Guid) -> bool {
        self.swarm.peer_mut(member).unsubscribe(interest)
    }

    /// Publishes an event to every other member (decentralized TPS:
    /// broadcast + subscriber-side conformance filtering).
    ///
    /// # Errors
    /// Serialization or provenance failures at the publisher.
    pub fn publish(&mut self, from: PeerId, event: &Value, format: PayloadFormat) -> Result<()> {
        let targets: Vec<PeerId> =
            self.members.iter().copied().filter(|m| *m != from).collect();
        for to in targets {
            self.swarm.send_object(from, to, event, format)?;
        }
        Ok(())
    }

    /// Drives the network until quiet.
    ///
    /// # Errors
    /// Protocol violations.
    pub fn run(&mut self) -> Result<()> {
        self.swarm.run()
    }

    /// Matched events delivered to a subscriber since the last call.
    ///
    /// Only deliveries that matched a subscription become notifications;
    /// objects accepted merely because their exact type was already
    /// installed (no interest) are dropped, and rejected events were
    /// already filtered by the protocol without downloading code.
    pub fn notifications(&mut self, member: PeerId) -> Vec<EventNotification> {
        self.swarm
            .peer_mut(member)
            .take_deliveries()
            .into_iter()
            .filter_map(|d| match d {
                Delivery::Accepted { from, value, interest: Some(interest), proxy } => {
                    Some(EventNotification { from, value, interest, proxy })
                }
                _ => None,
            })
            .collect()
    }

    /// Network traffic counters.
    pub fn net(&self) -> &SimNet {
        self.swarm.net()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pti_metamodel::{bodies, primitives, TypeDef};

    fn quote_assembly(salt: &str) -> (Assembly, TypeDef) {
        let def = TypeDef::class("StockQuote", salt)
            .field("symbol", primitives::STRING)
            .field("price", primitives::FLOAT64)
            .method("getSymbol", vec![], primitives::STRING)
            .ctor(vec![])
            .build();
        let g = def.guid;
        let asm = Assembly::builder(format!("quotes-{salt}"))
            .ty(def.clone())
            .body(g, "getSymbol", 0, bodies::getter("symbol"))
            .ctor_body(g, 0, bodies::ctor_assign(&[]))
            .build();
        (asm, def)
    }

    fn news_assembly(salt: &str) -> (Assembly, TypeDef) {
        let def = TypeDef::class("NewsFlash", salt)
            .field("headline", primitives::STRING)
            .ctor(vec![])
            .build();
        let g = def.guid;
        let asm = Assembly::builder(format!("news-{salt}"))
            .ty(def.clone())
            .ctor_body(g, 0, bodies::ctor_assign(&[]))
            .build();
        (asm, def)
    }

    fn publish_quote(tps: &mut TypedPubSub, publisher: PeerId, symbol: &str) {
        let rt = &mut tps.member_mut(publisher).runtime;
        let e = rt.instantiate(&"StockQuote".into(), &[]).unwrap();
        rt.set_field(e, "symbol", Value::from(symbol)).unwrap();
        tps.publish(publisher, &Value::Obj(e), PayloadFormat::Binary).unwrap();
    }

    #[test]
    fn matching_subscriber_gets_event_others_do_not() {
        let mut tps = TypedPubSub::new(NetConfig::default());
        let publisher = tps.add_member(ConformanceConfig::pragmatic());
        let quote_fan = tps.add_member(ConformanceConfig::pragmatic());
        let news_fan = tps.add_member(ConformanceConfig::pragmatic());

        let (asm, _) = quote_assembly("pub");
        tps.publish_types(publisher, asm).unwrap();
        let (_, sub_quote) = quote_assembly("quote-fan");
        tps.subscribe(quote_fan, TypeDescription::from_def(&sub_quote));
        let (_, sub_news) = news_assembly("news-fan");
        tps.subscribe(news_fan, TypeDescription::from_def(&sub_news));

        publish_quote(&mut tps, publisher, "ACME");
        tps.run().unwrap();

        let got = tps.notifications(quote_fan);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].from, publisher);
        assert!(tps.notifications(news_fan).is_empty());
        assert_eq!(tps.member(news_fan).stats.rejected, 1);
        assert_eq!(tps.member(news_fan).stats.asm_requests, 0, "no code for non-matches");
    }

    #[test]
    fn subscriber_invokes_event_through_its_own_contract() {
        let mut tps = TypedPubSub::new(NetConfig::default());
        let publisher = tps.add_member(ConformanceConfig::pragmatic());
        let subscriber = tps.add_member(ConformanceConfig::pragmatic());
        let (asm, _) = quote_assembly("pub");
        tps.publish_types(publisher, asm).unwrap();
        // Subscriber's view names the getter differently but conformantly.
        let sub_def = TypeDef::class("StockQuote", "sub")
            .field("symbol", primitives::STRING)
            .field("price", primitives::FLOAT64)
            .method("getSymbol", vec![], primitives::STRING)
            .build();
        tps.subscribe(subscriber, TypeDescription::from_def(&sub_def));
        publish_quote(&mut tps, publisher, "GLOBEX");
        tps.run().unwrap();
        let mut got = tps.notifications(subscriber);
        let ev = got.remove(0);
        let proxy = ev.proxy.unwrap();
        let sym = proxy
            .invoke(&mut tps.member_mut(subscriber).runtime, "getSymbol", &[])
            .unwrap();
        assert_eq!(sym.as_str().unwrap(), "GLOBEX");
    }

    #[test]
    fn many_events_amortize_protocol_cost() {
        let mut tps = TypedPubSub::new(NetConfig::default());
        let publisher = tps.add_member(ConformanceConfig::pragmatic());
        let subscriber = tps.add_member(ConformanceConfig::pragmatic());
        let (asm, _) = quote_assembly("pub");
        tps.publish_types(publisher, asm).unwrap();
        let (_, sub) = quote_assembly("sub");
        tps.subscribe(subscriber, TypeDescription::from_def(&sub));

        for i in 0..10 {
            publish_quote(&mut tps, publisher, &format!("S{i}"));
        }
        tps.run().unwrap();
        assert_eq!(tps.notifications(subscriber).len(), 10);
        // Description and code each crossed the wire exactly once.
        assert_eq!(tps.member(subscriber).stats.desc_requests, 1);
        assert_eq!(tps.member(subscriber).stats.asm_requests, 1);
    }

    #[test]
    fn multiple_subscriptions_first_match_wins() {
        let mut tps = TypedPubSub::new(NetConfig::default());
        let publisher = tps.add_member(ConformanceConfig::pragmatic());
        let subscriber = tps.add_member(ConformanceConfig::pragmatic());
        let (asm, pub_def) = quote_assembly("pub");
        tps.publish_types(publisher, asm).unwrap();
        let (_, news) = news_assembly("sub");
        tps.subscribe(subscriber, TypeDescription::from_def(&news));
        tps.subscribe(subscriber, TypeDescription::from_def(&pub_def));
        publish_quote(&mut tps, publisher, "X");
        tps.run().unwrap();
        let got = tps.notifications(subscriber);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].interest.full(), "StockQuote");
    }

    #[test]
    fn unsubscribe_stops_future_deliveries() {
        let mut tps = TypedPubSub::new(NetConfig::default());
        let publisher = tps.add_member(ConformanceConfig::pragmatic());
        let subscriber = tps.add_member(ConformanceConfig::pragmatic());
        let (asm, _) = quote_assembly("pub");
        tps.publish_types(publisher, asm).unwrap();
        let (_, sub_def) = quote_assembly("sub");
        let sub_guid = sub_def.guid;
        tps.subscribe(subscriber, TypeDescription::from_def(&sub_def));

        publish_quote(&mut tps, publisher, "BEFORE");
        tps.run().unwrap();
        assert_eq!(tps.notifications(subscriber).len(), 1);

        assert!(tps.unsubscribe(subscriber, sub_guid));
        assert!(!tps.unsubscribe(subscriber, sub_guid), "idempotent");
        publish_quote(&mut tps, publisher, "AFTER");
        tps.run().unwrap();
        assert!(tps.notifications(subscriber).is_empty());
    }

    #[test]
    fn publisher_does_not_receive_its_own_events() {
        let mut tps = TypedPubSub::new(NetConfig::default());
        let publisher = tps.add_member(ConformanceConfig::pragmatic());
        let _other = tps.add_member(ConformanceConfig::pragmatic());
        let (asm, def) = quote_assembly("pub");
        tps.publish_types(publisher, asm).unwrap();
        tps.subscribe(publisher, TypeDescription::from_def(&def));
        publish_quote(&mut tps, publisher, "SELF");
        tps.run().unwrap();
        assert!(tps.notifications(publisher).is_empty());
    }
}
