//! Shared, immutable wire payloads.
//!
//! Fanning one publish out to N links used to cost N `Vec` clones of the
//! full envelope. A [`Payload`] is the same bytes behind an `Arc<[u8]>`:
//! building it costs one allocation, every further destination is a
//! reference-count bump. The bytes are immutable once wrapped — exactly
//! the invariant a wire message needs (senders must not see their buffer
//! mutated after handing it to the fabric).

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, cheaply-cloneable byte buffer travelling on the wire.
///
/// `Clone` is a reference-count bump, never a byte copy — the structural
/// guarantee behind the zero-copy fan-out path (`Swarm::route_object`
/// clones one encoded envelope per destination link instead of copying
/// it).
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Payload(Arc<[u8]>);

impl Payload {
    /// Wraps a byte buffer. Prefer the `From` impls at call sites.
    pub fn new(bytes: impl Into<Arc<[u8]>>) -> Payload {
        Payload(bytes.into())
    }

    /// An empty payload.
    pub fn empty() -> Payload {
        Payload::default()
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the payload holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.0
    }

    /// Copies the bytes out into an owned vector (a deliberate deep
    /// copy — the only way to get mutable bytes back).
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.to_vec()
    }

    /// How many handles share these bytes (diagnostic; used by tests to
    /// prove fan-out shares rather than copies).
    pub fn ref_count(&self) -> usize {
        Arc::strong_count(&self.0)
    }
}

impl Deref for Payload {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Payload {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Payload {
    fn from(v: Vec<u8>) -> Payload {
        Payload(v.into())
    }
}

impl From<&[u8]> for Payload {
    fn from(v: &[u8]) -> Payload {
        Payload(v.into())
    }
}

impl<const N: usize> From<[u8; N]> for Payload {
    fn from(v: [u8; N]) -> Payload {
        Payload(v.as_slice().into())
    }
}

impl From<String> for Payload {
    fn from(s: String) -> Payload {
        Payload(s.into_bytes().into())
    }
}

impl From<Arc<[u8]>> for Payload {
    fn from(a: Arc<[u8]>) -> Payload {
        Payload(a)
    }
}

impl PartialEq<Vec<u8>> for Payload {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<&[u8]> for Payload {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Payload {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl fmt::Debug for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Payload({} B)", self.0.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_bytes() {
        let p: Payload = vec![1u8, 2, 3].into();
        let q = p.clone();
        assert_eq!(p.ref_count(), 2);
        assert_eq!(q, vec![1u8, 2, 3]);
        assert_eq!(p.as_slice().as_ptr(), q.as_slice().as_ptr(), "no copy");
    }

    #[test]
    fn conversions_and_views() {
        assert_eq!(Payload::from("hi".to_string()).as_slice(), b"hi");
        assert_eq!(Payload::from([9u8; 4]).len(), 4);
        assert!(Payload::empty().is_empty());
        let p = Payload::from(&b"abc"[..]);
        assert_eq!(&p[1..], b"bc");
        assert_eq!(p.to_vec(), b"abc".to_vec());
    }
}
