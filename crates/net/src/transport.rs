//! The transport abstraction both fabrics implement.
//!
//! The protocol engine (`pti-transport`'s `Swarm`) is generic over this
//! trait, so the *same* optimistic-exchange state machine runs
//! single-threaded over the deterministic virtual-time [`SimNet`] (for
//! reproducible experiments) and genuinely concurrently over the
//! threaded [`LiveBus`] (for load and integration tests).
//!
//! [`SimNet`]: crate::SimNet
//! [`LiveBus`]: crate::LiveBus

use std::time::Instant;

use crate::bus::BusMessage;
use crate::fault::FaultPlan;
use crate::metrics::NetMetrics;
use crate::payload::Payload;
use crate::sim::{NetError, PeerId, SharedSimNet, SimNet};

/// A message fabric connecting peers: registration, point-to-point send,
/// per-peer receive, and shared traffic accounting.
///
/// Implementations differ in their notion of time: [`SimNet`] is
/// virtual-time and single-threaded (an empty inbox means the network is
/// definitively quiet), while [`LiveBus`] is wall-clock and concurrent
/// (an empty inbox may fill up a microsecond later, so receives take a
/// deadline).
///
/// [`SimNet`]: crate::SimNet
/// [`LiveBus`]: crate::LiveBus
pub trait Transport {
    /// Registers a peer, creating its inbox. Idempotent.
    fn register(&mut self, peer: PeerId);

    /// Sends a message from one peer to another. The payload is a
    /// shared buffer: fanning the same bytes out to N destinations is N
    /// clones of the handle (refcount bumps), never N byte copies.
    ///
    /// # Errors
    /// [`NetError::UnknownPeer`] when the destination is not registered
    /// on the fabric.
    fn send(
        &mut self,
        from: PeerId,
        to: PeerId,
        kind: &'static str,
        payload: Payload,
    ) -> Result<(), NetError>;

    /// Takes the next available message for `peer` without waiting.
    /// `None` means nothing is deliverable right now; on a virtual-time
    /// fabric that is final until someone sends again.
    fn try_recv(&mut self, peer: PeerId) -> Option<BusMessage>;

    /// Waits until `deadline` for a message addressed to any of `peers`,
    /// polling them in order. The default implementation performs a
    /// single non-blocking pass — correct for virtual-time fabrics where
    /// no message can appear without a local send; concurrent fabrics
    /// override it to actually wait.
    fn recv_deadline(&mut self, peers: &[PeerId], deadline: Instant) -> Option<BusMessage> {
        let _ = deadline;
        peers.iter().find_map(|p| self.try_recv(*p))
    }

    /// A snapshot of the fabric-wide traffic counters.
    fn metrics(&self) -> NetMetrics;

    /// Resets the fabric-wide traffic counters.
    fn reset_metrics(&mut self);

    /// Accounting hook: the batching layer above split one link's burst
    /// into `extra` additional wire messages because it exceeded the
    /// sender's wire-batch cap. Fabrics that keep [`NetMetrics`] fold it
    /// into the per-link counters; the default is a no-op.
    fn record_batch_splits(&mut self, from: PeerId, to: PeerId, extra: u64) {
        let _ = (from, to, extra);
    }

    /// Accounting hook: the batching layer above shipped one frame of
    /// `kind` *inside* a batch message. Lets metrics attribute batch
    /// bytes back to the protocol kinds they carry (OBJECT vs control);
    /// the default is a no-op.
    fn record_batched_frame(&mut self, kind: &'static str, bytes: usize) {
        let _ = (kind, bytes);
    }

    /// Accounting hook: the layer above encoded one wire payload (e.g.
    /// an object envelope). Comparing this against delivered OBJECT
    /// counts proves the publish path encodes once and *shares* the
    /// bytes across destinations. The default is a no-op.
    fn record_payload_encode(&mut self) {}

    /// The fabric's notion of "now" in microseconds — virtual time on
    /// the simulated fabrics, time since fabric creation on the live
    /// ones. The durability layer stamps retransmit deadlines with it.
    /// The default (a frozen clock) disables time-based retries.
    fn now_us(&self) -> u64 {
        0
    }

    /// Installs a seeded [`FaultPlan`] that adjudicates every subsequent
    /// send (drop / duplicate / partition). Fabrics without fault
    /// support ignore the plan — the default is a no-op.
    fn install_fault_plan(&mut self, plan: FaultPlan) {
        let _ = plan;
    }

    /// Advances a *virtual* clock to `deadline_us`, returning whether
    /// the fabric did so. Virtual-time fabrics use this to reach the
    /// next retransmit deadline when no traffic is in flight; wall-clock
    /// fabrics return `false` (time passes on its own).
    fn advance_virtual_time(&mut self, deadline_us: u64) -> bool {
        let _ = deadline_us;
        false
    }
}

impl Transport for SimNet {
    fn register(&mut self, peer: PeerId) {
        SimNet::register(self, peer);
    }

    fn send(
        &mut self,
        from: PeerId,
        to: PeerId,
        kind: &'static str,
        payload: Payload,
    ) -> Result<(), NetError> {
        SimNet::send(self, from, to, kind, payload).map(|_deliver_at| ())
    }

    fn try_recv(&mut self, peer: PeerId) -> Option<BusMessage> {
        SimNet::recv(self, peer).map(|m| BusMessage {
            from: m.from,
            to: m.to,
            kind: m.kind,
            payload: m.payload,
        })
    }

    fn metrics(&self) -> NetMetrics {
        SimNet::metrics(self).clone()
    }

    fn reset_metrics(&mut self) {
        SimNet::reset_metrics(self);
    }

    fn record_batch_splits(&mut self, from: PeerId, to: PeerId, extra: u64) {
        SimNet::metrics_mut(self).record_batch_splits(from, to, extra);
    }

    fn record_batched_frame(&mut self, kind: &'static str, bytes: usize) {
        SimNet::metrics_mut(self).record_batched_frame(kind, bytes);
    }

    fn record_payload_encode(&mut self) {
        SimNet::metrics_mut(self).record_payload_encode();
    }

    fn now_us(&self) -> u64 {
        SimNet::now_us(self)
    }

    fn install_fault_plan(&mut self, plan: FaultPlan) {
        SimNet::install_fault_plan(self, plan);
    }

    fn advance_virtual_time(&mut self, deadline_us: u64) -> bool {
        SimNet::advance_clock_to(self, deadline_us);
        true
    }
}

/// Every clone drives the same underlying [`SimNet`]: registration,
/// sends, receives and metrics all land on the shared fabric, exactly
/// like clones of a [`LiveBus`](crate::LiveBus) handle — but
/// single-threaded and in virtual time.
impl Transport for SharedSimNet {
    fn register(&mut self, peer: PeerId) {
        self.with(|net| net.register(peer));
    }

    fn send(
        &mut self,
        from: PeerId,
        to: PeerId,
        kind: &'static str,
        payload: Payload,
    ) -> Result<(), NetError> {
        self.with(|net| net.send(from, to, kind, payload).map(|_deliver_at| ()))
    }

    fn try_recv(&mut self, peer: PeerId) -> Option<BusMessage> {
        self.with(|net| Transport::try_recv(net, peer))
    }

    fn metrics(&self) -> NetMetrics {
        SharedSimNet::metrics(self)
    }

    fn reset_metrics(&mut self) {
        self.with(SimNet::reset_metrics);
    }

    fn record_batch_splits(&mut self, from: PeerId, to: PeerId, extra: u64) {
        self.with(|net| net.metrics_mut().record_batch_splits(from, to, extra));
    }

    fn record_batched_frame(&mut self, kind: &'static str, bytes: usize) {
        self.with(|net| net.metrics_mut().record_batched_frame(kind, bytes));
    }

    fn record_payload_encode(&mut self) {
        self.with(|net| net.metrics_mut().record_payload_encode());
    }

    fn now_us(&self) -> u64 {
        SharedSimNet::now_us(self)
    }

    fn install_fault_plan(&mut self, plan: FaultPlan) {
        SharedSimNet::install_fault_plan(self, plan);
    }

    fn advance_virtual_time(&mut self, deadline_us: u64) -> bool {
        SharedSimNet::advance_clock_to(self, deadline_us);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::LiveBus;
    use crate::sim::NetConfig;
    use std::time::Duration;

    fn exercise<T: Transport>(mut t: T) {
        t.register(PeerId(1));
        t.register(PeerId(2));
        t.send(PeerId(1), PeerId(2), "k", vec![7].into()).unwrap();
        assert_eq!(
            t.send(PeerId(1), PeerId(9), "k", Payload::empty()),
            Err(NetError::UnknownPeer(PeerId(9)))
        );
        let m = t.try_recv(PeerId(2)).expect("queued message");
        assert_eq!(m.from, PeerId(1));
        assert_eq!(m.kind, "k");
        assert_eq!(m.payload, vec![7]);
        assert!(t.try_recv(PeerId(2)).is_none());
        assert_eq!(
            Transport::metrics(&t).messages,
            1,
            "failed send not recorded"
        );
        t.reset_metrics();
        assert_eq!(Transport::metrics(&t).messages, 0);
    }

    #[test]
    fn simnet_implements_transport() {
        exercise(SimNet::new(NetConfig::default()));
    }

    #[test]
    fn livebus_implements_transport() {
        exercise(LiveBus::new());
    }

    #[test]
    fn recv_deadline_returns_queued_message() {
        let mut t = SimNet::new(NetConfig::default());
        t.register(PeerId(1));
        t.register(PeerId(2));
        t.send(PeerId(1), PeerId(2), "k", Payload::empty()).unwrap();
        let deadline = Instant::now() + Duration::from_millis(1);
        let m = t
            .recv_deadline(&[PeerId(1), PeerId(2)], deadline)
            .expect("one pass finds it");
        assert_eq!(m.to, PeerId(2));
        assert!(t.recv_deadline(&[PeerId(1), PeerId(2)], deadline).is_none());
    }
}
