//! Cross-shard bridges: the only multi-thread surface of the reactor
//! world.
//!
//! A [`ReactorNet`](crate::ReactorNet) is `Rc`-based and must never
//! cross a thread. When several reactors run on separate threads (one
//! shard per core — the `ShardedHost` in `pti-transport`), traffic for a
//! peer owned by *another* shard rides a [`BridgeLink`]: an mpsc channel
//! pair in the `LiveBus` idiom, registered on the sending shard as a
//! **local peer proxy**. A `Transport::send` that resolves to a proxy
//! enqueues the message on the bridge and *wakes* the owning shard's
//! thread through a cross-thread wake handle (`std::thread::unpark`), so
//! a parked shard notices inbound traffic without polling.
//!
//! The bridge keeps its own atomic counters — crossings, payload bytes,
//! wake signals, drains — because cross-shard traffic is exactly what a
//! placement experiment wants to measure, and because the *drain barrier*
//! needs them: a sharded host is only quiescent when every shard is idle
//! **and** every bridge reports `pending() == 0` (messages can be in
//! flight between two shards that both look idle).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender, TryRecvError};
use std::sync::{Arc, Mutex};
use std::thread::Thread;

use crate::bus::BusMessage;
use crate::sim::NetError;

/// Counters shared by both endpoints of one bridge.
#[derive(Debug, Default)]
struct BridgeCounters {
    /// Messages enqueued by senders.
    crossings: AtomicU64,
    /// Payload bytes those messages carried.
    bytes: AtomicU64,
    /// Unpark signals actually delivered to a bound receiver thread.
    wake_signals: AtomicU64,
    /// Messages drained by the receiving shard.
    drained: AtomicU64,
}

/// A point-in-time copy of one bridge's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BridgeStats {
    /// Messages enqueued by senders.
    pub crossings: u64,
    /// Payload bytes those messages carried.
    pub bytes: u64,
    /// Wake signals sent to the owning shard's thread.
    pub wake_signals: u64,
    /// Messages the owning shard has drained.
    pub drained: u64,
}

/// Constructor namespace for bridge endpoint pairs.
#[derive(Debug)]
pub struct BridgeLink;

impl BridgeLink {
    /// Creates a connected sender/receiver endpoint pair. The receiver
    /// belongs to the shard that owns the bridged peers (its host drains
    /// it as an injector queue); clones of the sender are registered as
    /// peer proxies on every other shard.
    pub fn pair() -> (BridgeTx, BridgeRx) {
        let (tx, rx) = channel();
        let counters = Arc::new(BridgeCounters::default());
        let waker = Arc::new(Mutex::new(None));
        (
            BridgeTx {
                tx,
                counters: Arc::clone(&counters),
                waker: Arc::clone(&waker),
            },
            BridgeRx {
                rx,
                counters,
                waker,
            },
        )
    }
}

/// The sending half of a bridge: cheap to clone, `Send`, and safe to
/// share — the receiving shard's single-threaded core is never touched,
/// only its channel and wake handle.
#[derive(Debug, Clone)]
pub struct BridgeTx {
    tx: Sender<BusMessage>,
    counters: Arc<BridgeCounters>,
    waker: Arc<Mutex<Option<Thread>>>,
}

impl BridgeTx {
    /// Enqueues one message for the owning shard and wakes its thread if
    /// one is bound. Returns whether a wake signal was sent.
    ///
    /// # Errors
    /// [`NetError::UnknownPeer`] when the receiving endpoint is gone
    /// (its shard shut down) — the same error a vanished local peer
    /// produces, so senders prune the route identically.
    pub fn send(&self, msg: BusMessage) -> Result<bool, NetError> {
        let to = msg.to;
        let bytes = msg.payload.len() as u64;
        self.tx.send(msg).map_err(|_| NetError::UnknownPeer(to))?;
        self.counters.crossings.fetch_add(1, Ordering::Relaxed);
        self.counters.bytes.fetch_add(bytes, Ordering::Relaxed);
        let woke = {
            // pti-allow(panic-policy): waker lock is poisoned only if a holder panicked; propagating keeps the fabric fail-fast
            let waker = self.waker.lock().expect("bridge waker lock");
            if let Some(thread) = waker.as_ref() {
                thread.unpark();
                true
            } else {
                false
            }
        };
        if woke {
            self.counters.wake_signals.fetch_add(1, Ordering::Relaxed);
        }
        Ok(woke)
    }

    /// Messages enqueued but not yet drained by the owning shard. Zero
    /// is only trustworthy from a vantage point that synchronises with
    /// both sides (the sharded host's barrier does — it reads between
    /// serialized pump rounds).
    pub fn pending(&self) -> u64 {
        let crossed = self.counters.crossings.load(Ordering::Acquire);
        let drained = self.counters.drained.load(Ordering::Acquire);
        crossed.saturating_sub(drained)
    }

    /// A snapshot of the bridge's counters.
    pub fn stats(&self) -> BridgeStats {
        BridgeStats {
            crossings: self.counters.crossings.load(Ordering::Relaxed),
            bytes: self.counters.bytes.load(Ordering::Relaxed),
            wake_signals: self.counters.wake_signals.load(Ordering::Relaxed),
            drained: self.counters.drained.load(Ordering::Relaxed),
        }
    }
}

/// The receiving half of a bridge: owned by the shard thread, drained
/// into its reactor's inbound rings as an injector queue.
#[derive(Debug)]
pub struct BridgeRx {
    rx: Receiver<BusMessage>,
    counters: Arc<BridgeCounters>,
    waker: Arc<Mutex<Option<Thread>>>,
}

impl BridgeRx {
    /// Binds the calling thread as the bridge's wake target: senders
    /// `unpark` it on every enqueue. Call once from the shard thread's
    /// run loop before it first parks.
    pub fn bind_current_thread(&self) {
        // pti-allow(panic-policy): waker lock is poisoned only if a holder panicked; propagating keeps the fabric fail-fast
        *self.waker.lock().expect("bridge waker lock") = Some(std::thread::current());
    }

    /// Pops the next bridged message, if any. Never blocks.
    pub fn try_drain(&self) -> Option<BusMessage> {
        match self.rx.try_recv() {
            Ok(msg) => {
                self.counters.drained.fetch_add(1, Ordering::Release);
                Some(msg)
            }
            Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => None,
        }
    }

    /// Messages enqueued but not yet drained.
    pub fn pending(&self) -> u64 {
        let crossed = self.counters.crossings.load(Ordering::Acquire);
        let drained = self.counters.drained.load(Ordering::Acquire);
        crossed.saturating_sub(drained)
    }

    /// A snapshot of the bridge's counters.
    pub fn stats(&self) -> BridgeStats {
        BridgeStats {
            crossings: self.counters.crossings.load(Ordering::Relaxed),
            bytes: self.counters.bytes.load(Ordering::Relaxed),
            wake_signals: self.counters.wake_signals.load(Ordering::Relaxed),
            drained: self.counters.drained.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::PeerId;

    fn msg(n: u8) -> BusMessage {
        BusMessage {
            from: PeerId(1),
            to: PeerId(2),
            kind: "k",
            payload: vec![n; n as usize].into(),
        }
    }

    #[test]
    fn messages_cross_in_order_with_counted_bytes() {
        let (tx, rx) = BridgeLink::pair();
        assert!(!tx.send(msg(3)).unwrap(), "no thread bound, no wake");
        assert!(!tx.send(msg(5)).unwrap());
        assert_eq!(tx.pending(), 2);
        assert_eq!(rx.try_drain().unwrap().payload.len(), 3);
        assert_eq!(rx.try_drain().unwrap().payload.len(), 5);
        assert!(rx.try_drain().is_none());
        let stats = rx.stats();
        assert_eq!(stats.crossings, 2);
        assert_eq!(stats.bytes, 8);
        assert_eq!(stats.drained, 2);
        assert_eq!(stats.wake_signals, 0);
        assert_eq!(tx.pending(), 0);
    }

    #[test]
    fn a_dropped_receiver_reports_unknown_peer() {
        let (tx, rx) = BridgeLink::pair();
        drop(rx);
        assert_eq!(tx.send(msg(1)), Err(NetError::UnknownPeer(PeerId(2))));
    }

    #[test]
    fn sends_wake_the_bound_receiver_thread() {
        let (tx, rx) = BridgeLink::pair();
        let (ready_tx, ready_rx) = channel();
        let handle = std::thread::spawn(move || {
            rx.bind_current_thread();
            ready_tx.send(()).unwrap();
            // Park until the sender's wake arrives; unpark tokens are
            // sticky, so a send racing the park still gets through.
            loop {
                if let Some(m) = rx.try_drain() {
                    return m.payload.len();
                }
                std::thread::park();
            }
        });
        ready_rx.recv().unwrap();
        assert!(tx.send(msg(7)).unwrap(), "bound thread receives a wake");
        assert_eq!(handle.join().unwrap(), 7);
        assert_eq!(tx.stats().wake_signals, 1);
    }
}
