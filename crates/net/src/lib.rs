//! # pti-net — simulated peers and network
//!
//! The paper evaluates its protocol on a physical 2002 testbed; this
//! crate replaces that hardware with two interchangeable fabrics:
//!
//! * [`SimNet`] — a deterministic **virtual-time** network with explicit
//!   latency/bandwidth and per-kind byte accounting. All protocol
//!   experiments (optimistic vs eager, Figure 1) run on it so results are
//!   reproducible and expressed in bytes + virtual microseconds.
//! * [`LiveBus`] — a std-channel bus for **actually concurrent** peers,
//!   used by stress tests and examples that want real threads.
//! * [`ReactorNet`] — a single-threaded, readiness-driven fabric
//!   (inbound rings, a wakeup queue and a timer wheel) that lets one
//!   thread drive thousands of swarms; see the [`reactor`] module docs.
//!   Multiple reactors on separate threads link up through
//!   [`BridgeLink`] channel pairs (see the [`bridge`] module docs) —
//!   the only cross-thread surface in the crate.
//!
//! Both implement the [`Transport`] trait — the seam the protocol
//! engine (`pti-transport`'s `Swarm<T: Transport>`) is generic over, so
//! the same optimistic protocol drives either fabric — and share the
//! [`NetMetrics`] accounting shape.
//!
//! ## Lint conventions
//!
//! This crate is deny-tier for the `pti-lint` fabric rules (see
//! `crates/analyze` and the "Static analysis" section of
//! ARCHITECTURE.md): no wall-clock reads outside `bus`/`bridge`, no
//! thread primitives outside `bus`/`bridge`, and every
//! `unwrap`/`expect`/`panic!` must state its invariant in a
//! `pti-allow(panic-policy): reason` comment on or directly above the
//! line. The reason is the documentation — write the invariant that
//! makes the panic unreachable, not a restatement of the code.
//!
//! ## Example
//!
//! ```
//! use pti_net::{NetConfig, PeerId, SimNet};
//!
//! let mut net = SimNet::new(NetConfig::default());
//! net.register(PeerId(1));
//! net.register(PeerId(2));
//! net.send(PeerId(1), PeerId(2), "object", vec![0u8; 1024]).unwrap();
//! let msg = net.recv(PeerId(2)).unwrap();
//! assert_eq!(msg.kind, "object");
//! assert!(net.now_us() > 0, "virtual time advanced");
//! assert_eq!(net.metrics().bytes, 1024);
//! ```

#![warn(missing_docs)]

pub mod bridge;
mod bus;
mod fault;
mod frame;
mod metrics;
mod payload;
pub mod reactor;
mod sim;
mod transport;

pub use bridge::{BridgeLink, BridgeRx, BridgeStats, BridgeTx};
pub use bus::{BusMessage, Endpoint, LiveBus};
pub use fault::{FaultDecision, FaultPlan, Partition};
pub use frame::{kinds, Frame, FrameBatch, FrameDecodeError};
pub use metrics::{KindMetrics, LinkBatchMetrics, NetMetrics};
pub use payload::Payload;
pub use reactor::{ReactorNet, ReactorStats, SessionId};
pub use sim::{Message, NetConfig, NetError, PeerId, SharedSimNet, SimNet};
pub use transport::Transport;
