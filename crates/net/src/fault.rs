//! Deterministic, seeded fault injection for the simulated fabrics.
//!
//! The durability layer (`pti-transport`'s `delivery` module) repairs
//! losses the fabric inflicts; this module is where those losses come
//! from. A [`FaultPlan`] decides, per send, whether the message is
//! delivered, dropped, duplicated, or blocked by an active partition.
//! Every decision is a pure function of `(seed, step, from, to)` — the
//! step counter advances once per send — so the same plan over the same
//! traffic produces the *same* faults, and the byte-identical-log
//! determinism tests keep holding with faults switched on.
//!
//! Fabrics consult the plan inside their `send` path (after traffic
//! accounting, before enqueue) via
//! [`Transport::install_fault_plan`](crate::Transport::install_fault_plan);
//! the outcome of each decision is counted in
//! [`NetMetrics`](crate::NetMetrics) (`faults_dropped`,
//! `faults_duplicated`, `faults_partitioned`).

use std::collections::BTreeSet;

use crate::sim::PeerId;

/// A burst partition: while active, traffic between the `island` and the
/// rest of the fabric is blocked in both directions (traffic wholly
/// inside or wholly outside the island is unaffected). It heals when the
/// plan's step counter reaches `until_step`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// Peers on one side of the cut.
    pub island: BTreeSet<PeerId>,
    /// First send step (inclusive) at which the cut is active.
    pub from_step: u64,
    /// Send step (exclusive) at which the cut heals.
    pub until_step: u64,
}

impl Partition {
    /// Whether this cut severs a `from → to` send at `step`.
    fn severs(&self, step: u64, from: PeerId, to: PeerId) -> bool {
        self.from_step <= step
            && step < self.until_step
            && (self.island.contains(&from) != self.island.contains(&to))
    }
}

/// What the plan decided for one send.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultDecision {
    /// Deliver normally.
    Deliver,
    /// Deliver twice (the fabric enqueues a second copy).
    Duplicate,
    /// Silently drop (the sender still believes the send succeeded).
    Drop,
    /// Blocked by an active partition (also a silent drop, counted
    /// separately).
    Partitioned,
}

/// A seeded, deterministic fault schedule for a simulated fabric.
///
/// Probabilities are in permille (`50` = 5%). The per-send random draw
/// mixes the seed with the send's step number and endpoints, so the
/// schedule is reproducible yet uncorrelated across links.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    drop_permille: u16,
    dup_permille: u16,
    partitions: Vec<Partition>,
    step: u64,
}

impl FaultPlan {
    /// A fault-free plan with the given seed; compose faults with the
    /// `with_*` builders.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            drop_permille: 0,
            dup_permille: 0,
            partitions: Vec::new(),
            step: 0,
        }
    }

    /// Sets the per-send drop probability in permille (capped at 1000).
    pub fn with_loss(mut self, permille: u16) -> FaultPlan {
        self.drop_permille = permille.min(1000);
        self
    }

    /// Sets the per-send duplication probability in permille (capped at
    /// 1000).
    pub fn with_duplication(mut self, permille: u16) -> FaultPlan {
        self.dup_permille = permille.min(1000);
        self
    }

    /// Adds a burst partition cutting `island` off from the rest of the
    /// fabric for send steps `from_step..until_step`.
    pub fn with_partition(
        mut self,
        island: impl IntoIterator<Item = PeerId>,
        from_step: u64,
        until_step: u64,
    ) -> FaultPlan {
        self.partitions.push(Partition {
            island: island.into_iter().collect(),
            from_step,
            until_step,
        });
        self
    }

    /// How many sends this plan has adjudicated so far.
    pub fn steps(&self) -> u64 {
        self.step
    }

    /// Decides the fate of one `from → to` send and advances the step
    /// counter. Partitions take precedence over probabilistic faults.
    pub fn decide(&mut self, from: PeerId, to: PeerId) -> FaultDecision {
        let step = self.step;
        self.step += 1;
        if self.partitions.iter().any(|p| p.severs(step, from, to)) {
            return FaultDecision::Partitioned;
        }
        if self.drop_permille == 0 && self.dup_permille == 0 {
            return FaultDecision::Deliver;
        }
        let draw = mix(self.seed, step, from.0, to.0);
        if (draw % 1000) < u64::from(self.drop_permille) {
            return FaultDecision::Drop;
        }
        if ((draw / 1000) % 1000) < u64::from(self.dup_permille) {
            return FaultDecision::Duplicate;
        }
        FaultDecision::Deliver
    }
}

/// SplitMix64-style finalizer over the decision inputs: stable across
/// platforms, uncorrelated across neighbouring steps and links.
fn mix(seed: u64, step: u64, from: u32, to: u32) -> u64 {
    let mut z = seed
        .wrapping_add(step.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add((u64::from(from) << 32) | u64::from(to));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_plan_always_delivers() {
        let mut plan = FaultPlan::new(7);
        for step in 0..100 {
            assert_eq!(plan.decide(PeerId(1), PeerId(2)), FaultDecision::Deliver);
            assert_eq!(plan.steps(), step + 1);
        }
    }

    #[test]
    fn same_seed_same_schedule() {
        let run = |seed: u64| -> Vec<FaultDecision> {
            let mut plan = FaultPlan::new(seed).with_loss(100).with_duplication(50);
            (0..200)
                .map(|i| plan.decide(PeerId(i % 3), PeerId(3 + i % 2)))
                .collect()
        };
        assert_eq!(run(42), run(42), "deterministic");
        assert_ne!(run(42), run(43), "seed-sensitive");
    }

    #[test]
    fn loss_rate_is_roughly_honoured() {
        let mut plan = FaultPlan::new(1).with_loss(50); // 5%
        let dropped = (0..10_000)
            .filter(|_| plan.decide(PeerId(1), PeerId(2)) == FaultDecision::Drop)
            .count();
        assert!((300..=700).contains(&dropped), "~5% of 10k, got {dropped}");
    }

    #[test]
    fn duplication_draw_is_independent_of_loss() {
        let mut plan = FaultPlan::new(9).with_duplication(1000);
        assert_eq!(plan.decide(PeerId(1), PeerId(2)), FaultDecision::Duplicate);
        let mut plan = FaultPlan::new(9).with_loss(1000).with_duplication(1000);
        assert_eq!(
            plan.decide(PeerId(1), PeerId(2)),
            FaultDecision::Drop,
            "loss wins when both draws hit"
        );
    }

    #[test]
    fn partition_severs_cross_island_traffic_then_heals() {
        let mut plan = FaultPlan::new(3).with_partition([PeerId(1)], 1, 3);
        // Step 0: not yet active.
        assert_eq!(plan.decide(PeerId(1), PeerId(2)), FaultDecision::Deliver);
        // Steps 1-2: active, both directions blocked.
        assert_eq!(
            plan.decide(PeerId(1), PeerId(2)),
            FaultDecision::Partitioned
        );
        assert_eq!(
            plan.decide(PeerId(2), PeerId(1)),
            FaultDecision::Partitioned
        );
        // Step 3: healed.
        assert_eq!(plan.decide(PeerId(2), PeerId(1)), FaultDecision::Deliver);
    }

    #[test]
    fn partition_spares_same_side_traffic() {
        let mut plan = FaultPlan::new(3).with_partition([PeerId(1), PeerId(2)], 0, 10);
        assert_eq!(plan.decide(PeerId(1), PeerId(2)), FaultDecision::Deliver);
        assert_eq!(plan.decide(PeerId(3), PeerId(4)), FaultDecision::Deliver);
        assert_eq!(
            plan.decide(PeerId(2), PeerId(3)),
            FaultDecision::Partitioned
        );
    }
}
