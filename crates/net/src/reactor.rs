//! The reactor fabric: a hand-rolled, readiness-driven event core that
//! lets one thread drive thousands of swarms.
//!
//! [`LiveBus`](crate::LiveBus) scales by threads — every driver parks in
//! `recv_deadline` sleeps, so a box tops out at hundreds of members. The
//! [`ReactorNet`] keeps the same [`Transport`] contract but replaces
//! blocking with *readiness*: every endpoint has an inbound ring, every
//! ring belongs to a **session** (one swarm's worth of endpoints), and a
//! send marks the destination's session ready on a wakeup queue. A host
//! (see `pti-transport`'s `ReactorHost`) pops ready sessions and pumps
//! only those, with a fairness budget per wakeup, so idle swarms cost
//! nothing — no polling, no per-endpoint thread.
//!
//! Deadlines are served by a hashed **timer wheel** in virtual time:
//! when no session is ready, the loop jumps the clock straight to the
//! next timer deadline and fires it (idle *parking*, never a busy-wait
//! or an OS sleep). Like [`SharedSimNet`](crate::SharedSimNet), the
//! fabric is single-threaded by design (`Rc`, hence `!Send`) and fully
//! deterministic: the same script of sends produces the same wakeup
//! order, which is what lets `tests/transport_parity.rs` pin identical
//! protocol decisions across all three fabrics.

use std::cell::RefCell;
use std::collections::{HashMap, HashSet, VecDeque};
use std::rc::Rc;

use crate::bus::BusMessage;
use crate::frame::{kinds, FrameBatch};
use crate::metrics::NetMetrics;
use crate::payload::Payload;
use crate::sim::{NetError, PeerId};
use crate::transport::Transport;

/// One session on a reactor: the unit of readiness and scheduling. Each
/// swarm mounted on the fabric gets its own session; all endpoints the
/// swarm registers belong to it, and a message for any of them marks the
/// whole session ready.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(pub u32);

impl std::fmt::Display for SessionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "session-{}", self.0)
    }
}

/// Scheduling counters of a reactor — the event loop's own accounting,
/// separate from the traffic counters in [`NetMetrics`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReactorStats {
    /// Messages accepted by the fabric.
    pub sends: u64,
    /// Messages popped from inbound rings.
    pub recvs: u64,
    /// Sessions popped from the ready queue (host wakeups).
    pub wakeups: u64,
    /// Timers fired by the wheel.
    pub timer_fires: u64,
    /// Idle clock jumps straight to the next timer deadline — each one
    /// replaces what a polling loop would spend spinning.
    pub idle_advances: u64,
}

/// Slots in the timer wheel; deadlines hash in by tick modulo this.
const WHEEL_SLOTS: usize = 256;
/// Virtual microseconds per wheel tick.
const WHEEL_TICK_US: u64 = 1 << 10;

/// A single-level hashed timer wheel over virtual microseconds. Entries
/// keep their absolute deadline, so a slot can hold timers several laps
/// apart: advancing fires only those whose deadline has passed and
/// leaves future laps in place.
#[derive(Debug)]
struct TimerWheel {
    slots: Vec<Vec<(u64, SessionId)>>,
    /// Last tick the wheel was advanced to (slots up to and including it
    /// have been serviced for the current clock value).
    cursor_tick: u64,
    len: usize,
}

impl TimerWheel {
    fn new() -> TimerWheel {
        TimerWheel {
            slots: vec![Vec::new(); WHEEL_SLOTS],
            cursor_tick: 0,
            len: 0,
        }
    }

    fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn schedule(&mut self, deadline_us: u64, session: SessionId) {
        let slot = ((deadline_us / WHEEL_TICK_US) as usize) % WHEEL_SLOTS;
        self.slots[slot].push((deadline_us, session));
        self.len += 1;
    }

    /// Earliest pending deadline — the parking target when nothing is
    /// ready.
    fn next_deadline(&self) -> Option<u64> {
        self.slots.iter().flatten().map(|&(d, _)| d).min()
    }

    /// Advances the wheel to `now_us`, removing and returning every
    /// timer whose deadline has passed, earliest first.
    fn advance_to(&mut self, now_us: u64) -> Vec<(u64, SessionId)> {
        let target_tick = now_us / WHEEL_TICK_US;
        let mut due = Vec::new();
        if self.len > 0 {
            // Scan each slot the cursor crosses; a jump of a full lap or
            // more visits every slot exactly once.
            let span = (target_tick.saturating_sub(self.cursor_tick) as usize + 1).min(WHEEL_SLOTS);
            for i in 0..span {
                let slot = ((self.cursor_tick + i as u64) as usize) % WHEEL_SLOTS;
                let entries = &mut self.slots[slot];
                let mut k = 0;
                while k < entries.len() {
                    if entries[k].0 <= now_us {
                        due.push(entries.swap_remove(k));
                    } else {
                        k += 1;
                    }
                }
            }
            self.len -= due.len();
            // Deterministic fire order regardless of slot hashing.
            due.sort_unstable();
        }
        self.cursor_tick = self.cursor_tick.max(target_tick);
        due
    }
}

#[derive(Debug)]
struct Core {
    /// Per-endpoint inbound rings.
    rings: HashMap<PeerId, VecDeque<BusMessage>>,
    /// Which session each endpoint belongs to.
    owner: HashMap<PeerId, SessionId>,
    /// Undelivered messages per session (sum of its rings' lengths).
    backlog: HashMap<SessionId, usize>,
    /// The wakeup queue: sessions with work, in readiness order.
    ready: VecDeque<SessionId>,
    /// Guards `ready` against duplicate entries.
    enqueued: HashSet<SessionId>,
    timers: TimerWheel,
    now_us: u64,
    next_session: u32,
    metrics: NetMetrics,
    stats: ReactorStats,
}

impl Core {
    fn mark_ready(&mut self, session: SessionId) {
        if self.enqueued.insert(session) {
            self.ready.push_back(session);
        }
    }
}

/// A handle onto a shared reactor fabric, bound to one [`SessionId`].
///
/// Cloning shares both the fabric *and* the session (the shape a
/// `Swarm` needs: its transport is moved in by value, yet the host keeps
/// a handle to the same session). Fresh sessions come from
/// [`session`](Self::session). Like [`SharedSimNet`](crate::SharedSimNet)
/// the handle is `!Send`: one reactor, one thread — that is the point.
#[derive(Debug, Clone)]
pub struct ReactorNet {
    core: Rc<RefCell<Core>>,
    session: SessionId,
}

impl Default for ReactorNet {
    fn default() -> ReactorNet {
        ReactorNet::new()
    }
}

impl ReactorNet {
    /// Creates a fresh reactor fabric; the returned handle is the root
    /// session (fine for a standalone swarm — a host allocates one
    /// session per mounted swarm via [`session`](Self::session)).
    pub fn new() -> ReactorNet {
        ReactorNet {
            core: Rc::new(RefCell::new(Core {
                rings: HashMap::new(),
                owner: HashMap::new(),
                backlog: HashMap::new(),
                ready: VecDeque::new(),
                enqueued: HashSet::new(),
                timers: TimerWheel::new(),
                now_us: 0,
                next_session: 1,
                metrics: NetMetrics::default(),
                stats: ReactorStats::default(),
            })),
            session: SessionId(0),
        }
    }

    /// A new handle onto the same fabric under a fresh session — what a
    /// host hands each swarm it mounts, so their readiness is tracked
    /// independently.
    pub fn session(&self) -> ReactorNet {
        let mut core = self.core.borrow_mut();
        let id = SessionId(core.next_session);
        core.next_session += 1;
        ReactorNet {
            core: Rc::clone(&self.core),
            session: id,
        }
    }

    /// The session this handle registers endpoints under.
    pub fn session_id(&self) -> SessionId {
        self.session
    }

    /// The reactor's virtual clock, advanced only by idle parking.
    pub fn now_us(&self) -> u64 {
        self.core.borrow().now_us
    }

    /// Scheduling counters (wakeups, timer fires, idle jumps).
    pub fn stats(&self) -> ReactorStats {
        self.core.borrow().stats
    }

    /// Undelivered messages queued for `session`'s endpoints.
    pub fn backlog(&self, session: SessionId) -> usize {
        self.core
            .borrow()
            .backlog
            .get(&session)
            .copied()
            .unwrap_or(0)
    }

    /// Pops the next ready session off the wakeup queue. The session's
    /// queue slot is released before the host pumps it, so traffic
    /// arriving *during* the pump re-enqueues it at the back — that plus
    /// the host's per-wakeup budget is the fairness guarantee.
    pub fn next_ready(&self) -> Option<SessionId> {
        let mut core = self.core.borrow_mut();
        let session = core.ready.pop_front()?;
        core.enqueued.remove(&session);
        core.stats.wakeups += 1;
        Some(session)
    }

    /// Whether any session is on the wakeup queue.
    pub fn has_ready(&self) -> bool {
        !self.core.borrow().ready.is_empty()
    }

    /// Re-enqueues a session that still has backlog (or that the caller
    /// wants revisited). Duplicate marks are coalesced.
    pub fn mark_ready(&self, session: SessionId) {
        self.core.borrow_mut().mark_ready(session);
    }

    /// Schedules a wakeup for `session` at `delay_us` of virtual time
    /// from now — the timer-wheel half of `recv_deadline`-style waiting:
    /// instead of blocking, a session parks and the wheel makes it ready
    /// when the clock reaches the deadline.
    pub fn schedule_wake(&self, session: SessionId, delay_us: u64) {
        let mut core = self.core.borrow_mut();
        let deadline = core.now_us.saturating_add(delay_us.max(1));
        core.timers.schedule(deadline, session);
    }

    /// Whether any timer is pending on the wheel.
    pub fn timers_pending(&self) -> bool {
        !self.core.borrow().timers.is_empty()
    }

    /// Idle parking: with nothing ready, jump the clock to the next
    /// timer deadline at or before `deadline_us` and fire every timer
    /// that came due (their sessions join the wakeup queue). Returns
    /// `true` if timers fired; `false` when no timer lies within the
    /// window — the clock then rests at `deadline_us` and the caller's
    /// loop is done waiting. Never spins: one call, one jump.
    pub fn advance_idle_until(&self, deadline_us: u64) -> bool {
        let mut core = self.core.borrow_mut();
        match core.timers.next_deadline() {
            Some(next) if next <= deadline_us => {
                core.now_us = core.now_us.max(next);
                let now = core.now_us;
                let due = core.timers.advance_to(now);
                core.stats.idle_advances += 1;
                core.stats.timer_fires += due.len() as u64;
                for (_, session) in due {
                    core.mark_ready(session);
                }
                true
            }
            _ => {
                core.now_us = core.now_us.max(deadline_us);
                let now = core.now_us;
                core.timers.advance_to(now);
                false
            }
        }
    }
}

impl Transport for ReactorNet {
    /// Creates `peer`'s inbound ring under this handle's session.
    /// Re-registering within the same session is a no-op.
    ///
    /// # Panics
    /// If the id is already registered under *another* session of this
    /// fabric — silently rebinding would hijack the other swarm's
    /// traffic (same contract as [`LiveBus`](crate::LiveBus)).
    fn register(&mut self, peer: PeerId) {
        let mut core = self.core.borrow_mut();
        match core.owner.get(&peer) {
            Some(owner) if *owner == self.session => return,
            Some(_) => panic!("{peer} is already registered on this reactor fabric"),
            None => {}
        }
        core.owner.insert(peer, self.session);
        core.rings.insert(peer, VecDeque::new());
    }

    fn send(
        &mut self,
        from: PeerId,
        to: PeerId,
        kind: &'static str,
        payload: Payload,
    ) -> Result<(), NetError> {
        let mut core = self.core.borrow_mut();
        let Some(owner) = core.owner.get(&to).copied() else {
            return Err(NetError::UnknownPeer(to));
        };
        let size = payload.len();
        core.metrics.record(kind, size);
        if kind == kinds::BATCH {
            let frames = FrameBatch::peek_count(&payload).unwrap_or(0);
            core.metrics.record_batch(from, to, frames, size);
        }
        core.rings
            .get_mut(&to)
            .expect("registered peer has a ring")
            .push_back(BusMessage {
                from,
                to,
                kind,
                payload,
            });
        *core.backlog.entry(owner).or_insert(0) += 1;
        core.stats.sends += 1;
        core.mark_ready(owner);
        Ok(())
    }

    fn try_recv(&mut self, peer: PeerId) -> Option<BusMessage> {
        let mut core = self.core.borrow_mut();
        let msg = core.rings.get_mut(&peer)?.pop_front()?;
        if let Some(owner) = core.owner.get(&peer).copied() {
            if let Some(n) = core.backlog.get_mut(&owner) {
                *n = n.saturating_sub(1);
            }
        }
        core.stats.recvs += 1;
        Some(msg)
    }

    fn metrics(&self) -> NetMetrics {
        self.core.borrow().metrics.clone()
    }

    fn reset_metrics(&mut self) {
        self.core.borrow_mut().metrics.reset();
    }

    fn record_batch_splits(&mut self, from: PeerId, to: PeerId, extra: u64) {
        self.core
            .borrow_mut()
            .metrics
            .record_batch_splits(from, to, extra);
    }

    fn record_batched_frame(&mut self, kind: &'static str, bytes: usize) {
        self.core
            .borrow_mut()
            .metrics
            .record_batched_frame(kind, bytes);
    }

    fn record_payload_encode(&mut self) {
        self.core.borrow_mut().metrics.record_payload_encode();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn implements_the_transport_contract() {
        let mut t = ReactorNet::new();
        t.register(PeerId(1));
        t.register(PeerId(2));
        t.send(PeerId(1), PeerId(2), "k", vec![7].into()).unwrap();
        assert_eq!(
            t.send(PeerId(1), PeerId(9), "k", Payload::empty()),
            Err(NetError::UnknownPeer(PeerId(9)))
        );
        let m = t.try_recv(PeerId(2)).expect("queued message");
        assert_eq!(m.from, PeerId(1));
        assert_eq!(m.kind, "k");
        assert_eq!(m.payload, vec![7]);
        assert!(t.try_recv(PeerId(2)).is_none());
        assert_eq!(
            Transport::metrics(&t).messages,
            1,
            "failed send not recorded"
        );
        t.reset_metrics();
        assert_eq!(Transport::metrics(&t).messages, 0);
    }

    #[test]
    fn sends_mark_owning_sessions_ready_in_order_without_duplicates() {
        let hub = ReactorNet::new();
        let mut a = hub.session();
        let mut b = hub.session();
        a.register(PeerId(1));
        b.register(PeerId(2));
        assert!(hub.next_ready().is_none());
        a.send(PeerId(1), PeerId(2), "k", vec![1].into()).unwrap();
        b.send(PeerId(2), PeerId(1), "k", vec![2].into()).unwrap();
        a.send(PeerId(1), PeerId(2), "k", vec![3].into()).unwrap();
        // b's session became ready first... no wait: a's first send marks
        // b's session, then b's send marks a's, and the repeat coalesces.
        assert_eq!(hub.next_ready(), Some(b.session_id()));
        assert_eq!(hub.next_ready(), Some(a.session_id()));
        assert_eq!(hub.next_ready(), None);
        assert_eq!(hub.backlog(b.session_id()), 2);
        // Draining decrements the backlog; re-marking re-queues once.
        let _ = b.try_recv(PeerId(2)).unwrap();
        assert_eq!(hub.backlog(b.session_id()), 1);
        hub.mark_ready(b.session_id());
        hub.mark_ready(b.session_id());
        assert_eq!(hub.next_ready(), Some(b.session_id()));
        assert_eq!(hub.next_ready(), None);
        assert_eq!(hub.stats().sends, 3);
        assert_eq!(hub.stats().recvs, 1);
        assert_eq!(hub.stats().wakeups, 3);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn cross_session_id_collision_panics_instead_of_hijacking() {
        let hub = ReactorNet::new();
        let mut a = hub.session();
        let mut b = hub.session();
        a.register(PeerId(1));
        b.register(PeerId(1));
    }

    #[test]
    fn clone_keeps_the_session_fresh_sessions_are_distinct() {
        let hub = ReactorNet::new();
        let a = hub.session();
        assert_eq!(a.clone().session_id(), a.session_id());
        assert_ne!(hub.session().session_id(), a.session_id());
        assert_ne!(hub.session_id(), a.session_id());
    }

    #[test]
    fn idle_parking_jumps_to_deadlines_and_fires_in_order() {
        let hub = ReactorNet::new();
        let a = hub.session();
        let b = hub.session();
        let c = hub.session();
        // Out-of-order scheduling; the wheel fires by deadline.
        hub.schedule_wake(c.session_id(), 50_000);
        hub.schedule_wake(a.session_id(), 10_000);
        hub.schedule_wake(b.session_id(), 30_000);
        let mut fired = Vec::new();
        while hub.advance_idle_until(100_000) {
            while let Some(s) = hub.next_ready() {
                fired.push(s);
            }
        }
        assert_eq!(fired, vec![a.session_id(), b.session_id(), c.session_id()]);
        assert_eq!(hub.now_us(), 100_000, "clock rests at the window end");
        let stats = hub.stats();
        assert_eq!(stats.timer_fires, 3);
        assert_eq!(
            stats.idle_advances, 3,
            "one jump per deadline, never a spin"
        );
        assert!(!hub.timers_pending());
    }

    #[test]
    fn far_future_timers_survive_full_wheel_laps() {
        let hub = ReactorNet::new();
        let a = hub.session();
        let b = hub.session();
        let lap_us = WHEEL_SLOTS as u64 * WHEEL_TICK_US;
        // Same slot, different laps: b's deadline is exactly one lap
        // after a's, so both hash to the same wheel slot.
        hub.schedule_wake(a.session_id(), 5_000);
        hub.schedule_wake(b.session_id(), 5_000 + lap_us);
        assert!(hub.advance_idle_until(u64::MAX));
        assert_eq!(hub.next_ready(), Some(a.session_id()));
        assert_eq!(hub.next_ready(), None, "b's lap has not come");
        assert!(hub.timers_pending());
        assert!(hub.advance_idle_until(u64::MAX));
        assert_eq!(hub.next_ready(), Some(b.session_id()));
        assert_eq!(hub.now_us(), 5_000 + lap_us);
        // A window that ends before the next deadline does not fire it.
        hub.schedule_wake(a.session_id(), 10_000);
        assert!(!hub.advance_idle_until(hub.now_us() + 1_000));
        assert!(hub.timers_pending());
    }

    #[test]
    fn batch_messages_count_frames_like_the_other_fabrics() {
        let mut t = ReactorNet::new();
        t.register(PeerId(1));
        t.register(PeerId(2));
        let mut batch = FrameBatch::new();
        batch.push("object", vec![1, 2, 3]);
        batch.push("subscribe", vec![4]);
        t.send(PeerId(1), PeerId(2), kinds::BATCH, batch.encode().into())
            .unwrap();
        let m = Transport::metrics(&t);
        assert_eq!(m.batches(), 1);
        assert_eq!(m.batched_frames(), 2);
        assert_eq!(m.link(PeerId(1), PeerId(2)).frames, 2);
    }
}
