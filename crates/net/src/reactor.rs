//! The reactor fabric: a hand-rolled, readiness-driven event core that
//! lets one thread drive thousands of swarms.
//!
//! [`LiveBus`](crate::LiveBus) scales by threads — every driver parks in
//! `recv_deadline` sleeps, so a box tops out at hundreds of members. The
//! [`ReactorNet`] keeps the same [`Transport`] contract but replaces
//! blocking with *readiness*: every endpoint has an inbound ring, every
//! ring belongs to a **session** (one swarm's worth of endpoints), and a
//! send marks the destination's session ready on a wakeup queue. A host
//! (see `pti-transport`'s `ReactorHost`) pops ready sessions and pumps
//! only those, with a fairness budget per wakeup, so idle swarms cost
//! nothing — no polling, no per-endpoint thread.
//!
//! Deadlines are served by a hashed **timer wheel** in virtual time:
//! when no session is ready, the loop jumps the clock straight to the
//! next timer deadline and fires it (idle *parking*, never a busy-wait
//! or an OS sleep). Like [`SharedSimNet`](crate::SharedSimNet), the
//! fabric is single-threaded by design (`Rc`, hence `!Send`) and fully
//! deterministic: the same script of sends produces the same wakeup
//! order, which is what lets `tests/transport_parity.rs` pin identical
//! protocol decisions across all three fabrics.

use std::cell::RefCell;
use std::collections::{HashMap, HashSet, VecDeque};
use std::rc::Rc;

use crate::bridge::BridgeTx;
use crate::bus::BusMessage;
use crate::fault::{FaultDecision, FaultPlan};
use crate::frame::{kinds, FrameBatch};
use crate::metrics::NetMetrics;
use crate::payload::Payload;
use crate::sim::{NetError, PeerId};
use crate::transport::Transport;

/// One session on a reactor: the unit of readiness and scheduling. Each
/// swarm mounted on the fabric gets its own session; all endpoints the
/// swarm registers belong to it, and a message for any of them marks the
/// whole session ready.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(pub u32);

impl std::fmt::Display for SessionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "session-{}", self.0)
    }
}

/// Scheduling counters of a reactor — the event loop's own accounting,
/// separate from the traffic counters in [`NetMetrics`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReactorStats {
    /// Messages accepted by the fabric.
    pub sends: u64,
    /// Messages popped from inbound rings.
    pub recvs: u64,
    /// Sessions popped from the ready queue (host wakeups).
    pub wakeups: u64,
    /// Timers fired by the wheel.
    pub timer_fires: u64,
    /// Idle clock jumps straight to the next timer deadline — each one
    /// replaces what a polling loop would spend spinning.
    pub idle_advances: u64,
}

/// Slots in the timer wheel; deadlines hash in by tick modulo this.
const WHEEL_SLOTS: usize = 256;
/// Virtual microseconds per wheel tick.
const WHEEL_TICK_US: u64 = 1 << 10;

/// A single-level hashed timer wheel over virtual microseconds. Entries
/// keep their absolute deadline, so a slot can hold timers several laps
/// apart: advancing fires only those whose deadline has passed and
/// leaves future laps in place.
#[derive(Debug)]
struct TimerWheel {
    slots: Vec<Vec<(u64, SessionId)>>,
    /// Last tick the wheel was advanced to (slots up to and including it
    /// have been serviced for the current clock value).
    cursor_tick: u64,
    len: usize,
}

impl TimerWheel {
    fn new() -> TimerWheel {
        TimerWheel {
            slots: vec![Vec::new(); WHEEL_SLOTS],
            cursor_tick: 0,
            len: 0,
        }
    }

    fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn schedule(&mut self, deadline_us: u64, session: SessionId) {
        let slot = ((deadline_us / WHEEL_TICK_US) as usize) % WHEEL_SLOTS;
        // pti-allow(unbounded-queue): one wheel entry per scheduled wake; bounded by live sessions
        self.slots[slot].push((deadline_us, session));
        self.len += 1;
    }

    /// Earliest pending deadline — the parking target when nothing is
    /// ready.
    fn next_deadline(&self) -> Option<u64> {
        self.slots.iter().flatten().map(|&(d, _)| d).min()
    }

    /// Advances the wheel to `now_us`, removing and returning every
    /// timer whose deadline has passed, earliest first.
    fn advance_to(&mut self, now_us: u64) -> Vec<(u64, SessionId)> {
        let target_tick = now_us / WHEEL_TICK_US;
        let mut due = Vec::new();
        if self.len > 0 {
            // Scan each slot the cursor crosses; a jump of a full lap or
            // more visits every slot exactly once.
            let span = (target_tick.saturating_sub(self.cursor_tick) as usize + 1).min(WHEEL_SLOTS);
            for i in 0..span {
                let slot = ((self.cursor_tick + i as u64) as usize) % WHEEL_SLOTS;
                let entries = &mut self.slots[slot];
                let mut k = 0;
                while k < entries.len() {
                    if entries[k].0 <= now_us {
                        due.push(entries.swap_remove(k));
                    } else {
                        k += 1;
                    }
                }
            }
            self.len -= due.len();
            // Deterministic fire order regardless of slot hashing.
            due.sort_unstable();
        }
        self.cursor_tick = self.cursor_tick.max(target_tick);
        due
    }
}

#[derive(Debug)]
struct Core {
    /// Per-endpoint inbound rings.
    rings: HashMap<PeerId, VecDeque<BusMessage>>,
    /// Which session each endpoint belongs to.
    owner: HashMap<PeerId, SessionId>,
    /// Peers owned by *another shard*: sends to them forward over the
    /// bridge to the shard that owns their ring.
    proxies: HashMap<PeerId, BridgeTx>,
    /// Undelivered messages per session (sum of its rings' lengths).
    backlog: HashMap<SessionId, usize>,
    /// The wakeup queue: sessions with work, in readiness order.
    ready: VecDeque<SessionId>,
    /// Guards `ready` against duplicate entries.
    enqueued: HashSet<SessionId>,
    /// Sessions whose queue entry is an *explicit* signal (timer fire or
    /// host mark) rather than inbound traffic. Explicit signals always
    /// wake; traffic signals are skipped once the ring is already dry —
    /// the burst-coalescing rule that keeps a kick-sweep drain from
    /// turning into a pile of idle wakeups.
    explicit: HashSet<SessionId>,
    timers: TimerWheel,
    now_us: u64,
    next_session: u32,
    metrics: NetMetrics,
    stats: ReactorStats,
    fault: Option<FaultPlan>,
}

impl Core {
    fn mark_ready(&mut self, session: SessionId) {
        if self.enqueued.insert(session) {
            // pti-allow(unbounded-queue): deduplicated by `enqueued`, so at most one entry per session
            self.ready.push_back(session);
        }
    }

    /// An explicit signal: enqueue and remember that this wakeup must
    /// fire even if the session has no backlog when popped.
    fn mark_ready_explicit(&mut self, session: SessionId) {
        self.explicit.insert(session);
        self.mark_ready(session);
    }
}

/// A handle onto a shared reactor fabric, bound to one [`SessionId`].
///
/// Cloning shares both the fabric *and* the session (the shape a
/// `Swarm` needs: its transport is moved in by value, yet the host keeps
/// a handle to the same session). Fresh sessions come from
/// [`session`](Self::session). Like [`SharedSimNet`](crate::SharedSimNet)
/// the handle is `!Send`: one reactor, one thread — that is the point.
#[derive(Debug)]
pub struct ReactorNet {
    core: Rc<RefCell<Core>>,
    session: SessionId,
    /// Thread the fabric was created on. `Rc` already makes the handle
    /// `!Send`, but an `unsafe impl Send` wrapper (or a future refactor
    /// to `Arc`) would compile and then corrupt the un-synchronized
    /// core; debug builds catch that crossing at the first touch.
    #[cfg(debug_assertions)]
    owner_thread: std::thread::ThreadId,
}

impl Clone for ReactorNet {
    /// Clones share fabric and session; debug builds refuse to mint a
    /// clone from a foreign thread.
    fn clone(&self) -> ReactorNet {
        self.assert_owner_thread();
        ReactorNet {
            core: Rc::clone(&self.core),
            session: self.session,
            #[cfg(debug_assertions)]
            owner_thread: self.owner_thread,
        }
    }
}

impl Default for ReactorNet {
    fn default() -> ReactorNet {
        ReactorNet::new()
    }
}

impl ReactorNet {
    /// Creates a fresh reactor fabric; the returned handle is the root
    /// session (fine for a standalone swarm — a host allocates one
    /// session per mounted swarm via [`session`](Self::session)).
    pub fn new() -> ReactorNet {
        ReactorNet {
            core: Rc::new(RefCell::new(Core {
                rings: HashMap::new(),
                owner: HashMap::new(),
                proxies: HashMap::new(),
                backlog: HashMap::new(),
                ready: VecDeque::new(),
                enqueued: HashSet::new(),
                explicit: HashSet::new(),
                timers: TimerWheel::new(),
                now_us: 0,
                next_session: 1,
                metrics: NetMetrics::default(),
                stats: ReactorStats::default(),
                fault: None,
            })),
            session: SessionId(0),
            #[cfg(debug_assertions)]
            owner_thread: std::thread::current().id(),
        }
    }

    /// Debug-only ownership guard: every handle operation must happen on
    /// the thread that created the fabric. Release builds compile this
    /// to nothing — the `Rc` core already refuses to cross threads in
    /// safe code, so the check only exists to catch unsafe wrappers.
    ///
    /// # Panics
    /// In debug builds, when called from any thread other than the one
    /// that created the fabric.
    #[inline]
    fn assert_owner_thread(&self) {
        #[cfg(debug_assertions)]
        {
            let here = std::thread::current().id();
            assert!(
                here == self.owner_thread,
                "ReactorNet handle touched from {here:?} but its fabric lives on \
                 {:?}; reactor state is single-thread — cross-shard traffic must \
                 ride a BridgeLink",
                self.owner_thread
            );
        }
    }

    /// A new handle onto the same fabric under a fresh session — what a
    /// host hands each swarm it mounts, so their readiness is tracked
    /// independently.
    pub fn session(&self) -> ReactorNet {
        self.assert_owner_thread();
        let mut core = self.core.borrow_mut();
        let id = SessionId(core.next_session);
        core.next_session += 1;
        ReactorNet {
            core: Rc::clone(&self.core),
            session: id,
            #[cfg(debug_assertions)]
            owner_thread: self.owner_thread,
        }
    }

    /// The session this handle registers endpoints under.
    pub fn session_id(&self) -> SessionId {
        self.session
    }

    /// The reactor's virtual clock, advanced only by idle parking.
    pub fn now_us(&self) -> u64 {
        self.core.borrow().now_us
    }

    /// Scheduling counters (wakeups, timer fires, idle jumps).
    pub fn stats(&self) -> ReactorStats {
        self.core.borrow().stats
    }

    /// Undelivered messages queued for `session`'s endpoints.
    pub fn backlog(&self, session: SessionId) -> usize {
        self.core
            .borrow()
            .backlog
            .get(&session)
            .copied()
            .unwrap_or(0)
    }

    /// Pops the next ready session off the wakeup queue. The session's
    /// queue slot is released before the host pumps it, so traffic
    /// arriving *during* the pump re-enqueues it at the back — that plus
    /// the host's per-wakeup budget is the fairness guarantee.
    ///
    /// A queued **traffic** signal whose ring was already drained (a
    /// burst absorbed by an earlier pump of the same session) is *stale*:
    /// it is discarded without counting a wakeup, so a 1k-session burst
    /// costs each session at most one real wakeup. **Explicit** signals
    /// ([`mark_ready`](Self::mark_ready), timer fires) always wake —
    /// a parked session expects its turn even with an empty ring.
    pub fn next_ready(&self) -> Option<SessionId> {
        self.assert_owner_thread();
        let mut core = self.core.borrow_mut();
        loop {
            let session = core.ready.pop_front()?;
            core.enqueued.remove(&session);
            let explicit = core.explicit.remove(&session);
            let has_backlog = core.backlog.get(&session).is_some_and(|n| *n > 0);
            if explicit || has_backlog {
                core.stats.wakeups += 1;
                return Some(session);
            }
        }
    }

    /// Whether any session is on the wakeup queue.
    pub fn has_ready(&self) -> bool {
        !self.core.borrow().ready.is_empty()
    }

    /// Re-enqueues a session that still has backlog (or that the caller
    /// wants revisited). Duplicate marks are coalesced. This is an
    /// *explicit* signal: the wakeup fires even if the session's rings
    /// are empty by then (unlike a traffic signal — see
    /// [`next_ready`](Self::next_ready)).
    pub fn mark_ready(&self, session: SessionId) {
        self.core.borrow_mut().mark_ready_explicit(session);
    }

    /// Schedules a wakeup for `session` at `delay_us` of virtual time
    /// from now — the timer-wheel half of `recv_deadline`-style waiting:
    /// instead of blocking, a session parks and the wheel makes it ready
    /// when the clock reaches the deadline.
    pub fn schedule_wake(&self, session: SessionId, delay_us: u64) {
        let mut core = self.core.borrow_mut();
        let deadline = core.now_us.saturating_add(delay_us.max(1));
        core.timers.schedule(deadline, session);
    }

    /// Whether any timer is pending on the wheel.
    pub fn timers_pending(&self) -> bool {
        !self.core.borrow().timers.is_empty()
    }

    /// Idle parking: with nothing ready, jump the clock to the next
    /// timer deadline at or before `deadline_us` and fire every timer
    /// that came due (their sessions join the wakeup queue). Returns
    /// `true` if timers fired; `false` when no timer lies within the
    /// window — the clock then rests at `deadline_us` and the caller's
    /// loop is done waiting. Never spins: one call, one jump.
    pub fn advance_idle_until(&self, deadline_us: u64) -> bool {
        let mut core = self.core.borrow_mut();
        match core.timers.next_deadline() {
            Some(next) if next <= deadline_us => {
                core.now_us = core.now_us.max(next);
                let now = core.now_us;
                let due = core.timers.advance_to(now);
                core.stats.idle_advances += 1;
                core.stats.timer_fires += due.len() as u64;
                for (_, session) in due {
                    core.mark_ready_explicit(session);
                }
                true
            }
            _ => {
                core.now_us = core.now_us.max(deadline_us);
                let now = core.now_us;
                core.timers.advance_to(now);
                false
            }
        }
    }

    /// Registers `peer` as a **remote-shard proxy**: sends to it succeed
    /// locally (metrics recorded on this shard) and forward over
    /// `bridge` to the shard that owns the peer's ring. Re-registering
    /// replaces the bridge (the peer migrated).
    ///
    /// # Panics
    /// If `peer` owns a *local* ring — a shard directory bug: the same
    /// id cannot be both local and remote.
    pub fn register_proxy(&self, peer: PeerId, bridge: BridgeTx) {
        let mut core = self.core.borrow_mut();
        assert!(
            !core.owner.contains_key(&peer),
            "{peer} is registered locally on this shard; it cannot also be a remote proxy"
        );
        core.proxies.insert(peer, bridge);
    }

    /// Removes a remote-shard proxy (the peer departed or migrated).
    /// Unknown ids are a no-op.
    pub fn unregister_proxy(&self, peer: PeerId) {
        self.core.borrow_mut().proxies.remove(&peer);
    }

    /// Whether `peer` currently resolves to a remote-shard proxy.
    pub fn is_proxy(&self, peer: PeerId) -> bool {
        self.core.borrow().proxies.contains_key(&peer)
    }

    /// Delivers a message that arrived over a bridge into the owning
    /// ring, exactly as a local send would (backlog, readiness signal) —
    /// but *without* re-recording traffic metrics: the origin shard
    /// already counted the send. Returns `false` when no local ring owns
    /// `msg.to` (the peer unmounted mid-flight; the message is dropped).
    pub fn inject(&self, msg: BusMessage) -> bool {
        let mut core = self.core.borrow_mut();
        let Some(owner) = core.owner.get(&msg.to).copied() else {
            return false;
        };
        // pti-allow(unbounded-queue): inbound rings model the network; the delivery layer bounds senders via credit
        core.rings
            .get_mut(&msg.to)
            // pti-allow(panic-policy): owner and rings are mutated together, so an owned peer always has a ring
            .expect("registered peer has a ring")
            .push_back(msg);
        *core.backlog.entry(owner).or_insert(0) += 1;
        core.mark_ready(owner);
        true
    }

    /// Tears down `peer`'s endpoint regardless of which session owns it:
    /// the ring is dropped (its undelivered messages are discarded and
    /// returned as a count) and the owning session's backlog shrinks to
    /// match. The host-side half of unmounting a swarm.
    pub fn unregister(&self, peer: PeerId) -> usize {
        let mut core = self.core.borrow_mut();
        let Some(owner) = core.owner.remove(&peer) else {
            return 0;
        };
        let dropped = core.rings.remove(&peer).map_or(0, |ring| ring.len());
        if let Some(n) = core.backlog.get_mut(&owner) {
            *n = n.saturating_sub(dropped);
        }
        dropped
    }

    /// Releases a whole session: its backlog entry and any pending
    /// signals go away (queued entries are skipped lazily by
    /// [`next_ready`](Self::next_ready)). Endpoints must already be
    /// [`unregister`](Self::unregister)ed.
    pub fn release_session(&self, session: SessionId) {
        let mut core = self.core.borrow_mut();
        core.backlog.remove(&session);
        core.explicit.remove(&session);
    }

    /// Every peer with a *local* ring on this fabric, sorted by id —
    /// what a shard directory diffs after a mutation to learn which
    /// peers appeared or vanished (proxies are not included).
    pub fn registered_peers(&self) -> Vec<PeerId> {
        let core = self.core.borrow();
        let mut peers: Vec<PeerId> = core.owner.keys().copied().collect();
        peers.sort_unstable();
        peers
    }
}

impl Transport for ReactorNet {
    /// Creates `peer`'s inbound ring under this handle's session.
    /// Re-registering within the same session is a no-op.
    ///
    /// # Panics
    /// If the id is already registered under *another* session of this
    /// fabric — silently rebinding would hijack the other swarm's
    /// traffic (same contract as [`LiveBus`](crate::LiveBus)).
    fn register(&mut self, peer: PeerId) {
        self.assert_owner_thread();
        let mut core = self.core.borrow_mut();
        match core.owner.get(&peer) {
            Some(owner) if *owner == self.session => return,
            // pti-allow(panic-policy): peer-id collision across sessions is a wiring bug, same contract as LiveBus::attach
            Some(_) => panic!("{peer} is already registered on this reactor fabric"),
            None => {}
        }
        assert!(
            !core.proxies.contains_key(&peer),
            "{peer} is already registered on another shard of this fabric"
        );
        core.owner.insert(peer, self.session);
        core.rings.insert(peer, VecDeque::new());
    }

    fn send(
        &mut self,
        from: PeerId,
        to: PeerId,
        kind: &'static str,
        payload: Payload,
    ) -> Result<(), NetError> {
        self.assert_owner_thread();
        let mut core = self.core.borrow_mut();
        let local_owner = core.owner.get(&to).copied();
        if local_owner.is_none() && !core.proxies.contains_key(&to) {
            return Err(NetError::UnknownPeer(to));
        }
        // The fault plan adjudicates before delivery: a dropped message
        // is still accounted as sent (the bytes hit the wire), it just
        // never reaches a ring or the bridge.
        let decision = match core.fault.as_mut() {
            Some(plan) => plan.decide(from, to),
            None => FaultDecision::Deliver,
        };
        core.metrics.record_fault(decision);
        if matches!(decision, FaultDecision::Drop | FaultDecision::Partitioned) {
            let size = payload.len();
            core.metrics.record(kind, size);
            if kind == kinds::BATCH {
                let frames = FrameBatch::peek_count(&payload).unwrap_or(0);
                core.metrics.record_batch(from, to, frames, size);
            }
            core.stats.sends += 1;
            return Ok(());
        }
        let copies = if decision == FaultDecision::Duplicate {
            2
        } else {
            1
        };
        let Some(owner) = local_owner else {
            // No local ring: a remote-shard proxy forwards over its
            // bridge; the send is recorded here (origin-side accounting)
            // and the owning shard injects it without re-counting.
            // pti-allow(panic-policy): proxy membership was checked before adjudicating the fault
            let bridge = core.proxies.get(&to).cloned().expect("checked proxy");
            let size = payload.len();
            let batch_frames =
                (kind == kinds::BATCH).then(|| FrameBatch::peek_count(&payload).unwrap_or(0));
            let msg = BusMessage {
                from,
                to,
                kind,
                payload,
            };
            let mut woke = false;
            for _ in 1..copies {
                woke |= bridge.send(msg.clone())?;
            }
            woke |= bridge.send(msg)?;
            // Recorded only after the bridge accepted it — a failed send
            // stays uncounted, same as the local path.
            core.metrics.record(kind, size);
            if let Some(frames) = batch_frames {
                core.metrics.record_batch(from, to, frames, size);
            }
            core.stats.sends += 1;
            core.metrics.record_bridge_crossing(size, woke);
            return Ok(());
        };
        let size = payload.len();
        core.metrics.record(kind, size);
        if kind == kinds::BATCH {
            let frames = FrameBatch::peek_count(&payload).unwrap_or(0);
            core.metrics.record_batch(from, to, frames, size);
        }
        let msg = BusMessage {
            from,
            to,
            kind,
            payload,
        };
        let ring = core
            .rings
            .get_mut(&to)
            // pti-allow(panic-policy): owner and rings are mutated together, so an owned peer always has a ring
            .expect("registered peer has a ring");
        for _ in 1..copies {
            // pti-allow(unbounded-queue): inbound rings model the network; the delivery layer bounds senders via credit
            ring.push_back(msg.clone());
        }
        // pti-allow(unbounded-queue): inbound rings model the network; the delivery layer bounds senders via credit
        ring.push_back(msg);
        *core.backlog.entry(owner).or_insert(0) += copies;
        core.stats.sends += 1;
        core.mark_ready(owner);
        Ok(())
    }

    fn try_recv(&mut self, peer: PeerId) -> Option<BusMessage> {
        self.assert_owner_thread();
        let mut core = self.core.borrow_mut();
        let msg = core.rings.get_mut(&peer)?.pop_front()?;
        if let Some(owner) = core.owner.get(&peer).copied() {
            if let Some(n) = core.backlog.get_mut(&owner) {
                *n = n.saturating_sub(1);
            }
        }
        core.stats.recvs += 1;
        Some(msg)
    }

    fn metrics(&self) -> NetMetrics {
        self.core.borrow().metrics.clone()
    }

    fn reset_metrics(&mut self) {
        self.core.borrow_mut().metrics.reset();
    }

    fn record_batch_splits(&mut self, from: PeerId, to: PeerId, extra: u64) {
        self.core
            .borrow_mut()
            .metrics
            .record_batch_splits(from, to, extra);
    }

    fn record_batched_frame(&mut self, kind: &'static str, bytes: usize) {
        self.core
            .borrow_mut()
            .metrics
            .record_batched_frame(kind, bytes);
    }

    fn record_payload_encode(&mut self) {
        self.core.borrow_mut().metrics.record_payload_encode();
    }

    fn now_us(&self) -> u64 {
        ReactorNet::now_us(self)
    }

    fn install_fault_plan(&mut self, plan: FaultPlan) {
        self.core.borrow_mut().fault = Some(plan);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn implements_the_transport_contract() {
        let mut t = ReactorNet::new();
        t.register(PeerId(1));
        t.register(PeerId(2));
        t.send(PeerId(1), PeerId(2), "k", vec![7].into()).unwrap();
        assert_eq!(
            t.send(PeerId(1), PeerId(9), "k", Payload::empty()),
            Err(NetError::UnknownPeer(PeerId(9)))
        );
        let m = t.try_recv(PeerId(2)).expect("queued message");
        assert_eq!(m.from, PeerId(1));
        assert_eq!(m.kind, "k");
        assert_eq!(m.payload, vec![7]);
        assert!(t.try_recv(PeerId(2)).is_none());
        assert_eq!(
            Transport::metrics(&t).messages,
            1,
            "failed send not recorded"
        );
        t.reset_metrics();
        assert_eq!(Transport::metrics(&t).messages, 0);
    }

    #[test]
    fn sends_mark_owning_sessions_ready_in_order_without_duplicates() {
        let hub = ReactorNet::new();
        let mut a = hub.session();
        let mut b = hub.session();
        a.register(PeerId(1));
        b.register(PeerId(2));
        assert!(hub.next_ready().is_none());
        a.send(PeerId(1), PeerId(2), "k", vec![1].into()).unwrap();
        b.send(PeerId(2), PeerId(1), "k", vec![2].into()).unwrap();
        a.send(PeerId(1), PeerId(2), "k", vec![3].into()).unwrap();
        // b's session became ready first... no wait: a's first send marks
        // b's session, then b's send marks a's, and the repeat coalesces.
        assert_eq!(hub.next_ready(), Some(b.session_id()));
        assert_eq!(hub.next_ready(), Some(a.session_id()));
        assert_eq!(hub.next_ready(), None);
        assert_eq!(hub.backlog(b.session_id()), 2);
        // Draining decrements the backlog; re-marking re-queues once.
        let _ = b.try_recv(PeerId(2)).unwrap();
        assert_eq!(hub.backlog(b.session_id()), 1);
        hub.mark_ready(b.session_id());
        hub.mark_ready(b.session_id());
        assert_eq!(hub.next_ready(), Some(b.session_id()));
        assert_eq!(hub.next_ready(), None);
        assert_eq!(hub.stats().sends, 3);
        assert_eq!(hub.stats().recvs, 1);
        assert_eq!(hub.stats().wakeups, 3);
    }

    #[test]
    fn a_drained_burst_does_not_resignal_its_session() {
        let hub = ReactorNet::new();
        let mut a = hub.session();
        let mut b = hub.session();
        a.register(PeerId(1));
        b.register(PeerId(2));
        // A three-message burst to one session: the traffic signal
        // coalesces to a single queue entry...
        for i in 0..3u8 {
            a.send(PeerId(1), PeerId(2), "k", vec![i].into()).unwrap();
        }
        // ...and when the ring is drained outside a wakeup (the host's
        // kick sweep does exactly this), the queued entry is stale:
        // popping it must not produce an idle wakeup.
        while b.try_recv(PeerId(2)).is_some() {}
        assert_eq!(hub.next_ready(), None, "stale traffic signal skipped");
        assert_eq!(hub.stats().wakeups, 0, "no wakeup for a drained burst");
        // Explicit marks still fire on an empty ring — the timer path
        // and host re-marks depend on that.
        hub.mark_ready(b.session_id());
        assert_eq!(hub.next_ready(), Some(b.session_id()));
        assert_eq!(hub.stats().wakeups, 1);
        // A partially-drained burst is a *live* signal: backlog remains,
        // so the wakeup fires.
        for i in 0..2u8 {
            a.send(PeerId(1), PeerId(2), "k", vec![i].into()).unwrap();
        }
        let _ = b.try_recv(PeerId(2)).unwrap();
        assert_eq!(hub.next_ready(), Some(b.session_id()));
        assert_eq!(hub.stats().wakeups, 2);
    }

    #[test]
    fn proxied_sends_cross_the_bridge_with_origin_side_accounting() {
        use crate::bridge::BridgeLink;

        let origin = ReactorNet::new();
        let remote = ReactorNet::new();
        let mut o = origin.session();
        let mut r = remote.session();
        o.register(PeerId(1));
        r.register(PeerId(9));
        let (tx, rx) = BridgeLink::pair();
        origin.register_proxy(PeerId(9), tx.clone());
        assert!(origin.is_proxy(PeerId(9)));

        o.send(PeerId(1), PeerId(9), "object", vec![1, 2, 3].into())
            .unwrap();
        // Origin shard: send recorded locally, bridge counters ticked.
        let m = Transport::metrics(&o);
        assert_eq!(m.kind("object").messages, 1);
        assert_eq!((m.bridge_crossings, m.bridge_bytes), (1, 3));
        assert_eq!(origin.stats().sends, 1);
        assert_eq!(tx.pending(), 1);

        // Owning shard: inject delivers into the ring and marks the
        // session ready, without double-counting the traffic.
        let msg = rx.try_drain().unwrap();
        assert!(remote.inject(msg));
        assert_eq!(remote.backlog(r.session_id()), 1);
        assert_eq!(remote.next_ready(), Some(r.session_id()));
        assert_eq!(r.try_recv(PeerId(9)).unwrap().payload, vec![1, 2, 3]);
        assert_eq!(Transport::metrics(&r).messages, 0, "no origin recount");
        assert_eq!(remote.stats().recvs, 1);

        // An inject for an unmounted peer is dropped, not misdelivered.
        o.send(PeerId(1), PeerId(9), "object", vec![4].into())
            .unwrap();
        assert_eq!(remote.unregister(PeerId(9)), 0);
        assert!(!remote.inject(rx.try_drain().unwrap()));
        remote.release_session(r.session_id());
        assert_eq!(remote.backlog(r.session_id()), 0);
    }

    #[test]
    #[should_panic(expected = "already registered on another shard")]
    fn proxy_collision_panics_instead_of_shadowing_a_remote_peer() {
        let hub = ReactorNet::new();
        let (tx, _rx) = crate::bridge::BridgeLink::pair();
        hub.register_proxy(PeerId(7), tx);
        let mut s = hub.session();
        s.register(PeerId(7));
    }

    #[test]
    fn unregister_drops_the_ring_and_shrinks_the_backlog() {
        let hub = ReactorNet::new();
        let mut a = hub.session();
        let mut b = hub.session();
        a.register(PeerId(1));
        b.register(PeerId(2));
        b.register(PeerId(3));
        a.send(PeerId(1), PeerId(2), "k", vec![1].into()).unwrap();
        a.send(PeerId(1), PeerId(2), "k", vec![2].into()).unwrap();
        a.send(PeerId(1), PeerId(3), "k", vec![3].into()).unwrap();
        assert_eq!(hub.backlog(b.session_id()), 3);
        assert_eq!(hub.unregister(PeerId(2)), 2, "two undelivered dropped");
        assert_eq!(hub.backlog(b.session_id()), 1);
        assert_eq!(
            a.send(PeerId(1), PeerId(2), "k", vec![4].into()),
            Err(NetError::UnknownPeer(PeerId(2))),
            "the endpoint is gone"
        );
        // The surviving endpoint still delivers.
        assert_eq!(b.try_recv(PeerId(3)).unwrap().payload, vec![3]);
        assert_eq!(hub.unregister(PeerId(2)), 0, "double unregister no-op");
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn cross_session_id_collision_panics_instead_of_hijacking() {
        let hub = ReactorNet::new();
        let mut a = hub.session();
        let mut b = hub.session();
        a.register(PeerId(1));
        b.register(PeerId(1));
    }

    /// The ownership guard only exists in debug builds, and the only way
    /// to get a handle across a thread at all is to lie about `Send` —
    /// exactly the wrapper a buggy refactor might introduce.
    #[test]
    #[should_panic(expected = "reactor state is single-thread")]
    #[cfg(debug_assertions)]
    fn a_handle_smuggled_across_a_thread_panics_in_debug_builds() {
        #[allow(unsafe_code)]
        mod smuggle {
            pub(super) struct ForceSend<T>(pub(super) T);
            // SAFETY: deliberately unsound — this test exists to prove
            // the debug guard catches exactly this lie.
            unsafe impl<T> Send for ForceSend<T> {}
        }
        let hub = ReactorNet::new();
        let contraband = smuggle::ForceSend(hub.clone());
        // pti-allow(thread-confinement): this test proves the ownership guard fires off-thread
        let worker = std::thread::spawn(move || {
            let smuggled = contraband;
            let _clone = smuggled.0.clone(); // guard fires here
        });
        let payload = worker.join().expect_err("guard must have fired");
        std::panic::resume_unwind(payload);
    }

    #[test]
    fn clone_keeps_the_session_fresh_sessions_are_distinct() {
        let hub = ReactorNet::new();
        let a = hub.session();
        assert_eq!(a.clone().session_id(), a.session_id());
        assert_ne!(hub.session().session_id(), a.session_id());
        assert_ne!(hub.session_id(), a.session_id());
    }

    #[test]
    fn idle_parking_jumps_to_deadlines_and_fires_in_order() {
        let hub = ReactorNet::new();
        let a = hub.session();
        let b = hub.session();
        let c = hub.session();
        // Out-of-order scheduling; the wheel fires by deadline.
        hub.schedule_wake(c.session_id(), 50_000);
        hub.schedule_wake(a.session_id(), 10_000);
        hub.schedule_wake(b.session_id(), 30_000);
        let mut fired = Vec::new();
        while hub.advance_idle_until(100_000) {
            while let Some(s) = hub.next_ready() {
                fired.push(s);
            }
        }
        assert_eq!(fired, vec![a.session_id(), b.session_id(), c.session_id()]);
        assert_eq!(hub.now_us(), 100_000, "clock rests at the window end");
        let stats = hub.stats();
        assert_eq!(stats.timer_fires, 3);
        assert_eq!(
            stats.idle_advances, 3,
            "one jump per deadline, never a spin"
        );
        assert!(!hub.timers_pending());
    }

    #[test]
    fn far_future_timers_survive_full_wheel_laps() {
        let hub = ReactorNet::new();
        let a = hub.session();
        let b = hub.session();
        let lap_us = WHEEL_SLOTS as u64 * WHEEL_TICK_US;
        // Same slot, different laps: b's deadline is exactly one lap
        // after a's, so both hash to the same wheel slot.
        hub.schedule_wake(a.session_id(), 5_000);
        hub.schedule_wake(b.session_id(), 5_000 + lap_us);
        assert!(hub.advance_idle_until(u64::MAX));
        assert_eq!(hub.next_ready(), Some(a.session_id()));
        assert_eq!(hub.next_ready(), None, "b's lap has not come");
        assert!(hub.timers_pending());
        assert!(hub.advance_idle_until(u64::MAX));
        assert_eq!(hub.next_ready(), Some(b.session_id()));
        assert_eq!(hub.now_us(), 5_000 + lap_us);
        // A window that ends before the next deadline does not fire it.
        hub.schedule_wake(a.session_id(), 10_000);
        assert!(!hub.advance_idle_until(hub.now_us() + 1_000));
        assert!(hub.timers_pending());
    }

    #[test]
    fn fault_plan_is_honoured_on_the_local_path() {
        let mut t = ReactorNet::new();
        t.register(PeerId(1));
        t.register(PeerId(2));
        t.install_fault_plan(FaultPlan::new(1).with_loss(1000));
        t.send(PeerId(1), PeerId(2), "k", vec![1].into()).unwrap();
        assert!(t.try_recv(PeerId(2)).is_none(), "dropped before the ring");
        let m = Transport::metrics(&t);
        assert_eq!(m.faults_dropped, 1);
        assert_eq!(m.messages, 1, "the send itself is accounted");
        t.install_fault_plan(FaultPlan::new(1).with_duplication(1000));
        t.send(PeerId(1), PeerId(2), "k", vec![2].into()).unwrap();
        assert_eq!(t.try_recv(PeerId(2)).unwrap().payload, vec![2]);
        assert_eq!(t.try_recv(PeerId(2)).unwrap().payload, vec![2]);
        assert_eq!(Transport::metrics(&t).faults_duplicated, 1);
        assert_eq!(
            t.send(PeerId(1), PeerId(9), "k", Payload::empty()),
            Err(NetError::UnknownPeer(PeerId(9))),
            "unknown peers are rejected before adjudication"
        );
    }

    #[test]
    fn batch_messages_count_frames_like_the_other_fabrics() {
        let mut t = ReactorNet::new();
        t.register(PeerId(1));
        t.register(PeerId(2));
        let mut batch = FrameBatch::new();
        batch.push("object", vec![1, 2, 3]);
        batch.push("subscribe", vec![4]);
        t.send(PeerId(1), PeerId(2), kinds::BATCH, batch.encode().into())
            .unwrap();
        let m = Transport::metrics(&t);
        assert_eq!(m.batches(), 1);
        assert_eq!(m.batched_frames(), 2);
        assert_eq!(m.link(PeerId(1), PeerId(2)).frames, 2);
    }
}
