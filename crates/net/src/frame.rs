//! Wire batching: coalescing several protocol frames into one message.
//!
//! The broadcast layers above the fabrics used to pay one fabric message
//! per envelope per destination. A [`FrameBatch`] instead carries every
//! frame queued for one `(from, to)` link in a single message of kind
//! [`kinds::BATCH`]; the receiving protocol engine splits it back into
//! its constituent frames. The fabrics account batches per link in
//! [`NetMetrics`](crate::NetMetrics) (batch count + frames coalesced), so
//! experiments can report exactly how much the coalescing saves.
//!
//! The encoding is a tiny length-prefixed layout (no serializer
//! dependency): `u32` frame count, then per frame a `u16` kind length,
//! the kind bytes, a `u32` payload length and the payload bytes — all
//! little-endian. Decoding is hostile-input safe: every length prefix is
//! capped by the bytes actually remaining in the buffer *before* any
//! allocation, so a corrupt `u32` cannot trigger a huge pre-allocation.

use std::borrow::Cow;
use std::fmt;

use crate::payload::Payload;

/// Message-kind tags owned by the fabric layer (protocol-level tags live
/// in `pti-transport`).
pub mod kinds {
    /// A coalesced batch of frames for one `(from, to)` link.
    pub const BATCH: &str = "batch";
}

/// One frame inside a batch: a kind tag plus an opaque payload.
///
/// The kind is a [`Cow`]: frames *built* for the wire borrow the sender's
/// `&'static str` tag (the same allocation-free invariant the rest of the
/// stack keeps — see [`NetMetrics`](crate::NetMetrics)), and frames
/// *decoded* through [`FrameBatch::decode_interned`] come back already
/// borrowed from the receiver's constants; only the uninterned
/// [`FrameBatch::decode`] ever owns its tag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// The application-level kind the frame would have carried as a
    /// standalone message.
    pub kind: Cow<'static, str>,
    /// Opaque payload bytes — shared, so unpacking a batch into frames
    /// never copies the sender's buffer onward.
    pub payload: Payload,
}

/// Error decoding a [`FrameBatch`] from wire bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameDecodeError(pub(crate) Cow<'static, str>);

impl FrameDecodeError {
    fn new(reason: &'static str) -> FrameDecodeError {
        FrameDecodeError(Cow::Borrowed(reason))
    }
}

impl fmt::Display for FrameDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed frame batch: {}", self.0)
    }
}

impl std::error::Error for FrameDecodeError {}

/// A coalesced sequence of frames travelling as one wire message.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FrameBatch {
    /// The frames, in queue order (per-link FIFO is preserved).
    pub frames: Vec<Frame>,
}

/// Smallest possible encoded frame: kind length (2) + payload length (4)
/// with both empty — the bound that caps the frame-count pre-allocation.
const MIN_FRAME_BYTES: usize = 6;

impl FrameBatch {
    /// An empty batch.
    pub fn new() -> FrameBatch {
        FrameBatch::default()
    }

    /// Appends a frame. The kind tag is a static constant, matching the
    /// rest of the send path; the payload is shared, not copied.
    pub fn push(&mut self, kind: &'static str, payload: impl Into<Payload>) {
        self.frames.push(Frame {
            kind: Cow::Borrowed(kind),
            payload: payload.into(),
        });
    }

    /// Number of frames in the batch.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether the batch holds no frames.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Encodes the batch into wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        let body: usize = self
            .frames
            .iter()
            .map(|f| MIN_FRAME_BYTES + f.kind.len() + f.payload.len())
            .sum();
        let mut out = Vec::with_capacity(4 + body);
        out.extend_from_slice(&(self.frames.len() as u32).to_le_bytes());
        for f in &self.frames {
            out.extend_from_slice(&(f.kind.len() as u16).to_le_bytes());
            out.extend_from_slice(f.kind.as_bytes());
            out.extend_from_slice(&(f.payload.len() as u32).to_le_bytes());
            out.extend_from_slice(&f.payload);
        }
        out
    }

    /// Decodes a batch from wire bytes. Kind tags come back owned; the
    /// batched-dispatch hot path uses
    /// [`decode_interned`](Self::decode_interned) instead, which skips
    /// that allocation.
    ///
    /// # Errors
    /// [`FrameDecodeError`] on truncated or malformed input.
    pub fn decode(bytes: &[u8]) -> Result<FrameBatch, FrameDecodeError> {
        Self::decode_with(bytes, |kind| Ok(Cow::Owned(kind.to_string())))
    }

    /// Decodes a batch, mapping every kind tag back to the receiver's
    /// `&'static str` constant through `intern` — the allocation-free
    /// path batch dispatch uses. A kind the interner does not recognize
    /// fails the decode with the given error text.
    ///
    /// # Errors
    /// [`FrameDecodeError`] on truncated/malformed input or a kind
    /// `intern` rejects.
    pub fn decode_interned(
        bytes: &[u8],
        intern: impl Fn(&str) -> Option<&'static str>,
    ) -> Result<FrameBatch, FrameDecodeError> {
        Self::decode_with(bytes, |kind| {
            intern(kind).map(Cow::Borrowed).ok_or_else(|| {
                FrameDecodeError(Cow::Owned(format!("unknown batched kind `{kind}`")))
            })
        })
    }

    fn decode_with(
        bytes: &[u8],
        mut map_kind: impl FnMut(&str) -> Result<Cow<'static, str>, FrameDecodeError>,
    ) -> Result<FrameBatch, FrameDecodeError> {
        let count = Self::peek_count(bytes).ok_or(FrameDecodeError::new("missing frame count"))?;
        let mut at = 4usize;
        // Every length prefix below is validated against the remaining
        // buffer *before* any slice or allocation happens; `take` is the
        // single bounds gate.
        let take = |at: &mut usize, n: usize| -> Result<&[u8], FrameDecodeError> {
            let end = at
                .checked_add(n)
                .filter(|&e| e <= bytes.len())
                .ok_or(FrameDecodeError::new("truncated"))?;
            let s = &bytes[*at..end];
            *at = end;
            Ok(s)
        };
        // A hostile count cannot force a huge pre-allocation: each frame
        // occupies at least MIN_FRAME_BYTES, so cap by what the buffer
        // could physically hold (the loop still errors on truncation).
        let plausible = bytes.len().saturating_sub(4) / MIN_FRAME_BYTES;
        let mut frames = Vec::with_capacity(count.min(plausible));
        for _ in 0..count {
            // pti-allow(panic-policy): take() returned exactly 2 bytes, so the slice-to-array conversion is infallible
            let klen = u16::from_le_bytes(take(&mut at, 2)?.try_into().expect("2 bytes")) as usize;
            let kind = map_kind(
                std::str::from_utf8(take(&mut at, klen)?)
                    .map_err(|_| FrameDecodeError::new("kind not utf8"))?,
            )?;
            // pti-allow(panic-policy): take() returned exactly 4 bytes, so the slice-to-array conversion is infallible
            let plen = u32::from_le_bytes(take(&mut at, 4)?.try_into().expect("4 bytes")) as usize;
            let payload = Payload::from(take(&mut at, plen)?);
            frames.push(Frame { kind, payload });
        }
        if at != bytes.len() {
            return Err(FrameDecodeError::new("trailing bytes"));
        }
        Ok(FrameBatch { frames })
    }

    /// Reads the frame count from an encoded batch without decoding it —
    /// what the fabrics use to account batched frames per link.
    pub fn peek_count(bytes: &[u8]) -> Option<usize> {
        Some(u32::from_le_bytes(bytes.get(..4)?.try_into().ok()?) as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut b = FrameBatch::new();
        b.push("object", vec![1, 2, 3]);
        b.push("desc-request", vec![]);
        b.push("object", vec![0u8; 300]);
        let bytes = b.encode();
        assert_eq!(FrameBatch::peek_count(&bytes), Some(3));
        let back = FrameBatch::decode(&bytes).unwrap();
        assert_eq!(back, b);
        assert_eq!(back.len(), 3);
    }

    #[test]
    fn empty_roundtrip() {
        let b = FrameBatch::new();
        assert!(b.is_empty());
        let back = FrameBatch::decode(&b.encode()).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn push_shares_payload_bytes() {
        let payload: Payload = vec![7u8; 64].into();
        let mut b = FrameBatch::new();
        b.push("object", payload.clone());
        assert_eq!(payload.ref_count(), 2, "queued frame shares, not copies");
    }

    #[test]
    fn decode_interned_borrows_static_tags() {
        let mut b = FrameBatch::new();
        b.push("object", vec![1]);
        b.push("view", vec![2]);
        let intern = |k: &str| ["object", "view"].iter().find(|s| **s == k).copied();
        let back = FrameBatch::decode_interned(&b.encode(), intern).unwrap();
        assert!(back
            .frames
            .iter()
            .all(|f| matches!(f.kind, Cow::Borrowed(_))));
        // An unknown kind fails the whole decode.
        let mut evil = FrameBatch::new();
        evil.push("mystery", vec![]);
        assert!(FrameBatch::decode_interned(&evil.encode(), intern).is_err());
    }

    #[test]
    fn decode_rejects_truncation_and_trailers() {
        let mut b = FrameBatch::new();
        b.push("k", vec![9; 10]);
        let bytes = b.encode();
        assert!(FrameBatch::decode(&bytes[..bytes.len() - 1]).is_err());
        assert!(FrameBatch::decode(&[]).is_err());
        let mut extra = bytes.clone();
        extra.push(0);
        assert!(FrameBatch::decode(&extra).is_err());
    }

    #[test]
    fn decode_rejects_inflated_count() {
        // Claims 1000 frames but carries none.
        let bytes = 1000u32.to_le_bytes().to_vec();
        assert!(FrameBatch::decode(&bytes).is_err());
    }

    #[test]
    fn hostile_lengths_cannot_force_huge_preallocations() {
        // Frame count u32::MAX with an empty body: must error cheaply,
        // not reserve gigabytes.
        let bytes = u32::MAX.to_le_bytes().to_vec();
        assert!(FrameBatch::decode(&bytes).is_err());

        // A frame claiming a 4 GiB payload inside a 32-byte buffer.
        let mut evil = 1u32.to_le_bytes().to_vec();
        evil.extend_from_slice(&1u16.to_le_bytes());
        evil.push(b'k');
        evil.extend_from_slice(&u32::MAX.to_le_bytes());
        evil.extend_from_slice(&[0u8; 16]);
        assert!(FrameBatch::decode(&evil).is_err());

        // A kind length pointing past the end of the buffer.
        let mut evil = 1u32.to_le_bytes().to_vec();
        evil.extend_from_slice(&u16::MAX.to_le_bytes());
        evil.push(b'k');
        assert!(FrameBatch::decode(&evil).is_err());

        // A count whose *first* frames are valid but whose tail is cut.
        let mut b = FrameBatch::new();
        b.push("a", vec![1]);
        let mut partial = b.encode();
        partial[..4].copy_from_slice(&9u32.to_le_bytes());
        assert!(FrameBatch::decode(&partial).is_err());
    }
}
