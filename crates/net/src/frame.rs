//! Wire batching: coalescing several protocol frames into one message.
//!
//! The broadcast layers above the fabrics used to pay one fabric message
//! per envelope per destination. A [`FrameBatch`] instead carries every
//! frame queued for one `(from, to)` link in a single message of kind
//! [`kinds::BATCH`]; the receiving protocol engine splits it back into
//! its constituent frames. The fabrics account batches per link in
//! [`NetMetrics`](crate::NetMetrics) (batch count + frames coalesced), so
//! experiments can report exactly how much the coalescing saves.
//!
//! The encoding is a tiny length-prefixed layout (no serializer
//! dependency): `u32` frame count, then per frame a `u16` kind length,
//! the kind bytes, a `u32` payload length and the payload bytes — all
//! little-endian.

use std::borrow::Cow;
use std::fmt;

/// Message-kind tags owned by the fabric layer (protocol-level tags live
/// in `pti-transport`).
pub mod kinds {
    /// A coalesced batch of frames for one `(from, to)` link.
    pub const BATCH: &str = "batch";
}

/// One frame inside a batch: a kind tag plus an opaque payload.
///
/// The kind is a [`Cow`]: frames *built* for the wire borrow the sender's
/// `&'static str` tag (the same allocation-free invariant the rest of the
/// stack keeps — see [`NetMetrics`](crate::NetMetrics)), while frames
/// *decoded* from wire bytes own their tag until the receiving protocol
/// engine interns it back to a constant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// The application-level kind the frame would have carried as a
    /// standalone message.
    pub kind: Cow<'static, str>,
    /// Opaque payload bytes.
    pub payload: Vec<u8>,
}

/// Error decoding a [`FrameBatch`] from wire bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameDecodeError(pub(crate) &'static str);

impl fmt::Display for FrameDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed frame batch: {}", self.0)
    }
}

impl std::error::Error for FrameDecodeError {}

/// A coalesced sequence of frames travelling as one wire message.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FrameBatch {
    /// The frames, in queue order (per-link FIFO is preserved).
    pub frames: Vec<Frame>,
}

impl FrameBatch {
    /// An empty batch.
    pub fn new() -> FrameBatch {
        FrameBatch::default()
    }

    /// Appends a frame. The kind tag is a static constant, matching the
    /// rest of the send path — building a batch allocates nothing beyond
    /// the frame vector itself.
    pub fn push(&mut self, kind: &'static str, payload: Vec<u8>) {
        self.frames.push(Frame {
            kind: Cow::Borrowed(kind),
            payload,
        });
    }

    /// Number of frames in the batch.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether the batch holds no frames.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Encodes the batch into wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        let body: usize = self
            .frames
            .iter()
            .map(|f| 2 + f.kind.len() + 4 + f.payload.len())
            .sum();
        let mut out = Vec::with_capacity(4 + body);
        out.extend_from_slice(&(self.frames.len() as u32).to_le_bytes());
        for f in &self.frames {
            out.extend_from_slice(&(f.kind.len() as u16).to_le_bytes());
            out.extend_from_slice(f.kind.as_bytes());
            out.extend_from_slice(&(f.payload.len() as u32).to_le_bytes());
            out.extend_from_slice(&f.payload);
        }
        out
    }

    /// Decodes a batch from wire bytes.
    ///
    /// # Errors
    /// [`FrameDecodeError`] on truncated or malformed input.
    pub fn decode(bytes: &[u8]) -> Result<FrameBatch, FrameDecodeError> {
        let count = Self::peek_count(bytes).ok_or(FrameDecodeError("missing frame count"))?;
        let mut at = 4usize;
        let take = |at: &mut usize, n: usize| -> Result<&[u8], FrameDecodeError> {
            let end = at
                .checked_add(n)
                .filter(|&e| e <= bytes.len())
                .ok_or(FrameDecodeError("truncated"))?;
            let s = &bytes[*at..end];
            *at = end;
            Ok(s)
        };
        let mut frames = Vec::with_capacity(count.min(1024));
        for _ in 0..count {
            let klen = u16::from_le_bytes(take(&mut at, 2)?.try_into().expect("2 bytes")) as usize;
            let kind = Cow::Owned(
                std::str::from_utf8(take(&mut at, klen)?)
                    .map_err(|_| FrameDecodeError("kind not utf8"))?
                    .to_string(),
            );
            let plen = u32::from_le_bytes(take(&mut at, 4)?.try_into().expect("4 bytes")) as usize;
            let payload = take(&mut at, plen)?.to_vec();
            frames.push(Frame { kind, payload });
        }
        if at != bytes.len() {
            return Err(FrameDecodeError("trailing bytes"));
        }
        Ok(FrameBatch { frames })
    }

    /// Reads the frame count from an encoded batch without decoding it —
    /// what the fabrics use to account batched frames per link.
    pub fn peek_count(bytes: &[u8]) -> Option<usize> {
        Some(u32::from_le_bytes(bytes.get(..4)?.try_into().ok()?) as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut b = FrameBatch::new();
        b.push("object", vec![1, 2, 3]);
        b.push("desc-request", vec![]);
        b.push("object", vec![0u8; 300]);
        let bytes = b.encode();
        assert_eq!(FrameBatch::peek_count(&bytes), Some(3));
        let back = FrameBatch::decode(&bytes).unwrap();
        assert_eq!(back, b);
        assert_eq!(back.len(), 3);
    }

    #[test]
    fn empty_roundtrip() {
        let b = FrameBatch::new();
        assert!(b.is_empty());
        let back = FrameBatch::decode(&b.encode()).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn decode_rejects_truncation_and_trailers() {
        let mut b = FrameBatch::new();
        b.push("k", vec![9; 10]);
        let bytes = b.encode();
        assert!(FrameBatch::decode(&bytes[..bytes.len() - 1]).is_err());
        assert!(FrameBatch::decode(&[]).is_err());
        let mut extra = bytes.clone();
        extra.push(0);
        assert!(FrameBatch::decode(&extra).is_err());
    }

    #[test]
    fn decode_rejects_inflated_count() {
        // Claims 1000 frames but carries none.
        let bytes = 1000u32.to_le_bytes().to_vec();
        assert!(FrameBatch::decode(&bytes).is_err());
    }
}
