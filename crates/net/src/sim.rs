//! Deterministic virtual-time network simulation.
//!
//! The paper measured its prototype on a 2002 Windows laptop; our
//! protocol experiments instead run on a simulated network with explicit
//! latency and bandwidth, which (a) is deterministic, (b) lets the
//! experiments report *bytes* and *virtual time* uninfluenced by host
//! noise, and (c) makes the optimistic-vs-eager comparison (Figure 1)
//! crisp.
//!
//! The model: each message experiences `latency` plus `size/bandwidth`
//! transmission delay; a (from, to) link transmits one message at a time,
//! so bursts queue behind each other. Time only advances when a receiver
//! waits for a delivery ([`SimNet::recv`]).

use std::collections::{HashMap, VecDeque};
use std::fmt;

use crate::fault::{FaultDecision, FaultPlan};
use crate::frame::{kinds, FrameBatch};
use crate::metrics::NetMetrics;
use crate::payload::Payload;

/// Identifies a peer on the simulated network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PeerId(pub u32);

impl fmt::Display for PeerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "peer-{}", self.0)
    }
}

/// Link parameters for the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetConfig {
    /// One-way propagation delay per message, in microseconds.
    pub latency_us: u64,
    /// Link throughput in bytes per second.
    pub bandwidth_bps: u64,
}

impl Default for NetConfig {
    /// A 2002-flavoured LAN: 500 µs latency, 100 Mbit/s ≈ 12.5 MB/s.
    fn default() -> Self {
        NetConfig {
            latency_us: 500,
            bandwidth_bps: 12_500_000,
        }
    }
}

impl NetConfig {
    /// A slow wide-area profile (20 ms, 1 MB/s) where the optimistic
    /// protocol's byte savings dominate.
    pub fn wan() -> NetConfig {
        NetConfig {
            latency_us: 20_000,
            bandwidth_bps: 1_000_000,
        }
    }

    /// Transmission time of `bytes` on this link, in microseconds.
    pub fn tx_us(&self, bytes: usize) -> u64 {
        (bytes as u64)
            .saturating_mul(1_000_000)
            .div_ceil(self.bandwidth_bps.max(1))
    }
}

/// A delivered message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Sending peer.
    pub from: PeerId,
    /// Destination peer.
    pub to: PeerId,
    /// Application-level kind tag (used for metrics breakdowns). Always
    /// a constant — allocation never rides the send path.
    pub kind: &'static str,
    /// Opaque payload bytes — shared with the sender (and, on a fan-out,
    /// with every sibling destination), never copied per hop.
    pub payload: Payload,
    /// Virtual time (µs) the message was handed to the network.
    pub sent_at: u64,
    /// Virtual time (µs) the message becomes available at `to`.
    pub deliver_at: u64,
}

/// Errors from the simulated network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// Destination peer was never registered.
    UnknownPeer(PeerId),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::UnknownPeer(p) => write!(f, "unknown peer {p}"),
        }
    }
}

impl std::error::Error for NetError {}

/// The simulated network: per-peer inboxes, a virtual clock, byte/message
/// accounting.
#[derive(Debug)]
pub struct SimNet {
    config: NetConfig,
    clock_us: u64,
    inboxes: HashMap<PeerId, VecDeque<Message>>,
    link_free: HashMap<(PeerId, PeerId), u64>,
    metrics: NetMetrics,
    fault: Option<FaultPlan>,
}

impl SimNet {
    /// Creates a network with the given link parameters.
    pub fn new(config: NetConfig) -> SimNet {
        SimNet {
            config,
            clock_us: 0,
            inboxes: HashMap::new(),
            link_free: HashMap::new(),
            metrics: NetMetrics::default(),
            fault: None,
        }
    }

    /// Installs (or replaces) a seeded fault plan; subsequent sends are
    /// adjudicated by it. Pass-through of control traffic before the
    /// plan is installed is the usual way to fault only steady-state
    /// traffic.
    pub fn install_fault_plan(&mut self, plan: FaultPlan) {
        self.fault = Some(plan);
    }

    /// Removes any installed fault plan.
    pub fn clear_fault_plan(&mut self) {
        self.fault = None;
    }

    /// Advances the virtual clock to `deadline_us` if it is ahead of the
    /// current time — how a durable-delivery driver reaches its next
    /// retransmit deadline when the fabric is otherwise quiet.
    pub fn advance_clock_to(&mut self, deadline_us: u64) {
        self.clock_us = self.clock_us.max(deadline_us);
    }

    /// Registers a peer, creating its inbox.
    pub fn register(&mut self, peer: PeerId) {
        self.inboxes.entry(peer).or_default();
    }

    /// The current virtual time in microseconds.
    pub fn now_us(&self) -> u64 {
        self.clock_us
    }

    /// Accumulated traffic counters.
    pub fn metrics(&self) -> &NetMetrics {
        &self.metrics
    }

    /// Mutable access to the traffic counters — for accounting hooks
    /// recorded on behalf of the layers above (batch splits).
    pub fn metrics_mut(&mut self) -> &mut NetMetrics {
        &mut self.metrics
    }

    /// Resets traffic counters (keeps the clock and queued messages).
    pub fn reset_metrics(&mut self) {
        self.metrics.reset();
    }

    /// The link configuration.
    pub fn config(&self) -> NetConfig {
        self.config
    }

    /// Sends a message; returns its delivery time (µs, virtual). The
    /// payload is shared, not copied — pass a [`Payload`] clone when
    /// fanning the same bytes out to several destinations.
    ///
    /// # Errors
    /// [`NetError::UnknownPeer`] if `to` was never registered.
    pub fn send(
        &mut self,
        from: PeerId,
        to: PeerId,
        kind: &'static str,
        payload: impl Into<Payload>,
    ) -> Result<u64, NetError> {
        if !self.inboxes.contains_key(&to) {
            return Err(NetError::UnknownPeer(to));
        }
        let payload = payload.into();
        let size = payload.len();
        // The link serializes transmissions: start after any in-flight
        // message on the same (from, to) pair finishes.
        let link = self.link_free.entry((from, to)).or_insert(0);
        let start = self.clock_us.max(*link);
        let deliver_at = start + self.config.latency_us + self.config.tx_us(size);
        *link = start + self.config.tx_us(size);
        self.metrics.record(kind, size);
        if kind == kinds::BATCH {
            let frames = FrameBatch::peek_count(&payload).unwrap_or(0);
            self.metrics.record_batch(from, to, frames, size);
        }
        let msg = Message {
            from,
            to,
            kind,
            payload,
            sent_at: self.clock_us,
            deliver_at,
        };
        // The fault plan adjudicates after accounting: a dropped message
        // still spent the sender's bandwidth, it just never arrives.
        let decision = match self.fault.as_mut() {
            Some(plan) => plan.decide(from, to),
            None => FaultDecision::Deliver,
        };
        self.metrics.record_fault(decision);
        match decision {
            FaultDecision::Drop | FaultDecision::Partitioned => return Ok(deliver_at),
            FaultDecision::Duplicate => {
                // pti-allow(panic-policy): `to` was validated against inboxes at the top of send()
                let inbox = self.inboxes.get_mut(&to).expect("checked");
                // pti-allow(unbounded-queue): sim inboxes model the network, not a bounded buffer
                inbox.push_back(msg.clone());
                // pti-allow(unbounded-queue): second copy of the duplicated delivery, same modelling rationale
                inbox.push_back(msg);
            }
            FaultDecision::Deliver => {
                // pti-allow(panic-policy): `to` was validated against inboxes at the top of send()
                let inbox = self.inboxes.get_mut(&to).expect("checked");
                // pti-allow(unbounded-queue): sim inboxes model the network, not a bounded buffer
                inbox.push_back(msg);
            }
        }
        Ok(deliver_at)
    }

    /// Receives the earliest-deliverable message for `peer`, advancing
    /// the virtual clock to its delivery time. `None` when the inbox is
    /// empty.
    pub fn recv(&mut self, peer: PeerId) -> Option<Message> {
        let inbox = self.inboxes.get_mut(&peer)?;
        // Earliest by delivery time (stable for ties: lowest index).
        let idx = inbox
            .iter()
            .enumerate()
            .min_by_key(|(i, m)| (m.deliver_at, *i))
            .map(|(i, _)| i)?;
        // pti-allow(panic-policy): idx came from enumerate() over this same inbox
        let msg = inbox.remove(idx).expect("index valid");
        self.clock_us = self.clock_us.max(msg.deliver_at);
        Some(msg)
    }

    /// Receives only if a message of the given kind is queued for `peer`.
    pub fn recv_kind(&mut self, peer: PeerId, kind: &str) -> Option<Message> {
        let inbox = self.inboxes.get_mut(&peer)?;
        let idx = inbox
            .iter()
            .enumerate()
            .filter(|(_, m)| m.kind == kind)
            .min_by_key(|(i, m)| (m.deliver_at, *i))
            .map(|(i, _)| i)?;
        // pti-allow(panic-policy): idx came from enumerate() over this same inbox
        let msg = inbox.remove(idx).expect("index valid");
        self.clock_us = self.clock_us.max(msg.deliver_at);
        Some(msg)
    }

    /// Number of undelivered messages queued for `peer`.
    pub fn pending(&self, peer: PeerId) -> usize {
        self.inboxes.get(&peer).map_or(0, VecDeque::len)
    }
}

/// A cloneable handle sharing one [`SimNet`] between several
/// single-threaded drivers — the deterministic counterpart of cloning a
/// [`LiveBus`](crate::LiveBus) handle.
///
/// Multi-swarm scenarios (membership gossip, late joiners) need several
/// protocol engines on *one* fabric. On the live bus that falls out of
/// `Clone`; `SharedSimNet` gives the virtual-time fabric the same shape:
/// every clone operates on the same inboxes, clock and metrics. It is
/// deliberately `!Send` (`Rc`) — the simulation stays single-threaded
/// and deterministic, drivers take turns.
///
/// As on a shared live fabric, drivers must pick non-colliding peer ids
/// (see `Swarm::add_peer_as` in `pti-transport`).
#[derive(Debug, Clone, Default)]
pub struct SharedSimNet {
    inner: std::rc::Rc<std::cell::RefCell<SimNet>>,
}

impl SharedSimNet {
    /// Creates a fresh simulated network and wraps it for sharing.
    pub fn new(config: NetConfig) -> SharedSimNet {
        SharedSimNet {
            inner: std::rc::Rc::new(std::cell::RefCell::new(SimNet::new(config))),
        }
    }

    /// Runs `f` with exclusive access to the shared network — the escape
    /// hatch for anything the handle doesn't mirror.
    ///
    /// # Panics
    /// If re-entered (the underlying `RefCell` is already borrowed).
    pub fn with<R>(&self, f: impl FnOnce(&mut SimNet) -> R) -> R {
        f(&mut self.inner.borrow_mut())
    }

    /// The current virtual time in microseconds.
    pub fn now_us(&self) -> u64 {
        self.inner.borrow().now_us()
    }

    /// A snapshot of the shared traffic counters.
    pub fn metrics(&self) -> NetMetrics {
        self.inner.borrow().metrics().clone()
    }

    /// Number of undelivered messages queued for `peer`.
    pub fn pending(&self, peer: PeerId) -> usize {
        self.inner.borrow().pending(peer)
    }

    /// Installs a seeded fault plan on the shared fabric (every handle
    /// sees it).
    pub fn install_fault_plan(&self, plan: FaultPlan) {
        self.inner.borrow_mut().install_fault_plan(plan);
    }

    /// Advances the shared virtual clock to `deadline_us` if ahead.
    pub fn advance_clock_to(&self, deadline_us: u64) {
        self.inner.borrow_mut().advance_clock_to(deadline_us);
    }
}

impl Default for SimNet {
    fn default() -> SimNet {
        SimNet::new(NetConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> SimNet {
        let mut n = SimNet::new(NetConfig {
            latency_us: 1000,
            bandwidth_bps: 1_000_000,
        });
        n.register(PeerId(1));
        n.register(PeerId(2));
        n
    }

    #[test]
    fn delivery_accounts_latency_and_bandwidth() {
        let mut n = net();
        // 1000 bytes at 1 MB/s = 1000 µs tx + 1000 µs latency.
        let at = n
            .send(PeerId(1), PeerId(2), "object", vec![0u8; 1000])
            .unwrap();
        assert_eq!(at, 2000);
        let m = n.recv(PeerId(2)).unwrap();
        assert_eq!(m.deliver_at, 2000);
        assert_eq!(n.now_us(), 2000, "clock advanced to delivery");
    }

    #[test]
    fn link_serializes_bursts() {
        let mut n = net();
        let a = n.send(PeerId(1), PeerId(2), "x", vec![0u8; 1000]).unwrap();
        let b = n.send(PeerId(1), PeerId(2), "x", vec![0u8; 1000]).unwrap();
        assert_eq!(a, 2000);
        assert_eq!(b, 3000, "second message queues behind the first's tx time");
    }

    #[test]
    fn unknown_peer_rejected() {
        let mut n = net();
        assert_eq!(
            n.send(PeerId(1), PeerId(9), "x", vec![]),
            Err(NetError::UnknownPeer(PeerId(9)))
        );
    }

    #[test]
    fn recv_order_is_by_delivery_time() {
        let mut n = net();
        n.send(PeerId(1), PeerId(2), "big", vec![0u8; 5000])
            .unwrap();
        n.send(PeerId(1), PeerId(2), "small", vec![0u8; 10])
            .unwrap();
        // Same link ⇒ FIFO by construction; but from another peer a small
        // message can overtake.
        n.register(PeerId(3));
        n.send(PeerId(3), PeerId(2), "tiny", vec![]).unwrap();
        let first = n.recv(PeerId(2)).unwrap();
        assert_eq!(first.kind, "tiny", "independent link delivers first");
    }

    #[test]
    fn recv_kind_filters() {
        let mut n = net();
        n.send(PeerId(1), PeerId(2), "a", vec![1]).unwrap();
        n.send(PeerId(1), PeerId(2), "b", vec![2]).unwrap();
        let m = n.recv_kind(PeerId(2), "b").unwrap();
        assert_eq!(m.kind, "b");
        assert_eq!(n.pending(PeerId(2)), 1);
        assert!(n.recv_kind(PeerId(2), "zzz").is_none());
    }

    #[test]
    fn metrics_track_traffic() {
        let mut n = net();
        n.send(PeerId(1), PeerId(2), "object", vec![0u8; 128])
            .unwrap();
        n.send(PeerId(2), PeerId(1), "desc", vec![0u8; 64]).unwrap();
        assert_eq!(n.metrics().messages, 2);
        assert_eq!(n.metrics().bytes, 192);
        assert_eq!(n.metrics().kind("desc").bytes, 64);
        n.reset_metrics();
        assert_eq!(n.metrics().messages, 0);
    }

    #[test]
    fn empty_inbox_returns_none() {
        let mut n = net();
        assert!(n.recv(PeerId(1)).is_none());
        assert!(n.recv(PeerId(42)).is_none(), "unknown peer inbox is None");
    }

    #[test]
    fn shared_handles_drive_one_fabric() {
        use crate::transport::Transport;
        let mut left = SharedSimNet::new(NetConfig::default());
        let mut right = left.clone();
        Transport::register(&mut left, PeerId(1));
        Transport::register(&mut right, PeerId(2));
        // A send through one handle is received through the other...
        Transport::send(&mut left, PeerId(1), PeerId(2), "k", vec![9].into()).unwrap();
        let m = right.try_recv(PeerId(2)).expect("shared inboxes");
        assert_eq!(m.from, PeerId(1));
        assert_eq!(m.payload, vec![9]);
        // ...the virtual clock and metrics are shared too.
        assert!(left.now_us() > 0);
        assert_eq!(left.now_us(), right.now_us());
        assert_eq!(SharedSimNet::metrics(&left).messages, 1);
        assert_eq!(SharedSimNet::metrics(&right).messages, 1);
        assert_eq!(
            Transport::send(&mut left, PeerId(1), PeerId(9), "k", Payload::empty()),
            Err(NetError::UnknownPeer(PeerId(9)))
        );
    }

    #[test]
    fn fault_plan_drops_and_duplicates_deterministically() {
        use crate::fault::FaultPlan;
        let mut n = net();
        n.install_fault_plan(FaultPlan::new(1).with_loss(1000));
        n.send(PeerId(1), PeerId(2), "x", vec![1]).unwrap();
        assert_eq!(n.pending(PeerId(2)), 0, "dropped before the inbox");
        assert_eq!(n.metrics().faults_dropped, 1);
        assert_eq!(n.metrics().messages, 1, "the send itself is accounted");
        n.install_fault_plan(FaultPlan::new(1).with_duplication(1000));
        n.send(PeerId(1), PeerId(2), "x", vec![2]).unwrap();
        assert_eq!(n.pending(PeerId(2)), 2, "duplicated into the inbox");
        assert_eq!(n.metrics().faults_duplicated, 1);
        n.clear_fault_plan();
        n.send(PeerId(1), PeerId(2), "x", vec![3]).unwrap();
        assert_eq!(n.pending(PeerId(2)), 3);
    }

    #[test]
    fn fault_partition_blocks_then_heals() {
        use crate::fault::FaultPlan;
        let mut n = net();
        n.install_fault_plan(FaultPlan::new(1).with_partition([PeerId(2)], 0, 2));
        n.send(PeerId(1), PeerId(2), "x", vec![1]).unwrap();
        n.send(PeerId(2), PeerId(1), "x", vec![2]).unwrap();
        assert_eq!(n.pending(PeerId(2)), 0);
        assert_eq!(n.pending(PeerId(1)), 0);
        assert_eq!(n.metrics().faults_partitioned, 2);
        // Step 2: healed.
        n.send(PeerId(1), PeerId(2), "x", vec![3]).unwrap();
        assert_eq!(n.pending(PeerId(2)), 1);
    }

    #[test]
    fn advance_clock_only_moves_forward() {
        let mut n = net();
        n.advance_clock_to(5000);
        assert_eq!(n.now_us(), 5000);
        n.advance_clock_to(100);
        assert_eq!(n.now_us(), 5000, "never rewinds");
    }

    #[test]
    fn wan_profile_slower_than_lan() {
        let lan = NetConfig::default();
        let wan = NetConfig::wan();
        assert!(wan.tx_us(100_000) > lan.tx_us(100_000));
        assert!(wan.latency_us > lan.latency_us);
    }
}
