//! A concurrent message bus for multithreaded peer drivers.
//!
//! The virtual-time [`SimNet`](crate::sim::SimNet) is single-threaded by
//! design (deterministic experiments). Integration tests and examples
//! that want *actually concurrent* peers use this std-channel bus
//! instead: same message shape, real threads, shared traffic metrics.
//!
//! There are two ways to drive it:
//!
//! * [`LiveBus::join`] hands back a raw [`Endpoint`] for manual
//!   send/recv loops;
//! * the [`Transport`](crate::Transport) implementation attaches peer
//!   inboxes to *this handle* of the bus, so a protocol `Swarm` can own
//!   its peers' receive sides while every handle shares one delivery
//!   fabric and one set of metrics. Cloning a `LiveBus` yields a new
//!   handle onto the same fabric with no attached inboxes — hand clones
//!   to threads and let each register its own peers.

use std::collections::HashMap;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::frame::{kinds, FrameBatch};
use crate::metrics::NetMetrics;
use crate::payload::Payload;
use crate::sim::{NetError, PeerId};
use crate::transport::Transport;

/// A message on the live bus (no virtual timing — delivery is real).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BusMessage {
    /// Sending peer.
    pub from: PeerId,
    /// Destination peer.
    pub to: PeerId,
    /// Application-level kind tag. Always a constant — allocation never
    /// rides the send path.
    pub kind: &'static str,
    /// Opaque payload — shared with the sender, never copied per hop.
    pub payload: Payload,
}

/// Hub creating endpoints and carrying shared metrics.
#[derive(Debug)]
pub struct LiveBus {
    inner: Arc<Mutex<BusInner>>,
    /// Inboxes attached to this handle via [`Transport::register`] —
    /// deliberately not shared between clones: each protocol driver owns
    /// the receive side of its own peers.
    attached: HashMap<PeerId, Receiver<BusMessage>>,
    /// When this fabric was created — `Transport::now_us` reports time
    /// since then, giving the live fabric a monotonic µs clock shaped
    /// like the virtual ones.
    epoch: Instant,
}

impl Default for LiveBus {
    fn default() -> LiveBus {
        LiveBus {
            inner: Arc::default(),
            attached: HashMap::new(),
            epoch: Instant::now(),
        }
    }
}

impl Clone for LiveBus {
    /// Clones the *fabric handle*: the new value shares senders, metrics
    /// and the clock epoch with the original but has no attached inboxes
    /// of its own.
    fn clone(&self) -> LiveBus {
        LiveBus {
            inner: Arc::clone(&self.inner),
            attached: HashMap::new(),
            epoch: self.epoch,
        }
    }
}

#[derive(Debug, Default)]
struct BusInner {
    senders: HashMap<PeerId, SenderSlot>,
    /// Monotonic registration stamp, so pruning a dead sender after a
    /// failed send cannot race a re-joined peer under the same id.
    next_gen: u64,
    metrics: NetMetrics,
}

#[derive(Debug, Clone)]
struct SenderSlot {
    gen: u64,
    tx: Sender<BusMessage>,
}

impl BusInner {
    fn bind(&mut self, id: PeerId, tx: Sender<BusMessage>) {
        assert!(
            !self.senders.contains_key(&id),
            "{id} is already registered on this LiveBus fabric"
        );
        self.next_gen += 1;
        let gen = self.next_gen;
        self.senders.insert(id, SenderSlot { gen, tx });
    }
}

/// One peer's connection to the bus: can send to anyone, receives its own
/// inbox.
#[derive(Debug)]
pub struct Endpoint {
    id: PeerId,
    bus: LiveBus,
    inbox: Receiver<BusMessage>,
}

impl LiveBus {
    /// Creates an empty bus.
    pub fn new() -> LiveBus {
        LiveBus::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BusInner> {
        // pti-allow(panic-policy): a poisoned bus lock means a sender panicked mid-send; every later operation would see torn state
        self.inner.lock().expect("bus lock poisoned")
    }

    /// Registers a peer and returns its endpoint.
    ///
    /// # Panics
    /// If the id is already registered on this fabric (via `join` or the
    /// [`Transport`] impl) — rebinding would silently hijack the
    /// existing owner's traffic.
    pub fn join(&self, id: PeerId) -> Endpoint {
        let (tx, rx) = channel();
        self.lock().bind(id, tx);
        Endpoint {
            id,
            bus: self.clone(),
            inbox: rx,
        }
    }

    /// Snapshot of the traffic counters.
    pub fn metrics(&self) -> NetMetrics {
        self.lock().metrics.clone()
    }

    fn send_msg(&self, msg: BusMessage) -> Result<(), NetError> {
        let slot = {
            let inner = self.lock();
            let Some(slot) = inner.senders.get(&msg.to).cloned() else {
                return Err(NetError::UnknownPeer(msg.to));
            };
            slot
        };
        // A disconnected receiver (peer dropped concurrently) is reported
        // like an unknown peer; only a *delivered* message is recorded,
        // so accounting matches SimNet's. The dead sender is pruned (by
        // registration generation, so a re-joined peer under the same id
        // is untouched) so a departed peer does not accumulate queues.
        let (from, to, kind) = (msg.from, msg.to, msg.kind);
        let frames = if kind == kinds::BATCH {
            FrameBatch::peek_count(&msg.payload).unwrap_or(0)
        } else {
            0
        };
        let bytes = msg.payload.len();
        if slot.tx.send(msg).is_err() {
            let mut inner = self.lock();
            if inner
                .senders
                .get(&to)
                .is_some_and(|cur| cur.gen == slot.gen)
            {
                inner.senders.remove(&to);
            }
            return Err(NetError::UnknownPeer(to));
        }
        let mut inner = self.lock();
        inner.metrics.record(kind, bytes);
        if kind == kinds::BATCH {
            inner.metrics.record_batch(from, to, frames, bytes);
        }
        Ok(())
    }
}

impl Transport for LiveBus {
    /// Attaches `peer`'s inbox to this handle (send side goes to the
    /// shared fabric so any handle can reach it). Re-registering the
    /// same peer on the same handle is a no-op.
    ///
    /// # Panics
    /// If the id is already registered through *another* handle or
    /// endpoint of this fabric — silently rebinding would hijack the
    /// other owner's traffic. Pick distinct ids per driver (see
    /// `Swarm::add_peer_as`).
    fn register(&mut self, peer: PeerId) {
        if self.attached.contains_key(&peer) {
            return;
        }
        let (tx, rx) = channel();
        self.lock().bind(peer, tx);
        self.attached.insert(peer, rx);
    }

    fn send(
        &mut self,
        from: PeerId,
        to: PeerId,
        kind: &'static str,
        payload: Payload,
    ) -> Result<(), NetError> {
        self.send_msg(BusMessage {
            from,
            to,
            kind,
            payload,
        })
    }

    fn try_recv(&mut self, peer: PeerId) -> Option<BusMessage> {
        self.attached.get(&peer)?.try_recv().ok()
    }

    /// Polls the attached inboxes until a message arrives or the deadline
    /// passes (concurrent senders may deliver at any moment).
    fn recv_deadline(&mut self, peers: &[PeerId], deadline: Instant) -> Option<BusMessage> {
        loop {
            if let Some(m) = peers
                .iter()
                .find_map(|p| self.attached.get(p).and_then(|rx| rx.try_recv().ok()))
            {
                return Some(m);
            }
            if Instant::now() >= deadline {
                return None;
            }
            std::thread::sleep(Duration::from_micros(200));
        }
    }

    fn metrics(&self) -> NetMetrics {
        LiveBus::metrics(self)
    }

    fn reset_metrics(&mut self) {
        self.lock().metrics.reset();
    }

    fn record_batch_splits(&mut self, from: PeerId, to: PeerId, extra: u64) {
        self.lock().metrics.record_batch_splits(from, to, extra);
    }

    fn record_batched_frame(&mut self, kind: &'static str, bytes: usize) {
        self.lock().metrics.record_batched_frame(kind, bytes);
    }

    fn record_payload_encode(&mut self) {
        self.lock().metrics.record_payload_encode();
    }

    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }
}

impl Endpoint {
    /// This endpoint's peer id.
    pub fn id(&self) -> PeerId {
        self.id
    }

    /// Sends a message to another peer.
    ///
    /// # Errors
    /// [`NetError::UnknownPeer`] when the destination never joined or
    /// already left.
    pub fn send(
        &self,
        to: PeerId,
        kind: &'static str,
        payload: impl Into<Payload>,
    ) -> Result<(), NetError> {
        self.bus.send_msg(BusMessage {
            from: self.id,
            to,
            kind,
            payload: payload.into(),
        })
    }

    /// Blocks until a message arrives.
    pub fn recv(&self) -> Option<BusMessage> {
        self.inbox.recv().ok()
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<BusMessage> {
        self.inbox.try_recv().ok()
    }
}

impl Drop for Endpoint {
    fn drop(&mut self) {
        self.bus.lock().senders.remove(&self.id);
    }
}

impl Drop for LiveBus {
    /// Unregisters the inboxes attached to this handle so the ids can be
    /// reused (and senders don't pile up) after a driver goes away.
    fn drop(&mut self) {
        if self.attached.is_empty() {
            return;
        }
        // Poison-tolerant: this may run while unwinding another panic.
        if let Ok(mut inner) = self.inner.lock() {
            for peer in self.attached.keys() {
                inner.senders.remove(peer);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn point_to_point_delivery() {
        let bus = LiveBus::new();
        let a = bus.join(PeerId(1));
        let b = bus.join(PeerId(2));
        a.send(PeerId(2), "hello", vec![1, 2, 3]).unwrap();
        let m = b.recv().unwrap();
        assert_eq!(m.from, PeerId(1));
        assert_eq!(m.payload, vec![1, 2, 3]);
    }

    #[test]
    fn unknown_destination_errors() {
        let bus = LiveBus::new();
        let a = bus.join(PeerId(1));
        assert_eq!(
            a.send(PeerId(9), "x", vec![]),
            Err(NetError::UnknownPeer(PeerId(9)))
        );
    }

    #[test]
    fn departed_peer_is_unknown() {
        let bus = LiveBus::new();
        let a = bus.join(PeerId(1));
        {
            let _b = bus.join(PeerId(2));
        }
        assert!(a.send(PeerId(2), "x", vec![]).is_err());
    }

    #[test]
    fn metrics_shared_across_endpoints() {
        let bus = LiveBus::new();
        let a = bus.join(PeerId(1));
        let _b = bus.join(PeerId(2));
        a.send(PeerId(2), "k", vec![0u8; 10]).unwrap();
        a.send(PeerId(2), "k", vec![0u8; 20]).unwrap();
        let m = bus.metrics();
        assert_eq!(m.messages, 2);
        assert_eq!(m.kind("k").bytes, 30);
    }

    #[test]
    fn concurrent_peers_exchange() {
        let bus = LiveBus::new();
        let a = bus.join(PeerId(1));
        let b = bus.join(PeerId(2));
        let t = thread::spawn(move || {
            // Echo server: bounce 100 messages back.
            for _ in 0..100 {
                let m = b.recv().unwrap();
                b.send(m.from, "echo", m.payload).unwrap();
            }
        });
        for i in 0..100u8 {
            a.send(PeerId(2), "ping", vec![i]).unwrap();
        }
        for _ in 0..100 {
            let m = a.recv().unwrap();
            assert_eq!(m.kind, "echo");
        }
        t.join().unwrap();
        assert!(a.try_recv().is_none());
    }

    #[test]
    fn clone_shares_fabric_but_not_inboxes() {
        let mut left = LiveBus::new();
        let mut right = left.clone();
        Transport::register(&mut left, PeerId(1));
        Transport::register(&mut right, PeerId(2));
        // A message sent through either handle reaches the peer attached
        // to the other handle...
        Transport::send(&mut left, PeerId(1), PeerId(2), "k", vec![9].into()).unwrap();
        assert!(
            left.try_recv(PeerId(2)).is_none(),
            "inbox is right's, not left's"
        );
        let m = right.try_recv(PeerId(2)).unwrap();
        assert_eq!(m.payload, vec![9]);
        // ...and both handles see the same metrics.
        assert_eq!(LiveBus::metrics(&left).messages, 1);
        assert_eq!(LiveBus::metrics(&right).messages, 1);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn cross_handle_id_collision_panics_instead_of_hijacking() {
        let mut left = LiveBus::new();
        let mut right = left.clone();
        Transport::register(&mut left, PeerId(1));
        Transport::register(&mut right, PeerId(1));
    }

    #[test]
    fn dropping_a_handle_releases_its_peer_ids() {
        let hub = LiveBus::new();
        {
            let mut driver = hub.clone();
            Transport::register(&mut driver, PeerId(7));
        }
        // The id is free again once the owning handle is gone.
        let mut next = hub.clone();
        Transport::register(&mut next, PeerId(7));
        Transport::send(&mut next, PeerId(7), PeerId(7), "loop", vec![1].into()).unwrap();
        assert_eq!(next.try_recv(PeerId(7)).unwrap().payload, vec![1]);
    }

    #[test]
    fn failed_send_to_departed_peer_is_not_recorded() {
        let hub = LiveBus::new();
        let a = hub.join(PeerId(1));
        {
            let mut gone = hub.clone();
            Transport::register(&mut gone, PeerId(2));
            // `gone` drops here, unregistering peer 2.
        }
        assert!(a.send(PeerId(2), "x", vec![0u8; 64]).is_err());
        assert_eq!(hub.metrics().messages, 0, "failed sends leave no trace");
    }

    #[test]
    fn dead_channel_is_pruned_on_send_failure() {
        // Force the race window the pruning defends against: a sender
        // entry whose receive side is already gone (no Drop ran for it).
        let bus = LiveBus::new();
        let (tx, rx) = channel();
        bus.lock().bind(PeerId(5), tx);
        drop(rx);
        let a = bus.join(PeerId(1));
        assert!(a.send(PeerId(5), "x", vec![]).is_err());
        assert_eq!(bus.metrics().messages, 0, "failed send leaves no trace");
        // The dead entry was pruned, so the id is free to re-join...
        let e5 = bus.join(PeerId(5));
        // ...and traffic flows to the new owner.
        a.send(PeerId(5), "x", vec![7]).unwrap();
        assert_eq!(e5.try_recv().unwrap().payload, vec![7]);
    }

    #[test]
    fn recv_deadline_waits_for_concurrent_sender() {
        let mut receiver_bus = LiveBus::new();
        Transport::register(&mut receiver_bus, PeerId(2));
        let mut sender_bus = receiver_bus.clone();
        Transport::register(&mut sender_bus, PeerId(1));
        let t = thread::spawn(move || {
            thread::sleep(Duration::from_millis(5));
            Transport::send(
                &mut sender_bus,
                PeerId(1),
                PeerId(2),
                "late",
                Payload::empty(),
            )
            .unwrap();
        });
        let m = receiver_bus
            .recv_deadline(&[PeerId(2)], Instant::now() + Duration::from_secs(5))
            .expect("message arrives within the deadline");
        assert_eq!(m.kind, "late");
        t.join().unwrap();
    }
}
