//! A concurrent message bus for multithreaded peer drivers.
//!
//! The virtual-time [`SimNet`](crate::sim::SimNet) is single-threaded by
//! design (deterministic experiments). Integration tests and examples
//! that want *actually concurrent* peers use this crossbeam-channel bus
//! instead: same message shape, real threads, shared traffic metrics.

use std::collections::HashMap;
use std::sync::Arc;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use crate::metrics::NetMetrics;
use crate::sim::{NetError, PeerId};

/// A message on the live bus (no virtual timing — delivery is real).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BusMessage {
    /// Sending peer.
    pub from: PeerId,
    /// Destination peer.
    pub to: PeerId,
    /// Application-level kind tag.
    pub kind: String,
    /// Opaque payload.
    pub payload: Vec<u8>,
}

/// Hub creating endpoints and carrying shared metrics.
#[derive(Debug, Clone, Default)]
pub struct LiveBus {
    inner: Arc<Mutex<BusInner>>,
}

#[derive(Debug, Default)]
struct BusInner {
    senders: HashMap<PeerId, Sender<BusMessage>>,
    metrics: NetMetrics,
}

/// One peer's connection to the bus: can send to anyone, receives its own
/// inbox.
#[derive(Debug)]
pub struct Endpoint {
    id: PeerId,
    bus: LiveBus,
    inbox: Receiver<BusMessage>,
}

impl LiveBus {
    /// Creates an empty bus.
    pub fn new() -> LiveBus {
        LiveBus::default()
    }

    /// Registers a peer and returns its endpoint.
    pub fn join(&self, id: PeerId) -> Endpoint {
        let (tx, rx) = unbounded();
        self.inner.lock().senders.insert(id, tx);
        Endpoint { id, bus: self.clone(), inbox: rx }
    }

    /// Snapshot of the traffic counters.
    pub fn metrics(&self) -> NetMetrics {
        self.inner.lock().metrics.clone()
    }

    fn send(&self, msg: BusMessage) -> Result<(), NetError> {
        let mut inner = self.inner.lock();
        let Some(tx) = inner.senders.get(&msg.to).cloned() else {
            return Err(NetError::UnknownPeer(msg.to));
        };
        inner.metrics.record(&msg.kind, msg.payload.len());
        drop(inner);
        // A disconnected receiver (peer dropped) is reported like an
        // unknown peer.
        let to = msg.to;
        tx.send(msg).map_err(|_| NetError::UnknownPeer(to))
    }
}

impl Endpoint {
    /// This endpoint's peer id.
    pub fn id(&self) -> PeerId {
        self.id
    }

    /// Sends a message to another peer.
    ///
    /// # Errors
    /// [`NetError::UnknownPeer`] when the destination never joined or
    /// already left.
    pub fn send(
        &self,
        to: PeerId,
        kind: impl Into<String>,
        payload: Vec<u8>,
    ) -> Result<(), NetError> {
        self.bus.send(BusMessage { from: self.id, to, kind: kind.into(), payload })
    }

    /// Blocks until a message arrives.
    pub fn recv(&self) -> Option<BusMessage> {
        self.inbox.recv().ok()
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<BusMessage> {
        self.inbox.try_recv().ok()
    }
}

impl Drop for Endpoint {
    fn drop(&mut self) {
        self.bus.inner.lock().senders.remove(&self.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn point_to_point_delivery() {
        let bus = LiveBus::new();
        let a = bus.join(PeerId(1));
        let b = bus.join(PeerId(2));
        a.send(PeerId(2), "hello", vec![1, 2, 3]).unwrap();
        let m = b.recv().unwrap();
        assert_eq!(m.from, PeerId(1));
        assert_eq!(m.payload, vec![1, 2, 3]);
    }

    #[test]
    fn unknown_destination_errors() {
        let bus = LiveBus::new();
        let a = bus.join(PeerId(1));
        assert_eq!(
            a.send(PeerId(9), "x", vec![]),
            Err(NetError::UnknownPeer(PeerId(9)))
        );
    }

    #[test]
    fn departed_peer_is_unknown() {
        let bus = LiveBus::new();
        let a = bus.join(PeerId(1));
        {
            let _b = bus.join(PeerId(2));
        }
        assert!(a.send(PeerId(2), "x", vec![]).is_err());
    }

    #[test]
    fn metrics_shared_across_endpoints() {
        let bus = LiveBus::new();
        let a = bus.join(PeerId(1));
        let _b = bus.join(PeerId(2));
        a.send(PeerId(2), "k", vec![0u8; 10]).unwrap();
        a.send(PeerId(2), "k", vec![0u8; 20]).unwrap();
        let m = bus.metrics();
        assert_eq!(m.messages, 2);
        assert_eq!(m.kind("k").bytes, 30);
    }

    #[test]
    fn concurrent_peers_exchange() {
        let bus = LiveBus::new();
        let a = bus.join(PeerId(1));
        let b = bus.join(PeerId(2));
        let t = thread::spawn(move || {
            // Echo server: bounce 100 messages back.
            for _ in 0..100 {
                let m = b.recv().unwrap();
                b.send(m.from, "echo", m.payload).unwrap();
            }
        });
        for i in 0..100u8 {
            a.send(PeerId(2), "ping", vec![i]).unwrap();
        }
        for _ in 0..100 {
            let m = a.recv().unwrap();
            assert_eq!(m.kind, "echo");
        }
        t.join().unwrap();
        assert!(a.try_recv().is_none());
    }
}
