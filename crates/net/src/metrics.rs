//! Traffic accounting.
//!
//! The optimistic protocol's whole point is "saving network resources"
//! (paper Section 1, Figure 1); these counters are how the protocol
//! experiments (F1) quantify that saving.

use std::collections::BTreeMap;

/// Per-kind and total message/byte counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetMetrics {
    /// Total messages sent.
    pub messages: u64,
    /// Total payload bytes sent.
    pub bytes: u64,
    /// Counters per message kind (e.g. `object`, `desc-request`,
    /// `assembly`), keyed by the kind tag.
    pub per_kind: BTreeMap<String, KindMetrics>,
}

/// Counters for one message kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KindMetrics {
    /// Messages of this kind.
    pub messages: u64,
    /// Payload bytes of this kind.
    pub bytes: u64,
}

impl NetMetrics {
    /// Records one sent message.
    pub fn record(&mut self, kind: &str, bytes: usize) {
        self.messages += 1;
        self.bytes += bytes as u64;
        let k = self.per_kind.entry(kind.to_string()).or_default();
        k.messages += 1;
        k.bytes += bytes as u64;
    }

    /// Counters for one kind (zero if the kind never appeared).
    pub fn kind(&self, kind: &str) -> KindMetrics {
        self.per_kind.get(kind).copied().unwrap_or_default()
    }

    /// Resets all counters.
    pub fn reset(&mut self) {
        *self = NetMetrics::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_totals_and_kinds() {
        let mut m = NetMetrics::default();
        m.record("object", 100);
        m.record("object", 50);
        m.record("assembly", 4000);
        assert_eq!(m.messages, 3);
        assert_eq!(m.bytes, 4150);
        assert_eq!(m.kind("object").messages, 2);
        assert_eq!(m.kind("object").bytes, 150);
        assert_eq!(m.kind("assembly").bytes, 4000);
        assert_eq!(m.kind("never").messages, 0);
    }

    #[test]
    fn reset_clears_everything() {
        let mut m = NetMetrics::default();
        m.record("x", 1);
        m.reset();
        assert_eq!(m, NetMetrics::default());
    }
}
