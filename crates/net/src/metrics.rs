//! Traffic accounting.
//!
//! The optimistic protocol's whole point is "saving network resources"
//! (paper Section 1, Figure 1); these counters are how the protocol
//! experiments (F1) quantify that saving, and how the routing experiment
//! (R1) quantifies what interest-indexed dispatch plus wire batching save
//! on top.
//!
//! Kind tags are `&'static str` — every sender passes a constant from a
//! `kinds` module (or a string literal), so recording a message allocates
//! nothing on the send hot path.

use std::collections::BTreeMap;

use crate::sim::PeerId;

/// Per-kind and total message/byte counters, plus per-link batching
/// counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetMetrics {
    /// Total messages sent.
    pub messages: u64,
    /// Total payload bytes sent.
    pub bytes: u64,
    /// Counters per message kind (e.g. `object`, `desc-request`,
    /// `assembly`), keyed by the kind tag.
    pub per_kind: BTreeMap<&'static str, KindMetrics>,
    /// Counters for frames that travelled *inside* batch messages, keyed
    /// by the frame's own kind. A batched frame's bytes are part of the
    /// `batch` entry in [`per_kind`](Self::per_kind); this map attributes
    /// them back to the protocol kind (OBJECT vs control traffic), so it
    /// is an attribution overlay — do not add it to
    /// [`bytes`](Self::bytes).
    pub per_batched_kind: BTreeMap<&'static str, KindMetrics>,
    /// Batching counters per `(from, to)` link — populated whenever a
    /// [`FrameBatch`](crate::FrameBatch) message crosses that link.
    pub per_link: BTreeMap<(PeerId, PeerId), LinkBatchMetrics>,
    /// Payload encodes performed by the layer above (one per published
    /// envelope). Compared against per-kind OBJECT counts, this proves
    /// the fan-out path encodes once per publish and shares the bytes
    /// across destinations instead of re-encoding or copying.
    pub payload_encodes: u64,
    /// Messages this fabric forwarded onto a cross-shard bridge (their
    /// kind/byte counters are also in the totals above — this counts how
    /// much of the traffic left the shard).
    pub bridge_crossings: u64,
    /// Payload bytes those bridged messages carried.
    pub bridge_bytes: u64,
    /// Bridged sends that actually delivered a wake signal to the owning
    /// shard's parked thread (vs. finding it already running).
    pub bridge_wakes: u64,
    /// Messages an installed [`FaultPlan`](crate::FaultPlan) silently
    /// dropped (their send was still recorded in the counters above —
    /// the bytes hit the wire, then were lost).
    pub faults_dropped: u64,
    /// Messages a fault plan delivered twice.
    pub faults_duplicated: u64,
    /// Messages blocked by an active fault-plan partition.
    pub faults_partitioned: u64,
}

/// Counters for one message kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KindMetrics {
    /// Messages of this kind.
    pub messages: u64,
    /// Payload bytes of this kind.
    pub bytes: u64,
}

/// Wire-batching counters for one `(from, to)` link.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkBatchMetrics {
    /// Batch messages sent on this link.
    pub batches: u64,
    /// Frames coalesced into those batches.
    pub frames: u64,
    /// Payload bytes of those batch messages.
    pub bytes: u64,
    /// Times a burst on this link exceeded the sender's wire-batch cap
    /// and was split into additional wire messages (a burst shipped as
    /// `k` messages counts `k - 1` splits).
    pub splits: u64,
}

impl NetMetrics {
    /// Records one sent message. Allocation-free: the kind tag is a
    /// static constant shared by every message of that kind.
    pub fn record(&mut self, kind: &'static str, bytes: usize) {
        self.messages += 1;
        self.bytes += bytes as u64;
        let k = self.per_kind.entry(kind).or_default();
        k.messages += 1;
        k.bytes += bytes as u64;
    }

    /// Records one batch message carrying `frames` coalesced frames on
    /// the `(from, to)` link. Called *in addition to* [`record`] by the
    /// fabrics whenever a [`kinds::BATCH`](crate::kinds::BATCH) message
    /// is sent.
    ///
    /// [`record`]: Self::record
    pub fn record_batch(&mut self, from: PeerId, to: PeerId, frames: usize, bytes: usize) {
        let l = self.per_link.entry((from, to)).or_default();
        l.batches += 1;
        l.frames += frames as u64;
        l.bytes += bytes as u64;
    }

    /// Records that a sender's wire-batch cap split one link's burst
    /// into `extra` additional wire messages. Called by the fabrics on
    /// behalf of the batching layer (see
    /// [`Transport::record_batch_splits`](crate::Transport::record_batch_splits)).
    pub fn record_batch_splits(&mut self, from: PeerId, to: PeerId, extra: u64) {
        self.per_link.entry((from, to)).or_default().splits += extra;
    }

    /// Attributes one frame shipped *inside* a batch message to its own
    /// kind. Called by the batching layer through
    /// [`Transport::record_batched_frame`](crate::Transport::record_batched_frame);
    /// allocation-free like [`record`](Self::record).
    pub fn record_batched_frame(&mut self, kind: &'static str, bytes: usize) {
        let k = self.per_batched_kind.entry(kind).or_default();
        k.messages += 1;
        k.bytes += bytes as u64;
    }

    /// Records one payload encode performed by the layer above (see
    /// [`Transport::record_payload_encode`](crate::Transport::record_payload_encode)).
    pub fn record_payload_encode(&mut self) {
        self.payload_encodes += 1;
    }

    /// Records one message forwarded onto a cross-shard bridge; `woke`
    /// is whether the send delivered a wake signal to the owning shard.
    /// Called *in addition to* [`record`](Self::record) — the message's
    /// kind/byte counters stay in the totals, this measures how much of
    /// the traffic was cross-shard.
    pub fn record_bridge_crossing(&mut self, bytes: usize, woke: bool) {
        self.bridge_crossings += 1;
        self.bridge_bytes += bytes as u64;
        if woke {
            self.bridge_wakes += 1;
        }
    }

    /// Records the outcome of one fault-plan decision (no-op for
    /// [`FaultDecision::Deliver`](crate::FaultDecision::Deliver)).
    pub fn record_fault(&mut self, decision: crate::FaultDecision) {
        match decision {
            crate::FaultDecision::Deliver => {}
            crate::FaultDecision::Drop => self.faults_dropped += 1,
            crate::FaultDecision::Duplicate => self.faults_duplicated += 1,
            crate::FaultDecision::Partitioned => self.faults_partitioned += 1,
        }
    }

    /// Folds another fabric's counters into this one — how a sharded
    /// host aggregates its per-shard `NetMetrics` into one fabric-wide
    /// view. Every counter sums, including the per-kind / per-link maps.
    pub fn merge(&mut self, other: &NetMetrics) {
        self.messages += other.messages;
        self.bytes += other.bytes;
        self.payload_encodes += other.payload_encodes;
        self.bridge_crossings += other.bridge_crossings;
        self.bridge_bytes += other.bridge_bytes;
        self.bridge_wakes += other.bridge_wakes;
        self.faults_dropped += other.faults_dropped;
        self.faults_duplicated += other.faults_duplicated;
        self.faults_partitioned += other.faults_partitioned;
        for (kind, k) in &other.per_kind {
            let e = self.per_kind.entry(kind).or_default();
            e.messages += k.messages;
            e.bytes += k.bytes;
        }
        for (kind, k) in &other.per_batched_kind {
            let e = self.per_batched_kind.entry(kind).or_default();
            e.messages += k.messages;
            e.bytes += k.bytes;
        }
        for (link, l) in &other.per_link {
            let e = self.per_link.entry(*link).or_default();
            e.batches += l.batches;
            e.frames += l.frames;
            e.bytes += l.bytes;
            e.splits += l.splits;
        }
    }

    /// Counters for one kind (zero if the kind never appeared).
    pub fn kind(&self, kind: &str) -> KindMetrics {
        self.per_kind.get(kind).copied().unwrap_or_default()
    }

    /// Counters for frames of one kind that travelled inside batches
    /// (zero if none did).
    pub fn batched_kind(&self, kind: &str) -> KindMetrics {
        self.per_batched_kind.get(kind).copied().unwrap_or_default()
    }

    /// All wire bytes attributable to one kind: standalone messages of
    /// that kind plus frames of that kind coalesced into batches. This is
    /// what lets an experiment split total traffic into OBJECT vs control
    /// bytes even when everything rides the batching path.
    pub fn attributed(&self, kind: &str) -> KindMetrics {
        let a = self.kind(kind);
        let b = self.batched_kind(kind);
        KindMetrics {
            messages: a.messages + b.messages,
            bytes: a.bytes + b.bytes,
        }
    }

    /// Attributed counters summed over several kinds — the one-call way
    /// to total a traffic *class* (e.g. the membership control kinds
    /// `join`/`view`/`leave`) whether its messages travelled standalone
    /// or coalesced into batches.
    pub fn attributed_sum(&self, kinds: &[&str]) -> KindMetrics {
        let mut total = KindMetrics::default();
        for kind in kinds {
            let k = self.attributed(kind);
            total.messages += k.messages;
            total.bytes += k.bytes;
        }
        total
    }

    /// Batching counters for one link (zero if no batch crossed it).
    pub fn link(&self, from: PeerId, to: PeerId) -> LinkBatchMetrics {
        self.per_link.get(&(from, to)).copied().unwrap_or_default()
    }

    /// Total batch messages across all links.
    pub fn batches(&self) -> u64 {
        self.per_link.values().map(|l| l.batches).sum()
    }

    /// Total frames coalesced into batches across all links.
    pub fn batched_frames(&self) -> u64 {
        self.per_link.values().map(|l| l.frames).sum()
    }

    /// Total cap-forced batch splits across all links.
    pub fn batch_splits(&self) -> u64 {
        self.per_link.values().map(|l| l.splits).sum()
    }

    /// Resets all counters.
    pub fn reset(&mut self) {
        *self = NetMetrics::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_totals_and_kinds() {
        let mut m = NetMetrics::default();
        m.record("object", 100);
        m.record("object", 50);
        m.record("assembly", 4000);
        assert_eq!(m.messages, 3);
        assert_eq!(m.bytes, 4150);
        assert_eq!(m.kind("object").messages, 2);
        assert_eq!(m.kind("object").bytes, 150);
        assert_eq!(m.kind("assembly").bytes, 4000);
        assert_eq!(m.kind("never").messages, 0);
    }

    #[test]
    fn reset_clears_everything() {
        let mut m = NetMetrics::default();
        m.record("x", 1);
        m.record_batch(PeerId(1), PeerId(2), 3, 64);
        m.reset();
        assert_eq!(m, NetMetrics::default());
    }

    #[test]
    fn per_link_batches_accumulate() {
        let mut m = NetMetrics::default();
        m.record_batch(PeerId(1), PeerId(2), 4, 100);
        m.record_batch(PeerId(1), PeerId(2), 6, 200);
        m.record_batch(PeerId(1), PeerId(3), 1, 10);
        let l = m.link(PeerId(1), PeerId(2));
        assert_eq!(l.batches, 2);
        assert_eq!(l.frames, 10);
        assert_eq!(l.bytes, 300);
        assert_eq!(m.batches(), 3);
        assert_eq!(m.batched_frames(), 11);
        assert_eq!(m.link(PeerId(9), PeerId(9)), LinkBatchMetrics::default());
    }

    #[test]
    fn batched_frames_attribute_to_their_kind() {
        let mut m = NetMetrics::default();
        // One batch message of 150 B carrying two object frames and a
        // subscribe frame.
        m.record("batch", 150);
        m.record_batched_frame("object", 60);
        m.record_batched_frame("object", 50);
        m.record_batched_frame("subscribe", 20);
        // Plus one standalone object message.
        m.record("object", 40);
        assert_eq!(m.batched_kind("object").messages, 2);
        assert_eq!(m.batched_kind("object").bytes, 110);
        assert_eq!(m.attributed("object").messages, 3);
        assert_eq!(m.attributed("object").bytes, 150);
        assert_eq!(m.attributed("subscribe").bytes, 20);
        let class = m.attributed_sum(&["object", "subscribe"]);
        assert_eq!(class.messages, 4);
        assert_eq!(class.bytes, 170);
        assert_eq!(m.attributed_sum(&["never"]), KindMetrics::default());
        assert_eq!(m.batched_kind("never"), KindMetrics::default());
        // The overlay does not inflate the totals.
        assert_eq!(m.bytes, 190);
        m.record_payload_encode();
        assert_eq!(m.payload_encodes, 1);
    }

    #[test]
    fn merge_sums_every_counter_including_the_maps() {
        let mut a = NetMetrics::default();
        a.record("object", 100);
        a.record_batch(PeerId(1), PeerId(2), 2, 100);
        a.record_batched_frame("object", 60);
        a.record_payload_encode();
        a.record_bridge_crossing(40, true);
        let mut b = NetMetrics::default();
        b.record("object", 50);
        b.record("view", 10);
        b.record_batch(PeerId(1), PeerId(2), 3, 50);
        b.record_batch_splits(PeerId(3), PeerId(4), 2);
        b.record_bridge_crossing(10, false);
        b.record_fault(crate::FaultDecision::Drop);
        b.record_fault(crate::FaultDecision::Duplicate);
        b.record_fault(crate::FaultDecision::Partitioned);
        b.record_fault(crate::FaultDecision::Deliver);
        a.merge(&b);
        assert_eq!(a.messages, 3);
        assert_eq!(a.bytes, 160);
        assert_eq!(a.kind("object").messages, 2);
        assert_eq!(a.kind("view").bytes, 10);
        assert_eq!(a.batched_kind("object").bytes, 60);
        let l = a.link(PeerId(1), PeerId(2));
        assert_eq!((l.batches, l.frames, l.bytes), (2, 5, 150));
        assert_eq!(a.link(PeerId(3), PeerId(4)).splits, 2);
        assert_eq!(a.payload_encodes, 1);
        assert_eq!(
            (a.bridge_crossings, a.bridge_bytes, a.bridge_wakes),
            (2, 50, 1)
        );
        assert_eq!(
            (a.faults_dropped, a.faults_duplicated, a.faults_partitioned),
            (1, 1, 1)
        );
        // Merging an empty fabric is the identity.
        let before = a.clone();
        a.merge(&NetMetrics::default());
        assert_eq!(a, before);
    }

    #[test]
    fn batch_splits_accumulate_per_link() {
        let mut m = NetMetrics::default();
        m.record_batch_splits(PeerId(1), PeerId(2), 2);
        m.record_batch_splits(PeerId(1), PeerId(2), 1);
        m.record_batch_splits(PeerId(1), PeerId(3), 4);
        assert_eq!(m.link(PeerId(1), PeerId(2)).splits, 3);
        assert_eq!(m.batch_splits(), 7);
        assert_eq!(m.link(PeerId(2), PeerId(1)).splits, 0);
    }
}
