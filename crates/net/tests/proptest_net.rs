//! Property tests for the virtual-time network: conservation of bytes,
//! clock monotonicity, and FIFO per link.

// Gated: requires the external `proptest` crate, which is not
// available in this build environment. Enable the feature after
// adding the dependency to this crate.
#![cfg(feature = "proptest-tests")]

use proptest::prelude::*;
use pti_net::{NetConfig, PeerId, SimNet};

#[derive(Debug, Clone)]
struct Send {
    from: u8,
    to: u8,
    size: u16,
}

fn arb_sends() -> impl Strategy<Value = Vec<Send>> {
    proptest::collection::vec(
        (0u8..4, 0u8..4, 0u16..2048).prop_map(|(from, to, size)| Send { from, to, size }),
        0..40,
    )
}

proptest! {
    /// Every queued byte is accounted; nothing is lost or duplicated.
    #[test]
    fn bytes_are_conserved(sends in arb_sends()) {
        let mut net = SimNet::new(NetConfig::default());
        for p in 0..4 {
            net.register(PeerId(p));
        }
        let mut expected_bytes = 0u64;
        for s in &sends {
            net.send(PeerId(u32::from(s.from)), PeerId(u32::from(s.to)), "k", vec![0u8; s.size as usize])
                .unwrap();
            expected_bytes += u64::from(s.size);
        }
        prop_assert_eq!(net.metrics().bytes, expected_bytes);
        prop_assert_eq!(net.metrics().messages, sends.len() as u64);
        // Drain: every message is delivered exactly once.
        let mut delivered = 0usize;
        let mut delivered_bytes = 0u64;
        for p in 0..4 {
            while let Some(m) = net.recv(PeerId(p)) {
                prop_assert_eq!(m.to, PeerId(p));
                delivered += 1;
                delivered_bytes += m.payload.len() as u64;
            }
        }
        prop_assert_eq!(delivered, sends.len());
        prop_assert_eq!(delivered_bytes, expected_bytes);
    }

    /// The virtual clock never goes backwards, and every delivery time is
    /// at least its send time plus latency.
    #[test]
    fn clock_monotonic_and_causal(sends in arb_sends()) {
        let cfg = NetConfig { latency_us: 250, bandwidth_bps: 1_000_000 };
        let mut net = SimNet::new(cfg);
        for p in 0..4 {
            net.register(PeerId(p));
        }
        for s in &sends {
            net.send(PeerId(u32::from(s.from)), PeerId(u32::from(s.to)), "k", vec![0u8; s.size as usize])
                .unwrap();
        }
        let mut last = net.now_us();
        for p in 0..4 {
            while let Some(m) = net.recv(PeerId(p)) {
                prop_assert!(m.deliver_at >= m.sent_at + cfg.latency_us);
                let now = net.now_us();
                prop_assert!(now >= last, "clock went backwards: {last} -> {now}");
                last = now;
            }
        }
    }

    /// Messages on the same (from, to) link arrive in send order.
    #[test]
    fn per_link_fifo(sizes in proptest::collection::vec(0u16..512, 1..20)) {
        let mut net = SimNet::new(NetConfig::default());
        net.register(PeerId(1));
        net.register(PeerId(2));
        for (i, size) in sizes.iter().enumerate() {
            let mut payload = vec![0u8; *size as usize + 4];
            payload[..4].copy_from_slice(&(i as u32).to_le_bytes());
            net.send(PeerId(1), PeerId(2), "k", payload).unwrap();
        }
        let mut expected = 0u32;
        while let Some(m) = net.recv(PeerId(2)) {
            let idx = u32::from_le_bytes(m.payload[..4].try_into().unwrap());
            prop_assert_eq!(idx, expected);
            expected += 1;
        }
        prop_assert_eq!(expected as usize, sizes.len());
    }

    /// Transmission time scales with size and never overflows.
    #[test]
    fn tx_time_monotone_in_size(a in 0usize..1_000_000, b in 0usize..1_000_000) {
        let cfg = NetConfig::default();
        let (small, large) = (a.min(b), a.max(b));
        prop_assert!(cfg.tx_us(small) <= cfg.tx_us(large));
    }
}
